//! # bitgblas-algorithms
//!
//! The five graph algorithms of the paper's evaluation — Breadth-First
//! Search, Single-Source Shortest Path, PageRank, Connected Components and
//! Triangle Counting — written once against the builder API
//! (`Op::mxv(..).run(&ctx)`) of `bitgblas-core`'s pluggable `GrbBackend`
//! layer, and runnable on any backend:
//!
//! * `Backend::Bit(tile_size)` — Bit-GraphBLAS (B2SR + bit kernels), the
//!   paper's system;
//! * `Backend::FloatCsr` — the float-CSR baseline standing in for GraphBLAST;
//! * `Backend::Auto` — the framework picks format and tile size per matrix.
//!
//! On top of the single-query algorithms, the **batched multi-source
//! family** serves many concurrent queries with one traversal each
//! iteration: [`bfs_multi`] (k-source BFS over an `n × k` frontier matrix),
//! [`sssp_multi`] (k-source shortest paths — landmark distance sketches),
//! [`ppr_multi`] (k-seed personalized PageRank, the serving layer's
//! flagship query — fixed-iteration execution so coalesced lanes stay
//! bit-identical to standalone runs), and Brandes-style
//! [`betweenness_centrality`] whose forward and backward phases are both
//! batched `mxm` sweeps.
//!
//! Each module also documents which BMV/BMM scheme and semiring the paper
//! assigns to the algorithm (Table IV and §V).  The [`mod@reference`]
//! module holds simple graph-traversal implementations (queue BFS,
//! Bellman-Ford, union-find, wedge-checking TC, dense power iteration,
//! two-phase Brandes) used by the test suite to validate both backends.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod dynamic;
pub mod extras;
pub mod pagerank;
pub mod ppr;
pub mod reference;
pub mod sssp;
pub mod tc;
mod validate;

pub use bc::{betweenness_centrality, betweenness_centrality_dir, BcResult};
pub use bfs::{
    bfs, bfs_dir, bfs_multi, bfs_multi_dir, try_bfs_dir, try_bfs_multi_dir, BfsResult,
    MultiBfsResult,
};
pub use cc::{connected_components, CcResult};
pub use dynamic::DynamicCc;
pub use extras::{diameter_estimate, eccentricity, maximal_independent_set, MisResult};
pub use pagerank::{pagerank, PageRankConfig, PageRankResult};
pub use ppr::{
    ppr, ppr_multi, ppr_multi_dir, try_ppr_multi_dir, MultiPprResult, PprConfig, PprResult,
};
pub use sssp::{
    sssp, sssp_dir, sssp_multi, sssp_multi_dir, sssp_with, try_sssp_multi_dir, try_sssp_with,
    MultiSsspResult, SsspResult,
};
pub use tc::triangle_count;

// Re-exported so algorithm callers can name a traversal direction, a fusion
// mode, or handle a typed error without importing bitgblas-core directly.
pub use bitgblas_core::grb::{Direction, Fusion, GrbError};
