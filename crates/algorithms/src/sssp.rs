//! Single-Source Shortest Path over the tropical min-plus semiring (§V).
//!
//! The paper implements delta-stepping SSSP as in GraphBLAST, with
//! `bmv_bin_full_full()` carrying the distance vector in full precision and
//! treating the adjacency matrix's zeros as `+∞` (unreachable).  On an
//! unweighted (binary) graph delta-stepping degenerates to synchronous
//! Bellman-Ford rounds — every edge has weight 1 and every bucket holds one
//! frontier — so the implementation here iterates min-plus `vxm` relaxations
//! until the distance vector reaches a fixpoint, which yields exactly the
//! same distances.
//!
//! Like BFS, the relaxation is direction-optimizing: while few vertices
//! have finite distances, [`Direction::Auto`] walks only their out-edges
//! (push); once the reached set grows dense it switches to the pull sweep.
//! Because min is exact under reordering, push and pull produce bit-equal
//! distances.  The accumulate step (`dist = min(dist, relaxed)`) runs in
//! place and the relaxed vector is recycled, so the steady-state loop is
//! allocation-free.

use bitgblas_core::grb::{Direction, Matrix, Op, Vector};
use bitgblas_core::Semiring;

/// The result of an SSSP run.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// `distances[v]` = length of the shortest path from the source
    /// (`f32::INFINITY` when unreachable).
    pub distances: Vec<f32>,
    /// Number of relaxation rounds executed.
    pub iterations: usize,
}

/// Run SSSP from `source` over unit edge weights, with per-iteration
/// automatic direction selection.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn sssp(a: &Matrix, source: usize) -> SsspResult {
    sssp_dir(a, source, Direction::Auto)
}

/// As [`sssp`], forcing the given traversal direction for every relaxation
/// round.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn sssp_dir(a: &Matrix, source: usize, direction: Direction) -> SsspResult {
    let n = a.nrows();
    assert!(source < n, "source vertex {source} out of range (n = {n})");

    let ctx = a.context();
    let semiring = Semiring::MinPlus(1.0);
    let mut dist = Vector::identity(n, semiring);
    dist.set(source, 0.0);

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // relaxed[v] = min_u (dist[u] + 1) over edges u -> v.
        let relaxed = Op::vxm(&dist, a)
            .semiring(semiring)
            .direction(direction)
            .run(ctx);
        // dist = min(dist, relaxed) in place: the accumulate step of the
        // tropical semiring (keeps the source at 0 and any already-shorter
        // paths); `changed` doubles as the fixpoint test.
        let mut changed = false;
        for (d, &r) in dist.as_mut_slice().iter_mut().zip(relaxed.as_slice()) {
            if r < *d {
                *d = r;
                changed = true;
            }
        }
        ctx.recycle(relaxed);
        if !changed || iterations >= n {
            break;
        }
    }

    SsspResult {
        distances: dist.into_vec(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn assert_distances_match(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let both_inf = g.is_infinite() && w.is_infinite();
            assert!(both_inf || (g - w).abs() < 1e-5, "vertex {i}: {g} vs {w}");
        }
    }

    #[test]
    fn sssp_matches_reference_on_random_graphs() {
        for seed in [4u64, 5] {
            let adj = generators::erdos_renyi(100, 0.04, true, seed);
            let expected = reference::sssp_distances(&adj, 0);
            for backend in [
                Backend::Bit(TileSize::S4),
                Backend::Bit(TileSize::S8),
                Backend::Bit(TileSize::S32),
                Backend::FloatCsr,
                Backend::Auto,
            ] {
                let m = Matrix::from_csr(&adj, backend);
                let got = sssp(&m, 0);
                assert_distances_match(&got.distances, &expected);
            }
        }
    }

    #[test]
    fn sssp_equals_bfs_levels_on_unit_weights() {
        let adj = generators::grid2d(8, 8);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S16));
        let got = sssp(&m, 10);
        let levels = reference::bfs_levels(&adj, 10);
        for (d, l) in got.distances.iter().zip(levels) {
            if l < 0 {
                assert!(d.is_infinite());
            } else {
                assert_eq!(*d, l as f32);
            }
        }
    }

    #[test]
    fn sssp_on_directed_chain() {
        let mut coo = Coo::new(5, 5);
        for i in 0..4usize {
            coo.push_edge(i, i + 1).unwrap();
        }
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let got = sssp(&m, 0);
            assert_eq!(got.distances, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
            // Distances from the tail: everything upstream unreachable.
            let tail = sssp(&m, 4);
            assert!(tail.distances[..4].iter().all(|d| d.is_infinite()));
            assert_eq!(tail.distances[4], 0.0);
        }
    }

    #[test]
    fn sssp_iteration_count_is_bounded_by_eccentricity() {
        let adj = generators::path(12);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let got = sssp(&m, 0);
        // 11 productive rounds + 1 fixpoint-detection round.
        assert_eq!(got.iterations, 12);
        assert_eq!(got.distances[11], 11.0);
    }

    #[test]
    fn forced_directions_agree_exactly() {
        // min is exact under reordering, so push ≡ pull bit-for-bit.
        let adj = generators::erdos_renyi(130, 0.03, true, 6);
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let pull = sssp_dir(&m, 2, Direction::Pull);
            let push = sssp_dir(&m, 2, Direction::Push);
            let auto = sssp_dir(&m, 2, Direction::Auto);
            assert_eq!(push.distances, pull.distances, "{backend:?}");
            assert_eq!(auto.distances, pull.distances, "{backend:?}");
            assert_eq!(push.iterations, pull.iterations);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sssp_rejects_bad_source() {
        let adj = generators::path(4);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let _ = sssp(&m, 4);
    }
}
