//! Single-Source Shortest Path over the tropical min-plus semiring (§V).
//!
//! The paper implements delta-stepping SSSP as in GraphBLAST, with
//! `bmv_bin_full_full()` carrying the distance vector in full precision and
//! treating the adjacency matrix's zeros as `+∞` (unreachable).  On an
//! unweighted (binary) graph delta-stepping degenerates to synchronous
//! Bellman-Ford rounds — every edge has weight 1 and every bucket holds one
//! frontier — so the implementation here iterates min-plus `vxm` relaxations
//! until the distance vector reaches a fixpoint, which yields exactly the
//! same distances.
//!
//! Since PR 3 each relaxation round is **one fused expression** with the
//! GraphBLAS accumulator as a first-class node:
//!
//! ```text
//! dist' = Op::vxm(&dist, a)
//!     .semiring(Semiring::MinPlus(1.0))
//!     .accum(BinaryOp::Min, &dist)      // dist = min(dist, relaxed), fused
//!     .run(ctx)
//! ```
//!
//! `min` is the min-plus monoid, so the accumulation folds into the kernel
//! sweep itself: the pull sweep stores `min(dist[v], relaxed[v])` directly,
//! and the push scatter seeds the output with `dist` and ⊕-folds the
//! frontier's contributions into it — no intermediate "relaxed" vector
//! exists in either direction.
//!
//! Like BFS, the relaxation is direction-optimizing: while few vertices
//! have finite distances, [`Direction::Auto`] walks only their out-edges
//! (push); once the reached set grows dense it switches to the pull sweep.
//! Because min is exact under reordering, push and pull produce bit-equal
//! distances.  The inner loop is allocation-free in steady state — the
//! distance vectors cycle through the matrix context's workspace pool.

use bitgblas_core::grb::{Direction, Fusion, GrbError, Matrix, MultiVec, Op, Vector};
use bitgblas_core::{BinaryOp, Semiring};

use crate::validate::{check_batch_nonempty, check_sources};

/// The result of an SSSP run.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspResult {
    /// `distances[v]` = length of the shortest path from the source
    /// (`f32::INFINITY` when unreachable).
    pub distances: Vec<f32>,
    /// Number of relaxation rounds executed.
    pub iterations: usize,
}

/// Run SSSP from `source` over unit edge weights, with per-iteration
/// automatic direction selection.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn sssp(a: &Matrix, source: usize) -> SsspResult {
    sssp_dir(a, source, Direction::Auto)
}

/// As [`sssp`], forcing the given traversal direction for every relaxation
/// round.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn sssp_dir(a: &Matrix, source: usize, direction: Direction) -> SsspResult {
    sssp_with(a, source, direction, Fusion::Fused)
}

/// As [`sssp_dir`], additionally controlling whether the per-round
/// expression may fuse ([`Fusion::NodeAtATime`] is the benchmark/parity
/// baseline).
///
/// # Panics
/// Panics if `source` is out of range ([`try_sssp_with`] is the fallible
/// form).
pub fn sssp_with(a: &Matrix, source: usize, direction: Direction, fusion: Fusion) -> SsspResult {
    try_sssp_with(a, source, direction, fusion).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`sssp_with`], reporting an out-of-range source as a typed
/// [`GrbError`] instead of panicking.
pub fn try_sssp_with(
    a: &Matrix,
    source: usize,
    direction: Direction,
    fusion: Fusion,
) -> Result<SsspResult, GrbError> {
    let n = a.nrows();
    check_sources(n, std::slice::from_ref(&source), "source vertex")?;

    let ctx = a.context();
    let semiring = Semiring::MinPlus(1.0);
    let mut dist = Vector::identity(n, semiring);
    dist.set(source, 0.0);

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // dist' = min(dist, min_u (dist[u] + 1)) over edges u -> v: the
        // relaxation and the accumulate step of the tropical semiring in a
        // single fused sweep (keeps the source at 0 and any
        // already-shorter paths).
        let next = Op::vxm(&dist, a)
            .semiring(semiring)
            .direction(direction)
            .accum(BinaryOp::Min, &dist)
            .fusion(fusion)
            .try_run(ctx)?;
        // Fixpoint test: min-accumulation only ever lowers a distance.
        let changed = next
            .as_slice()
            .iter()
            .zip(dist.as_slice())
            .any(|(n, d)| n < d);
        ctx.recycle(std::mem::replace(&mut dist, next));
        if !changed || iterations >= n {
            break;
        }
    }

    Ok(SsspResult {
        distances: dist.into_vec(),
        iterations,
    })
}

/// The result of a batched multi-source SSSP run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSsspResult {
    /// Flat node-major `n × k` distance matrix: `distances[v*k + l]` =
    /// shortest-path length from source `l` to vertex `v`
    /// (`f32::INFINITY` when unreachable).
    pub distances: Vec<f32>,
    /// Number of traversals in the batch (`k`).
    pub n_sources: usize,
    /// Number of batched relaxation rounds executed.
    pub iterations: usize,
}

impl MultiSsspResult {
    /// The distance from source `l` to vertex `v`.
    pub fn distance(&self, v: usize, l: usize) -> f32 {
        self.distances[v * self.n_sources + l]
    }
}

/// Run `sources.len()` simultaneous SSSP traversals (unit edge weights) as
/// one batched relaxation loop: each round is a single min-plus matrix ×
/// multivector sweep with the `min` accumulator folded over the whole
/// `n × k` distance matrix — the landmark-distance-sketch workload (see
/// `examples/landmark_sketch.rs`).  Uses [`Direction::Auto`] per round.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range.
pub fn sssp_multi(a: &Matrix, sources: &[usize]) -> MultiSsspResult {
    sssp_multi_dir(a, sources, Direction::Auto)
}

/// As [`sssp_multi`], forcing the given traversal direction for every
/// relaxation round.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range
/// ([`try_sssp_multi_dir`] is the fallible form).
pub fn sssp_multi_dir(a: &Matrix, sources: &[usize], direction: Direction) -> MultiSsspResult {
    try_sssp_multi_dir(a, sources, direction).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`sssp_multi_dir`], reporting an empty batch or an out-of-range
/// source as a typed [`GrbError`] instead of panicking.
pub fn try_sssp_multi_dir(
    a: &Matrix,
    sources: &[usize],
    direction: Direction,
) -> Result<MultiSsspResult, GrbError> {
    let n = a.nrows();
    let k = sources.len();
    check_batch_nonempty(k, "sssp_multi needs at least one source")?;
    check_sources(n, sources, "source vertex")?;
    let ctx = a.context();
    let semiring = Semiring::MinPlus(1.0);

    let mut dist = MultiVec::identity(n, k, semiring);
    for (l, &s) in sources.iter().enumerate() {
        dist.set(s, l, 0.0);
    }

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        // One relaxation round for all k sources: dist' = min(dist, Aᵀ ⊕.⊗
        // dist) over min-plus, the accumulator folded across every lane.
        let next = Op::mxm(a, &dist)
            .transpose()
            .semiring(semiring)
            .direction(direction)
            .accum(BinaryOp::Min, &dist)
            .try_run(ctx)?;
        let changed = next
            .as_slice()
            .iter()
            .zip(dist.as_slice())
            .any(|(n, d)| n < d);
        ctx.recycle_multi(std::mem::replace(&mut dist, next));
        if !changed || iterations >= n {
            break;
        }
    }

    Ok(MultiSsspResult {
        distances: dist.into_vec(),
        n_sources: k,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn assert_distances_match(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let both_inf = g.is_infinite() && w.is_infinite();
            assert!(both_inf || (g - w).abs() < 1e-5, "vertex {i}: {g} vs {w}");
        }
    }

    #[test]
    fn sssp_matches_reference_on_random_graphs() {
        for seed in [4u64, 5] {
            let adj = generators::erdos_renyi(100, 0.04, true, seed);
            let expected = reference::sssp_distances(&adj, 0);
            for backend in [
                Backend::Bit(TileSize::S4),
                Backend::Bit(TileSize::S8),
                Backend::Bit(TileSize::S32),
                Backend::FloatCsr,
                Backend::Auto,
            ] {
                let m = Matrix::from_csr(&adj, backend);
                let got = sssp(&m, 0);
                assert_distances_match(&got.distances, &expected);
            }
        }
    }

    #[test]
    fn sssp_equals_bfs_levels_on_unit_weights() {
        let adj = generators::grid2d(8, 8);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S16));
        let got = sssp(&m, 10);
        let levels = reference::bfs_levels(&adj, 10);
        for (d, l) in got.distances.iter().zip(levels) {
            if l < 0 {
                assert!(d.is_infinite());
            } else {
                assert_eq!(*d, l as f32);
            }
        }
    }

    #[test]
    fn sssp_on_directed_chain() {
        let mut coo = Coo::new(5, 5);
        for i in 0..4usize {
            coo.push_edge(i, i + 1).unwrap();
        }
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let got = sssp(&m, 0);
            assert_eq!(got.distances, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
            // Distances from the tail: everything upstream unreachable.
            let tail = sssp(&m, 4);
            assert!(tail.distances[..4].iter().all(|d| d.is_infinite()));
            assert_eq!(tail.distances[4], 0.0);
        }
    }

    #[test]
    fn sssp_iteration_count_is_bounded_by_eccentricity() {
        let adj = generators::path(12);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let got = sssp(&m, 0);
        // 11 productive rounds + 1 fixpoint-detection round.
        assert_eq!(got.iterations, 12);
        assert_eq!(got.distances[11], 11.0);
    }

    #[test]
    fn forced_directions_agree_exactly() {
        // min is exact under reordering, so push ≡ pull bit-for-bit.
        let adj = generators::erdos_renyi(130, 0.03, true, 6);
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let pull = sssp_dir(&m, 2, Direction::Pull);
            let push = sssp_dir(&m, 2, Direction::Push);
            let auto = sssp_dir(&m, 2, Direction::Auto);
            assert_eq!(push.distances, pull.distances, "{backend:?}");
            assert_eq!(auto.distances, pull.distances, "{backend:?}");
            assert_eq!(push.iterations, pull.iterations);
        }
    }

    #[test]
    fn fused_accumulation_equals_node_at_a_time() {
        let adj = generators::erdos_renyi(110, 0.035, true, 9);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let fused = sssp_with(&m, 3, dir, Fusion::Fused);
                let unfused = sssp_with(&m, 3, dir, Fusion::NodeAtATime);
                assert_eq!(fused.distances, unfused.distances, "{backend:?} {dir:?}");
                assert_eq!(fused.iterations, unfused.iterations, "{backend:?} {dir:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sssp_rejects_bad_source() {
        let adj = generators::path(4);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let _ = sssp(&m, 4);
    }

    // -- batched multi-source SSSP ------------------------------------------

    /// Every lane of a batched run equals the single-source run from that
    /// lane's source, bit-for-bit (min is exact under reordering).
    #[test]
    fn sssp_multi_lanes_equal_single_source_runs() {
        let adj = generators::erdos_renyi(100, 0.035, true, 17);
        let sources = [0usize, 42, 99];
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let m = Matrix::from_csr(&adj, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let batched = sssp_multi_dir(&m, &sources, dir);
                for (l, &s) in sources.iter().enumerate() {
                    let single = sssp_dir(&m, s, dir);
                    for v in 0..100 {
                        assert_eq!(
                            batched.distance(v, l),
                            single.distances[v],
                            "{backend:?} {dir:?} lane {l} vertex {v}"
                        );
                    }
                }
            }
        }
    }

    /// The batched round count is the maximum of the per-source counts (the
    /// batch runs until the slowest lane reaches its fixpoint).
    #[test]
    fn sssp_multi_runs_to_the_slowest_lane() {
        let adj = generators::path(12);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let batched = sssp_multi(&m, &[0, 10]);
        // Source 0 needs 11 productive rounds; source 10 only 1.
        assert_eq!(batched.iterations, 12);
        assert_eq!(batched.distance(11, 0), 11.0);
        assert_eq!(batched.distance(11, 1), 1.0);
    }
}
