//! Personalized PageRank — the serving layer's flagship batched query.
//!
//! Plain PageRank teleports uniformly; **personalized** PageRank (PPR)
//! teleports back to a single seed vertex, so the stationary distribution
//! measures proximity *to that seed* — the "people you may know" /
//! related-content primitive a graph service answers millions of times with
//! different seeds.  Each seed is an independent query over the *same*
//! adjacency matrix, which makes PPR a natural [`MultiVec`] workload: `k`
//! personalization lanes advance through one batched sweep per iteration
//! that loads each adjacency tile once (the same traffic-amortization
//! argument the paper makes for bit-packing, applied across queries).
//!
//! Like the PageRank module, the per-iteration update rides the `Op::mxm`
//! expression fusion: the out-degree normalisation is the product's input
//! scaling, the damping is an affine stage, and the per-lane teleport (a
//! sparse `n × k` multi-vector holding each lane's seed mass) folds in as an
//! element-wise stage — one fused sweep per iteration:
//!
//! ```text
//! rank' = Op::mxm(&a, &rank)
//!     .transpose()                       // rank'ᵥ = Σ_{u→v} rankᵤ / deg(u)
//!     .scale_input(&inv_out_degree)
//!     .semiring(Semiring::Arithmetic)
//!     .affine(alpha, 0.0)                // damp
//!     .then_ewise(BinaryOp::Plus, &teleport)  // per-lane seed mass
//!     .run(ctx)
//! ```
//!
//! # Fixed iteration count (batch-invariant execution)
//!
//! PPR runs a **fixed** number of power iterations with no early-exit
//! tolerance ([`PprConfig::iterations`]).  This is deliberate: the serving
//! layer coalesces arbitrary arrivals into one batch, and a tolerance-based
//! exit would make each lane's arithmetic depend on *which other lanes* it
//! was batched with (converged lanes would keep iterating until the slowest
//! lane finishes, drifting past their standalone fixpoint).  With a fixed
//! count every lane performs exactly the same floating-point work whatever
//! the batch composition, so a coalesced query is bit-identical to the same
//! query run standalone — the parity guarantee `bitgblas-serve` proptests.
//!
//! Dangling mass (rank sitting on out-degree-0 vertices) returns to each
//! lane's own seed, keeping every lane's mass at exactly 1 and the teleport
//! personalized rather than uniform.

use bitgblas_core::grb::{Direction, Fusion, GrbError, Matrix, MultiVec, Op};
use bitgblas_core::{BinaryOp, Semiring};

use crate::validate::{check_batch_nonempty, check_sources};

/// Personalized PageRank parameters (α = 0.85, 10 power iterations).
///
/// There is no early-exit tolerance — see the [module docs](self) for why a
/// fixed iteration count is what makes batched execution bit-identical to
/// standalone execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprConfig {
    /// Damping factor α (teleport probability is `1 - α`).
    pub alpha: f32,
    /// Exact number of power iterations executed.
    pub iterations: usize,
    /// Whether the per-iteration expression may fuse (default: fused).
    /// [`Fusion::NodeAtATime`] is the benchmark/parity baseline.
    pub fusion: Fusion,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            alpha: 0.85,
            iterations: 10,
            fusion: Fusion::Fused,
        }
    }
}

/// The result of a single-seed PPR run.
#[derive(Debug, Clone, PartialEq)]
pub struct PprResult {
    /// `scores[v]` = stationary probability of vertex `v` under the
    /// seed-teleporting random walk (sums to ≈ 1).
    pub scores: Vec<f32>,
    /// Number of power iterations executed (always
    /// [`PprConfig::iterations`]).
    pub iterations: usize,
}

/// The result of a batched multi-seed PPR run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPprResult {
    /// Flat node-major `n × k` score matrix: `scores[v*k + l]` = the PPR
    /// score of vertex `v` personalized to seed `l`.  Column `l` equals
    /// [`ppr`] from `seeds[l]` bit-for-bit (the parity suite proves it).
    pub scores: Vec<f32>,
    /// Number of personalization lanes in the batch (`k`).
    pub n_seeds: usize,
    /// Number of power iterations executed.
    pub iterations: usize,
}

impl MultiPprResult {
    /// The score of vertex `v` personalized to seed lane `l`.
    pub fn score(&self, v: usize, l: usize) -> f32 {
        self.scores[v * self.n_seeds + l]
    }

    /// Copy lane `l` out as a plain score vector.
    pub fn column(&self, l: usize) -> Vec<f32> {
        assert!(
            l < self.n_seeds,
            "lane {l} out of range (k = {})",
            self.n_seeds
        );
        (0..self.scores.len() / self.n_seeds)
            .map(|v| self.score(v, l))
            .collect()
    }
}

/// Run personalized PageRank from a single `seed` vertex.
///
/// Executes through the batched engine with `k = 1`, so a standalone query
/// and a coalesced one take the same code path — the serving layer's parity
/// baseline.
///
/// # Panics
/// Panics if `seed` is out of range.
pub fn ppr(a: &Matrix, seed: usize, config: &PprConfig) -> PprResult {
    let multi = ppr_multi(a, &[seed], config);
    PprResult {
        scores: multi.column(0),
        iterations: multi.iterations,
    }
}

/// Run `seeds.len()` personalized PageRank queries as **one** batched power
/// iteration over an `n × k` rank matrix: every iteration advances all `k`
/// personalization lanes with a single fused arithmetic-semiring sweep.
/// Repeated seeds are fine (each lane is independent).
///
/// # Panics
/// Panics if `seeds` is empty or any seed is out of range.
pub fn ppr_multi(a: &Matrix, seeds: &[usize], config: &PprConfig) -> MultiPprResult {
    ppr_multi_dir(a, seeds, config, Direction::Auto)
}

/// As [`ppr_multi`], forcing the given traversal direction for every
/// iteration (the rank matrix is dense, so [`Direction::Auto`] resolves to
/// pull; the knob exists for ablations).
///
/// # Panics
/// Panics if `seeds` is empty or any seed is out of range
/// ([`try_ppr_multi_dir`] is the fallible form).
pub fn ppr_multi_dir(
    a: &Matrix,
    seeds: &[usize],
    config: &PprConfig,
    direction: Direction,
) -> MultiPprResult {
    try_ppr_multi_dir(a, seeds, config, direction).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`ppr_multi_dir`], reporting an empty batch or an out-of-range seed
/// as a typed [`GrbError`] instead of panicking.
pub fn try_ppr_multi_dir(
    a: &Matrix,
    seeds: &[usize],
    config: &PprConfig,
    direction: Direction,
) -> Result<MultiPprResult, GrbError> {
    let n = a.nrows();
    let k = seeds.len();
    check_batch_nonempty(k, "ppr_multi needs at least one seed")?;
    check_sources(n, seeds, "seed vertex")?;
    if n == 0 {
        return Ok(MultiPprResult {
            scores: Vec::new(),
            n_seeds: k,
            iterations: 0,
        });
    }
    let ctx = a.context();
    let out_deg = a.out_degrees();
    let inv_deg = bitgblas_core::Vector::from_vec(
        out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect(),
    );
    let dangling_nodes: Vec<usize> = (0..n).filter(|&u| out_deg[u] == 0).collect();

    // All mass starts on the seed; the walk never loses it (dangling mass
    // returns to the seed), so each lane's scores sum to 1 throughout.
    let mut rank = MultiVec::zeros(n, k);
    for (l, &s) in seeds.iter().enumerate() {
        rank.set(s, l, 1.0);
    }
    // The per-lane teleport operand: lane l holds its whole teleport mass at
    // seeds[l].  Seed entries are rewritten each iteration (the dangling
    // share changes); everything else stays zero.
    let mut teleport = MultiVec::zeros(n, k);

    for _ in 0..config.iterations {
        // Per-lane dangling mass: rank stranded on out-degree-0 vertices
        // flows back to that lane's seed.
        let flat = rank.as_slice();
        for (l, &s) in seeds.iter().enumerate() {
            let dangling: f32 = dangling_nodes.iter().map(|&u| flat[u * k + l]).sum();
            teleport.set(s, l, (1.0 - config.alpha) + config.alpha * dangling);
        }

        // One fused sweep for all k lanes: normalise by out-degree at the
        // read, pull along the edges over the arithmetic semiring, damp, and
        // add each lane's teleport mass at the store.
        let next = Op::mxm(a, &rank)
            .transpose()
            .scale_input(&inv_deg)
            .semiring(Semiring::Arithmetic)
            .direction(direction)
            .affine(config.alpha, 0.0)
            .then_ewise(BinaryOp::Plus, &teleport)
            .fusion(config.fusion)
            .try_run(ctx)?;
        ctx.recycle_multi(std::mem::replace(&mut rank, next));
    }

    Ok(MultiPprResult {
        scores: rank.into_vec(),
        n_seeds: k,
        iterations: config.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, Matrix, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    #[test]
    fn matches_dense_reference_on_random_graphs() {
        let adj = generators::erdos_renyi(90, 0.05, true, 12);
        let config = PprConfig {
            iterations: 25,
            ..Default::default()
        };
        for backend in [
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::FloatCsr,
            Backend::Auto,
        ] {
            let m = Matrix::from_csr(&adj, backend);
            for seed in [0usize, 41, 89] {
                let got = ppr(&m, seed, &config);
                let expected = reference::ppr(&adj, seed, 0.85, 25);
                for (v, (g, e)) in got.scores.iter().zip(&expected).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-4,
                        "{backend:?} seed {seed} vertex {v}: {g} vs {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn each_lane_sums_to_one() {
        let adj = generators::rmat(7, 8, 0.57, 0.19, 0.19, 31);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let seeds = [3usize, 77, 3, 120];
        let got = ppr_multi(&m, &seeds, &PprConfig::default());
        for l in 0..seeds.len() {
            let total: f32 = got.column(l).iter().sum();
            assert!((total - 1.0).abs() < 1e-3, "lane {l}: total {total}");
        }
    }

    /// Every lane of a batched run is bit-identical to the standalone run
    /// from that lane's seed — the serving layer's coalescing guarantee.
    #[test]
    fn batched_lanes_equal_standalone_runs_bitwise() {
        let adj = generators::erdos_renyi(100, 0.04, true, 7);
        let seeds = [5usize, 0, 99, 5, 42];
        let config = PprConfig::default();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let m = Matrix::from_csr(&adj, backend);
            let batched = ppr_multi(&m, &seeds, &config);
            for (l, &s) in seeds.iter().enumerate() {
                let single = ppr(&m, s, &config);
                for v in 0..adj.nrows() {
                    assert_eq!(
                        batched.score(v, l).to_bits(),
                        single.scores[v].to_bits(),
                        "{backend:?} lane {l} vertex {v}"
                    );
                }
            }
        }
    }

    /// Batching more seeds than one lane word (k > 64) still matches the
    /// standalone runs — the boundary the serving layer's 64-lane cap sits
    /// on.
    #[test]
    fn handles_more_than_64_lanes() {
        let adj = generators::grid2d(8, 8);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let seeds: Vec<usize> = (0..70).map(|l| (l * 11) % 64).collect();
        let config = PprConfig {
            iterations: 5,
            ..Default::default()
        };
        let batched = ppr_multi(&m, &seeds, &config);
        for (l, &s) in seeds.iter().enumerate().step_by(7) {
            let single = ppr(&m, s, &config);
            for v in 0..64 {
                assert_eq!(batched.score(v, l), single.scores[v], "lane {l} vertex {v}");
            }
        }
    }

    #[test]
    fn fused_and_node_at_a_time_agree() {
        let adj = generators::erdos_renyi(80, 0.05, true, 19);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S16));
        let fused = ppr_multi(&m, &[2, 40], &PprConfig::default());
        let unfused = ppr_multi(
            &m,
            &[2, 40],
            &PprConfig {
                fusion: Fusion::NodeAtATime,
                ..Default::default()
            },
        );
        for (i, (a, b)) in fused.scores.iter().zip(&unfused.scores).enumerate() {
            assert!((a - b).abs() < 1e-6, "entry {i}: {a} vs {b}");
        }
    }

    #[test]
    fn personalization_concentrates_on_the_seed() {
        // Undirected star centred on 0, seed = leaf 3.  The hub relays every
        // walk so it scores highest overall (≈ α/(1+α)), but the teleport
        // singles the seed out far above every other leaf, which all tie.
        let mut coo = Coo::new(9, 9);
        for i in 1..9usize {
            coo.push_undirected_edge(0, i).unwrap();
        }
        let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S8));
        let got = ppr(
            &m,
            3,
            &PprConfig {
                iterations: 30,
                ..Default::default()
            },
        );
        assert!(got.scores[0] > got.scores[3], "hub relays every walk");
        for v in 1..9 {
            if v != 3 {
                assert!(
                    got.scores[3] > 2.0 * got.scores[v],
                    "seed far above leaf {v}: {} vs {}",
                    got.scores[3],
                    got.scores[v]
                );
            }
        }
    }

    #[test]
    fn dangling_mass_returns_to_the_seed() {
        // 0 -> 1 -> 2 and 2 has no out-edges: mass reaching 2 teleports back
        // to the seed, so the chain keeps a stationary distribution summing
        // to 1 with the seed strictly positive.
        let mut coo = Coo::new(3, 3);
        coo.push_edge(0, 1).unwrap();
        coo.push_edge(1, 2).unwrap();
        let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::FloatCsr);
        let got = ppr(
            &m,
            0,
            &PprConfig {
                iterations: 40,
                ..Default::default()
            },
        );
        let total: f32 = got.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "total {total}");
        assert!(got.scores[0] > 0.2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_seed() {
        let m = Matrix::from_csr(&generators::path(4), Backend::FloatCsr);
        let _ = ppr(&m, 4, &PprConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_batch() {
        let m = Matrix::from_csr(&generators::path(4), Backend::FloatCsr);
        let _ = ppr_multi(&m, &[], &PprConfig::default());
    }
}
