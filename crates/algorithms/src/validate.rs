//! Shared input validation for the algorithm entry points (PR 7).
//!
//! Every algorithm validates its sources/seeds **before** touching the
//! engine, reporting violations as typed [`GrbError`]s through the `try_*`
//! entry points; the panicking entry points wrap them and panic with the
//! error's `Display` text (which preserves the historical assert wording).

use bitgblas_core::grb::GrbError;

/// Every source/seed must name a vertex of the `n`-vertex graph.  `what` is
/// the historical wording (`"source vertex"` / `"seed vertex"`).
pub(crate) fn check_sources(
    n: usize,
    sources: &[usize],
    what: &'static str,
) -> Result<(), GrbError> {
    for &s in sources {
        if s >= n {
            return Err(GrbError::SourceOutOfRange { what, source: s, n });
        }
    }
    Ok(())
}

/// A batched entry point needs at least one lane; `what` is the historical
/// assert message (e.g. `"bfs_multi needs at least one source"`).
pub(crate) fn check_batch_nonempty(k: usize, what: &'static str) -> Result<(), GrbError> {
    if k == 0 {
        return Err(GrbError::EmptyBatch { what });
    }
    Ok(())
}
