//! Additional semiring algorithms listed in Table IV beyond the five the
//! paper evaluates: Maximal Independent Set (Luby's algorithm over the
//! max-times semiring) and source-eccentricity / diameter estimation over the
//! Boolean semiring.  Both are written against the same GrB API and run on
//! either backend, demonstrating that the B2SR kernels cover the full
//! semiring table rather than only the benchmarked algorithms.

use bitgblas_core::grb::{Context, Mask, Matrix, Op, Vector};
use bitgblas_core::{BinaryOp, Semiring};

/// The result of a Maximal Independent Set computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MisResult {
    /// `true` for vertices in the independent set.
    pub in_set: Vec<bool>,
    /// Number of vertices selected.
    pub set_size: usize,
    /// Number of Luby rounds executed.
    pub iterations: usize,
}

/// Luby's Maximal Independent Set over the max-times semiring (Table IV).
///
/// Each round every still-active vertex draws a deterministic pseudo-random
/// priority; a vertex joins the set when its priority is a strict local
/// maximum among its active neighbours (computed with a `MaxTimes` `mxv`),
/// after which it and its neighbours are deactivated.
pub fn maximal_independent_set(a: &Matrix, seed: u64) -> MisResult {
    let ctx = Context::default();
    let n = a.nrows();
    let mut in_set = vec![false; n];
    let mut active = vec![true; n];
    let mut iterations = 0usize;

    // Deterministic per-vertex hash priority in (0, 1], re-salted per round.
    let priority = |v: usize, round: u64| -> f32 {
        let mut z = seed
            ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ round.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let frac = ((z >> 11) as f64) / ((1u64 << 53) as f64);
        (frac as f32).max(f32::MIN_POSITIVE)
    };

    while active.iter().any(|&x| x) && iterations < n + 1 {
        iterations += 1;
        // Priorities of active vertices (inactive vertices contribute the
        // max-times identity so they never dominate a neighbour).
        let prio = Vector::from_vec(
            (0..n)
                .map(|v| {
                    if active[v] {
                        priority(v, iterations as u64)
                    } else {
                        f32::NEG_INFINITY
                    }
                })
                .collect(),
        );

        // Maximum neighbour priority via the max-times semiring (both edge
        // directions so directed inputs behave as undirected graphs); the
        // backward sweep max-folds onto the forward result through the
        // fused accumulator instead of a separate ewise pass.
        let fwd = Op::mxv(a, &prio)
            .semiring(Semiring::MaxTimes(1.0))
            .run(&ctx);
        let neighbour_max = Op::mxv(a, &prio)
            .semiring(Semiring::MaxTimes(1.0))
            .transpose()
            .accum(BinaryOp::Max, &fwd)
            .run(&ctx);

        // A vertex wins the round when its priority beats every active
        // neighbour's (isolated vertices win immediately).
        let mut winners = Vec::new();
        for (v, &is_active) in active.iter().enumerate() {
            if is_active && prio.get(v) > neighbour_max.get(v) {
                winners.push(v);
            }
        }
        if winners.is_empty() {
            // Extremely unlikely tie situation: fall back to picking the
            // lowest-id active vertex to guarantee progress.
            if let Some(v) = (0..n).find(|&v| active[v]) {
                winners.push(v);
            }
        }

        // Add winners to the set and deactivate them and their neighbours
        // (one Boolean mxv from the winner indicator).
        let winner_vec = Vector::indicator(n, &winners);
        let mask = Mask::new(active.clone());
        let covered_fwd = Op::mxv(a, &winner_vec)
            .semiring(Semiring::Boolean)
            .mask(&mask)
            .run(&ctx);
        let covered_bwd = Op::mxv(a, &winner_vec)
            .semiring(Semiring::Boolean)
            .mask(&mask)
            .transpose()
            .run(&ctx);
        for &v in &winners {
            in_set[v] = true;
            active[v] = false;
        }
        for (v, slot) in active.iter_mut().enumerate() {
            if covered_fwd.get(v) != 0.0 || covered_bwd.get(v) != 0.0 {
                *slot = false;
            }
        }
    }

    let set_size = in_set.iter().filter(|&&x| x).count();
    MisResult {
        in_set,
        set_size,
        iterations,
    }
}

/// Eccentricity of `source`: the maximum finite BFS level, or `None` when the
/// graph is empty from that source.
pub fn eccentricity(a: &Matrix, source: usize) -> Option<i64> {
    let levels = crate::bfs::bfs(a, source).levels;
    levels.iter().copied().filter(|&l| l >= 0).max()
}

/// Estimate the graph diameter by taking the maximum eccentricity over
/// `n_samples` deterministic source vertices (exact when `n_samples >= n`).
/// This is the "diameter" entry of Table IV's Boolean-semiring algorithms.
pub fn diameter_estimate(a: &Matrix, n_samples: usize) -> i64 {
    let n = a.nrows();
    if n == 0 {
        return 0;
    }
    let samples = n_samples.clamp(1, n);
    let stride = (n / samples).max(1);
    (0..n)
        .step_by(stride)
        .take(samples)
        .filter_map(|s| eccentricity(a, s))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;

    fn assert_valid_mis(adj: &bitgblas_sparse::Csr, result: &MisResult) {
        // Independence: no two selected vertices are adjacent.
        for (r, c, _) in adj.iter() {
            if r != c {
                assert!(
                    !(result.in_set[r] && result.in_set[c]),
                    "vertices {r} and {c} are adjacent and both selected"
                );
            }
        }
        // Maximality: every unselected vertex has a selected neighbour.
        for v in 0..adj.nrows() {
            if !result.in_set[v] {
                let has_selected_neighbour = adj.row(v).0.iter().any(|&u| result.in_set[u])
                    || adj.iter().any(|(r, c, _)| c == v && result.in_set[r]);
                assert!(
                    has_selected_neighbour,
                    "vertex {v} could be added to the set"
                );
            }
        }
    }

    #[test]
    fn mis_is_independent_and_maximal_on_random_graphs() {
        for seed in [1u64, 2] {
            let adj = generators::erdos_renyi(90, 0.05, true, seed);
            for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
                let m = Matrix::from_csr(&adj, backend);
                let result = maximal_independent_set(&m, 99);
                assert_valid_mis(&adj, &result);
                assert!(result.set_size > 0);
            }
        }
    }

    #[test]
    fn mis_on_special_graphs() {
        // Complete graph: exactly one vertex can be selected.
        let k = Matrix::from_csr(&generators::complete(12), Backend::Bit(TileSize::S4));
        assert_eq!(maximal_independent_set(&k, 3).set_size, 1);
        // Star: either the hub alone or all the leaves.
        let star_adj = generators::star(10);
        let star = Matrix::from_csr(&star_adj, Backend::FloatCsr);
        let r = maximal_independent_set(&star, 5);
        assert_valid_mis(&star_adj, &r);
        assert!(r.set_size == 1 || r.set_size == 9);
        // Edgeless graph: everything is selected.
        let empty = Matrix::from_csr(&bitgblas_sparse::Csr::empty(6, 6), Backend::FloatCsr);
        assert_eq!(maximal_independent_set(&empty, 1).set_size, 6);
    }

    #[test]
    fn mis_backends_produce_valid_sets_of_similar_size() {
        let adj = generators::grid2d(12, 12);
        let bit = maximal_independent_set(&Matrix::from_csr(&adj, Backend::Bit(TileSize::S16)), 7);
        let float = maximal_independent_set(&Matrix::from_csr(&adj, Backend::FloatCsr), 7);
        assert_valid_mis(&adj, &bit);
        assert_valid_mis(&adj, &float);
        assert_eq!(
            bit.in_set, float.in_set,
            "same seed and priorities give the same set"
        );
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        let path = Matrix::from_csr(&generators::path(20), Backend::Bit(TileSize::S8));
        assert_eq!(diameter_estimate(&path, 20), 19);
        let cycle = Matrix::from_csr(&generators::cycle(20), Backend::FloatCsr);
        assert_eq!(diameter_estimate(&cycle, 20), 10);
        assert_eq!(eccentricity(&path, 0), Some(19));
        assert_eq!(eccentricity(&path, 10), Some(10));
    }

    #[test]
    fn diameter_estimate_with_few_samples_is_a_lower_bound() {
        let adj = generators::grid2d(10, 10);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let exact = diameter_estimate(&m, 100);
        let sampled = diameter_estimate(&m, 5);
        assert_eq!(exact, 18);
        assert!(sampled <= exact);
        assert!(sampled > 0);
    }
}
