//! Breadth-First Search over the Boolean semiring (§V of the paper).
//!
//! Each iteration performs a one-hop edge traversal of the current frontier
//! with `vxm()` over the Boolean semiring, then filters out already-visited
//! vertices with a complemented mask.  On the bit backend the pull sweep
//! maps to `bmv_bin_bin_bin_masked()`: the frontier and the visited mask are
//! both binarized, and the mask is applied with a bitwise AND-NOT right
//! before the output store (no early exit, to avoid warp divergence — §V).
//!
//! The traversal is **direction-optimizing**: with the default
//! [`Direction::Auto`] each iteration picks the push (sparse-frontier
//! scatter) or pull (dense sweep) kernel from the frontier density, the
//! classic Beamer-style switch.  The inner loop is allocation-free in steady
//! state — the frontier vectors cycle through the matrix context's workspace
//! pool and the visited mask is updated in place (proved by the
//! allocation-counter test in `bitgblas-core`).

use bitgblas_core::grb::{Direction, GrbError, Mask, Matrix, MultiVec, Op, Vector};
use bitgblas_core::Semiring;

use crate::validate::{check_batch_nonempty, check_sources};

/// The result of a BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// `levels[v]` = number of hops from the source, `-1` if unreachable.
    pub levels: Vec<i64>,
    /// Number of `vxm` iterations executed (= eccentricity of the source + 1).
    pub iterations: usize,
    /// Number of vertices reached (including the source).
    pub n_reached: usize,
}

/// Run BFS from `source` on the graph held by `a` (treated as directed; pass
/// a symmetrized matrix for undirected traversal).  Uses
/// [`Direction::Auto`]: each iteration picks push or pull from the frontier
/// density.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs(a: &Matrix, source: usize) -> BfsResult {
    bfs_dir(a, source, Direction::Auto)
}

/// As [`bfs`], forcing the given traversal direction for every iteration
/// (`Push` = sparse scatter, `Pull` = dense sweep, `Auto` = per-iteration
/// Beamer-style switch).
///
/// # Panics
/// Panics if `source` is out of range ([`try_bfs_dir`] is the fallible
/// form).
pub fn bfs_dir(a: &Matrix, source: usize, direction: Direction) -> BfsResult {
    try_bfs_dir(a, source, direction).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`bfs_dir`], reporting an out-of-range source as a typed
/// [`GrbError`] instead of panicking — the entry point a serving stack
/// validates through.
pub fn try_bfs_dir(a: &Matrix, source: usize, direction: Direction) -> Result<BfsResult, GrbError> {
    let n = a.nrows();
    check_sources(n, std::slice::from_ref(&source), "source vertex")?;
    // The matrix's own context supplies the workspace pool, so the frontier
    // buffers recycle across iterations instead of being reallocated.
    let ctx = a.context();

    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut visited = {
        let mut flags = vec![false; n];
        flags[source] = true;
        // ¬visited, updated in place each level — never rebuilt.
        Mask::complemented(flags)
    };

    let mut frontier = Vector::indicator(n, &[source]);
    let mut level = 0i64;
    let mut iterations = 0usize;
    let mut n_reached = 1usize;

    loop {
        iterations += 1;
        level += 1;

        // next = frontier ⊕.⊗ A over the Boolean semiring, masked by ¬visited.
        let next = Op::vxm(&frontier, a)
            .semiring(Semiring::Boolean)
            .mask(&visited)
            .direction(direction)
            .try_run(ctx)?;

        // Record levels and update the visited set.
        let mut any = false;
        for (v, &x) in next.as_slice().iter().enumerate() {
            if x != 0.0 {
                visited.set(v, true);
                levels[v] = level;
                n_reached += 1;
                any = true;
            }
        }
        // The previous frontier's buffer goes back to the pool.
        ctx.recycle(std::mem::replace(&mut frontier, next));
        if !any || iterations >= n {
            break;
        }
    }

    Ok(BfsResult {
        levels,
        iterations,
        n_reached,
    })
}

/// The result of a batched multi-source BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBfsResult {
    /// Flat node-major `n × k` level matrix: `levels[v*k + l]` = number of
    /// hops from source `l` to vertex `v`, `-1` if unreachable.  Column `l`
    /// equals [`bfs`] from `sources[l]` (the parity suite proves it).
    pub levels: Vec<i64>,
    /// Number of traversals in the batch (`k`).
    pub n_sources: usize,
    /// Number of batched `mxm` iterations executed (= the maximum source
    /// eccentricity + 1).
    pub iterations: usize,
    /// Total vertices reached summed over all lanes (sources included).
    pub n_reached: usize,
}

impl MultiBfsResult {
    /// The level of vertex `v` in traversal lane `l`.
    pub fn level(&self, v: usize, l: usize) -> i64 {
        self.levels[v * self.n_sources + l]
    }
}

/// Run `sources.len()` simultaneous BFS traversals as **one** batched
/// traversal over an `n × k` frontier matrix: every iteration advances all
/// still-active traversals with a single masked matrix × multivector sweep
/// that loads each adjacency tile once (on the bit backend, one `OR` per
/// edge serves up to 64 lanes).  This is how a traversal service amortizes
/// the matrix traffic across concurrent queries — the batched analogue of
/// the paper's bit-packing argument.
///
/// Uses [`Direction::Auto`]: each iteration picks push or pull from the
/// node-granular frontier density.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range.
pub fn bfs_multi(a: &Matrix, sources: &[usize]) -> MultiBfsResult {
    bfs_multi_dir(a, sources, Direction::Auto)
}

/// As [`bfs_multi`], forcing the given traversal direction for every
/// iteration.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range
/// ([`try_bfs_multi_dir`] is the fallible form).
pub fn bfs_multi_dir(a: &Matrix, sources: &[usize], direction: Direction) -> MultiBfsResult {
    try_bfs_multi_dir(a, sources, direction).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`bfs_multi_dir`], reporting an empty batch or an out-of-range source
/// as a typed [`GrbError`] instead of panicking.
pub fn try_bfs_multi_dir(
    a: &Matrix,
    sources: &[usize],
    direction: Direction,
) -> Result<MultiBfsResult, GrbError> {
    let n = a.nrows();
    let k = sources.len();
    check_batch_nonempty(k, "bfs_multi needs at least one source")?;
    check_sources(n, sources, "source vertex")?;
    let ctx = a.context();

    let mut levels = vec![-1i64; n * k];
    let mut visited = {
        let mut flags = vec![false; n * k];
        for (l, &s) in sources.iter().enumerate() {
            levels[s * k + l] = 0;
            flags[s * k + l] = true;
        }
        // The flat per-lane ¬visited mask: each lane keeps its own visited
        // set, all k of them filtered by the same masked sweep.
        Mask::complemented(flags)
    };

    let mut frontier = MultiVec::from_sources(n, sources);
    let mut level = 0i64;
    let mut iterations = 0usize;
    let mut n_reached = k;

    loop {
        iterations += 1;
        level += 1;

        // next = Aᵀ ⊕.⊗ F over the Boolean semiring (one hop of every lane
        // at once), masked by each lane's ¬visited.
        let next = Op::mxm(a, &frontier)
            .transpose()
            .semiring(Semiring::Boolean)
            .mask(&visited)
            .direction(direction)
            .try_run(ctx)?;

        let mut any = false;
        for (f, &x) in next.as_slice().iter().enumerate() {
            if x != 0.0 {
                visited.set(f, true);
                levels[f] = level;
                n_reached += 1;
                any = true;
            }
        }
        ctx.recycle_multi(std::mem::replace(&mut frontier, next));
        if !any || iterations >= n {
            break;
        }
    }
    ctx.recycle_multi(frontier);

    Ok(MultiBfsResult {
        levels,
        n_sources: k,
        iterations,
        n_reached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn backends() -> Vec<Backend> {
        vec![
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
            Backend::Auto,
        ]
    }

    #[test]
    fn bfs_matches_reference_on_chain_and_star() {
        let chain = generators::path(17);
        let star = generators::star(20);
        for adj in [chain, star] {
            let expected = reference::bfs_levels(&adj, 0);
            for backend in backends() {
                let m = Matrix::from_csr(&adj, backend);
                let got = bfs(&m, 0);
                assert_eq!(got.levels, expected, "{backend:?}");
            }
        }
    }

    #[test]
    fn bfs_matches_reference_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let adj = generators::erdos_renyi(120, 0.03, true, seed);
            let expected = reference::bfs_levels(&adj, 5);
            for backend in [
                Backend::Bit(TileSize::S8),
                Backend::Bit(TileSize::S32),
                Backend::FloatCsr,
            ] {
                let m = Matrix::from_csr(&adj, backend);
                let got = bfs(&m, 5);
                assert_eq!(got.levels, expected, "seed {seed} {backend:?}");
                assert_eq!(
                    got.n_reached as usize,
                    expected.iter().filter(|&&l| l >= 0).count()
                );
            }
        }
    }

    #[test]
    fn bfs_on_disconnected_graph_leaves_unreached_at_minus_one() {
        let mut coo = Coo::new(10, 10);
        coo.push_undirected_edge(0, 1).unwrap();
        coo.push_undirected_edge(1, 2).unwrap();
        coo.push_undirected_edge(5, 6).unwrap();
        let adj = coo.to_binary_csr();
        for backend in backends() {
            let m = Matrix::from_csr(&adj, backend);
            let got = bfs(&m, 0);
            assert_eq!(got.levels[5], -1);
            assert_eq!(got.levels[6], -1);
            assert_eq!(got.n_reached, 3);
        }
    }

    #[test]
    fn bfs_on_directed_graph_respects_edge_direction() {
        // 0 -> 1 -> 2, and 3 -> 0: vertex 3 unreachable from 0.
        let mut coo = Coo::new(4, 4);
        coo.push_edge(0, 1).unwrap();
        coo.push_edge(1, 2).unwrap();
        coo.push_edge(3, 0).unwrap();
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let got = bfs(&m, 0);
            assert_eq!(got.levels, vec![0, 1, 2, -1], "{backend:?}");
        }
    }

    #[test]
    fn bfs_iteration_count_is_graph_depth() {
        let adj = generators::path(9); // 0-1-...-8
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let got = bfs(&m, 0);
        assert_eq!(got.levels[8], 8);
        // 8 productive levels + 1 terminating empty iteration.
        assert_eq!(got.iterations, 9);
    }

    #[test]
    fn forced_directions_agree_with_auto() {
        for seed in [2u64, 9] {
            let adj = generators::erdos_renyi(150, 0.03, true, seed);
            let expected = reference::bfs_levels(&adj, 3);
            for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
                let m = Matrix::from_csr(&adj, backend);
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    let got = bfs_dir(&m, 3, dir);
                    assert_eq!(got.levels, expected, "{backend:?} {dir:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        let adj = generators::path(4);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let _ = bfs(&m, 10);
    }

    // -- batched multi-source BFS -------------------------------------------

    /// Every lane of a batched run equals the single-source run from that
    /// lane's source, on every backend and direction.
    #[test]
    fn bfs_multi_lanes_equal_single_source_runs() {
        for seed in [1u64, 7] {
            let adj = generators::erdos_renyi(110, 0.03, true, seed);
            let sources = [5usize, 0, 77, 5];
            for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
                let m = Matrix::from_csr(&adj, backend);
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    let batched = bfs_multi_dir(&m, &sources, dir);
                    assert_eq!(batched.n_sources, 4);
                    let mut total_reached = 0usize;
                    for (l, &s) in sources.iter().enumerate() {
                        let single = bfs_dir(&m, s, dir);
                        for v in 0..adj.nrows() {
                            assert_eq!(
                                batched.level(v, l),
                                single.levels[v],
                                "seed {seed} {backend:?} {dir:?} lane {l} vertex {v}"
                            );
                        }
                        total_reached += single.n_reached;
                    }
                    assert_eq!(batched.n_reached, total_reached);
                }
            }
        }
    }

    /// A batch over a disconnected graph keeps the lanes' reachable sets
    /// separate (no cross-lane leakage through the shared sweep).
    #[test]
    fn bfs_multi_lanes_do_not_leak_across_components() {
        let mut coo = Coo::new(10, 10);
        coo.push_undirected_edge(0, 1).unwrap();
        coo.push_undirected_edge(1, 2).unwrap();
        coo.push_undirected_edge(5, 6).unwrap();
        let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S4));
        let r = bfs_multi(&m, &[0, 5]);
        // Lane 0 sees only {0,1,2}; lane 1 only {5,6}.
        assert_eq!(r.level(2, 0), 2);
        assert_eq!(r.level(5, 0), -1);
        assert_eq!(r.level(6, 1), 1);
        assert_eq!(r.level(0, 1), -1);
        assert_eq!(r.n_reached, 5);
    }

    /// Batching more sources than one lane word (k > 64) still matches the
    /// single-source runs — the lane words spill into multiple u64s.
    #[test]
    fn bfs_multi_handles_more_than_64_lanes() {
        let adj = generators::grid2d(9, 9);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let sources: Vec<usize> = (0..70).map(|l| (l * 13) % 81).collect();
        let batched = bfs_multi(&m, &sources);
        for (l, &s) in sources.iter().enumerate().step_by(9) {
            let single = bfs(&m, s);
            for v in 0..81 {
                assert_eq!(batched.level(v, l), single.levels[v], "lane {l}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn bfs_multi_rejects_empty_batch() {
        let m = Matrix::from_csr(&generators::path(4), Backend::FloatCsr);
        let _ = bfs_multi(&m, &[]);
    }
}
