//! Breadth-First Search over the Boolean semiring (§V of the paper).
//!
//! Each iteration performs a one-hop edge traversal of the current frontier
//! with `vxm()` over the Boolean semiring, then filters out already-visited
//! vertices with a complemented mask.  On the bit backend this maps to
//! `bmv_bin_bin_bin_masked()`: the frontier and the visited mask are both
//! binarized, and the mask is applied with a bitwise AND-NOT right before the
//! output store (no early exit, to avoid warp divergence — §V).

use bitgblas_core::grb::{Context, Mask, Matrix, Op, Vector};
use bitgblas_core::Semiring;

/// The result of a BFS run.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// `levels[v]` = number of hops from the source, `-1` if unreachable.
    pub levels: Vec<i64>,
    /// Number of `vxm` iterations executed (= eccentricity of the source + 1).
    pub iterations: usize,
    /// Number of vertices reached (including the source).
    pub n_reached: usize,
}

/// Run BFS from `source` on the graph held by `a` (treated as directed; pass
/// a symmetrized matrix for undirected traversal).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs(a: &Matrix, source: usize) -> BfsResult {
    let n = a.nrows();
    assert!(source < n, "source vertex {source} out of range (n = {n})");
    let ctx = Context::default();

    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut visited = vec![false; n];
    visited[source] = true;

    let mut frontier = Vector::indicator(n, &[source]);
    let mut level = 0i64;
    let mut iterations = 0usize;
    let mut n_reached = 1usize;

    loop {
        iterations += 1;
        level += 1;

        // next = frontier ⊕.⊗ A over the Boolean semiring, masked by ¬visited.
        let mask = Mask::complemented(visited.clone());
        let next = Op::vxm(&frontier, a)
            .semiring(Semiring::Boolean)
            .mask(&mask)
            .run(&ctx);

        // Record levels and update the visited set.
        let mut any = false;
        for (v, &x) in next.as_slice().iter().enumerate() {
            if x != 0.0 {
                visited[v] = true;
                levels[v] = level;
                n_reached += 1;
                any = true;
            }
        }
        if !any || iterations >= n {
            break;
        }
        frontier = next;
    }

    BfsResult {
        levels,
        iterations,
        n_reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn backends() -> Vec<Backend> {
        vec![
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
            Backend::Auto,
        ]
    }

    #[test]
    fn bfs_matches_reference_on_chain_and_star() {
        let chain = generators::path(17);
        let star = generators::star(20);
        for adj in [chain, star] {
            let expected = reference::bfs_levels(&adj, 0);
            for backend in backends() {
                let m = Matrix::from_csr(&adj, backend);
                let got = bfs(&m, 0);
                assert_eq!(got.levels, expected, "{backend:?}");
            }
        }
    }

    #[test]
    fn bfs_matches_reference_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let adj = generators::erdos_renyi(120, 0.03, true, seed);
            let expected = reference::bfs_levels(&adj, 5);
            for backend in [
                Backend::Bit(TileSize::S8),
                Backend::Bit(TileSize::S32),
                Backend::FloatCsr,
            ] {
                let m = Matrix::from_csr(&adj, backend);
                let got = bfs(&m, 5);
                assert_eq!(got.levels, expected, "seed {seed} {backend:?}");
                assert_eq!(
                    got.n_reached as usize,
                    expected.iter().filter(|&&l| l >= 0).count()
                );
            }
        }
    }

    #[test]
    fn bfs_on_disconnected_graph_leaves_unreached_at_minus_one() {
        let mut coo = Coo::new(10, 10);
        coo.push_undirected_edge(0, 1).unwrap();
        coo.push_undirected_edge(1, 2).unwrap();
        coo.push_undirected_edge(5, 6).unwrap();
        let adj = coo.to_binary_csr();
        for backend in backends() {
            let m = Matrix::from_csr(&adj, backend);
            let got = bfs(&m, 0);
            assert_eq!(got.levels[5], -1);
            assert_eq!(got.levels[6], -1);
            assert_eq!(got.n_reached, 3);
        }
    }

    #[test]
    fn bfs_on_directed_graph_respects_edge_direction() {
        // 0 -> 1 -> 2, and 3 -> 0: vertex 3 unreachable from 0.
        let mut coo = Coo::new(4, 4);
        coo.push_edge(0, 1).unwrap();
        coo.push_edge(1, 2).unwrap();
        coo.push_edge(3, 0).unwrap();
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let got = bfs(&m, 0);
            assert_eq!(got.levels, vec![0, 1, 2, -1], "{backend:?}");
        }
    }

    #[test]
    fn bfs_iteration_count_is_graph_depth() {
        let adj = generators::path(9); // 0-1-...-8
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let got = bfs(&m, 0);
        assert_eq!(got.levels[8], 8);
        // 8 productive levels + 1 terminating empty iteration.
        assert_eq!(got.iterations, 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        let adj = generators::path(4);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let _ = bfs(&m, 10);
    }
}
