//! PageRank over the arithmetic semiring (§V).
//!
//! Each iteration multiplies the rank vector by the column-stochastic
//! adjacency matrix.  Because the Bit-GraphBLAS matrix stays binary, the
//! out-degree normalisation cannot be folded into the matrix values; the
//! paper instead divides each vertex's rank by its out-degree before the
//! `bmv_bin_full_full()` multiply, then adds the teleport term.
//!
//! Since PR 3 the whole iteration is **one fused expression**: the
//! out-degree normalisation rides along as the product's input scaling, the
//! `α·contrib + teleport + dangling` update is an affine stage folded into
//! the same sweep, and the dangling-mass dot product is a fused
//! chain-reduce that never materialises:
//!
//! ```text
//! dangling = Op::ewise_mult(&rank, &dangling_mask).reduce().run(ctx);
//! rank' = Op::vxm(&rank, a)
//!     .scale_input(&inv_out_degree)
//!     .semiring(Semiring::Arithmetic)
//!     .affine(alpha, teleport + alpha * dangling / n)
//!     .run(ctx);
//! ```
//!
//! Under [`Fusion::NodeAtATime`] the identical expression executes one
//! sweep per node — the baseline the `perf_suite` fused-vs-unfused rows
//! and the parity suite compare against.
//!
//! The paper's evaluation fixes the configuration to at most 10 iterations,
//! α = 0.85 and tolerance 1e-9; those are the defaults of
//! [`PageRankConfig`].

use bitgblas_core::grb::{Fusion, Matrix, Op, Vector};
use bitgblas_core::Semiring;

/// PageRank parameters (paper defaults: α = 0.85, 10 iterations, ε = 1e-9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor α.
    pub alpha: f32,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Early-exit tolerance on the max-norm change of the rank vector.
    pub tolerance: f32,
    /// Whether the per-iteration expression may fuse (default: fused).
    /// [`Fusion::NodeAtATime`] is the benchmark/parity baseline.
    pub fusion: Fusion,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            alpha: 0.85,
            max_iterations: 10,
            tolerance: 1e-9,
            fusion: Fusion::Fused,
        }
    }
}

/// The result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// The rank of every vertex (sums to ≈ 1).
    pub ranks: Vec<f32>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Max-norm change of the final iteration.
    pub last_delta: f32,
}

/// Run PageRank on the graph held by `a`.
pub fn pagerank(a: &Matrix, config: &PageRankConfig) -> PageRankResult {
    let n = a.nrows();
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
            last_delta: 0.0,
        };
    }
    // The matrix context's workspace recycles the per-iteration vectors.
    let ctx = a.context();
    let out_deg = a.out_degrees();
    // 1/deg as the product's input scaling; dangling vertices (out-degree 0)
    // scale to zero and redistribute uniformly through the dangling term.
    let inv_deg = Vector::from_vec(
        out_deg
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect(),
    );
    let dangling_mask = Vector::from_vec(
        out_deg
            .iter()
            .map(|&d| if d == 0 { 1.0 } else { 0.0 })
            .collect(),
    );
    let teleport = (1.0 - config.alpha) / n as f32;

    let mut rank = Vector::from_vec(vec![1.0 / n as f32; n]);
    let mut iterations = 0usize;
    let mut last_delta = f32::INFINITY;

    while iterations < config.max_iterations {
        iterations += 1;

        // Dangling mass: a fused dot product (never materialised).
        let dangling = Op::ewise_mult(&rank, &dangling_mask)
            .fusion(config.fusion)
            .reduce()
            .run(ctx);
        let dangling_share = config.alpha * dangling / n as f32;

        // contrib[v] = Σ_{u : u->v} rank[u] / deg(u), then
        // rank'[v] = α·contrib[v] + teleport + dangling share — one fused
        // sweep: input scaling, arithmetic-semiring pull along the edges
        // and the affine update all happen at the store.  The rank vector
        // is dense, so Direction::Auto resolves to pull.
        let next = Op::vxm(&rank, a)
            .scale_input(&inv_deg)
            .semiring(Semiring::Arithmetic)
            .affine(config.alpha, teleport + dangling_share)
            .fusion(config.fusion)
            .run(ctx);

        last_delta = next.max_abs_diff(&rank);
        ctx.recycle(std::mem::replace(&mut rank, next));
        if last_delta <= config.tolerance {
            break;
        }
    }

    PageRankResult {
        ranks: rank.into_vec(),
        iterations,
        last_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    #[test]
    fn ranks_sum_to_one_on_all_backends() {
        let adj = generators::erdos_renyi(150, 0.03, false, 8);
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
            Backend::Auto,
        ] {
            let m = Matrix::from_csr(&adj, backend);
            let pr = pagerank(&m, &PageRankConfig::default());
            let total: f32 = pr.ranks.iter().sum();
            assert!((total - 1.0).abs() < 1e-3, "{backend:?}: total {total}");
            assert!(pr.iterations <= 10);
        }
    }

    #[test]
    fn bit_and_float_backends_agree() {
        let adj = generators::rmat(7, 8, 0.57, 0.19, 0.19, 21);
        let config = PageRankConfig {
            max_iterations: 20,
            ..Default::default()
        };
        let float = pagerank(&Matrix::from_csr(&adj, Backend::FloatCsr), &config);
        for ts in TileSize::ALL {
            let bit = pagerank(&Matrix::from_csr(&adj, Backend::Bit(ts)), &config);
            for (i, (b, f)) in bit.ranks.iter().zip(&float.ranks).enumerate() {
                assert!((b - f).abs() < 1e-5, "{ts}: vertex {i}: {b} vs {f}");
            }
        }
    }

    #[test]
    fn fused_and_node_at_a_time_agree_on_every_backend() {
        let adj = generators::rmat(7, 8, 0.57, 0.19, 0.19, 23);
        let fused_cfg = PageRankConfig {
            max_iterations: 15,
            ..Default::default()
        };
        let unfused_cfg = PageRankConfig {
            fusion: Fusion::NodeAtATime,
            ..fused_cfg
        };
        for backend in [
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::FloatCsr,
        ] {
            let m = Matrix::from_csr(&adj, backend);
            let fused = pagerank(&m, &fused_cfg);
            let unfused = pagerank(&m, &unfused_cfg);
            assert_eq!(fused.iterations, unfused.iterations, "{backend:?}");
            for (i, (a, b)) in fused.ranks.iter().zip(&unfused.ranks).enumerate() {
                assert!((a - b).abs() < 1e-6, "{backend:?}: vertex {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn agrees_with_dense_reference() {
        let adj = generators::erdos_renyi(80, 0.05, false, 10);
        let config = PageRankConfig {
            max_iterations: 40,
            tolerance: 0.0,
            ..Default::default()
        };
        let got = pagerank(&Matrix::from_csr(&adj, Backend::Bit(TileSize::S8)), &config);
        let expected = reference::pagerank_dense(&adj, 0.85, 40);
        for (i, (g, e)) in got.ranks.iter().zip(&expected).enumerate() {
            assert!((g - e).abs() < 1e-4, "vertex {i}: {g} vs {e}");
        }
    }

    #[test]
    fn star_hub_has_highest_rank() {
        // Directed star: all leaves point at vertex 0.
        let mut coo = Coo::new(9, 9);
        for i in 1..9usize {
            coo.push_edge(i, 0).unwrap();
        }
        let adj = coo.to_binary_csr();
        let pr = pagerank(
            &Matrix::from_csr(&adj, Backend::Bit(TileSize::S8)),
            &PageRankConfig::default(),
        );
        for i in 1..9 {
            assert!(pr.ranks[0] > pr.ranks[i]);
        }
    }

    #[test]
    fn tolerance_terminates_early_on_fixed_point() {
        // A ring reaches its uniform stationary distribution immediately.
        let adj = generators::cycle(16);
        let config = PageRankConfig {
            max_iterations: 50,
            tolerance: 1e-6,
            ..Default::default()
        };
        let pr = pagerank(&Matrix::from_csr(&adj, Backend::FloatCsr), &config);
        assert!(
            pr.iterations < 50,
            "should converge early, took {}",
            pr.iterations
        );
        let uniform = 1.0 / 16.0;
        for r in &pr.ranks {
            assert!((r - uniform).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_graph() {
        let m = Matrix::from_csr(&bitgblas_sparse::Csr::empty(0, 0), Backend::FloatCsr);
        let pr = pagerank(&m, &PageRankConfig::default());
        assert!(pr.ranks.is_empty());
        assert_eq!(pr.iterations, 0);
    }
}
