//! Connected Components via the FastSV linear-algebraic algorithm (§V).
//!
//! The paper follows GraphBLAST's CC, which is based on FastSV (Zhang, Azad,
//! Buluç): every vertex carries a parent pointer `f`, and each round
//! 1. gathers the minimum parent of each vertex's neighbours with a tropical
//!    min `mxv` (`bmv_bin_full_full()` with `Min` reduction on the bit
//!    backend),
//! 2. *hooks* the grandparent of each vertex onto that minimum
//!    (`f[f[u]] = min(f[f[u]], mnp[u])`), also hooking the vertex itself, and
//! 3. *shortcuts* every vertex to its grandparent (`f[u] = f[f[u]]`),
//!
//! repeating until the parent vector stops changing.  Vertices of the same
//! component end up pointing at the component's minimum vertex id.

use bitgblas_core::grb::{Matrix, Op, Vector};
use bitgblas_core::{BinaryOp, Semiring};

/// The result of a connected-components run.
#[derive(Debug, Clone, PartialEq)]
pub struct CcResult {
    /// `labels[v]` = smallest vertex id in `v`'s component.
    pub labels: Vec<usize>,
    /// Number of connected components.
    pub n_components: usize,
    /// Number of FastSV rounds executed.
    pub iterations: usize,
}

/// Run FastSV connected components.  The graph is treated as undirected: if
/// `a` is not symmetric its transpose edges are still followed because the
/// neighbour-minimum is computed in both directions.
pub fn connected_components(a: &Matrix) -> CcResult {
    let n = a.nrows();
    if n == 0 {
        return CcResult {
            labels: Vec::new(),
            n_components: 0,
            iterations: 0,
        };
    }

    // Propagate minima along edges; the semiring adds 0 so values are the
    // neighbours' labels themselves.  The matrix context's workspace
    // recycles the per-round vectors.
    let ctx = a.context();
    let semiring = Semiring::MinPlus(0.0);

    let mut parent: Vec<usize> = (0..n).collect();
    let mut parent_f = Vector::zeros(n);
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        for (pf, &p) in parent_f.as_mut_slice().iter_mut().zip(&parent) {
            *pf = p as f32;
        }

        // Minimum neighbour parent, in both edge directions so directed
        // inputs behave as undirected graphs.  The backward sweep min-folds
        // straight onto the forward result through the fused accumulator,
        // so no separate "backward" vector is materialised.  The parent
        // vector is fully dense (every entry finite), so Direction::Auto
        // resolves to pull.
        let forward = Op::mxv(a, &parent_f).semiring(semiring).run(ctx);
        let mnp = Op::mxv(a, &parent_f)
            .semiring(semiring)
            .transpose()
            .accum(BinaryOp::Min, &forward)
            .run(ctx);
        ctx.recycle(forward);

        let mut next = parent.clone();
        for (u, &candidate) in mnp.as_slice().iter().enumerate() {
            if candidate.is_finite() {
                let cand = candidate as usize;
                // Stochastic hooking: hook u's parent and u itself onto the
                // candidate root.
                let pu = parent[u];
                if cand < next[pu] {
                    next[pu] = cand;
                }
                if cand < next[u] {
                    next[u] = cand;
                }
            }
        }
        ctx.recycle(mnp);

        // Shortcutting: point every vertex at its grandparent until stable
        // within this round (path halving).
        let mut changed_shortcut = true;
        while changed_shortcut {
            changed_shortcut = false;
            for u in 0..n {
                let gp = next[next[u]];
                if gp < next[u] {
                    next[u] = gp;
                    changed_shortcut = true;
                }
            }
        }

        if next == parent || iterations >= n {
            parent = next;
            break;
        }
        parent = next;
    }

    let mut uniq: Vec<usize> = parent.clone();
    uniq.sort_unstable();
    uniq.dedup();
    CcResult {
        n_components: uniq.len(),
        labels: parent,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::{Coo, Csr};

    fn check_against_reference(adj: &Csr, backend: Backend) {
        let expected = reference::cc_labels(adj);
        let m = Matrix::from_csr(adj, backend);
        let got = connected_components(&m);
        assert_eq!(got.labels, expected, "{backend:?}");
        assert_eq!(got.n_components, reference::cc_count(adj));
    }

    #[test]
    fn multiple_components_all_backends() {
        // Three components: a triangle, a path, an isolated vertex.
        let mut coo = Coo::new(9, 9);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6)] {
            coo.push_undirected_edge(a, b).unwrap();
        }
        let adj = coo.to_binary_csr();
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
            Backend::Auto,
        ] {
            check_against_reference(&adj, backend);
        }
    }

    #[test]
    fn random_graphs_match_union_find() {
        for seed in [3u64, 7, 13] {
            let adj = generators::erdos_renyi(120, 0.015, true, seed);
            check_against_reference(&adj, Backend::Bit(TileSize::S8));
            check_against_reference(&adj, Backend::FloatCsr);
        }
    }

    #[test]
    fn fully_connected_graph_is_one_component() {
        let adj = generators::complete(20);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S32));
        let got = connected_components(&m);
        assert_eq!(got.n_components, 1);
        assert!(got.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn edgeless_graph_has_n_components() {
        let adj = Csr::empty(7, 7);
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let got = connected_components(&m);
        assert_eq!(got.n_components, 7);
        assert_eq!(got.labels, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn directed_edges_are_treated_as_undirected() {
        // A directed chain still forms a single weak component.
        let mut coo = Coo::new(6, 6);
        for i in 0..5usize {
            coo.push_edge(i + 1, i).unwrap(); // edges point "backwards"
        }
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            let got = connected_components(&m);
            assert_eq!(got.n_components, 1, "{backend:?}");
            assert!(got.labels.iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn converges_quickly_on_long_paths() {
        // FastSV's shortcutting gives logarithmic-style convergence, far
        // fewer rounds than the path length.
        let adj = generators::path(256);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let got = connected_components(&m);
        assert_eq!(got.n_components, 1);
        assert!(got.iterations <= 20, "took {} rounds", got.iterations);
    }
}
