//! Betweenness Centrality — Brandes' algorithm batched over frontier
//! matrices.
//!
//! Betweenness centrality needs one full shortest-path exploration *per
//! source*; it is the canonical consumer of the batched multi-source
//! traversal engine.  The whole computation is two phases of batched
//! matrix × multivector sweeps over the `n × k` frontier matrix (`k` =
//! number of sampled sources):
//!
//! 1. **Forward** — breadth-first path counting: each round advances every
//!    lane's frontier with one arithmetic-semiring `mxm` (`Aᵀ ⊕.⊗ F`)
//!    masked to each lane's unvisited vertices, accumulating the
//!    shortest-path counts `σ`; the per-depth frontier matrices are kept
//!    for the backward phase.
//! 2. **Backward** — dependency accumulation in reverse depth order: one
//!    `mxm` (`A ⊕.⊗ W`, the reverse traversal direction) per depth
//!    propagates `(1 + δ(w)) / σ(w)` from depth `d` back to depth `d-1`,
//!    exactly Brandes' recurrence `δ(v) = Σ_{w} σ(v)/σ(w) · (1 + δ(w))`
//!    evaluated for all `k` sources at once.
//!
//! With `sources` covering every vertex the result is exact betweenness;
//! with a sample it is the standard sampled estimator (the per-source
//! dependencies of the sampled sources).  Both match the textbook
//! reference (`reference::betweenness`) lane-for-lane.
//!
//! **Precision**: the engine carries path counts `σ` in `f32` (the GrB
//! layer's scalar type, like GPU float BC implementations), so `σ` is
//! exact only up to 2²⁴ paths; graphs whose shortest-path counts exceed
//! that accumulate rounding in the `δ` ratios.  The `f64`-accumulating
//! [`reference::betweenness`](crate::reference::betweenness) is the
//! arbitrary-count oracle.

use bitgblas_core::grb::{Direction, Mask, Matrix, MultiVec, Op};
use bitgblas_core::Semiring;

/// The result of a batched betweenness-centrality run.
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// `centrality[v]` = Σ over sampled sources of `v`'s Brandes dependency
    /// (exact betweenness when every vertex is a source).
    pub centrality: Vec<f32>,
    /// Number of sources in the batch (`k`).
    pub n_sources: usize,
    /// Depth of the deepest shortest-path tree in the batch.
    pub depth: usize,
}

/// Batched Brandes betweenness centrality from the given sources, with
/// per-round automatic direction selection.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range.
pub fn betweenness_centrality(a: &Matrix, sources: &[usize]) -> BcResult {
    betweenness_centrality_dir(a, sources, Direction::Auto)
}

/// As [`betweenness_centrality`], forcing the given traversal direction for
/// every batched sweep of both phases.
///
/// # Panics
/// Panics if `sources` is empty or any source is out of range.
pub fn betweenness_centrality_dir(a: &Matrix, sources: &[usize], direction: Direction) -> BcResult {
    let n = a.nrows();
    let k = sources.len();
    assert!(k > 0, "betweenness_centrality needs at least one source");
    for &s in sources {
        assert!(s < n, "source vertex {s} out of range (n = {n})");
    }
    let ctx = a.context();

    // -- Forward phase: batched BFS with shortest-path counting -----------
    //
    // `paths[v, l]` = σ_l(v), the number of shortest paths from source `l`
    // to `v`; `frontiers[d]` holds the per-depth path-count increments
    // (nonzero pattern = the vertices at depth `d` in lane `l`'s tree).
    let mut paths = MultiVec::from_sources(n, sources);
    let mut unvisited = {
        let mut flags = vec![false; n * k];
        for (l, &s) in sources.iter().enumerate() {
            flags[s * k + l] = true;
        }
        Mask::complemented(flags)
    };
    let mut frontiers: Vec<MultiVec> = vec![paths.clone()];

    loop {
        let frontier = frontiers.last().expect("seeded with the sources");
        // One hop of every lane: σ-increments flow along the edges, gated
        // by each lane's own unvisited set.
        let next = Op::mxm(a, frontier)
            .transpose()
            .semiring(Semiring::Arithmetic)
            .mask(&unvisited)
            .direction(direction)
            .run(ctx);
        let mut any = false;
        for (f, &x) in next.as_slice().iter().enumerate() {
            if x != 0.0 {
                unvisited.set(f, true);
                any = true;
            }
        }
        if !any || frontiers.len() > n {
            ctx.recycle_multi(next);
            break;
        }
        for (p, &x) in paths.as_mut_slice().iter_mut().zip(next.as_slice()) {
            *p += x;
        }
        frontiers.push(next);
    }
    let depth = frontiers.len() - 1;

    // -- Backward phase: dependency accumulation --------------------------
    //
    // `bcu[v, l]` = 1 + δ_l(v).  Walking the depths in reverse, one
    // arithmetic `mxm` in the *reverse* traversal direction propagates each
    // depth's scaled dependencies to its predecessors.  The depth-1 → 0
    // step is skipped: it would only accumulate the sources' own
    // dependencies, which Brandes excludes from their centrality.
    let mut bcu = MultiVec::filled(n, k, 1.0);
    let mut w = MultiVec::zeros(n, k);
    for d in (2..=depth).rev() {
        // w = (bcu / σ) restricted to the depth-d vertices of each lane.
        for (f, slot) in w.as_mut_slice().iter_mut().enumerate() {
            *slot = if frontiers[d].as_slice()[f] != 0.0 {
                bcu.as_slice()[f] / paths.as_slice()[f]
            } else {
                0.0
            };
        }
        // t[v] = Σ_{v -> u} w[u]: one reverse sweep for all lanes.
        let t = Op::mxm(a, &w)
            .semiring(Semiring::Arithmetic)
            .direction(direction)
            .run(ctx);
        // bcu += t .* σ on the depth-(d-1) vertices.
        for (f, b) in bcu.as_mut_slice().iter_mut().enumerate() {
            if frontiers[d - 1].as_slice()[f] != 0.0 {
                *b += t.as_slice()[f] * paths.as_slice()[f];
            }
        }
        ctx.recycle_multi(t);
    }

    // centrality(v) = Σ_l δ_l(v) = Σ_l (bcu[v, l] - 1); unreached (v, l)
    // pairs kept bcu = 1 and contribute nothing, and the skipped depth-0
    // step kept every source's own dependency out of its total.
    let centrality = bcu
        .as_slice()
        .chunks_exact(k)
        .map(|lanes| lanes.iter().map(|&b| b - 1.0).sum())
        .collect();

    BcResult {
        centrality,
        n_sources: k,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn assert_close(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len());
        for (v, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-3 + 1e-3 * w.abs();
            assert!((g - w).abs() < tol, "{what}: vertex {v}: {g} vs {w}");
        }
    }

    #[test]
    fn path_graph_interior_vertices_carry_the_load() {
        // Directed chain 0 -> 1 -> 2 -> 3: exact BC (all sources) is
        // [0, 2, 2, 0] (vertex 1 lies on 0→2 and 0→3, vertex 2 on 0→3
        // and 1→3).
        let mut coo = Coo::new(4, 4);
        for i in 0..3usize {
            coo.push_edge(i, i + 1).unwrap();
        }
        let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::Bit(TileSize::S4));
        let r = betweenness_centrality(&m, &[0, 1, 2, 3]);
        assert_close(&r.centrality, &[0.0, 2.0, 2.0, 0.0], "chain");
        assert_eq!(r.depth, 3);

        // The undirected path counts each ordered pair both ways: [0,4,4,0].
        let undirected = Matrix::from_csr(&generators::path(4), Backend::FloatCsr);
        let ru = betweenness_centrality(&undirected, &[0, 1, 2, 3]);
        assert_close(&ru.centrality, &[0.0, 4.0, 4.0, 0.0], "undirected path");
    }

    #[test]
    fn diamond_splits_dependency_between_parallel_paths() {
        // 0 -> {1, 2} -> 3: two shortest paths 0→3, each middle vertex 1/2.
        let mut coo = Coo::new(4, 4);
        for &(u, v) in &[(0, 1), (0, 2), (1, 3), (2, 3)] {
            coo.push_edge(u, v).unwrap();
        }
        let m = Matrix::from_csr(&coo.to_binary_csr(), Backend::FloatCsr);
        let r = betweenness_centrality(&m, &[0]);
        assert_close(&r.centrality, &[0.0, 0.5, 0.5, 0.0], "diamond");
    }

    #[test]
    fn matches_reference_on_random_graphs_all_backends_and_directions() {
        for seed in [3u64, 11] {
            let adj = generators::erdos_renyi(70, 0.05, true, seed);
            let sources: Vec<usize> = (0..70).step_by(7).collect();
            let expected = reference::betweenness(&adj, &sources);
            for backend in [
                Backend::Bit(TileSize::S4),
                Backend::Bit(TileSize::S8),
                Backend::FloatCsr,
                Backend::Auto,
            ] {
                let m = Matrix::from_csr(&adj, backend);
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    let got = betweenness_centrality_dir(&m, &sources, dir);
                    assert_close(
                        &got.centrality,
                        &expected,
                        &format!("seed {seed} {backend:?} {dir:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn exact_bc_on_undirected_star_peaks_at_the_hub() {
        let adj = generators::star(9).symmetrized();
        let m = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let all: Vec<usize> = (0..9).collect();
        let r = betweenness_centrality(&m, &all);
        let expected = reference::betweenness(&adj, &all);
        assert_close(&r.centrality, &expected, "star");
        for leaf in 1..9 {
            assert!(r.centrality[0] > r.centrality[leaf]);
        }
    }

    #[test]
    fn edgeless_graph_has_zero_centrality() {
        let m = Matrix::from_csr(&bitgblas_sparse::Csr::empty(6, 6), Backend::FloatCsr);
        let r = betweenness_centrality(&m, &[0, 3]);
        assert!(r.centrality.iter().all(|&c| c == 0.0));
        assert_eq!(r.depth, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_source() {
        let m = Matrix::from_csr(&generators::path(4), Backend::FloatCsr);
        let _ = betweenness_centrality(&m, &[9]);
    }
}
