//! Simple, obviously-correct reference implementations used to validate the
//! GraphBLAS-based algorithms on both backends.
//!
//! These are classic textbook implementations operating directly on the CSR
//! adjacency structure: queue-based BFS, Bellman-Ford relaxation, union-find
//! connected components, neighbourhood-intersection triangle counting and a
//! dense PageRank power iteration.

use std::collections::VecDeque;

use bitgblas_sparse::Csr;

/// BFS levels from `source`: `levels[v]` is the number of hops from the
/// source, or `-1` when `v` is unreachable.
pub fn bfs_levels(adj: &Csr, source: usize) -> Vec<i64> {
    let n = adj.nrows();
    let mut levels = vec![-1i64; n];
    if source >= n {
        return levels;
    }
    let mut queue = VecDeque::new();
    levels[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = levels[u] + 1;
        for &v in adj.row(u).0 {
            if levels[v] < 0 {
                levels[v] = next;
                queue.push_back(v);
            }
        }
    }
    levels
}

/// Single-source shortest path distances over unit edge weights
/// (Bellman-Ford; returns `f32::INFINITY` for unreachable vertices).
pub fn sssp_distances(adj: &Csr, source: usize) -> Vec<f32> {
    let n = adj.nrows();
    let mut dist = vec![f32::INFINITY; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0.0;
    // Unit weights: at most n-1 relaxation rounds.
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if dist[u].is_finite() {
                let du = dist[u];
                for &v in adj.row(u).0 {
                    if du + 1.0 < dist[v] {
                        dist[v] = du + 1.0;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Connected-component labels via union-find; the label of each vertex is the
/// smallest vertex id in its component (treating the graph as undirected).
pub fn cc_labels(adj: &Csr) -> Vec<usize> {
    let n = adj.nrows();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (r, c, _) in adj.iter() {
        let (a, b) = (find(&mut parent, r), find(&mut parent, c));
        if a != b {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi] = lo;
        }
    }
    // Compress to the minimum vertex id of each component.
    let roots: Vec<usize> = (0..n).map(|v| find(&mut parent, v)).collect();
    let mut min_of_root = vec![usize::MAX; n];
    for (v, &r) in roots.iter().enumerate() {
        min_of_root[r] = min_of_root[r].min(v);
    }
    roots.iter().map(|&r| min_of_root[r]).collect()
}

/// Number of connected components.
pub fn cc_count(adj: &Csr) -> usize {
    let labels = cc_labels(adj);
    let mut uniq = labels;
    uniq.sort_unstable();
    uniq.dedup();
    uniq.len()
}

/// Triangle count of an undirected simple graph (each triangle counted once),
/// by intersecting the lower-triangular neighbourhoods.
pub fn triangle_count(adj: &Csr) -> u64 {
    let l = adj.lower_triangle();
    let mut count = 0u64;
    for u in 0..l.nrows() {
        let (nu, _) = l.row(u);
        for &v in nu {
            let (nv, _) = l.row(v);
            // |N^-(u) ∩ N^-(v)| via sorted merge.
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Dense PageRank power iteration with uniform teleport, matching the
/// paper's configuration (α = 0.85, fixed iteration count).
pub fn pagerank_dense(adj: &Csr, alpha: f32, iterations: usize) -> Vec<f32> {
    let n = adj.nrows();
    if n == 0 {
        return Vec::new();
    }
    let out_deg = adj.out_degrees();
    let mut rank = vec![1.0f32 / n as f32; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - alpha) / n as f32; n];
        let mut dangling = 0.0f32;
        for u in 0..n {
            if out_deg[u] == 0 {
                dangling += rank[u];
                continue;
            }
            let share = alpha * rank[u] / out_deg[u] as f32;
            for &v in adj.row(u).0 {
                next[v] += share;
            }
        }
        // Dangling mass is spread uniformly.
        let spread = alpha * dangling / n as f32;
        for x in &mut next {
            *x += spread;
        }
        rank = next;
    }
    rank
}

/// Dense personalized PageRank power iteration: teleport (and dangling
/// mass) flow back to the single `seed` vertex, so the result measures
/// random-walk proximity to the seed.  Fixed iteration count, matching
/// [`crate::ppr::PprConfig`]'s batch-invariant execution model.
pub fn ppr(adj: &Csr, seed: usize, alpha: f32, iterations: usize) -> Vec<f32> {
    let n = adj.nrows();
    if n == 0 {
        return Vec::new();
    }
    assert!(seed < n, "seed vertex {seed} out of range (n = {n})");
    let out_deg = adj.out_degrees();
    let mut rank = vec![0.0f32; n];
    rank[seed] = 1.0;
    for _ in 0..iterations {
        let mut next = vec![0.0f32; n];
        let mut dangling = 0.0f32;
        for u in 0..n {
            if out_deg[u] == 0 {
                dangling += rank[u];
                continue;
            }
            let share = alpha * rank[u] / out_deg[u] as f32;
            for &v in adj.row(u).0 {
                next[v] += share;
            }
        }
        // The whole teleport mass — including stranded dangling mass — goes
        // to the seed, not uniformly.
        next[seed] += (1.0 - alpha) + alpha * dangling;
        rank = next;
    }
    rank
}

/// Brandes betweenness centrality from the given sources over unit edge
/// weights (directed; BFS shortest paths, the textbook two-phase
/// dependency accumulation).  With `sources = 0..n` this is exact
/// betweenness; with a subset it is the sampled estimate the batched
/// GraphBLAS implementation computes.
pub fn betweenness(adj: &Csr, sources: &[usize]) -> Vec<f32> {
    let n = adj.nrows();
    let mut centrality = vec![0.0f32; n];
    for &s in sources {
        if s >= n {
            continue;
        }
        // Forward phase: BFS order, predecessor-free path counting.
        let mut sigma = vec![0.0f64; n];
        let mut depth = vec![-1i64; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = VecDeque::new();
        sigma[s] = 1.0;
        depth[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in adj.row(u).0 {
                if depth[v] < 0 {
                    depth[v] = depth[u] + 1;
                    queue.push_back(v);
                }
                if depth[v] == depth[u] + 1 {
                    sigma[v] += sigma[u];
                }
            }
        }
        // Backward phase: dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        for &u in order.iter().rev() {
            for &v in adj.row(u).0 {
                if depth[v] == depth[u] + 1 && sigma[v] > 0.0 {
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
                }
            }
            if u != s {
                centrality[u] += delta[u] as f32;
            }
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    /// A small undirected graph: two components, one triangle.
    ///   0-1, 1-2, 0-2 (triangle), 2-3 ; 4-5
    fn sample() -> Csr {
        let mut coo = Coo::new(6, 6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)] {
            coo.push_undirected_edge(a, b).unwrap();
        }
        coo.to_binary_csr()
    }

    #[test]
    fn bfs_levels_on_sample() {
        let adj = sample();
        assert_eq!(bfs_levels(&adj, 0), vec![0, 1, 1, 2, -1, -1]);
        assert_eq!(bfs_levels(&adj, 4), vec![-1, -1, -1, -1, 0, 1]);
        assert_eq!(bfs_levels(&adj, 99), vec![-1; 6]);
    }

    #[test]
    fn sssp_matches_bfs_on_unit_weights() {
        let adj = sample();
        let d = sssp_distances(&adj, 0);
        let l = bfs_levels(&adj, 0);
        for (dist, lvl) in d.iter().zip(l) {
            if lvl < 0 {
                assert!(dist.is_infinite());
            } else {
                assert_eq!(*dist, lvl as f32);
            }
        }
    }

    #[test]
    fn cc_finds_two_components() {
        let adj = sample();
        assert_eq!(cc_count(&adj), 2);
        let labels = cc_labels(&adj);
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn triangle_count_on_sample_and_k4() {
        assert_eq!(triangle_count(&sample()), 1);
        let mut coo = Coo::new(4, 4);
        for a in 0..4usize {
            for b in (a + 1)..4 {
                coo.push_undirected_edge(a, b).unwrap();
            }
        }
        assert_eq!(triangle_count(&coo.to_binary_csr()), 4);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs_higher() {
        let mut coo = Coo::new(5, 5);
        // Star: everything points to 0.
        for i in 1..5usize {
            coo.push_edge(i, 0).unwrap();
        }
        let adj = coo.to_binary_csr();
        let pr = pagerank_dense(&adj, 0.85, 30);
        let total: f32 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "total {total}");
        for i in 1..5 {
            assert!(pr[0] > pr[i]);
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let empty = Csr::empty(0, 0);
        assert!(pagerank_dense(&empty, 0.85, 5).is_empty());
        assert_eq!(triangle_count(&Csr::empty(3, 3)), 0);
        assert_eq!(cc_count(&Csr::empty(3, 3)), 3);
    }
}
