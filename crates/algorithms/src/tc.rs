//! Triangle Counting over the arithmetic semiring (§V).
//!
//! Following Azad–Buluç and Wolf (as GraphBLAST does), the triangle count of
//! an undirected simple graph is
//!
//! ```text
//!     #triangles = Σ ( L · Lᵀ ) .* L
//! ```
//!
//! where `L` is the strictly lower-triangular part of the adjacency matrix
//! and `.*` is the element-wise mask.  Both operands and the mask are binary,
//! so on the bit backend the whole computation is a single
//! `bmm_bin_bin_sum_masked()` call whose per-tile popcounts are accumulated
//! straight into the global sum — the paper fuses the reduction into the
//! `mxm()` the same way.

use bitgblas_core::grb::{Matrix, Op};

/// Count the triangles of the undirected graph held by `a`.
///
/// The matrix is expected to be symmetric (an undirected adjacency matrix);
/// self-loops are ignored because only the strictly lower triangle
/// participates.
pub fn triangle_count(a: &Matrix) -> u64 {
    let ctx = a.context();
    let l = a.lower_triangle();
    let lt = l.transpose();
    let sum = Op::mxm_reduce(&l, &lt, &l).run(ctx);
    sum.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bitgblas_core::{Backend, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    fn backends() -> Vec<Backend> {
        vec![
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
            Backend::Auto,
        ]
    }

    #[test]
    fn counts_known_graphs() {
        // K4 has 4 triangles, K5 has 10, C5 has none, the Grötzsch graph
        // (mycielskian4) is triangle-free.
        let cases = vec![
            (generators::complete(4), 4u64),
            (generators::complete(5), 10u64),
            (generators::cycle(5), 0u64),
            (generators::mycielskian(4), 0u64),
            (generators::star(12), 0u64),
        ];
        for (adj, expected) in cases {
            for backend in backends() {
                let m = Matrix::from_csr(&adj, backend);
                assert_eq!(triangle_count(&m), expected, "{backend:?}");
            }
        }
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let adj = generators::erdos_renyi(90, 0.06, true, seed);
            let expected = reference::triangle_count(&adj);
            for backend in backends() {
                let m = Matrix::from_csr(&adj, backend);
                assert_eq!(triangle_count(&m), expected, "seed {seed} {backend:?}");
            }
        }
    }

    #[test]
    fn matches_reference_on_power_law_graph() {
        let adj = generators::rmat(7, 10, 0.57, 0.19, 0.19, 77);
        let expected = reference::triangle_count(&adj);
        let bit = Matrix::from_csr(&adj, Backend::Bit(TileSize::S8));
        let float = Matrix::from_csr(&adj, Backend::FloatCsr);
        assert_eq!(triangle_count(&bit), expected);
        assert_eq!(triangle_count(&float), expected);
    }

    #[test]
    fn self_loops_do_not_create_triangles() {
        let mut coo = Coo::new(4, 4);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            coo.push_undirected_edge(a, b).unwrap();
        }
        for i in 0..4usize {
            coo.push_edge(i, i).unwrap();
        }
        let adj = coo.to_binary_csr();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(&adj, backend);
            assert_eq!(triangle_count(&m), 1, "{backend:?}");
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = Matrix::from_csr(
            &bitgblas_sparse::Csr::empty(10, 10),
            Backend::Bit(TileSize::S8),
        );
        assert_eq!(triangle_count(&empty), 0);
        let pathish = Matrix::from_csr(&generators::path(30), Backend::FloatCsr);
        assert_eq!(triangle_count(&pathish), 0);
    }
}
