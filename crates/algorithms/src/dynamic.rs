//! Incrementally-maintained Connected Components for streaming edge
//! insertions (PR 8).
//!
//! The mutation subsystem of `bitgblas-core` lets edges land while the
//! service keeps answering queries; re-running FastSV
//! ([`connected_components`]) after every
//! insertion would cost a full traversal per edge.  [`DynamicCc`] instead
//! maintains a **union-find overlay**: it seeds its parent forest from a
//! FastSV run over the base snapshot, then folds each inserted edge in with
//! a min-id union (amortized near-constant time).  Because FastSV labels a
//! component by its minimum vertex id and the union rule always keeps the
//! smaller root, the overlay's labels stay *identical* to what a
//! from-scratch FastSV over `base ⊕ inserts` would produce — verified by
//! [`DynamicCc::reconcile`], which the writer path calls on compaction.
//!
//! Deletions are the classically hard direction (they can split a
//! component, which union-find cannot express); `reconcile` handles them by
//! recomputing from the compacted matrix and reporting whether the
//! incremental state had drifted.

use bitgblas_core::grb::Matrix;

use crate::cc::{connected_components, CcResult};

/// Union-find overlay tracking connected components under streaming edge
/// insertions, reconciled against FastSV on compaction.
#[derive(Debug, Clone)]
pub struct DynamicCc {
    /// Parent forest; roots are the minimum vertex id of their component
    /// (FastSV's labelling convention).
    parent: Vec<usize>,
    n_components: usize,
}

impl DynamicCc {
    /// Seed the overlay from a FastSV run over the matrix (typically a
    /// pinned [`snapshot`](bitgblas_core::grb::Matrix::snapshot) of the
    /// graph at the time the stream starts).
    pub fn new(a: &Matrix) -> DynamicCc {
        DynamicCc::from_result(&connected_components(a))
    }

    /// Seed the overlay from an existing FastSV result (avoids re-running
    /// the traversal when the caller already has one).
    pub fn from_result(cc: &CcResult) -> DynamicCc {
        DynamicCc {
            parent: cc.labels.clone(),
            n_components: cc.n_components,
        }
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the overlay tracks no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of connected components.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// The component root (minimum vertex id of the component) of `u`, with
    /// path compression.
    pub fn find(&mut self, u: usize) -> usize {
        let mut root = u;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Compress the walked path so follow-up queries are O(1)-ish.
        let mut cur = u;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Fold an inserted (undirected) edge `u — v` into the overlay.
    /// Returns `true` when the edge merged two components.  The union keeps
    /// the smaller root, preserving FastSV's min-id labelling.
    pub fn insert_edge(&mut self, u: usize, v: usize) -> bool {
        let ru = self.find(u);
        let rv = self.find(v);
        if ru == rv {
            return false;
        }
        let (winner, loser) = if ru < rv { (ru, rv) } else { (rv, ru) };
        self.parent[loser] = winner;
        self.n_components -= 1;
        true
    }

    /// Fully-compressed labels: `labels()[v]` = minimum vertex id of `v`'s
    /// component, the same convention as
    /// [`CcResult::labels`](crate::CcResult).
    pub fn labels(&mut self) -> Vec<usize> {
        (0..self.parent.len()).map(|u| self.find(u)).collect()
    }

    /// Reconcile the overlay against a from-scratch FastSV over `a`
    /// (typically the post-compaction snapshot).  The overlay is reset to
    /// the recomputed labelling; the return value reports whether the
    /// incremental state already matched.  For insert-only streams over the
    /// matrix the overlay was seeded from this must be `true`; after
    /// deletions it may legitimately be `false` (a split component), which
    /// is exactly why the writer path reconciles on compaction.
    pub fn reconcile(&mut self, a: &Matrix) -> bool {
        let fresh = connected_components(a);
        let matched = self.n_components == fresh.n_components && self.labels() == fresh.labels;
        self.parent = fresh.labels;
        self.n_components = fresh.n_components;
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_core::{Backend, EdgeDelta, TileSize};
    use bitgblas_datagen::generators;
    use bitgblas_sparse::Coo;

    #[test]
    fn insertions_track_fastsv_exactly() {
        // Three separate pieces that the stream gradually joins.
        let mut coo = Coo::new(10, 10);
        for &(a, b) in &[(0, 1), (2, 3), (4, 5), (6, 7)] {
            coo.push_undirected_edge(a, b).unwrap();
        }
        let base = coo.to_binary_csr();
        let m = Matrix::from_csr(&base, Backend::Bit(TileSize::S8));
        let mut dyn_cc = DynamicCc::new(&m);
        assert_eq!(dyn_cc.n_components(), 6); // 4 pairs + vertices 8, 9

        for &(u, v) in &[(1, 2), (5, 6), (8, 9), (3, 4), (0, 9)] {
            m.apply_deltas(&[EdgeDelta::insert(u, v), EdgeDelta::insert(v, u)])
                .unwrap();
            dyn_cc.insert_edge(u, v);
            let snap = m.snapshot();
            let fresh = connected_components(&snap);
            assert_eq!(dyn_cc.n_components(), fresh.n_components);
            assert_eq!(dyn_cc.labels(), fresh.labels);
        }
        assert_eq!(dyn_cc.n_components(), 1);

        // Compaction does not change the view, so reconciliation reports a
        // clean match for the insert-only stream.
        m.compact(m.context()).unwrap();
        assert!(dyn_cc.reconcile(&m.snapshot()));
    }

    #[test]
    fn duplicate_and_intra_component_edges_are_noops() {
        let adj = generators::path(8);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let mut dyn_cc = DynamicCc::new(&m);
        assert_eq!(dyn_cc.n_components(), 1);
        assert!(!dyn_cc.insert_edge(0, 7)); // already connected
        assert!(!dyn_cc.insert_edge(3, 3)); // self loop
        assert_eq!(dyn_cc.n_components(), 1);
    }

    #[test]
    fn reconcile_detects_splits_after_deletion() {
        // A path 0-1-2-3; deleting the middle edge splits the component,
        // which the union-find overlay cannot see on its own.
        let adj = generators::path(4);
        let m = Matrix::from_csr(&adj, Backend::FloatCsr);
        let mut dyn_cc = DynamicCc::new(&m);
        m.apply_deltas(&[EdgeDelta::delete(1, 2), EdgeDelta::delete(2, 1)])
            .unwrap();
        let snap = m.snapshot();
        assert!(!dyn_cc.reconcile(&snap), "deletion must be flagged");
        assert_eq!(dyn_cc.n_components(), 2);
        assert_eq!(dyn_cc.labels(), vec![0, 0, 2, 2]);
        // A second reconcile against the same view is clean.
        assert!(dyn_cc.reconcile(&snap));
    }
}
