//! Allocation-counter proof of the zero-allocation steady state.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase fills the context's workspace pool, the exact BFS inner-loop
//! sequence (masked Boolean `vxm` in the push direction, level recording,
//! frontier recycling) must perform **zero** heap allocations per iteration.
//!
//! The push paths are the ones certified here — the serial scatter of tiny
//! frontiers and, since PR 5, the sharded path at a serial execution budget
//! (same segments, same merge, no scoped-thread spawns): every buffer — the
//! frontier index list, the shard cut list, the privatized per-segment
//! scratch, the scatter words, the output vector — cycles through the
//! workspace pool.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bitgblas_core::grb::{Context, Direction, Mask, Op, Vector};
use bitgblas_core::{Backend, BinaryOp, Matrix, Semiring, SimdPolicy, TileSize};
use bitgblas_sparse::Coo;

/// Counts every allocation and reallocation passing through the global
/// allocator of this test binary.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A directed chain 0 → 1 → … → n-1: the frontier stays a single vertex, so
/// every iteration exercises the identical push-path code with stable buffer
/// sizes.  Built with a serial thread budget (single-shard plan): these
/// tests certify the *serial* push path regardless of how many cores the
/// test host has; the sharded path has its own proof below.
fn chain(n: usize) -> Matrix {
    let mut coo = Coo::new(n, n);
    for i in 0..n - 1 {
        coo.push_edge(i, i + 1).unwrap();
    }
    Matrix::from_csr_ctx(
        &coo.to_binary_csr(),
        Backend::Bit(TileSize::S8),
        &Context::with_threads(1),
    )
}

/// One BFS level: exactly the inner-loop body of
/// `bitgblas_algorithms::bfs_dir` (masked Boolean vxm, level recording,
/// visited update, frontier recycle).
fn bfs_level(
    a: &Matrix,
    ctx: &Context,
    frontier: &mut Vector,
    visited: &mut Mask,
    levels: &mut [i64],
    level: i64,
) {
    let next = Op::vxm(frontier, a)
        .semiring(Semiring::Boolean)
        .mask(visited)
        .direction(Direction::Push)
        .run(ctx);
    for (v, &x) in next.as_slice().iter().enumerate() {
        if x != 0.0 {
            visited.set(v, true);
            levels[v] = level;
        }
    }
    ctx.recycle(std::mem::replace(frontier, next));
}

#[test]
fn bfs_inner_loop_is_allocation_free_after_warmup() {
    let n = 512;
    let a = chain(n);
    let ctx = a.context();

    let mut levels = vec![-1i64; n];
    levels[0] = 0;
    let mut visited = {
        let mut flags = vec![false; n];
        flags[0] = true;
        Mask::complemented(flags)
    };
    let mut frontier = Vector::indicator(n, &[0]);

    // Warm-up: the first iterations grow the pool (frontier list, packed
    // scatter words, output buffers) to their steady-state capacities.
    for level in 1..=8i64 {
        bfs_level(&a, ctx, &mut frontier, &mut visited, &mut levels, level);
    }

    // Steady state: the same sequence must touch the allocator zero times.
    let before = allocations();
    for level in 9..=40i64 {
        bfs_level(&a, ctx, &mut frontier, &mut visited, &mut levels, level);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "BFS inner loop allocated {} times in 32 steady-state iterations",
        after - before
    );

    // The traversal still did real work while being measured.
    assert_eq!(levels[40], 40);
    assert_eq!(levels[41], -1);
}

/// A small scatter-pattern graph for the PageRank pipeline (every vertex
/// has out-edges, sizes stay identical across iterations).  Serial thread
/// budget, like [`chain`].
fn ring_with_chords(n: usize) -> Matrix {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push_edge(i, (i + 1) % n).unwrap();
        coo.push_edge(i, (i * 7 + 3) % n).unwrap();
    }
    Matrix::from_csr_ctx(
        &coo.to_binary_csr(),
        Backend::Bit(TileSize::S8),
        &Context::with_threads(1),
    )
}

/// The fused PageRank pipeline — dangling dot (fused chain-reduce), the
/// scale+mxv+affine expression (one fused sweep) and the rank recycle —
/// must allocate zero bytes per iteration once the pool is warm.
#[test]
fn fused_pagerank_pipeline_is_allocation_free_after_warmup() {
    let n = 512;
    let a = ring_with_chords(n);
    let ctx = a.context();
    let inv_deg = Vector::from_vec(
        a.out_degrees()
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f32 })
            .collect(),
    );
    let dangling_mask = Vector::zeros(n);
    let alpha = 0.85f32;
    let teleport = (1.0 - alpha) / n as f32;
    let mut rank = Vector::from_vec(vec![1.0 / n as f32; n]);

    let iteration = |rank: &mut Vector| {
        let dangling = Op::ewise_mult(rank, &dangling_mask).reduce().run(ctx);
        let next = Op::vxm(rank, &a)
            .scale_input(&inv_deg)
            .semiring(Semiring::Arithmetic)
            .affine(alpha, teleport + alpha * dangling / n as f32)
            .run(ctx);
        let _delta = next.max_abs_diff(rank);
        ctx.recycle(std::mem::replace(rank, next));
    };

    for _ in 0..12 {
        iteration(&mut rank);
    }
    let before = allocations();
    for _ in 0..24 {
        iteration(&mut rank);
    }
    assert_eq!(
        allocations() - before,
        0,
        "fused PageRank pipeline allocated in steady state"
    );
    let total: f32 = rank.as_slice().iter().sum();
    assert!((total - 1.0).abs() < 1e-3, "ranks still sum to 1: {total}");
}

/// The fused SSSP pipeline — min-plus relaxation with the `min`
/// accumulator folded into the sweep — must allocate zero bytes per round
/// once the pool is warm.
#[test]
fn fused_sssp_accum_pipeline_is_allocation_free_after_warmup() {
    let n = 256;
    let a = chain(n);
    let ctx = a.context();
    let semiring = Semiring::MinPlus(1.0);
    let mut dist = Vector::identity(n, semiring);
    dist.set(0, 0.0);
    // Seed the frontier-list buffer for the whole run (the SSSP frontier
    // grows by one chain vertex per round), as in the relaxation test
    // above.
    ctx.workspace().give::<usize>(Vec::with_capacity(n));

    let round = |dist: &mut Vector| {
        let next = Op::vxm(&*dist, &a)
            .semiring(semiring)
            .direction(Direction::Push)
            .accum(BinaryOp::Min, &*dist)
            .run(ctx);
        let _changed = next
            .as_slice()
            .iter()
            .zip(dist.as_slice())
            .any(|(n, d)| n < d);
        ctx.recycle(std::mem::replace(dist, next));
    };

    for _ in 0..8 {
        round(&mut dist);
    }
    let before = allocations();
    for _ in 0..24 {
        round(&mut dist);
    }
    assert_eq!(
        allocations() - before,
        0,
        "fused SSSP accumulation pipeline allocated in steady state"
    );
    assert_eq!(dist.get(20), 20.0);
}

/// The sharded parallel push path (PR 5) must also be allocation-free in
/// steady state: the frontier cut list, the per-segment privatized scratch
/// and the output all cycle through the workspace pool, checked out before
/// the fan-out.  The loop runs with a 1-thread execution budget so the
/// segments execute inline — the scoped thread spawns of the offline rayon
/// stand-in are the only allocating part of the parallel path, and real
/// rayon's persistent pool would not pay them either.  The shard *grouping*
/// is identical at every budget (that is the determinism guarantee), so
/// this exercises exactly the code the parallel path runs.
#[test]
fn sharded_push_path_is_allocation_free_after_warmup() {
    let n = 4096;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push_edge(i, (i + 1) % n).unwrap();
        coo.push_edge(i, (i * 7 + 3) % n).unwrap();
    }
    // Build with a 4-thread budget so the plan is actually sharded…
    let ctx = Context::with_threads(4);
    let a = Matrix::from_csr_ctx(&coo.to_binary_csr(), Backend::Bit(TileSize::S8), &ctx);
    assert!(
        a.state().shard_plan(false).map(|p| p.n_shards()) > Some(1),
        "the plan must be sharded for this test to mean anything"
    );
    // …and execute with a serial budget: same segments, same merge, no spawns.
    ctx.set_threads(1);

    // A fat fixed frontier spanning every shard keeps the sharded scatter
    // engaged with stable buffer sizes on each iteration.
    let positions: Vec<usize> = (0..n).step_by(4).collect();
    let x = Vector::indicator(n, &positions);

    let iteration = || {
        let y = Op::vxm(&x, &a)
            .semiring(Semiring::Boolean)
            .direction(Direction::Push)
            .run(&ctx);
        ctx.recycle(y);
    };

    for _ in 0..8 {
        iteration();
    }
    let sharded_before = ctx.stats().sharded_push;
    let before = allocations();
    for _ in 0..32 {
        iteration();
    }
    assert_eq!(
        allocations() - before,
        0,
        "sharded push path allocated in steady state"
    );
    assert_eq!(
        ctx.stats().sharded_push - sharded_before,
        32,
        "every measured iteration must have taken the sharded path"
    );
}

/// The SWAR-vector pull path (PR 9) must meet the same bar as the scalar
/// paths: after warm-up, a masked Boolean pull sweep with the vector
/// kernels forced allocates **zero** bytes per iteration — the packed
/// frontier words, the tile-row output words and the result vector all
/// cycle through the workspace pool exactly as on the scalar path.
#[test]
fn simd_pull_bfs_inner_loop_is_allocation_free_after_warmup() {
    let n = 512;
    let a = chain(n);
    let ctx = a.context();
    ctx.set_simd_policy(SimdPolicy::ForceVector);

    let mut levels = vec![-1i64; n];
    levels[0] = 0;
    let mut visited = {
        let mut flags = vec![false; n];
        flags[0] = true;
        Mask::complemented(flags)
    };
    let mut frontier = Vector::indicator(n, &[0]);

    let mut level_pull = |frontier: &mut Vector, visited: &mut Mask, level: i64| {
        let next = Op::vxm(&*frontier, &a)
            .semiring(Semiring::Boolean)
            .mask(visited)
            .direction(Direction::Pull)
            .run(ctx);
        for (v, &x) in next.as_slice().iter().enumerate() {
            if x != 0.0 {
                visited.set(v, true);
                levels[v] = level;
            }
        }
        ctx.recycle(std::mem::replace(frontier, next));
    };

    for level in 1..=8i64 {
        level_pull(&mut frontier, &mut visited, level);
    }
    let before = allocations();
    for level in 9..=40i64 {
        level_pull(&mut frontier, &mut visited, level);
    }
    assert_eq!(
        allocations() - before,
        0,
        "vector-forced pull BFS loop allocated in steady state"
    );
    assert_eq!(levels[40], 40);
    assert_eq!(levels[41], -1);
}

/// The vector-forced min-plus pull relaxation (SSSP's dense sweep) must
/// also run allocation-free in steady state — the float lane blocks of the
/// SWAR sweep are workspace buffers, not per-call temporaries.
#[test]
fn simd_pull_sssp_relaxation_is_allocation_free_after_warmup() {
    let n = 256;
    let a = chain(n);
    let ctx = a.context();
    ctx.set_simd_policy(SimdPolicy::ForceVector);
    let semiring = Semiring::MinPlus(1.0);
    let mut dist = Vector::identity(n, semiring);
    dist.set(0, 0.0);

    let round = |dist: &mut Vector| {
        let relaxed = Op::vxm(&*dist, &a)
            .semiring(semiring)
            .direction(Direction::Pull)
            .run(ctx);
        for (d, &r) in dist.as_mut_slice().iter_mut().zip(relaxed.as_slice()) {
            if r < *d {
                *d = r;
            }
        }
        ctx.recycle(relaxed);
    };

    for _ in 0..8 {
        round(&mut dist);
    }
    let before = allocations();
    for _ in 0..24 {
        round(&mut dist);
    }
    assert_eq!(
        allocations() - before,
        0,
        "vector-forced pull SSSP relaxation allocated in steady state"
    );
    assert_eq!(dist.get(20), 20.0);
}

#[test]
fn sssp_style_relaxation_is_allocation_free_after_warmup() {
    let n = 256;
    let a = chain(n);
    let ctx = a.context();
    let semiring = Semiring::MinPlus(1.0);
    let mut dist = Vector::identity(n, semiring);
    dist.set(0, 0.0);

    // The SSSP frontier (all finite-distance vertices) grows by one chain
    // vertex per round, so seed the pool with a frontier-list buffer big
    // enough for the whole run — exactly what a warm long-running service
    // pool looks like.  Every other buffer reaches its steady-state
    // capacity during the warm-up rounds on its own.
    ctx.workspace().give::<usize>(Vec::with_capacity(n));

    let round = |dist: &mut Vector| {
        let relaxed = Op::vxm(&*dist, &a)
            .semiring(semiring)
            .direction(Direction::Push)
            .run(ctx);
        for (d, &r) in dist.as_mut_slice().iter_mut().zip(relaxed.as_slice()) {
            if r < *d {
                *d = r;
            }
        }
        ctx.recycle(relaxed);
    };

    for _ in 0..8 {
        round(&mut dist);
    }
    let before = allocations();
    for _ in 0..24 {
        round(&mut dist);
    }
    assert_eq!(
        allocations() - before,
        0,
        "SSSP relaxation allocated in steady state"
    );
    assert_eq!(dist.get(20), 20.0);
}
