//! GraphBLAS semirings — Table IV of the paper.
//!
//! Matrix-centric graph computing models traversal as matrix operations over
//! a semiring `(⊕, ⊗, identity)`.  Because Bit-GraphBLAS keeps the adjacency
//! matrix binary, the multiplicative operand coming from the matrix is always
//! "edge present / absent"; the semiring therefore only needs to describe how
//! a present edge combines with the vector operand (`⊗`) and how the partial
//! products reduce (`⊕`).
//!
//! | Semiring      | Domain          | Algorithms       | `⊗(x)`      | `⊕`   |
//! |---------------|-----------------|------------------|-------------|-------|
//! | Boolean       | {0, 1}          | BFS, MIS, GC     | `x ≠ 0`     | OR    |
//! | Arithmetic    | ℝ               | PR, TC, LGC      | `x`         | +     |
//! | Min-plus      | ℝ ∪ {+∞}        | SSSP, CC         | `x + w`     | min   |
//! | Max-times     | ℝ               | MIS, GC          | `x · w`     | max   |

/// A semiring over `f32` as used by the BMV/BMM kernels and the GrB ops.
///
/// `MinPlus` carries the uniform edge weight applied to every present edge
/// (1.0 for hop-count SSSP on an unweighted graph, 0.0 for FastSV-style
/// minimum propagation).  `MaxTimes` carries the uniform edge factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Semiring {
    /// Boolean (OR, AND) — BFS and other reachability-style algorithms.
    Boolean,
    /// Arithmetic (+, ×) — PageRank, Triangle Counting.
    Arithmetic,
    /// Tropical min-plus (min, +) with the given uniform edge weight.
    MinPlus(f32),
    /// Tropical max-times (max, ×) with the given uniform edge factor.
    MaxTimes(f32),
}

impl Semiring {
    /// The identity element of the additive monoid (the value of an "empty"
    /// output entry).
    #[inline]
    pub fn identity(&self) -> f32 {
        match self {
            Semiring::Boolean => 0.0,
            Semiring::Arithmetic => 0.0,
            Semiring::MinPlus(_) => f32::INFINITY,
            Semiring::MaxTimes(_) => f32::NEG_INFINITY,
        }
    }

    /// The multiplicative step for a *present* edge: combine the vector value
    /// `x` with the (implicit, binary) matrix entry.
    #[inline]
    pub fn combine(&self, x: f32) -> f32 {
        match self {
            Semiring::Boolean => {
                if x != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Semiring::Arithmetic => x,
            Semiring::MinPlus(w) => x + w,
            Semiring::MaxTimes(w) => x * w,
        }
    }

    /// The additive reduction `acc ⊕ v`.
    #[inline]
    pub fn reduce(&self, acc: f32, v: f32) -> f32 {
        match self {
            Semiring::Boolean => {
                if acc != 0.0 || v != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Semiring::Arithmetic => acc + v,
            Semiring::MinPlus(_) => acc.min(v),
            Semiring::MaxTimes(_) => acc.max(v),
        }
    }

    /// Reduce a full slice starting from the identity.
    #[inline]
    pub fn reduce_slice(&self, xs: &[f32]) -> f32 {
        xs.iter()
            .fold(self.identity(), |acc, &v| self.reduce(acc, v))
    }

    /// True when entries holding the additive identity can be *skipped* by a
    /// sparse (push-direction) kernel without changing the result, i.e.
    /// `⊕(acc, ⊗(identity)) == acc` for every `acc`.
    ///
    /// Holds for Boolean (`0` contributes nothing to OR), arithmetic
    /// (`x + 0 = x`), and min-plus (`∞ + w = ∞` loses every `min`).  For
    /// max-times it requires a positive edge factor: with `w ≤ 0`,
    /// `-∞ · w` is `+∞` or NaN rather than the identity, so identity
    /// entries still contribute and only the dense pull sweep is exact.
    #[inline]
    pub fn push_safe(&self) -> bool {
        match self {
            Semiring::Boolean | Semiring::Arithmetic | Semiring::MinPlus(_) => true,
            Semiring::MaxTimes(w) => *w > 0.0,
        }
    }

    /// True when an output value equals the semiring's "no contribution"
    /// value — used to decide whether a vertex was reached.
    #[inline]
    pub fn is_identity(&self, v: f32) -> bool {
        match self {
            Semiring::Boolean | Semiring::Arithmetic => v == 0.0,
            Semiring::MinPlus(_) => v == f32::INFINITY,
            Semiring::MaxTimes(_) => v == f32::NEG_INFINITY,
        }
    }
}

/// A binary scalar operator, as used by the GraphBLAS accumulator
/// (`w ⊕= t`) and the element-wise stages of the lazy expression IR.
///
/// Each semiring's additive monoid and multiplicative op map onto one of
/// these ([`BinaryOp::monoid_of`] / [`BinaryOp::mult_of`]), which is what
/// lets the planner collapse `ewise_add` / `ewise_mult` chains and fold
/// accumulators into the matrix-product sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`.
    Plus,
    /// `a · b`.
    Times,
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// Logical OR over the {0, 1} encoding (`1.0` iff either is nonzero).
    Or,
    /// Logical AND over the {0, 1} encoding (`1.0` iff both are nonzero).
    And,
}

impl BinaryOp {
    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Plus => a + b,
            BinaryOp::Times => a * b,
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Or => {
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            BinaryOp::And => {
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The operator implementing the given semiring's additive monoid `⊕`
    /// (what `ewise_add` means under that semiring).
    #[inline]
    pub fn monoid_of(semiring: Semiring) -> BinaryOp {
        match semiring {
            Semiring::Boolean => BinaryOp::Or,
            Semiring::Arithmetic => BinaryOp::Plus,
            Semiring::MinPlus(_) => BinaryOp::Min,
            Semiring::MaxTimes(_) => BinaryOp::Max,
        }
    }

    /// The operator implementing the given semiring's element-wise
    /// multiplication `⊗` (what `ewise_mult` means under that semiring:
    /// Hadamard product for arithmetic/max-times, addition for min-plus,
    /// AND for Boolean).
    #[inline]
    pub fn mult_of(semiring: Semiring) -> BinaryOp {
        match semiring {
            Semiring::Boolean => BinaryOp::And,
            Semiring::Arithmetic | Semiring::MaxTimes(_) => BinaryOp::Times,
            Semiring::MinPlus(_) => BinaryOp::Plus,
        }
    }

    /// True when this operator *is* the semiring's additive monoid — the
    /// condition under which an accumulator can be folded into the
    /// matrix-product sweep itself (`⊕`-folding contributions straight into
    /// the accumulation baseline is associative + commutative, so partial
    /// push scatters stay exact).
    #[inline]
    pub fn matches_monoid(&self, semiring: Semiring) -> bool {
        *self == Self::monoid_of(semiring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(Semiring::Boolean.identity(), 0.0);
        assert_eq!(Semiring::Arithmetic.identity(), 0.0);
        assert_eq!(Semiring::MinPlus(1.0).identity(), f32::INFINITY);
        assert_eq!(Semiring::MaxTimes(1.0).identity(), f32::NEG_INFINITY);
    }

    #[test]
    fn boolean_semiring_is_or_and() {
        let s = Semiring::Boolean;
        assert_eq!(s.combine(5.0), 1.0);
        assert_eq!(s.combine(0.0), 0.0);
        assert_eq!(s.reduce(0.0, 1.0), 1.0);
        assert_eq!(s.reduce(0.0, 0.0), 0.0);
        assert_eq!(s.reduce_slice(&[0.0, 0.0, 2.0]), 1.0);
    }

    #[test]
    fn arithmetic_semiring_sums_products() {
        let s = Semiring::Arithmetic;
        assert_eq!(s.combine(2.5), 2.5);
        assert_eq!(s.reduce(1.0, 2.0), 3.0);
        assert_eq!(s.reduce_slice(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn minplus_relaxation() {
        let s = Semiring::MinPlus(1.0);
        assert_eq!(s.combine(3.0), 4.0);
        assert_eq!(s.reduce(10.0, 4.0), 4.0);
        assert_eq!(s.reduce(f32::INFINITY, 7.0), 7.0);
        assert!(s.is_identity(f32::INFINITY));
        assert!(!s.is_identity(0.0));
        // Zero-weight variant used by FastSV minimum propagation.
        let s0 = Semiring::MinPlus(0.0);
        assert_eq!(s0.combine(3.0), 3.0);
    }

    #[test]
    fn maxtimes() {
        let s = Semiring::MaxTimes(2.0);
        assert_eq!(s.combine(3.0), 6.0);
        assert_eq!(s.reduce(1.0, 6.0), 6.0);
        assert_eq!(s.reduce_slice(&[1.0, 9.0, 4.0]), 9.0);
        assert!(s.is_identity(f32::NEG_INFINITY));
    }

    #[test]
    fn push_safety_matches_identity_absorption() {
        assert!(Semiring::Boolean.push_safe());
        assert!(Semiring::Arithmetic.push_safe());
        assert!(Semiring::MinPlus(0.0).push_safe());
        assert!(Semiring::MinPlus(5.0).push_safe());
        assert!(Semiring::MaxTimes(1.0).push_safe());
        assert!(!Semiring::MaxTimes(0.0).push_safe());
        assert!(!Semiring::MaxTimes(-1.0).push_safe());
    }

    #[test]
    fn binary_ops_apply_their_operator() {
        assert_eq!(BinaryOp::Plus.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Times.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::Or.apply(0.0, 3.0), 1.0);
        assert_eq!(BinaryOp::Or.apply(0.0, 0.0), 0.0);
        assert_eq!(BinaryOp::And.apply(0.0, 3.0), 0.0);
        assert_eq!(BinaryOp::And.apply(2.0, 3.0), 1.0);
    }

    #[test]
    fn binary_ops_map_to_semiring_monoids_and_mults() {
        assert_eq!(BinaryOp::monoid_of(Semiring::Boolean), BinaryOp::Or);
        assert_eq!(BinaryOp::monoid_of(Semiring::Arithmetic), BinaryOp::Plus);
        assert_eq!(BinaryOp::monoid_of(Semiring::MinPlus(1.0)), BinaryOp::Min);
        assert_eq!(BinaryOp::monoid_of(Semiring::MaxTimes(1.0)), BinaryOp::Max);
        assert_eq!(BinaryOp::mult_of(Semiring::Boolean), BinaryOp::And);
        assert_eq!(BinaryOp::mult_of(Semiring::Arithmetic), BinaryOp::Times);
        assert_eq!(BinaryOp::mult_of(Semiring::MinPlus(0.0)), BinaryOp::Plus);
        assert!(BinaryOp::Min.matches_monoid(Semiring::MinPlus(1.0)));
        assert!(!BinaryOp::Min.matches_monoid(Semiring::Arithmetic));
        // The monoid op folded with the semiring's reduce must agree.
        for s in [
            Semiring::Boolean,
            Semiring::Arithmetic,
            Semiring::MinPlus(1.0),
            Semiring::MaxTimes(1.0),
        ] {
            let op = BinaryOp::monoid_of(s);
            for (a, b) in [(0.0f32, 0.0f32), (1.0, 0.0), (2.0, 3.0), (5.0, 1.0)] {
                assert_eq!(op.apply(a, b), s.reduce(a, b), "{s:?} {a} {b}");
            }
        }
    }

    #[test]
    fn reduce_slice_of_empty_is_identity() {
        for s in [
            Semiring::Boolean,
            Semiring::Arithmetic,
            Semiring::MinPlus(1.0),
            Semiring::MaxTimes(1.0),
        ] {
            assert_eq!(s.reduce_slice(&[]), s.identity());
        }
    }
}
