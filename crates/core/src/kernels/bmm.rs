//! BMM — Binarized sparse Matrix × Matrix kernels (Table III).
//!
//! Triangle Counting is the paper's SpGEMM consumer: both operands and the
//! mask are binary, and the only output needed is the *sum* of the product's
//! entries.  `bmm_bin_bin_sum` computes `Σ_{i,j} (A·B)[i][j]` and
//! `bmm_bin_bin_sum_masked` computes `Σ_{(i,j) ∈ mask} (A·B)[i][j]`, both
//! over the arithmetic semiring with binary inputs.
//!
//! Kernel structure (Listing 2 of the paper): one warp per tile-row of `A`;
//! the outer loop walks `A`'s non-empty tiles `(tr, k)`, the middle loop
//! walks `B`'s tile-row `k`, and the inner 32-step loop broadcasts each
//! bit-row of the `B` tile to all lanes (`__shfl_sync`) so every lane
//! accumulates `__popc(a_row & b_row)` into its private register.  Here the
//! broadcast becomes an inner loop over the pre-transposed `B` tile (the
//! paper stores `B`'s tiles column-major for the same reason) and the warp
//! scheduling becomes Rayon parallelism over `A`'s tile-rows.

use rayon::prelude::*;

use bitgblas_bitops::pack::transpose_tile;
use bitgblas_bitops::BitWord;

use crate::b2sr::B2sr;

/// Pre-transpose every tile of `b` so that word `j` of a transposed tile is
/// bit-*column* `j` of the original tile — the "column-major packing" the
/// paper uses for the `B` operand of BMM.
fn transpose_tiles<W: BitWord>(b: &B2sr<W>) -> Vec<W> {
    let dim = b.tile_dim();
    let mut out = vec![W::ZERO; b.bit_tiles().len()];
    out.par_chunks_mut(dim)
        .enumerate()
        .for_each(|(idx, chunk)| {
            let t = transpose_tile(b.tile_words(idx), dim);
            chunk.copy_from_slice(&t);
        });
    out
}

/// `bmm_bin_bin_sum()`: the sum of all entries of `A · B` over the arithmetic
/// semiring, with both operands binary (in B2SR with the same tile size).
///
/// # Panics
/// Panics if the operands' dimensions or tile sizes are incompatible.
pub fn bmm_bin_bin_sum<W: BitWord>(a: &B2sr<W>, b: &B2sr<W>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    assert_eq!(
        a.tile_dim(),
        b.tile_dim(),
        "operands must use the same tile size"
    );
    let dim = a.tile_dim();
    let bt_tiles = transpose_tiles(b);

    (0..a.n_tile_rows())
        .into_par_iter()
        .map(|tr| {
            let mut local: u64 = 0;
            for a_idx in a.tile_row_range(tr) {
                let k = a.tile_colind()[a_idx];
                let a_words = a.tile_words(a_idx);
                if k >= b.n_tile_rows() {
                    continue;
                }
                for b_idx in b.tile_row_range(k) {
                    let bt = &bt_tiles[b_idx * dim..(b_idx + 1) * dim];
                    // Every (lane i, broadcast j) pair contributes
                    // popc(A_row_i & B_col_j) = (A·B) tile element (i, j).
                    for &aw in a_words.iter().take(dim) {
                        if aw == W::ZERO {
                            continue;
                        }
                        for &bw in bt.iter().take(dim) {
                            local += (aw & bw).popcount() as u64;
                        }
                    }
                }
            }
            local
        })
        .sum()
}

/// `bmm_bin_bin_sum_masked()`: the sum of `A · B` restricted to the positions
/// where `mask` has a set bit — the Triangle Counting kernel
/// (`A = L`, `B = Lᵀ`, `mask = L` gives the triangle count).
///
/// # Panics
/// Panics if dimensions or tile sizes are incompatible.
pub fn bmm_bin_bin_sum_masked<W: BitWord>(a: &B2sr<W>, b: &B2sr<W>, mask: &B2sr<W>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    assert_eq!(a.nrows(), mask.nrows(), "mask must match the output rows");
    assert_eq!(
        b.ncols(),
        mask.ncols(),
        "mask must match the output columns"
    );
    assert_eq!(
        a.tile_dim(),
        b.tile_dim(),
        "operands must use the same tile size"
    );
    assert_eq!(
        a.tile_dim(),
        mask.tile_dim(),
        "mask must use the same tile size"
    );
    let dim = a.tile_dim();
    let bt_tiles = transpose_tiles(b);

    (0..mask.n_tile_rows())
        .into_par_iter()
        .map(|tr| {
            let mut local: u64 = 0;
            if tr >= a.n_tile_rows() {
                return 0;
            }
            let a_range = a.tile_row_range(tr);
            let a_cols = &a.tile_colind()[a_range.clone()];
            for m_idx in mask.tile_row_range(tr) {
                let tc = mask.tile_colind()[m_idx];
                let m_words = mask.tile_words(m_idx);
                // C(tr, tc) = Σ_k A(tr, k) · B(k, tc); only positions with a
                // mask bit contribute to the sum.
                for (a_off, &k) in a_cols.iter().enumerate() {
                    let a_idx = a_range.start + a_off;
                    let a_words = a.tile_words(a_idx);
                    if k >= b.n_tile_rows() {
                        continue;
                    }
                    // Find B's tile (k, tc) by binary search in tile-row k.
                    let b_range = b.tile_row_range(k);
                    let b_cols = &b.tile_colind()[b_range.clone()];
                    let Ok(pos) = b_cols.binary_search(&tc) else {
                        continue;
                    };
                    let b_idx = b_range.start + pos;
                    let bt = &bt_tiles[b_idx * dim..(b_idx + 1) * dim];
                    for (i, &aw) in a_words.iter().enumerate().take(dim) {
                        let mw = m_words[i];
                        if aw == W::ZERO || mw == W::ZERO {
                            continue;
                        }
                        for j in mw.iter_ones() {
                            local += (aw & bt[j as usize]).popcount() as u64;
                        }
                    }
                }
            }
            local
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::convert::from_csr;
    use bitgblas_sparse::{ops, Coo, Csr};

    fn sample(n: usize, seed: u64, edges_per_row: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * edges_per_row {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    /// Reference: sum of all entries of the float SpGEMM product.
    fn reference_sum(a: &Csr, b: &Csr) -> u64 {
        let c = ops::spgemm(a, b).unwrap();
        ops::reduce_sum(&c) as u64
    }

    /// Reference: sum of the product restricted to the mask's positions.
    fn reference_masked_sum(a: &Csr, b: &Csr, mask: &Csr) -> u64 {
        let c = ops::spgemm(a, b).unwrap();
        mask.iter()
            .map(|(r, col, _)| c.get(r, col).unwrap_or(0.0) as u64)
            .sum()
    }

    #[test]
    fn sum_matches_float_spgemm_all_variants() {
        let a = sample(70, 3, 4);
        let b = sample(70, 9, 4);
        let expected = reference_sum(&a, &b);
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&b, 4)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&a, 8), &from_csr::<u8>(&b, 8)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u16>(&a, 16), &from_csr::<u16>(&b, 16)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u32>(&a, 32), &from_csr::<u32>(&b, 32)),
            expected
        );
    }

    #[test]
    fn sum_handles_rectangular_tiling_edges() {
        // Dimensions that are not multiples of the tile size.
        for n in [5usize, 17, 33, 61] {
            let a = sample(n, n as u64, 3);
            let b = sample(n, n as u64 + 5, 3);
            let expected = reference_sum(&a, &b);
            assert_eq!(
                bmm_bin_bin_sum(&from_csr::<u32>(&a, 32), &from_csr::<u32>(&b, 32)),
                expected,
                "n={n}"
            );
            assert_eq!(
                bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&b, 4)),
                expected,
                "n={n}"
            );
        }
    }

    #[test]
    fn masked_sum_matches_reference() {
        let a = sample(64, 21, 5);
        let b = sample(64, 22, 5);
        let mask = sample(64, 23, 6);
        let expected = reference_masked_sum(&a, &b, &mask);
        for dim in [4usize, 8] {
            let got = bmm_bin_bin_sum_masked(
                &from_csr::<u8>(&a, dim),
                &from_csr::<u8>(&b, dim),
                &from_csr::<u8>(&mask, dim),
            );
            assert_eq!(got, expected, "dim {dim}");
        }
        let got32 = bmm_bin_bin_sum_masked(
            &from_csr::<u32>(&a, 32),
            &from_csr::<u32>(&b, 32),
            &from_csr::<u32>(&mask, 32),
        );
        assert_eq!(got32, expected);
    }

    #[test]
    fn triangle_counting_formulation_counts_k4_triangles() {
        // K4 has 4 triangles; count with L·L^T masked by L.
        let n = 4;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    coo.push_edge(i, j).unwrap();
                }
            }
        }
        let adj = coo.to_binary_csr();
        let l = adj.lower_triangle();
        let lt = l.transpose();
        let tri = bmm_bin_bin_sum_masked(
            &from_csr::<u8>(&l, 4),
            &from_csr::<u8>(&lt, 4),
            &from_csr::<u8>(&l, 4),
        );
        assert_eq!(tri, 4);
    }

    #[test]
    fn empty_operands_give_zero() {
        let e = Csr::empty(16, 16);
        let b = sample(16, 2, 2);
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&e, 8), &from_csr::<u8>(&b, 8)),
            0
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&b, 8), &from_csr::<u8>(&e, 8)),
            0
        );
        assert_eq!(
            bmm_bin_bin_sum_masked(
                &from_csr::<u8>(&b, 8),
                &from_csr::<u8>(&b, 8),
                &from_csr::<u8>(&e, 8)
            ),
            0
        );
    }

    #[test]
    #[should_panic(expected = "same tile size")]
    fn mismatched_tile_sizes_panic() {
        let a = sample(16, 2, 2);
        let _ = bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&a, 8));
    }

    #[test]
    fn masked_sum_is_never_larger_than_full_sum() {
        let a = sample(48, 31, 4);
        let b = sample(48, 37, 4);
        let mask = sample(48, 41, 8);
        let full = bmm_bin_bin_sum(&from_csr::<u16>(&a, 16), &from_csr::<u16>(&b, 16));
        let masked = bmm_bin_bin_sum_masked(
            &from_csr::<u16>(&a, 16),
            &from_csr::<u16>(&b, 16),
            &from_csr::<u16>(&mask, 16),
        );
        assert!(masked <= full);
    }
}
