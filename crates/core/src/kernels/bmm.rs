//! BMM — Binarized sparse Matrix × Matrix kernels (Table III) and the
//! batched matrix-times-multivector kernels behind the multi-source
//! traversal engine.
//!
//! Two kernel families live here:
//!
//! * **Scalar-reducing SpGEMM** — Triangle Counting is the paper's SpGEMM
//!   consumer: both operands and the mask are binary, and the only output
//!   needed is the *sum* of the product's entries.  `bmm_bin_bin_sum`
//!   computes `Σ_{i,j} (A·B)[i][j]` and `bmm_bin_bin_sum_masked` computes
//!   `Σ_{(i,j) ∈ mask} (A·B)[i][j]`, both over the arithmetic semiring with
//!   binary inputs.  Kernel structure (Listing 2 of the paper): one warp per
//!   tile-row of `A`; the outer loop walks `A`'s non-empty tiles `(tr, k)`,
//!   the middle loop walks `B`'s tile-row `k`, and the inner 32-step loop
//!   broadcasts each bit-row of the `B` tile to all lanes (`__shfl_sync`) so
//!   every lane accumulates `__popc(a_row & b_row)` into its private
//!   register.  Here the broadcast becomes an inner loop over the
//!   pre-transposed `B` tile (the paper stores `B`'s tiles column-major for
//!   the same reason) and the warp scheduling becomes Rayon parallelism over
//!   `A`'s tile-rows.
//!
//! * **Matrix × multivector (frontier matrices)** — `k` concurrent
//!   traversals stacked into an `n × k` multi-vector advance with a single
//!   sweep that loads each adjacency tile **once** and applies it to all
//!   `k` lanes, amortizing the matrix traffic across queries the same way
//!   the bit kernels amortize it across packed elements.  Pull
//!   (`bmm_bin_bits_into`, `bmm_bin_full_into`) and push
//!   (`bmm_push_bits`, `bmm_push_bin_full`, plus the PR-5 `_sharded`
//!   parallel variants over a [`crate::shard::ShardPlan`]'s row shards)
//!   variants mirror the single-vector BMV family; for the Boolean
//!   semiring the lanes pack into `u64` *lane words* (`k.div_ceil(64)`
//!   words per node), so one `OR` per edge advances up to 64 traversals at
//!   once.

use rayon::prelude::*;

use bitgblas_bitops::pack::transpose_tile;
use bitgblas_bitops::BitWord;

use super::simd;
use crate::b2sr::B2sr;
use crate::semiring::Semiring;

/// Pre-transpose every tile of `b` so that word `j` of a transposed tile is
/// bit-*column* `j` of the original tile — the "column-major packing" the
/// paper uses for the `B` operand of BMM.
fn transpose_tiles<W: BitWord>(b: &B2sr<W>) -> Vec<W> {
    let dim = b.tile_dim();
    let mut out = vec![W::ZERO; b.bit_tiles().len()];
    out.par_chunks_mut(dim)
        .enumerate()
        .for_each(|(idx, chunk)| {
            let t = transpose_tile(b.tile_words(idx), dim);
            chunk.copy_from_slice(&t);
        });
    out
}

/// `bmm_bin_bin_sum()`: the sum of all entries of `A · B` over the arithmetic
/// semiring, with both operands binary (in B2SR with the same tile size).
///
/// # Panics
/// Panics if the operands' dimensions or tile sizes are incompatible.
pub fn bmm_bin_bin_sum<W: BitWord>(a: &B2sr<W>, b: &B2sr<W>) -> u64 {
    debug_assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    assert_eq!(
        a.tile_dim(),
        b.tile_dim(),
        "operands must use the same tile size"
    );
    let dim = a.tile_dim();
    let bt_tiles = transpose_tiles(b);

    (0..a.n_tile_rows())
        .into_par_iter()
        .map(|tr| {
            let mut local: u64 = 0;
            for a_idx in a.tile_row_range(tr) {
                let k = a.tile_colind()[a_idx];
                let a_words = a.tile_words(a_idx);
                if k >= b.n_tile_rows() {
                    continue;
                }
                for b_idx in b.tile_row_range(k) {
                    let bt = &bt_tiles[b_idx * dim..(b_idx + 1) * dim];
                    // Every (lane i, broadcast j) pair contributes
                    // popc(A_row_i & B_col_j) = (A·B) tile element (i, j).
                    for &aw in a_words.iter().take(dim) {
                        if aw == W::ZERO {
                            continue;
                        }
                        for &bw in bt.iter().take(dim) {
                            local += (aw & bw).popcount() as u64;
                        }
                    }
                }
            }
            local
        })
        .sum()
}

/// `bmm_bin_bin_sum_masked()`: the sum of `A · B` restricted to the positions
/// where `mask` has a set bit — the Triangle Counting kernel
/// (`A = L`, `B = Lᵀ`, `mask = L` gives the triangle count).
///
/// # Panics
/// Panics if dimensions or tile sizes are incompatible.
pub fn bmm_bin_bin_sum_masked<W: BitWord>(a: &B2sr<W>, b: &B2sr<W>, mask: &B2sr<W>) -> u64 {
    debug_assert_eq!(a.ncols(), b.nrows(), "inner dimensions must agree");
    debug_assert_eq!(a.nrows(), mask.nrows(), "mask must match the output rows");
    assert_eq!(
        b.ncols(),
        mask.ncols(),
        "mask must match the output columns"
    );
    assert_eq!(
        a.tile_dim(),
        b.tile_dim(),
        "operands must use the same tile size"
    );
    assert_eq!(
        a.tile_dim(),
        mask.tile_dim(),
        "mask must use the same tile size"
    );
    let dim = a.tile_dim();
    let bt_tiles = transpose_tiles(b);

    (0..mask.n_tile_rows())
        .into_par_iter()
        .map(|tr| {
            let mut local: u64 = 0;
            if tr >= a.n_tile_rows() {
                return 0;
            }
            let a_range = a.tile_row_range(tr);
            let a_cols = &a.tile_colind()[a_range.clone()];
            for m_idx in mask.tile_row_range(tr) {
                let tc = mask.tile_colind()[m_idx];
                let m_words = mask.tile_words(m_idx);
                // C(tr, tc) = Σ_k A(tr, k) · B(k, tc); only positions with a
                // mask bit contribute to the sum.
                for (a_off, &k) in a_cols.iter().enumerate() {
                    let a_idx = a_range.start + a_off;
                    let a_words = a.tile_words(a_idx);
                    if k >= b.n_tile_rows() {
                        continue;
                    }
                    // Find B's tile (k, tc) by binary search in tile-row k.
                    let b_range = b.tile_row_range(k);
                    let b_cols = &b.tile_colind()[b_range.clone()];
                    let Ok(pos) = b_cols.binary_search(&tc) else {
                        continue;
                    };
                    let b_idx = b_range.start + pos;
                    let bt = &bt_tiles[b_idx * dim..(b_idx + 1) * dim];
                    for (i, &aw) in a_words.iter().enumerate().take(dim) {
                        let mw = m_words[i];
                        if aw == W::ZERO || mw == W::ZERO {
                            continue;
                        }
                        for j in mw.iter_ones() {
                            local += (aw & bt[j as usize]).popcount() as u64;
                        }
                    }
                }
            }
            local
        })
        .sum()
}

// ---------------------------------------------------------------------------
// Matrix × multivector (frontier-matrix) kernels
// ---------------------------------------------------------------------------

/// `bmm_bin_bits_into()`: pull-direction Boolean matrix × multivector.
///
/// `xw` holds the operand's per-node lane words (`k.div_ceil(64)` `u64`s
/// per node, bit `l` = lane `l` active); `xa` is the tilewise-packed
/// **any-lane-active** indicator of the operand ([`pack_vector_bits`]-style:
/// bit `c` of word `tc` set iff node `tc*dim + c` has at least one active
/// lane); `sup` optionally carries the flat mask as per-node *suppressed*
/// lane words (bit `l` set = output lane `l` of that node is masked out).
/// `yw` must hold `n_tile_rows * tile_dim * wpn` words and is fully
/// overwritten.
///
/// Output node `i`'s lane word `t` ORs the lane words of every *active*
/// in-neighbour: `xa` keeps the single-vector kernel's word-level streaming
/// advantage — a whole tile whose column range holds no active node is
/// skipped with one AND, and within a tile only the edges that land on
/// active nodes pay the per-edge lane OR (one OR advances up to 64
/// traversals).  With `sup` present, rows whose every lane is masked out
/// are skipped entirely (a whole tile-row of them costs one word test) —
/// in a late BFS iteration, where almost every vertex is visited in every
/// lane, the sweep collapses to streaming the tile index.  Rayon
/// parallelises over tile-rows like the single-vector pull kernels.
///
/// [`pack_vector_bits`]: crate::kernels::pack_vector_bits
pub fn bmm_bin_bits_into<W: BitWord>(
    a: &B2sr<W>,
    xw: &[u64],
    k: usize,
    xa: &[W],
    sup: Option<&[u64]>,
    yw: &mut [u64],
) {
    let dim = a.tile_dim();
    let wpn = k.div_ceil(64);
    assert!(
        xw.len() >= a.ncols() * wpn,
        "operand has too few lane words"
    );
    debug_assert!(xa.len() >= a.n_tile_cols(), "active mask has too few words");
    if let Some(s) = sup {
        debug_assert!(s.len() >= a.nrows() * wpn, "mask has too few lane words");
    }
    debug_assert!(
        yw.len() >= a.n_tile_rows() * dim * wpn,
        "output has too few lane words"
    );
    let nrows = a.nrows();
    // Bits past lane k-1 in the last word of each node are never set.
    let tail = if k.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (k % 64)) - 1
    };
    let lane_mask = |t: usize| if t + 1 == wpn { tail } else { !0u64 };
    yw.par_chunks_mut(dim * wpn)
        .enumerate()
        .for_each(|(tr, out)| {
            for w in out.iter_mut() {
                *w = 0;
            }
            if tr >= a.n_tile_rows() {
                return;
            }
            // Which rows of this tile-row still have an unmasked lane; a fully
            // suppressed tile-row skips its tiles altogether.
            let mut row_allow = !W::ZERO;
            if let Some(s) = sup {
                row_allow = W::ZERO;
                for r in 0..dim {
                    let gr = tr * dim + r;
                    if gr < nrows && (0..wpn).any(|t| !s[gr * wpn + t] & lane_mask(t) != 0) {
                        row_allow = row_allow.with_bit(r as u32);
                    }
                }
                if row_allow == W::ZERO {
                    return;
                }
            }
            for idx in a.tile_row_range(tr) {
                let tc = a.tile_colind()[idx];
                let xaw = xa[tc];
                if xaw == W::ZERO {
                    // No active node in this tile-column: the whole tile
                    // contributes nothing to any lane.
                    continue;
                }
                let base = tc * dim;
                let words = a.tile_words(idx);
                for (r, &aw) in words.iter().enumerate().take(dim) {
                    if !row_allow.bit(r as u32) {
                        continue;
                    }
                    // Only the edges landing on active nodes carry lanes; `xa`
                    // also masks the ragged last tile-column (bits past ncols
                    // are never active).
                    let hits = aw & xaw;
                    if hits == W::ZERO {
                        continue;
                    }
                    if wpn == 1 {
                        // The common shape (k ≤ 64): one accumulator register.
                        let mut acc = out[r];
                        for dc in hits.iter_ones() {
                            acc |= xw[base + dc as usize];
                        }
                        out[r] = acc;
                    } else {
                        for dc in hits.iter_ones() {
                            let src = &xw[(base + dc as usize) * wpn..][..wpn];
                            for (t, &s) in src.iter().enumerate() {
                                out[r * wpn + t] |= s;
                            }
                        }
                    }
                }
            }
            // Store-side mask: clear the suppressed lanes of every produced row.
            if let Some(s) = sup {
                for r in 0..dim {
                    let gr = tr * dim + r;
                    if gr >= nrows {
                        break;
                    }
                    for t in 0..wpn {
                        out[r * wpn + t] &= !s[gr * wpn + t];
                    }
                }
            }
        });
}

/// `bmm_push_bits()`: push-direction Boolean matrix × multivector.
/// `frontier` lists, in ascending order, the *node* indices (rows of `a`)
/// with at least one active lane; each frontier node's whole lane word is
/// OR-scattered into every out-neighbour, so one scatter advances all of
/// that node's active traversals at once.  `yw` holds `ncols * wpn` lane
/// words and must be zeroed by the caller.  Serial and allocation-free like
/// the single-vector push kernels — the right shape for tiny frontiers, and
/// the per-segment worker of [`bmm_push_bits_sharded`] for everything else.
pub fn bmm_push_bits<W: BitWord>(
    a: &B2sr<W>,
    frontier: &[usize],
    xw: &[u64],
    wpn: usize,
    yw: &mut [u64],
) {
    let dim = a.tile_dim();
    assert!(
        xw.len() >= a.nrows() * wpn,
        "operand has too few lane words"
    );
    debug_assert!(yw.len() >= a.ncols() * wpn, "output has too few lane words");
    let ncols = a.ncols();
    for &u in frontier {
        debug_assert!(u < a.nrows(), "frontier node out of range");
        let (tr, r) = (u / dim, u % dim);
        if wpn == 1 {
            // The common shape (k ≤ 64): the node's whole batch is one word.
            let srcw = xw[u];
            for idx in a.tile_row_range(tr) {
                let base = a.tile_colind()[idx] * dim;
                let w = a.tile_words(idx)[r];
                for dc in w.iter_ones() {
                    let j = base + dc as usize;
                    if j < ncols {
                        yw[j] |= srcw;
                    }
                }
            }
            continue;
        }
        let src = &xw[u * wpn..(u + 1) * wpn];
        for idx in a.tile_row_range(tr) {
            let base = a.tile_colind()[idx] * dim;
            let w = a.tile_words(idx)[r];
            for dc in w.iter_ones() {
                let j = base + dc as usize;
                if j < ncols {
                    let dst = &mut yw[j * wpn..(j + 1) * wpn];
                    for (t, &s) in src.iter().enumerate() {
                        dst[t] |= s;
                    }
                }
            }
        }
    }
}

/// `bmm_bin_full_into()`: pull-direction full-precision matrix ×
/// multivector, generic over the semiring.  `x` is the flat node-major
/// `ncols × k` operand; `y` must hold `n_tile_rows * tile_dim * k` entries
/// and is fully overwritten (padded rows receive the semiring identity; the
/// caller truncates to `nrows * k`).  Each loaded tile bit triggers `k`
/// lane reductions over two contiguous `k`-slices — the whole batch
/// advances in one matrix sweep.
///
/// `xa` optionally carries the tilewise-packed any-lane-active indicator
/// (see [`bmm_bin_bits_into`]); when present, tiles and edges landing only
/// on all-identity nodes are skipped at word granularity.  Only exact for
/// [`Semiring::push_safe`] semirings — the caller passes `None` otherwise.
pub fn bmm_bin_full_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    k: usize,
    semiring: Semiring,
    xa: Option<&[W]>,
    y: &mut [f32],
) {
    let dim = a.tile_dim();
    debug_assert!(x.len() >= a.ncols() * k, "operand shorter than ncols * k");
    debug_assert!(
        y.len() >= a.n_tile_rows() * dim * k,
        "output shorter than the padded row count * k"
    );
    if let Some(xa) = xa {
        debug_assert!(xa.len() >= a.n_tile_cols(), "active mask has too few words");
        debug_assert!(
            semiring.push_safe(),
            "active-skip needs a push-safe semiring"
        );
    }
    let ncols = a.ncols();
    y.par_chunks_mut(dim * k).enumerate().for_each(|(tr, out)| {
        for v in out.iter_mut() {
            *v = semiring.identity();
        }
        if tr >= a.n_tile_rows() {
            return;
        }
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xaw = match xa {
                Some(xa) => {
                    let w = xa[tc];
                    if w == W::ZERO {
                        continue;
                    }
                    w
                }
                None => !W::ZERO,
            };
            let base = tc * dim;
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                let hits = aw & xaw;
                if hits == W::ZERO {
                    continue;
                }
                for dc in hits.iter_ones() {
                    let j = base + dc as usize;
                    // Guard the ragged last tile-column (an all-ones `xaw`
                    // does not mask it).
                    if j < ncols {
                        let src = &x[j * k..(j + 1) * k];
                        let dst = &mut out[r * k..(r + 1) * k];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = semiring.reduce(*d, semiring.combine(s));
                        }
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// SWAR-vector batched sweeps (PR 9)
// ---------------------------------------------------------------------------
//
// The batched kernels are already word-parallel across *lanes* (one `u64`
// lane word carries 64 traversals), so vectorizing them means widening the
// per-node lane-word transfers, not the tile scan: the `wpn > 1` spill path
// moves whole lane-word slices with the unrolled [`simd::or_into`] /
// [`simd::andnot_into`] block primitives, and the full-precision fold runs
// the k-lane reduction over fixed-width blocks the compiler can keep in
// vector registers.  Both variants visit tiles, rows, and set bits in
// exactly the scalar kernels' order and fold each output lane's terms in the
// same sequence, so results are bit-identical for every semiring — the
// property `tests/simd_parity.rs` locks in.

/// Vector variant of [`bmm_bin_bits_into`] — identical contract and
/// bit-identical output.
///
/// The `wpn == 1` shape (k ≤ 64) is already a single-register OR
/// accumulator and is kept as-is; the spill shape (`k > 64`) replaces the
/// per-word scalar loop with [`simd::or_into`] over each hit's contiguous
/// lane-word slice, and the store-side mask with [`simd::andnot_into`].
pub fn bmm_bin_bits_simd_into<W: BitWord>(
    a: &B2sr<W>,
    xw: &[u64],
    k: usize,
    xa: &[W],
    sup: Option<&[u64]>,
    yw: &mut [u64],
) {
    let dim = a.tile_dim();
    let wpn = k.div_ceil(64);
    assert!(
        xw.len() >= a.ncols() * wpn,
        "operand has too few lane words"
    );
    debug_assert!(xa.len() >= a.n_tile_cols(), "active mask has too few words");
    if let Some(s) = sup {
        debug_assert!(s.len() >= a.nrows() * wpn, "mask has too few lane words");
    }
    debug_assert!(
        yw.len() >= a.n_tile_rows() * dim * wpn,
        "output has too few lane words"
    );
    let nrows = a.nrows();
    let tail = if k.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (k % 64)) - 1
    };
    let lane_mask = |t: usize| if t + 1 == wpn { tail } else { !0u64 };
    yw.par_chunks_mut(dim * wpn)
        .enumerate()
        .for_each(|(tr, out)| {
            for w in out.iter_mut() {
                *w = 0;
            }
            if tr >= a.n_tile_rows() {
                return;
            }
            let mut row_allow = !W::ZERO;
            if let Some(s) = sup {
                row_allow = W::ZERO;
                for r in 0..dim {
                    let gr = tr * dim + r;
                    if gr < nrows && (0..wpn).any(|t| !s[gr * wpn + t] & lane_mask(t) != 0) {
                        row_allow = row_allow.with_bit(r as u32);
                    }
                }
                if row_allow == W::ZERO {
                    return;
                }
            }
            for idx in a.tile_row_range(tr) {
                let tc = a.tile_colind()[idx];
                let xaw = xa[tc];
                if xaw == W::ZERO {
                    continue;
                }
                let base = tc * dim;
                let words = a.tile_words(idx);
                for (r, &aw) in words.iter().enumerate().take(dim) {
                    if !row_allow.bit(r as u32) {
                        continue;
                    }
                    let hits = aw & xaw;
                    if hits == W::ZERO {
                        continue;
                    }
                    if wpn == 1 {
                        let mut acc = out[r];
                        for dc in hits.iter_ones() {
                            acc |= xw[base + dc as usize];
                        }
                        out[r] = acc;
                    } else {
                        for dc in hits.iter_ones() {
                            let src = &xw[(base + dc as usize) * wpn..][..wpn];
                            simd::or_into(&mut out[r * wpn..][..wpn], src);
                        }
                    }
                }
            }
            if let Some(s) = sup {
                for r in 0..dim {
                    let gr = tr * dim + r;
                    if gr >= nrows {
                        break;
                    }
                    simd::andnot_into(&mut out[r * wpn..][..wpn], &s[gr * wpn..][..wpn]);
                }
            }
        });
}

/// Vector variant of [`bmm_bin_full_into`] — identical contract and
/// bit-identical output.
///
/// Each hit's k-lane semiring fold runs in fixed blocks of 8 lanes
/// (`chunks_exact`) so the per-lane `reduce(combine(·))` chain compiles to
/// straight-line code over contiguous slices the auto-vectorizer can keep in
/// vector registers; the remainder lanes fold in the same order as the
/// scalar kernel, so every output lane sees the same reduction sequence.
pub fn bmm_bin_full_simd_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    k: usize,
    semiring: Semiring,
    xa: Option<&[W]>,
    y: &mut [f32],
) {
    let dim = a.tile_dim();
    debug_assert!(x.len() >= a.ncols() * k, "operand shorter than ncols * k");
    debug_assert!(
        y.len() >= a.n_tile_rows() * dim * k,
        "output shorter than the padded row count * k"
    );
    if let Some(xa) = xa {
        debug_assert!(xa.len() >= a.n_tile_cols(), "active mask has too few words");
        debug_assert!(
            semiring.push_safe(),
            "active-skip needs a push-safe semiring"
        );
    }
    let ncols = a.ncols();
    y.par_chunks_mut(dim * k).enumerate().for_each(|(tr, out)| {
        for v in out.iter_mut() {
            *v = semiring.identity();
        }
        if tr >= a.n_tile_rows() {
            return;
        }
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xaw = match xa {
                Some(xa) => {
                    let w = xa[tc];
                    if w == W::ZERO {
                        continue;
                    }
                    w
                }
                None => !W::ZERO,
            };
            let base = tc * dim;
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                let hits = aw & xaw;
                if hits == W::ZERO {
                    continue;
                }
                for dc in hits.iter_ones() {
                    let j = base + dc as usize;
                    if j < ncols {
                        let src = &x[j * k..(j + 1) * k];
                        let dst = &mut out[r * k..(r + 1) * k];
                        let mut db = dst.chunks_exact_mut(8);
                        let mut sb = src.chunks_exact(8);
                        for (d8, s8) in (&mut db).zip(&mut sb) {
                            for (d, &s) in d8.iter_mut().zip(s8) {
                                *d = semiring.reduce(*d, semiring.combine(s));
                            }
                        }
                        for (d, &s) in db.into_remainder().iter_mut().zip(sb.remainder()) {
                            *d = semiring.reduce(*d, semiring.combine(s));
                        }
                    }
                }
            }
        }
    });
}

/// `bmm_push_bin_full()`: push-direction full-precision matrix ×
/// multivector.  For every frontier node `u` (any lane active) and every
/// out-neighbour `j`, all `k` lane contributions `⊗(x[u*k+l])` fold into
/// `y[j*k+l]` with the additive monoid; `allow` filters flat output
/// positions (`j*k + l`, the flat per-lane mask) and `y` must be pre-filled
/// with the semiring identity.  Only valid for
/// [`Semiring::push_safe`] semirings; serial and allocation-free, and the
/// per-segment worker of [`bmm_push_bin_full_sharded`].
pub fn bmm_push_bin_full<W: BitWord, M: Fn(usize) -> bool>(
    a: &B2sr<W>,
    x: &[f32],
    k: usize,
    frontier: &[usize],
    semiring: Semiring,
    allow: M,
    y: &mut [f32],
) {
    let dim = a.tile_dim();
    debug_assert!(x.len() >= a.nrows() * k, "operand shorter than nrows * k");
    let ncols = a.ncols();
    for &u in frontier {
        debug_assert!(u < a.nrows(), "frontier node out of range");
        let src = &x[u * k..(u + 1) * k];
        let (tr, r) = (u / dim, u % dim);
        for idx in a.tile_row_range(tr) {
            let base = a.tile_colind()[idx] * dim;
            let w = a.tile_words(idx)[r];
            for dc in w.iter_ones() {
                let j = base + dc as usize;
                if j >= ncols {
                    continue;
                }
                for (l, &s) in src.iter().enumerate() {
                    let flat = j * k + l;
                    if allow(flat) {
                        y[flat] = semiring.reduce(y[flat], semiring.combine(s));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded (parallel) batched push kernels — PR 5
// ---------------------------------------------------------------------------

/// Sharded parallel variant of [`bmm_push_bits`].  `cuts` splits the
/// ascending node frontier into shard-local segments (see
/// [`crate::shard::ShardPlan::segment_frontier`]); each segment OR-scatters
/// its nodes' lane words into a privatized chunk of `scratch`
/// (`n_segments × ncols × wpn` words, zeroed by the caller), segments run
/// on up to `threads` workers, and the chunks merge into `yw` by word-OR in
/// ascending segment order — exact, so bit-identical to the serial scatter.
#[allow(clippy::too_many_arguments)]
pub fn bmm_push_bits_sharded<W: BitWord>(
    a: &B2sr<W>,
    frontier: &[usize],
    cuts: &[usize],
    xw: &[u64],
    wpn: usize,
    threads: usize,
    scratch: &mut [u64],
    yw: &mut [u64],
) {
    let width = a.ncols() * wpn;
    let n_seg = cuts.len().saturating_sub(1);
    debug_assert!(yw.len() >= width, "output has too few lane words");
    assert!(
        scratch.len() >= n_seg * width,
        "scratch must hold one output-width chunk per segment"
    );
    crate::shard::scatter_segments(threads, n_seg, scratch, width, |s, chunk| {
        bmm_push_bits(a, &frontier[cuts[s]..cuts[s + 1]], xw, wpn, chunk);
    });
    crate::shard::merge_segments(
        threads,
        n_seg,
        scratch,
        width,
        &mut yw[..width],
        |acc, v| acc | v,
    );
}

/// Sharded parallel variant of [`bmm_push_bin_full`].  Segments scatter
/// into privatized identity-filled chunks of `scratch` (`n_segments ×
/// ncols × k` entries) and fold into `y` with the semiring monoid in
/// ascending segment order — the fold grouping depends only on `cuts`, so
/// the flat `n × k` result is bit-identical across thread counts.
#[allow(clippy::too_many_arguments)]
pub fn bmm_push_bin_full_sharded<W: BitWord, M: Fn(usize) -> bool + Sync>(
    a: &B2sr<W>,
    x: &[f32],
    k: usize,
    frontier: &[usize],
    cuts: &[usize],
    semiring: Semiring,
    allow: M,
    threads: usize,
    scratch: &mut [f32],
    y: &mut [f32],
) {
    let width = a.ncols() * k;
    let n_seg = cuts.len().saturating_sub(1);
    debug_assert!(y.len() >= width, "output shorter than ncols * k");
    assert!(
        scratch.len() >= n_seg * width,
        "scratch must hold one output-width chunk per segment"
    );
    crate::shard::scatter_segments(threads, n_seg, scratch, width, |s, chunk| {
        bmm_push_bin_full(
            a,
            x,
            k,
            &frontier[cuts[s]..cuts[s + 1]],
            semiring,
            &allow,
            chunk,
        );
    });
    crate::shard::merge_segments(threads, n_seg, scratch, width, &mut y[..width], |acc, v| {
        semiring.reduce(acc, v)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::convert::from_csr;
    use bitgblas_sparse::{ops, Coo, Csr};

    fn sample(n: usize, seed: u64, edges_per_row: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * edges_per_row {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    /// Reference: sum of all entries of the float SpGEMM product.
    fn reference_sum(a: &Csr, b: &Csr) -> u64 {
        let c = ops::spgemm(a, b).unwrap();
        ops::reduce_sum(&c) as u64
    }

    /// Reference: sum of the product restricted to the mask's positions.
    fn reference_masked_sum(a: &Csr, b: &Csr, mask: &Csr) -> u64 {
        let c = ops::spgemm(a, b).unwrap();
        mask.iter()
            .map(|(r, col, _)| c.get(r, col).unwrap_or(0.0) as u64)
            .sum()
    }

    #[test]
    fn sum_matches_float_spgemm_all_variants() {
        let a = sample(70, 3, 4);
        let b = sample(70, 9, 4);
        let expected = reference_sum(&a, &b);
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&b, 4)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&a, 8), &from_csr::<u8>(&b, 8)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u16>(&a, 16), &from_csr::<u16>(&b, 16)),
            expected
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u32>(&a, 32), &from_csr::<u32>(&b, 32)),
            expected
        );
    }

    #[test]
    fn sum_handles_rectangular_tiling_edges() {
        // Dimensions that are not multiples of the tile size.
        for n in [5usize, 17, 33, 61] {
            let a = sample(n, n as u64, 3);
            let b = sample(n, n as u64 + 5, 3);
            let expected = reference_sum(&a, &b);
            assert_eq!(
                bmm_bin_bin_sum(&from_csr::<u32>(&a, 32), &from_csr::<u32>(&b, 32)),
                expected,
                "n={n}"
            );
            assert_eq!(
                bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&b, 4)),
                expected,
                "n={n}"
            );
        }
    }

    #[test]
    fn masked_sum_matches_reference() {
        let a = sample(64, 21, 5);
        let b = sample(64, 22, 5);
        let mask = sample(64, 23, 6);
        let expected = reference_masked_sum(&a, &b, &mask);
        for dim in [4usize, 8] {
            let got = bmm_bin_bin_sum_masked(
                &from_csr::<u8>(&a, dim),
                &from_csr::<u8>(&b, dim),
                &from_csr::<u8>(&mask, dim),
            );
            assert_eq!(got, expected, "dim {dim}");
        }
        let got32 = bmm_bin_bin_sum_masked(
            &from_csr::<u32>(&a, 32),
            &from_csr::<u32>(&b, 32),
            &from_csr::<u32>(&mask, 32),
        );
        assert_eq!(got32, expected);
    }

    #[test]
    fn triangle_counting_formulation_counts_k4_triangles() {
        // K4 has 4 triangles; count with L·L^T masked by L.
        let n = 4;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    coo.push_edge(i, j).unwrap();
                }
            }
        }
        let adj = coo.to_binary_csr();
        let l = adj.lower_triangle();
        let lt = l.transpose();
        let tri = bmm_bin_bin_sum_masked(
            &from_csr::<u8>(&l, 4),
            &from_csr::<u8>(&lt, 4),
            &from_csr::<u8>(&l, 4),
        );
        assert_eq!(tri, 4);
    }

    #[test]
    fn empty_operands_give_zero() {
        let e = Csr::empty(16, 16);
        let b = sample(16, 2, 2);
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&e, 8), &from_csr::<u8>(&b, 8)),
            0
        );
        assert_eq!(
            bmm_bin_bin_sum(&from_csr::<u8>(&b, 8), &from_csr::<u8>(&e, 8)),
            0
        );
        assert_eq!(
            bmm_bin_bin_sum_masked(
                &from_csr::<u8>(&b, 8),
                &from_csr::<u8>(&b, 8),
                &from_csr::<u8>(&e, 8)
            ),
            0
        );
    }

    #[test]
    #[should_panic(expected = "same tile size")]
    fn mismatched_tile_sizes_panic() {
        let a = sample(16, 2, 2);
        let _ = bmm_bin_bin_sum(&from_csr::<u8>(&a, 4), &from_csr::<u8>(&a, 8));
    }

    #[test]
    fn masked_sum_is_never_larger_than_full_sum() {
        let a = sample(48, 31, 4);
        let b = sample(48, 37, 4);
        let mask = sample(48, 41, 8);
        let full = bmm_bin_bin_sum(&from_csr::<u16>(&a, 16), &from_csr::<u16>(&b, 16));
        let masked = bmm_bin_bin_sum_masked(
            &from_csr::<u16>(&a, 16),
            &from_csr::<u16>(&b, 16),
            &from_csr::<u16>(&mask, 16),
        );
        assert!(masked <= full);
    }

    // -- matrix × multivector kernels ---------------------------------------

    use crate::kernels::bmv::{bmv_bin_full_full, bmv_push_bin_full, pack_vector_bits};

    /// A deterministic n × k operand with a mix of active and identity lanes.
    fn sample_multi(n: usize, k: usize, semiring: Semiring) -> Vec<f32> {
        (0..n * k)
            .map(|f| {
                if (f * 13 + 7) % 5 == 0 {
                    ((f % 4) + 1) as f32
                } else {
                    semiring.identity()
                }
            })
            .collect()
    }

    fn lane_of(flat: &[f32], k: usize, l: usize) -> Vec<f32> {
        flat.chunks_exact(k).map(|lanes| lanes[l]).collect()
    }

    /// Tilewise-packed any-lane-active indicator of a flat n × k operand.
    fn active_words<W: BitWord>(flat: &[f32], k: usize, semiring: Semiring, dim: usize) -> Vec<W> {
        let flags: Vec<bool> = flat
            .chunks_exact(k)
            .map(|lanes| lanes.iter().any(|&v| !semiring.is_identity(v)))
            .collect();
        pack_vector_bits(&flags, dim)
    }

    /// The batched pull kernel equals k independent single-vector pulls.
    #[test]
    fn bin_full_multi_pull_equals_per_lane_bmv() {
        let a = sample(61, 5, 4);
        for k in [1usize, 3, 8] {
            for semiring in [
                Semiring::Arithmetic,
                Semiring::Boolean,
                Semiring::MinPlus(1.0),
            ] {
                let x = sample_multi(61, k, semiring);
                macro_rules! check {
                    ($w:ty, $dim:expr) => {{
                        let b = from_csr::<$w>(&a, $dim);
                        // With and without the active-skip words: both must
                        // equal the per-lane single-vector sweeps.
                        let xa = active_words::<$w>(&x, k, semiring, $dim);
                        for xa_opt in [None, Some(xa.as_slice())] {
                            let mut y = vec![42.0f32; b.n_tile_rows() * $dim * k];
                            bmm_bin_full_into(&b, &x, k, semiring, xa_opt, &mut y);
                            for l in 0..k {
                                let want = bmv_bin_full_full(&b, &lane_of(&x, k, l), semiring);
                                for (i, &w) in want.iter().enumerate() {
                                    let got = y[i * k + l];
                                    let both_inf = got.is_infinite() && w.is_infinite();
                                    assert!(
                                        both_inf || (got - w).abs() < 1e-4,
                                        "{semiring:?} k={k} dim={} lane {l} node {i}: {got} vs {w} \
                                         (skip={})",
                                        $dim,
                                        xa_opt.is_some()
                                    );
                                }
                            }
                        }
                    }};
                }
                check!(u8, 4);
                check!(u8, 8);
                check!(u16, 16);
                check!(u32, 32);
            }
        }
    }

    /// The batched push scatter equals k independent single-vector pushes.
    #[test]
    fn push_multi_full_equals_per_lane_push() {
        let a = sample(53, 11, 3);
        let k = 4;
        let semiring = Semiring::MinPlus(1.0);
        let x = sample_multi(53, k, semiring);
        let frontier: Vec<usize> = x
            .chunks_exact(k)
            .enumerate()
            .filter(|(_, lanes)| lanes.iter().any(|&v| !semiring.is_identity(v)))
            .map(|(i, _)| i)
            .collect();
        let b = from_csr::<u8>(&a, 8);
        let mut y = vec![semiring.identity(); a.ncols() * k];
        bmm_push_bin_full(&b, &x, k, &frontier, semiring, |_| true, &mut y);
        for l in 0..k {
            let lane = lane_of(&x, k, l);
            let lane_frontier: Vec<usize> = (0..53)
                .filter(|&i| !semiring.is_identity(lane[i]))
                .collect();
            let mut want = vec![semiring.identity(); a.ncols()];
            bmv_push_bin_full(&b, &lane, &lane_frontier, semiring, |_| true, &mut want);
            for (j, &w) in want.iter().enumerate() {
                let got = y[j * k + l];
                let both_inf = got.is_infinite() && w.is_infinite();
                assert!(both_inf || (got - w).abs() < 1e-4, "lane {l} node {j}");
            }
        }
    }

    /// The lane-word Boolean kernels (pull and push) equal the flat
    /// full-precision Boolean sweep.
    #[test]
    fn boolean_lane_word_kernels_match_full_precision() {
        let a = sample(47, 17, 4);
        for k in [1usize, 7, 64, 70] {
            let wpn = k.div_ceil(64);
            let x = sample_multi(47, k, Semiring::Boolean);
            // Pack the operand into lane words.
            let mut xw = vec![0u64; 47 * wpn];
            for (i, lanes) in x.chunks_exact(k).enumerate() {
                for (l, &v) in lanes.iter().enumerate() {
                    if v != 0.0 {
                        xw[i * wpn + l / 64] |= 1 << (l % 64);
                    }
                }
            }
            let b = from_csr::<u8>(&a, 8);
            let mut want = vec![0.0f32; b.n_tile_rows() * 8 * k];
            bmm_bin_full_into(&b, &x, k, Semiring::Boolean, None, &mut want);

            let xa = active_words::<u8>(&x, k, Semiring::Boolean, 8);
            let mut yw = vec![u64::MAX; b.n_tile_rows() * 8 * wpn];
            bmm_bin_bits_into(&b, &xw, k, &xa, None, &mut yw);
            for i in 0..a.nrows() {
                for l in 0..k {
                    let bit = yw[i * wpn + l / 64] >> (l % 64) & 1 != 0;
                    assert_eq!(bit, want[i * k + l] != 0.0, "pull k={k} node {i} lane {l}");
                }
            }

            let frontier: Vec<usize> = (0..47)
                .filter(|&i| xw[i * wpn..(i + 1) * wpn].iter().any(|&w| w != 0))
                .collect();
            let bt = from_csr::<u8>(&a.transpose(), 8);
            let mut pw = vec![0u64; a.nrows() * wpn];
            bmm_push_bits(&bt, &frontier, &xw, wpn, &mut pw);
            // Push scatters rows of Aᵀ = pull over A: same product.
            for i in 0..a.nrows() {
                for l in 0..k {
                    let bit = pw[i * wpn + l / 64] >> (l % 64) & 1 != 0;
                    assert_eq!(bit, want[i * k + l] != 0.0, "push k={k} node {i} lane {l}");
                }
            }
        }
    }

    /// The in-kernel suppressed-lane-word mask equals masking after the
    /// fact, including fully-suppressed rows and tile-rows (the word-skip
    /// paths).
    #[test]
    fn boolean_pull_kernel_mask_equals_post_masking() {
        let a = sample(59, 61, 4);
        for k in [5usize, 64, 70] {
            let wpn = k.div_ceil(64);
            let x = sample_multi(59, k, Semiring::Boolean);
            let mut xw = vec![0u64; 59 * wpn];
            for (i, lanes) in x.chunks_exact(k).enumerate() {
                for (l, &v) in lanes.iter().enumerate() {
                    if v != 0.0 {
                        xw[i * wpn + l / 64] |= 1 << (l % 64);
                    }
                }
            }
            let b = from_csr::<u8>(&a, 8);
            let xa = active_words::<u8>(&x, k, Semiring::Boolean, 8);
            // Suppress a mix: every lane of nodes 0..16 (whole tile-rows
            // skip), odd lanes elsewhere.
            let mut sup = vec![0u64; 59 * wpn];
            for i in 0..59usize {
                for l in 0..k {
                    if i < 16 || l % 2 == 1 {
                        sup[i * wpn + l / 64] |= 1 << (l % 64);
                    }
                }
            }
            let mut masked = vec![u64::MAX; b.n_tile_rows() * 8 * wpn];
            bmm_bin_bits_into(&b, &xw, k, &xa, Some(&sup), &mut masked);
            let mut unmasked = vec![u64::MAX; b.n_tile_rows() * 8 * wpn];
            bmm_bin_bits_into(&b, &xw, k, &xa, None, &mut unmasked);
            for i in 0..59usize {
                for t in 0..wpn {
                    assert_eq!(
                        masked[i * wpn + t],
                        unmasked[i * wpn + t] & !sup[i * wpn + t],
                        "k={k} node {i} word {t}"
                    );
                }
            }
        }
    }

    /// Single-lane batched kernels degenerate to the single-vector kernels.
    #[test]
    fn k_equals_one_matches_single_vector_kernels() {
        let a = sample(39, 23, 3);
        let x: Vec<f32> = (0..39)
            .map(|i| if i % 3 == 0 { 2.0 } else { 0.0 })
            .collect();
        let b = from_csr::<u16>(&a, 16);
        let mut y = vec![0.0f32; b.n_tile_rows() * 16];
        bmm_bin_full_into(&b, &x, 1, Semiring::Arithmetic, None, &mut y);
        let want = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
        assert_eq!(&y[..39], &want[..]);
    }

    // -- differential SWAR-vector vs scalar (PR 9) --------------------------

    /// The vector Boolean batched kernel is word-identical to the scalar
    /// one, across the wpn == 1 shape, the k > 64 lane-word spill, and the
    /// suppressed-lane store mask.
    #[test]
    fn simd_bin_bits_is_bit_identical_to_scalar() {
        let a = sample(53, 77, 4);
        for k in [1usize, 7, 64, 70, 130] {
            let wpn = k.div_ceil(64);
            let x = sample_multi(53, k, Semiring::Boolean);
            let mut xw = vec![0u64; 53 * wpn];
            for (i, lanes) in x.chunks_exact(k).enumerate() {
                for (l, &v) in lanes.iter().enumerate() {
                    if v != 0.0 {
                        xw[i * wpn + l / 64] |= 1 << (l % 64);
                    }
                }
            }
            let mut sup = vec![0u64; 53 * wpn];
            for i in 0..53usize {
                for l in 0..k {
                    if i < 12 || l % 3 == 2 {
                        sup[i * wpn + l / 64] |= 1 << (l % 64);
                    }
                }
            }
            macro_rules! check {
                ($w:ty, $dim:expr) => {{
                    let b = from_csr::<$w>(&a, $dim);
                    let xa = active_words::<$w>(&x, k, Semiring::Boolean, $dim);
                    let len = b.n_tile_rows() * $dim * wpn;
                    for sup in [None, Some(&sup[..])] {
                        let mut scalar = vec![u64::MAX; len];
                        let mut vector = vec![0u64; len];
                        bmm_bin_bits_into(&b, &xw, k, &xa, sup, &mut scalar);
                        bmm_bin_bits_simd_into(&b, &xw, k, &xa, sup, &mut vector);
                        assert_eq!(
                            scalar,
                            vector,
                            "k={k} dim {} masked={}",
                            $dim,
                            sup.is_some()
                        );
                    }
                }};
            }
            check!(u8, 4);
            check!(u8, 8);
            check!(u16, 16);
            check!(u32, 32);
        }
    }

    /// The vector full-precision batched kernel is bit-identical to the
    /// scalar one for every semiring, including non-multiple-of-8 lane
    /// counts (the blocked-fold remainder path).
    #[test]
    fn simd_bin_full_is_bit_identical_to_scalar() {
        let a = sample(47, 91, 4);
        for k in [1usize, 3, 7, 8, 11, 70] {
            for semiring in [
                Semiring::Arithmetic,
                Semiring::Boolean,
                Semiring::MinPlus(1.0),
                Semiring::MaxTimes(0.5),
            ] {
                let x = sample_multi(47, k, semiring);
                macro_rules! check {
                    ($w:ty, $dim:expr) => {{
                        let b = from_csr::<$w>(&a, $dim);
                        let len = b.n_tile_rows() * $dim * k;
                        let xa = if semiring.push_safe() {
                            Some(active_words::<$w>(&x, k, semiring, $dim))
                        } else {
                            None
                        };
                        let mut scalar = vec![9.0f32; len];
                        let mut vector = vec![-3.0f32; len];
                        bmm_bin_full_into(&b, &x, k, semiring, xa.as_deref(), &mut scalar);
                        bmm_bin_full_simd_into(&b, &x, k, semiring, xa.as_deref(), &mut vector);
                        let sbits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                        let vbits: Vec<u32> = vector.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(sbits, vbits, "{semiring:?} k={k} dim {}", $dim);
                    }};
                }
                check!(u8, 4);
                check!(u8, 8);
                check!(u16, 16);
                check!(u32, 32);
            }
        }
    }
}
