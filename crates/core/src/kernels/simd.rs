//! The vector (lane-parallel) engine behind the `_simd` kernel variants.
//!
//! The paper's premise is that bit-packed tiles turn traversal into dense
//! word operations that saturate wide vector units.  On stable Rust the
//! portable-SIMD module (`std::simd`) is not yet available and this crate
//! forbids `unsafe` (so no `std::arch` intrinsics either), so the vector
//! engine is built from **SWAR** — SIMD Within A Register: every B2SR tile
//! already packs into one or more `u64` chunks
//! ([`BitWord::pack_chunk_u64`]), and the per-tile-row sweeps of
//! `bmv`/`bmm` become branch-free 64-bit lane arithmetic over those chunks
//! (8 rows of an 8×8 tile per operation, 4 rows of a 16×16 one), with the
//! residual f32 lane folds shaped as fixed-width blocks that LLVM
//! auto-vectorizes.  The scalar kernels remain always-compiled and are both
//! the runtime fallback and the reference the differential harness
//! (`tests/simd_parity.rs`) checks the vector path against, bit for bit.
//!
//! Which path runs is a per-[`Context`](crate::grb::Context) decision
//! ([`SimdPolicy`], stored on the workspace, overridable per operation via
//! [`Descriptor::simd`](crate::grb::Descriptor) and per process via the
//! `BITGBLAS_SIMD` environment variable), and under [`SimdPolicy::Auto`]
//! the per-tile-size profitability mask comes from the device calibration
//! pass ([`crate::calibrate`]).
//!
//! # Why the two paths are bit-identical
//!
//! Every helper here parallelises **across lanes** (tile rows), never
//! across the reduction terms of one output row: a given output row still
//! folds its contributions in exactly the scalar kernel's order, so even
//! the non-associative float semirings produce the same bits on both paths.

use bitgblas_bitops::BitWord;

/// Runtime selection between the scalar and the SWAR-vector kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Use the vector path where the (calibrated) per-tile-size
    /// profitability mask says it wins — the default.
    #[default]
    Auto,
    /// Always run the scalar reference kernels (the differential baseline).
    ForceScalar,
    /// Always run the vector kernels, profitable or not (for testing).
    ForceVector,
}

impl std::fmt::Display for SimdPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::ForceScalar => "scalar",
            SimdPolicy::ForceVector => "vector",
        })
    }
}

impl std::str::FromStr for SimdPolicy {
    type Err = String;

    /// Parse the `BITGBLAS_SIMD` environment-variable spelling
    /// (`auto` / `scalar` / `vector`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdPolicy::Auto),
            "scalar" | "force_scalar" | "off" => Ok(SimdPolicy::ForceScalar),
            "vector" | "force_vector" | "simd" | "on" => Ok(SimdPolicy::ForceVector),
            other => Err(format!(
                "unknown SIMD policy {other:?} (expected auto|scalar|vector)"
            )),
        }
    }
}

/// Default per-tile-size profitability mask for [`SimdPolicy::Auto`]: bit
/// `i` of the mask enables the vector path for tile size `4 << i`.  S4/S8
/// tiles pack 8–16 rows per SWAR word and S16 packs 4, so they default on;
/// a 32×32 tile leaves only two rows per `u64`, below the SWAR crossover,
/// so S32 defaults to the scalar sweep until calibration says otherwise.
pub const DEFAULT_LANE_MASK: u8 = 0b0111;

/// The bit of a per-tile-size lane mask covering tiles of dimension
/// `tile_dim` (4 → bit 0, 8 → bit 1, 16 → bit 2, 32 → bit 3).
#[inline]
pub fn lane_mask_bit(tile_dim: usize) -> u8 {
    match tile_dim {
        4 => 1 << 0,
        8 => 1 << 1,
        16 => 1 << 2,
        _ => 1 << 3,
    }
}

/// The repeated-LSB constant for `W`-wide lanes of a `u64`
/// (`0x0101…01` for 8-bit lanes, `0x0001_0001…` for 16-bit ones).
#[inline(always)]
pub fn lsb_lanes<W: BitWord>() -> u64 {
    debug_assert!(W::BITS <= 32, "SWAR lanes are at most 32 bits");
    u64::MAX / (((1u128 << W::BITS) - 1) as u64)
}

/// Broadcast one packing word into every `W`-wide lane of a `u64`.
#[inline(always)]
pub fn broadcast_lanes<W: BitWord>(w: W) -> u64 {
    w.to_u64().wrapping_mul(lsb_lanes::<W>())
}

/// Per-lane non-zero test: returns a `u64` whose lane-MSB is set exactly
/// for the non-zero `W`-wide lanes of `t` (all other bits clear).
///
/// This is the SWAR equivalent of a vector compare + movemask: adding
/// `0x7f…` to the low bits of a lane carries into the lane MSB iff any low
/// bit is set, and OR-ing `t` back in covers the MSB itself.  The adds
/// cannot carry across lanes because each per-lane sum is at most
/// `0x7f + 0x7f`.
#[inline(always)]
pub fn nonzero_lane_msbs<W: BitWord>(t: u64) -> u64 {
    let lsb = lsb_lanes::<W>();
    let msb = lsb << (W::BITS - 1);
    let low = msb - lsb;
    (((t & low).wrapping_add(low)) | t) & msb
}

/// Per-lane population count: returns a `u64` holding, in each `W`-wide
/// lane, the popcount of the corresponding lane of `t` — the classic
/// bit-sliced popcount folded once more per doubling of the lane width.
#[inline(always)]
pub fn lane_popcounts<W: BitWord>(t: u64) -> u64 {
    debug_assert!(W::BITS <= 32, "SWAR lanes are at most 32 bits");
    let mut v = t - ((t >> 1) & 0x5555_5555_5555_5555);
    v = (v & 0x3333_3333_3333_3333) + ((v >> 2) & 0x3333_3333_3333_3333);
    v = (v + (v >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    if W::BITS >= 16 {
        v = (v + (v >> 8)) & 0x00ff_00ff_00ff_00ff;
    }
    if W::BITS >= 32 {
        v = (v + (v >> 16)) & 0x0000_ffff_0000_ffff;
    }
    v
}

/// `dst[i] |= src[i]` over paired slices, unrolled into 4-word blocks so
/// the compiler vectorizes the lane-word OR of the batched BMM sweep
/// (`wpn > 1`: one multi-word OR advances up to `64 · wpn` traversals).
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (db, sb) in (&mut d).zip(&mut s) {
        db[0] |= sb[0];
        db[1] |= sb[1];
        db[2] |= sb[2];
        db[3] |= sb[3];
    }
    for (dv, sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv |= *sv;
    }
}

/// `dst[i] &= !src[i]` over paired slices (the word-granular suppressed-lane
/// mask store of the batched BMM sweep), unrolled like [`or_into`].
#[inline]
pub fn andnot_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (db, sb) in (&mut d).zip(&mut s) {
        db[0] &= !sb[0];
        db[1] &= !sb[1];
        db[2] &= !sb[2];
        db[3] &= !sb[3];
    }
    for (dv, sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv &= !*sv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes<W: BitWord>(t: u64) -> Vec<u64> {
        let per = 64 / W::BITS;
        (0..per)
            .map(|k| (t >> (k * W::BITS)) & (((1u128 << W::BITS) - 1) as u64))
            .collect()
    }

    fn exhaustive_words() -> Vec<u64> {
        let mut v = vec![
            0,
            u64::MAX,
            0x8000_0000_0000_0001,
            0x0100_0000_0001_0000,
            0x00ff_ff00_0f0f_0101,
        ];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.push(state);
        }
        v
    }

    fn check_nonzero_msbs<W: BitWord>() {
        let msb = 1u64 << (W::BITS - 1);
        for &t in &exhaustive_words() {
            let got = nonzero_lane_msbs::<W>(t);
            for (k, lane) in lanes::<W>(t).into_iter().enumerate() {
                let lane_bits = (got >> (k as u32 * W::BITS)) & (((1u128 << W::BITS) - 1) as u64);
                let want = if lane != 0 { msb } else { 0 };
                assert_eq!(lane_bits, want, "word {t:#018x} lane {k}");
            }
        }
    }

    #[test]
    fn nonzero_lane_msbs_matches_per_lane_test() {
        check_nonzero_msbs::<u8>();
        check_nonzero_msbs::<u16>();
        check_nonzero_msbs::<u32>();
    }

    fn check_popcounts<W: BitWord>() {
        for &t in &exhaustive_words() {
            let got = lane_popcounts::<W>(t);
            for (k, lane) in lanes::<W>(t).into_iter().enumerate() {
                let lane_bits = (got >> (k as u32 * W::BITS)) & (((1u128 << W::BITS) - 1) as u64);
                assert_eq!(
                    lane_bits,
                    lane.count_ones() as u64,
                    "word {t:#018x} lane {k}"
                );
            }
        }
    }

    #[test]
    fn lane_popcounts_match_count_ones() {
        check_popcounts::<u8>();
        check_popcounts::<u16>();
        check_popcounts::<u32>();
    }

    #[test]
    fn broadcast_fills_every_lane() {
        assert_eq!(broadcast_lanes::<u8>(0xAB), 0xABAB_ABAB_ABAB_ABAB);
        assert_eq!(broadcast_lanes::<u16>(0xBEEF), 0xBEEF_BEEF_BEEF_BEEF);
        assert_eq!(broadcast_lanes::<u32>(0x0BAD_F00D), 0x0BAD_F00D_0BAD_F00D);
    }

    #[test]
    fn or_and_andnot_match_elementwise() {
        let a: Vec<u64> = exhaustive_words().into_iter().take(11).collect();
        let b: Vec<u64> = exhaustive_words().into_iter().skip(11).take(11).collect();
        let mut dst = a.clone();
        or_into(&mut dst, &b);
        for i in 0..11 {
            assert_eq!(dst[i], a[i] | b[i]);
        }
        let mut dst = a.clone();
        andnot_into(&mut dst, &b);
        for i in 0..11 {
            assert_eq!(dst[i], a[i] & !b[i]);
        }
    }

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!("auto".parse::<SimdPolicy>().unwrap(), SimdPolicy::Auto);
        assert_eq!(
            "SCALAR".parse::<SimdPolicy>().unwrap(),
            SimdPolicy::ForceScalar
        );
        assert_eq!(
            "vector".parse::<SimdPolicy>().unwrap(),
            SimdPolicy::ForceVector
        );
        assert!("warp".parse::<SimdPolicy>().is_err());
        assert_eq!(SimdPolicy::ForceVector.to_string(), "vector");
        assert_eq!(SimdPolicy::default(), SimdPolicy::Auto);
    }

    #[test]
    fn lane_mask_bits_cover_the_four_tile_sizes() {
        assert_eq!(lane_mask_bit(4), 0b0001);
        assert_eq!(lane_mask_bit(8), 0b0010);
        assert_eq!(lane_mask_bit(16), 0b0100);
        assert_eq!(lane_mask_bit(32), 0b1000);
        assert_eq!(DEFAULT_LANE_MASK & lane_mask_bit(8), 0b0010);
        assert_eq!(DEFAULT_LANE_MASK & lane_mask_bit(32), 0);
    }
}
