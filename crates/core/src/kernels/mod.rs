//! Bit-level BLAS kernels over B2SR (RQ-2 of the paper).
//!
//! * [`bmv`] — Binarized Matrix × Vector: the six schemes of Table II
//!   (`bmv_bin_bin_bin`, `bmv_bin_bin_full`, `bmv_bin_full_full` and their
//!   masked variants), covering the Boolean, arithmetic and tropical
//!   semirings of Table IV; plus the push-direction (sparse-frontier)
//!   kernels `bmv_push_bin_bin` / `bmv_push_bin_full` and the `_into`
//!   variants that write into workspace-pooled buffers.
//! * [`bmm`] — Binarized Matrix × Matrix: the two schemes of Table III
//!   (`bmm_bin_bin_sum` and `bmm_bin_bin_sum_masked`), which reduce the
//!   product to a full-precision scalar as required by Triangle Counting;
//!   plus the batched matrix-times-multivector kernels of the multi-source
//!   traversal engine (`bmm_bin_bits_into` / `bmm_push_bits` for Boolean
//!   lane words, `bmm_bin_full_into` / `bmm_push_bin_full` for the other
//!   semirings) — each adjacency tile is loaded once and applied to all
//!   `k` frontier lanes.
//!
//! Each kernel is structured exactly like the paper's CUDA listings: the
//! tile-rows of the B2SR matrix are the unit of work (one warp per tile-row),
//! the inner loop walks the non-empty tiles of that tile-row, and the
//! per-element work is a bitwise AND followed by a population count.  The
//! warp scheduling of the GPU is replaced by Rayon parallelism over
//! tile-rows; everything inside a tile-row is deterministic.
//!
//! The pull kernels parallelise over tile-rows; since PR 5 the push
//! kernels parallelise too, through the `_sharded` variants
//! (`bmv_push_bin_bin_sharded`, `bmv_push_bin_full_sharded`,
//! `bmm_push_bits_sharded`, `bmm_push_bin_full_sharded`): the frontier is
//! cut at a [`crate::shard::ShardPlan`]'s row-shard boundaries, segments
//! scatter into privatized caller-supplied buffers concurrently, and a
//! fixed-segment-order monoid merge keeps the result bit-identical across
//! thread counts.

pub mod bmm;
pub mod bmv;
pub mod simd;

pub use bmm::{
    bmm_bin_bin_sum, bmm_bin_bin_sum_masked, bmm_bin_bits_into, bmm_bin_bits_simd_into,
    bmm_bin_full_into, bmm_bin_full_simd_into, bmm_push_bin_full, bmm_push_bin_full_sharded,
    bmm_push_bits, bmm_push_bits_sharded,
};
pub use bmv::{
    bmv_bin_bin_bin, bmv_bin_bin_bin_into, bmv_bin_bin_bin_masked, bmv_bin_bin_bin_masked_into,
    bmv_bin_bin_bin_masked_simd_into, bmv_bin_bin_bin_simd_into, bmv_bin_bin_full,
    bmv_bin_bin_full_masked, bmv_bin_bin_full_simd, bmv_bin_full_full,
    bmv_bin_full_full_fused_into, bmv_bin_full_full_into, bmv_bin_full_full_masked,
    bmv_bin_full_full_masked_into, bmv_bin_full_full_masked_simd_into, bmv_bin_full_full_simd_into,
    bmv_push_bin_bin, bmv_push_bin_bin_sharded, bmv_push_bin_full, bmv_push_bin_full_sharded,
    pack_vector_bits, pack_vector_bits_into, pack_vector_bits_simd_into, pack_vector_tilewise,
    pack_vector_tilewise_into, pack_vector_tilewise_simd_into, unpack_vector_bits,
};
pub use simd::{SimdPolicy, DEFAULT_LANE_MASK};
