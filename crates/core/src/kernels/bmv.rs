//! BMV — Binarized sparse Matrix × Vector kernels (Table II).
//!
//! The adjacency matrix is in B2SR; the vector comes in one of two layouts:
//!
//! * **binarized** (`bin` input): packed one tile-segment per word, produced
//!   by [`pack_vector_bits`] / [`pack_vector_tilewise`] — word `t` holds the
//!   `tile_dim` vector entries of tile-column `t` in its low bits;
//! * **full-precision** (`full` input): a plain `f32` slice.
//!
//! Each kernel processes one tile-row per logical warp, with one lane per
//! tile row inside the tile (Listing 1 of the paper): lane `r` loads bit-row
//! `r` of each tile, ANDs it against the vector word of that tile-column, and
//! accumulates with `popc`.  Rayon parallelises over tile-rows.

use rayon::prelude::*;

use bitgblas_bitops::BitWord;

use crate::b2sr::B2sr;
use crate::semiring::Semiring;

/// Pack a boolean vector into tile-granular words: word `t` holds entries
/// `t*tile_dim .. (t+1)*tile_dim`, bit `i` = entry `t*tile_dim + i`.
pub fn pack_vector_bits<W: BitWord>(v: &[bool], tile_dim: usize) -> Vec<W> {
    assert!(tile_dim as u32 <= W::BITS);
    let n_words = v.len().div_ceil(tile_dim);
    let mut words = vec![W::ZERO; n_words];
    for (i, &b) in v.iter().enumerate() {
        if b {
            words[i / tile_dim] = words[i / tile_dim].with_bit((i % tile_dim) as u32);
        }
    }
    words
}

/// Pack a dense `f32` vector into tile-granular words (bit set where the
/// entry is nonzero) — the "binarize the multiplier vector" step of the
/// paper's BMV schemes.
pub fn pack_vector_tilewise<W: BitWord>(v: &[f32], tile_dim: usize) -> Vec<W> {
    assert!(tile_dim as u32 <= W::BITS);
    let n_words = v.len().div_ceil(tile_dim);
    let mut words = vec![W::ZERO; n_words];
    for (i, &x) in v.iter().enumerate() {
        if x != 0.0 {
            words[i / tile_dim] = words[i / tile_dim].with_bit((i % tile_dim) as u32);
        }
    }
    words
}

/// Unpack tile-granular words back into `len` booleans.
pub fn unpack_vector_bits<W: BitWord>(words: &[W], tile_dim: usize, len: usize) -> Vec<bool> {
    (0..len)
        .map(|i| {
            let w = i / tile_dim;
            w < words.len() && words[w].bit((i % tile_dim) as u32)
        })
        .collect()
}

/// `bmv_bin_bin_bin()`: binarized matrix × binarized vector → binarized
/// vector, over the Boolean semiring.
///
/// `x` must hold one word per tile-column ([`pack_vector_bits`]); the result
/// holds one word per tile-row, bit `r` set iff output row `tr*dim + r` is
/// reachable.  This is the minimal-footprint scheme used by BFS.
pub fn bmv_bin_bin_bin<W: BitWord>(a: &B2sr<W>, x: &[W]) -> Vec<W> {
    assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    let dim = a.tile_dim();
    let mut y = vec![W::ZERO; a.n_tile_rows()];
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        let mut acc = W::ZERO;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            // Lane r: does row r of this tile reach any active column?
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if (aw & xw) != W::ZERO {
                    acc = acc.with_bit(r as u32);
                }
            }
        }
        *out = acc;
    });
    y
}

/// `bmv_bin_bin_bin_masked()`: as [`bmv_bin_bin_bin`] but with the output
/// ANDed against the *negation* of `mask` right before the store — the
/// visited-vertex filter of BFS (§V).  `mask` is packed per tile-row like the
/// output.
pub fn bmv_bin_bin_bin_masked<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W]) -> Vec<W> {
    assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    assert!(mask.len() >= a.n_tile_rows(), "mask has too few tile words");
    let dim = a.tile_dim();
    let mut y = vec![W::ZERO; a.n_tile_rows()];
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        let mut acc = W::ZERO;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if (aw & xw) != W::ZERO {
                    acc = acc.with_bit(r as u32);
                }
            }
        }
        // Bitmask applied right before the output store (no early exit, to
        // avoid the warp divergence the paper describes).
        *out = acc & !mask[tr];
    });
    y
}

/// `bmv_bin_bin_full()`: binarized matrix × binarized vector → full-precision
/// vector.  Output row `i` counts how many active columns row `i` reaches
/// (`__popc(A & b)` accumulated per tile), i.e. the arithmetic semiring over
/// binary operands.
pub fn bmv_bin_bin_full<W: BitWord>(a: &B2sr<W>, x: &[W]) -> Vec<f32> {
    assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    let dim = a.tile_dim();
    let padded = a.n_tile_rows() * dim;
    let mut y = vec![0.0f32; padded];
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                out[r] += (aw & xw).popcount() as f32;
            }
        }
    });
    y.truncate(a.nrows());
    y
}

/// `bmv_bin_bin_full_masked()`: as [`bmv_bin_bin_full`] but output rows whose
/// mask bit is set are forced to `0.0`.
pub fn bmv_bin_bin_full_masked<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W]) -> Vec<f32> {
    assert!(mask.len() >= a.n_tile_rows(), "mask has too few tile words");
    let dim = a.tile_dim();
    let mut y = bmv_bin_bin_full(a, x);
    // Apply the mask tile-row by tile-row (bit r of mask[tr] covers row tr*dim+r).
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        let m = mask[tr];
        for (r, v) in out.iter_mut().enumerate() {
            if m.bit(r as u32) {
                *v = 0.0;
            }
        }
    });
    y
}

/// `bmv_bin_full_full()`: binarized matrix × full-precision vector →
/// full-precision vector, generic over the semiring (Table IV).
///
/// * `Arithmetic` — `y[i] = Σ_{j : A[i][j]=1} x[j]` (PageRank, with the
///   out-degree division folded into `x` by the caller);
/// * `MinPlus(w)` — `y[i] = min_{j : A[i][j]=1} (x[j] + w)`; absent edges act
///   as `+∞` exactly as the paper's SSSP relaxation treats the 0s of the
///   adjacency matrix;
/// * `Boolean` / `MaxTimes` analogous.
pub fn bmv_bin_full_full<W: BitWord>(a: &B2sr<W>, x: &[f32], semiring: Semiring) -> Vec<f32> {
    assert!(x.len() >= a.ncols(), "vector shorter than matrix columns");
    let dim = a.tile_dim();
    let padded = a.n_tile_rows() * dim;
    let mut y = vec![semiring.identity(); padded];
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let base = tc * dim;
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if aw == W::ZERO {
                    continue;
                }
                let mut acc = out[r];
                for dc in aw.iter_ones() {
                    let j = base + dc as usize;
                    if j < x.len() {
                        acc = semiring.reduce(acc, semiring.combine(x[j]));
                    }
                }
                out[r] = acc;
            }
        }
    });
    y.truncate(a.nrows());
    y
}

/// `bmv_bin_full_full_masked()`: as [`bmv_bin_full_full`] but rows whose mask
/// entry is `true` produce the semiring identity (they are filtered out).
pub fn bmv_bin_full_full_masked<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    mask: &[bool],
    semiring: Semiring,
) -> Vec<f32> {
    assert!(mask.len() >= a.nrows(), "mask shorter than matrix rows");
    let mut y = bmv_bin_full_full(a, x, semiring);
    y.par_iter_mut().enumerate().for_each(|(i, v)| {
        if mask[i] {
            *v = semiring.identity();
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::convert::from_csr;
    use bitgblas_sparse::{ops, Coo, Csr, DenseVec};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 3 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    fn sample_x(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 7) as f32 + 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Reference boolean reachability: y[i] = OR_j A[i][j] & (x[j] != 0).
    fn reference_bool(a: &Csr, x: &[f32]) -> Vec<bool> {
        (0..a.nrows())
            .map(|r| a.row(r).0.iter().any(|&c| x[c] != 0.0))
            .collect()
    }

    #[test]
    fn bin_bin_bin_matches_reference_all_variants() {
        let a = sample(97, 3);
        let x = sample_x(97);
        let expected = reference_bool(&a, &x);
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(&a, $dim);
                let xp = pack_vector_tilewise::<$w>(&x, $dim);
                let y = bmv_bin_bin_bin(&b, &xp);
                let yb = unpack_vector_bits(&y, $dim, a.nrows());
                assert_eq!(yb, expected, "dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn bin_bin_full_counts_reachable_columns() {
        let a = sample(64, 5);
        let x = sample_x(64);
        let expected: Vec<f32> = (0..64)
            .map(|r| a.row(r).0.iter().filter(|&&c| x[c] != 0.0).count() as f32)
            .collect();
        for dim in [4usize, 8] {
            let b = from_csr::<u8>(&a, dim);
            let xp = pack_vector_tilewise::<u8>(&x, dim);
            assert_eq!(bmv_bin_bin_full(&b, &xp), expected, "dim {dim}");
        }
        let b = from_csr::<u32>(&a, 32);
        let xp = pack_vector_tilewise::<u32>(&x, 32);
        assert_eq!(bmv_bin_bin_full(&b, &xp), expected);
    }

    #[test]
    fn bin_full_full_arithmetic_matches_float_spmv() {
        let a = sample(80, 7);
        let x = sample_x(80);
        let reference = ops::spmv(&a, &DenseVec::from_vec(x.clone())).unwrap();
        for dim in [4usize, 8] {
            let b = from_csr::<u8>(&a, dim);
            let y = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
            for (i, (&got, &want)) in y.iter().zip(reference.as_slice()).enumerate() {
                assert!(
                    (got - want).abs() < 1e-4,
                    "row {i}: {got} vs {want} (dim {dim})"
                );
            }
        }
        let b = from_csr::<u16>(&a, 16);
        let y = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
        for (&got, &want) in y.iter().zip(reference.as_slice()) {
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn bin_full_full_minplus_matches_semiring_spmv() {
        let a = sample(60, 11);
        let mut x = vec![f32::INFINITY; 60];
        x[0] = 0.0;
        x[17] = 2.0;
        x[41] = 5.0;
        let reference = ops::spmv_semiring(
            &a,
            &DenseVec::from_vec(x.clone()),
            ops::SemiringKind::MinPlus,
        )
        .unwrap();
        let b = from_csr::<u32>(&a, 32);
        let y = bmv_bin_full_full(&b, &x, Semiring::MinPlus(1.0));
        assert_eq!(
            y,
            reference.as_slice(),
            "binary weights are 1.0 so +1 relaxation matches"
        );
    }

    #[test]
    fn bin_full_full_maxtimes_and_boolean() {
        let a = sample(48, 13);
        let x: Vec<f32> = (0..48).map(|i| (i % 5) as f32).collect();
        let b = from_csr::<u8>(&a, 8);
        let ymax = bmv_bin_full_full(&b, &x, Semiring::MaxTimes(1.0));
        let reference = ops::spmv_semiring(
            &a,
            &DenseVec::from_vec(x.clone()),
            ops::SemiringKind::MaxTimes,
        )
        .unwrap();
        assert_eq!(ymax, reference.as_slice());

        let ybool = bmv_bin_full_full(&b, &x, Semiring::Boolean);
        let refbool = reference_bool(&a, &x);
        for (got, want) in ybool.iter().zip(refbool) {
            assert_eq!(*got != 0.0, want);
        }
    }

    #[test]
    fn masked_bin_bin_bin_filters_visited() {
        let a = sample(40, 17);
        let x = sample_x(40);
        let dim = 8usize;
        let b = from_csr::<u8>(&a, dim);
        let xp = pack_vector_tilewise::<u8>(&x, dim);
        // Mask out every even row.
        let visited: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mask = pack_vector_bits::<u8>(&visited, dim);
        let y = bmv_bin_bin_bin_masked(&b, &xp, &mask);
        let yb = unpack_vector_bits(&y, dim, 40);
        let unmasked = unpack_vector_bits(&bmv_bin_bin_bin(&b, &xp), dim, 40);
        for i in 0..40 {
            if visited[i] {
                assert!(!yb[i], "masked row {i} must be filtered");
            } else {
                assert_eq!(yb[i], unmasked[i]);
            }
        }
    }

    #[test]
    fn masked_bin_bin_full_zeroes_masked_rows() {
        let a = sample(40, 19);
        let x = sample_x(40);
        let dim = 4usize;
        let b = from_csr::<u8>(&a, dim);
        let xp = pack_vector_tilewise::<u8>(&x, dim);
        let visited: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let mask = pack_vector_bits::<u8>(&visited, dim);
        let y = bmv_bin_bin_full_masked(&b, &xp, &mask);
        let unmasked = bmv_bin_bin_full(&b, &xp);
        for i in 0..40 {
            if visited[i] {
                assert_eq!(y[i], 0.0);
            } else {
                assert_eq!(y[i], unmasked[i]);
            }
        }
    }

    #[test]
    fn masked_bin_full_full_produces_identity_on_masked_rows() {
        let a = sample(32, 23);
        let mut x = vec![f32::INFINITY; 32];
        x[3] = 0.0;
        let b = from_csr::<u32>(&a, 32);
        let visited: Vec<bool> = (0..32).map(|i| i < 16).collect();
        let y = bmv_bin_full_full_masked(&b, &x, &visited, Semiring::MinPlus(1.0));
        for (i, &v) in y.iter().enumerate() {
            if visited[i] {
                assert_eq!(v, f32::INFINITY);
            }
        }
    }

    #[test]
    fn vector_packing_roundtrip() {
        let v: Vec<bool> = (0..37).map(|i| i % 4 == 0).collect();
        for dim in [4usize, 8, 16, 32] {
            let packed = pack_vector_bits::<u32>(&v, dim);
            assert_eq!(unpack_vector_bits(&packed, dim, v.len()), v, "dim {dim}");
        }
        let f: Vec<f32> = v.iter().map(|&b| if b { 2.5 } else { 0.0 }).collect();
        let packed_f = pack_vector_tilewise::<u16>(&f, 16);
        assert_eq!(unpack_vector_bits(&packed_f, 16, v.len()), v);
    }

    #[test]
    fn empty_matrix_yields_identity_outputs() {
        let a = Csr::empty(20, 20);
        let b = from_csr::<u8>(&a, 4);
        let xp = pack_vector_tilewise::<u8>(&[1.0; 20], 4);
        assert!(bmv_bin_bin_bin(&b, &xp).iter().all(|&w| w == 0));
        assert!(bmv_bin_bin_full(&b, &xp).iter().all(|&v| v == 0.0));
        let y = bmv_bin_full_full(&b, &[1.0; 20], Semiring::MinPlus(1.0));
        assert!(y.iter().all(|&v| v == f32::INFINITY));
    }
}
