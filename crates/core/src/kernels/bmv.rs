//! BMV — Binarized sparse Matrix × Vector kernels (Table II).
//!
//! The adjacency matrix is in B2SR; the vector comes in one of two layouts:
//!
//! * **binarized** (`bin` input): packed one tile-segment per word, produced
//!   by [`pack_vector_bits`] / [`pack_vector_tilewise`] — word `t` holds the
//!   `tile_dim` vector entries of tile-column `t` in its low bits;
//! * **full-precision** (`full` input): a plain `f32` slice.
//!
//! Each kernel processes one tile-row per logical warp, with one lane per
//! tile row inside the tile (Listing 1 of the paper): lane `r` loads bit-row
//! `r` of each tile, ANDs it against the vector word of that tile-column, and
//! accumulates with `popc`.  Rayon parallelises over tile-rows.
//!
//! Two kernel families live here:
//!
//! * **pull** (`bmv_bin_*`, `bmv_..._into`) — the dense sweep described
//!   above: cost independent of how many vector entries are active.  The
//!   `_into` variants write into caller-supplied buffers so the GrB layer's
//!   workspace pool can recycle them across iterations.
//! * **push** (`bmv_push_*`) — sparse-frontier scatter: only the tiles of
//!   the frontier's tile-rows are visited and their row words scattered into
//!   the output, so the cost is proportional to the frontier's edge count.
//!   The base kernels are serial and allocation-free (the right shape for
//!   tiny frontiers); the `_sharded` variants (PR 5) run the same scatter as
//!   a parallel per-segment pass over a [`crate::shard::ShardPlan`]'s row
//!   shards, each segment writing a privatized caller-supplied buffer, with
//!   a fixed-order monoid merge that makes the result bit-identical across
//!   thread counts (and, for the word-OR Boolean merge, identical to the
//!   serial scatter outright).

use rayon::prelude::*;

use bitgblas_bitops::BitWord;

use crate::b2sr::B2sr;
use crate::semiring::Semiring;

/// Pack a boolean vector into tile-granular words: word `t` holds entries
/// `t*tile_dim .. (t+1)*tile_dim`, bit `i` = entry `t*tile_dim + i`.
pub fn pack_vector_bits<W: BitWord>(v: &[bool], tile_dim: usize) -> Vec<W> {
    let mut words = Vec::new();
    pack_vector_bits_into(v, tile_dim, &mut words);
    words
}

/// As [`pack_vector_bits`], writing into a caller-supplied buffer (resized
/// to the word count) instead of allocating.
pub fn pack_vector_bits_into<W: BitWord>(v: &[bool], tile_dim: usize, words: &mut Vec<W>) {
    assert!(tile_dim as u32 <= W::BITS);
    words.clear();
    words.resize(v.len().div_ceil(tile_dim), W::ZERO);
    for (i, &b) in v.iter().enumerate() {
        if b {
            words[i / tile_dim] = words[i / tile_dim].with_bit((i % tile_dim) as u32);
        }
    }
}

/// Pack a dense `f32` vector into tile-granular words (bit set where the
/// entry is nonzero) — the "binarize the multiplier vector" step of the
/// paper's BMV schemes.
pub fn pack_vector_tilewise<W: BitWord>(v: &[f32], tile_dim: usize) -> Vec<W> {
    let mut words = Vec::new();
    pack_vector_tilewise_into(v, tile_dim, &mut words);
    words
}

/// As [`pack_vector_tilewise`], writing into a caller-supplied buffer
/// (resized to the word count) instead of allocating.
pub fn pack_vector_tilewise_into<W: BitWord>(v: &[f32], tile_dim: usize, words: &mut Vec<W>) {
    assert!(tile_dim as u32 <= W::BITS);
    words.clear();
    words.resize(v.len().div_ceil(tile_dim), W::ZERO);
    for (i, &x) in v.iter().enumerate() {
        if x != 0.0 {
            words[i / tile_dim] = words[i / tile_dim].with_bit((i % tile_dim) as u32);
        }
    }
}

/// Unpack tile-granular words back into `len` booleans.
pub fn unpack_vector_bits<W: BitWord>(words: &[W], tile_dim: usize, len: usize) -> Vec<bool> {
    (0..len)
        .map(|i| {
            let w = i / tile_dim;
            w < words.len() && words[w].bit((i % tile_dim) as u32)
        })
        .collect()
}

/// `bmv_bin_bin_bin()`: binarized matrix × binarized vector → binarized
/// vector, over the Boolean semiring.
///
/// `x` must hold one word per tile-column ([`pack_vector_bits`]); the result
/// holds one word per tile-row, bit `r` set iff output row `tr*dim + r` is
/// reachable.  This is the minimal-footprint scheme used by BFS.
pub fn bmv_bin_bin_bin<W: BitWord>(a: &B2sr<W>, x: &[W]) -> Vec<W> {
    let mut y = vec![W::ZERO; a.n_tile_rows()];
    bmv_bin_bin_bin_into(a, x, &mut y);
    y
}

/// As [`bmv_bin_bin_bin`], writing into a caller-supplied slice of
/// `n_tile_rows` words (every word is overwritten).
pub fn bmv_bin_bin_bin_into<W: BitWord>(a: &B2sr<W>, x: &[W], y: &mut [W]) {
    debug_assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    debug_assert!(y.len() >= a.n_tile_rows(), "output has too few tile words");
    let dim = a.tile_dim();
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        if tr >= a.n_tile_rows() {
            *out = W::ZERO;
            return;
        }
        let mut acc = W::ZERO;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            // Lane r: does row r of this tile reach any active column?
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if (aw & xw) != W::ZERO {
                    acc = acc.with_bit(r as u32);
                }
            }
        }
        *out = acc;
    });
}

/// `bmv_bin_bin_bin_masked()`: as [`bmv_bin_bin_bin`] but with the output
/// ANDed against the *negation* of `mask` right before the store — the
/// visited-vertex filter of BFS (§V).  `mask` is packed per tile-row like the
/// output.
pub fn bmv_bin_bin_bin_masked<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W]) -> Vec<W> {
    let mut y = vec![W::ZERO; a.n_tile_rows()];
    bmv_bin_bin_bin_masked_into(a, x, mask, &mut y);
    y
}

/// As [`bmv_bin_bin_bin_masked`], writing into a caller-supplied slice of
/// `n_tile_rows` words (every word is overwritten).
pub fn bmv_bin_bin_bin_masked_into<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W], y: &mut [W]) {
    debug_assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    debug_assert!(mask.len() >= a.n_tile_rows(), "mask has too few tile words");
    debug_assert!(y.len() >= a.n_tile_rows(), "output has too few tile words");
    let dim = a.tile_dim();
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        if tr >= a.n_tile_rows() {
            *out = W::ZERO;
            return;
        }
        let mut acc = W::ZERO;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if (aw & xw) != W::ZERO {
                    acc = acc.with_bit(r as u32);
                }
            }
        }
        // Bitmask applied right before the output store (no early exit, to
        // avoid the warp divergence the paper describes).
        *out = acc & !mask[tr];
    });
}

/// `bmv_bin_bin_full()`: binarized matrix × binarized vector → full-precision
/// vector.  Output row `i` counts how many active columns row `i` reaches
/// (`__popc(A & b)` accumulated per tile), i.e. the arithmetic semiring over
/// binary operands.
pub fn bmv_bin_bin_full<W: BitWord>(a: &B2sr<W>, x: &[W]) -> Vec<f32> {
    debug_assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    let dim = a.tile_dim();
    let padded = a.n_tile_rows() * dim;
    let mut y = vec![0.0f32; padded];
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xw = x[tc];
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                out[r] += (aw & xw).popcount() as f32;
            }
        }
    });
    y.truncate(a.nrows());
    y
}

/// `bmv_bin_bin_full_masked()`: as [`bmv_bin_bin_full`] but output rows whose
/// mask bit is set are forced to `0.0`.
pub fn bmv_bin_bin_full_masked<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W]) -> Vec<f32> {
    debug_assert!(mask.len() >= a.n_tile_rows(), "mask has too few tile words");
    let dim = a.tile_dim();
    let mut y = bmv_bin_bin_full(a, x);
    // Apply the mask tile-row by tile-row (bit r of mask[tr] covers row tr*dim+r).
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        let m = mask[tr];
        for (r, v) in out.iter_mut().enumerate() {
            if m.bit(r as u32) {
                *v = 0.0;
            }
        }
    });
    y
}

/// `bmv_bin_full_full()`: binarized matrix × full-precision vector →
/// full-precision vector, generic over the semiring (Table IV).
///
/// * `Arithmetic` — `y[i] = Σ_{j : A[i][j]=1} x[j]` (PageRank, with the
///   out-degree division folded into `x` by the caller);
/// * `MinPlus(w)` — `y[i] = min_{j : A[i][j]=1} (x[j] + w)`; absent edges act
///   as `+∞` exactly as the paper's SSSP relaxation treats the 0s of the
///   adjacency matrix;
/// * `Boolean` / `MaxTimes` analogous.
pub fn bmv_bin_full_full<W: BitWord>(a: &B2sr<W>, x: &[f32], semiring: Semiring) -> Vec<f32> {
    let mut y = vec![semiring.identity(); a.n_tile_rows() * a.tile_dim()];
    bmv_bin_full_full_into(a, x, semiring, &mut y);
    y.truncate(a.nrows());
    y
}

/// As [`bmv_bin_full_full`], writing into a caller-supplied slice of padded
/// length `n_tile_rows * tile_dim` (every entry is overwritten; the caller
/// truncates to `nrows`).
pub fn bmv_bin_full_full_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    semiring: Semiring,
    y: &mut [f32],
) {
    debug_assert!(x.len() >= a.ncols(), "vector shorter than matrix columns");
    let dim = a.tile_dim();
    let padded = a.n_tile_rows() * dim;
    debug_assert!(
        y.len() >= padded,
        "output shorter than the padded row count"
    );
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for v in out.iter_mut() {
            *v = semiring.identity();
        }
        if tr >= a.n_tile_rows() {
            return;
        }
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let base = tc * dim;
            let words = a.tile_words(idx);
            for (r, &aw) in words.iter().enumerate().take(dim) {
                if aw == W::ZERO {
                    continue;
                }
                let mut acc = out[r];
                for dc in aw.iter_ones() {
                    let j = base + dc as usize;
                    if j < x.len() {
                        acc = semiring.reduce(acc, semiring.combine(x[j]));
                    }
                }
                out[r] = acc;
            }
        }
    });
}

/// `bmv_bin_full_full_masked()`: as [`bmv_bin_full_full`] but rows whose mask
/// entry is `true` produce the semiring identity (they are filtered out).
pub fn bmv_bin_full_full_masked<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    mask: &[bool],
    semiring: Semiring,
) -> Vec<f32> {
    let mut y = vec![semiring.identity(); a.n_tile_rows() * a.tile_dim()];
    bmv_bin_full_full_masked_into(a, x, mask, semiring, &mut y);
    y.truncate(a.nrows());
    y
}

/// As [`bmv_bin_full_full_masked`], writing into a caller-supplied padded
/// slice (see [`bmv_bin_full_full_into`]).
pub fn bmv_bin_full_full_masked_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    mask: &[bool],
    semiring: Semiring,
    y: &mut [f32],
) {
    debug_assert!(mask.len() >= a.nrows(), "mask shorter than matrix rows");
    bmv_bin_full_full_into(a, x, semiring, y);
    let n = a.nrows();
    y[..n].par_iter_mut().enumerate().for_each(|(i, v)| {
        if mask[i] {
            *v = semiring.identity();
        }
    });
}

/// `bmv_bin_full_full_fused_into()`: the pull sweep of a fused expression
/// pipeline (PR 3).  Computes each output row's raw semiring value exactly
/// like [`bmv_bin_full_full_into`], then stores `y[r] = finish(r, t_r)` —
/// the planner packs the mask test, every element-wise epilogue stage and
/// the accumulator into `finish`, so a whole `mxv → apply → accum` chain is
/// one sweep over the matrix.
///
/// Unlike the generic kernel, the semiring is dispatched **once per call**
/// (not once per set bit): each semiring gets a monomorphised inner loop.
/// The sweep is also tile-granular: each tile's row words are packed into
/// 64-bit chunks ([`BitWord::pack_chunk_u64`]) and the set bits of a whole
/// 8×8 tile (half of a 16×16 one, …) are enumerated by one
/// `trailing_zeros` loop — on scatter-pattern matrices, where most tiles
/// hold only a couple of bits, this replaces the per-row word scan (mostly
/// hitting empty words) with a single load-test-extract.  Row accumulators
/// live in a stack-local tile buffer instead of read-modify-writing `y`
/// once per tile.
///
/// `y` must have the padded length `n_tile_rows * tile_dim`; rows past
/// `nrows` receive the semiring identity and are truncated by the caller.
pub fn bmv_bin_full_full_fused_into<W: BitWord, F: Fn(usize, f32) -> f32 + Sync>(
    a: &B2sr<W>,
    x: &[f32],
    semiring: Semiring,
    finish: F,
    y: &mut [f32],
) {
    debug_assert!(x.len() >= a.ncols(), "vector shorter than matrix columns");
    match semiring {
        Semiring::Arithmetic => bit_fused_sweep(a, x, 0.0, |v| v, |acc, v| acc + v, finish, y),
        Semiring::Boolean => bit_fused_sweep(
            a,
            x,
            0.0,
            |v| if v != 0.0 { 1.0 } else { 0.0 },
            |acc: f32, v: f32| {
                if acc != 0.0 || v != 0.0 {
                    1.0
                } else {
                    0.0
                }
            },
            finish,
            y,
        ),
        Semiring::MinPlus(w) => {
            bit_fused_sweep(a, x, f32::INFINITY, move |v| v + w, f32::min, finish, y)
        }
        Semiring::MaxTimes(w) => {
            bit_fused_sweep(a, x, f32::NEG_INFINITY, move |v| v * w, f32::max, finish, y)
        }
    }
}

/// The monomorphised tile-row sweep behind [`bmv_bin_full_full_fused_into`].
fn bit_fused_sweep<W, C, R, F>(
    a: &B2sr<W>,
    x: &[f32],
    identity: f32,
    combine: C,
    reduce: R,
    finish: F,
    y: &mut [f32],
) where
    W: BitWord,
    C: Fn(f32) -> f32 + Sync,
    R: Fn(f32, f32) -> f32 + Sync,
    F: Fn(usize, f32) -> f32 + Sync,
{
    let dim = a.tile_dim();
    let nrows = a.nrows();
    let padded = a.n_tile_rows() * dim;
    debug_assert!(
        y.len() >= padded,
        "output shorter than the padded row count"
    );
    debug_assert!(dim <= 32, "B2SR tiles are at most 32x32");
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        if tr >= a.n_tile_rows() {
            for v in out.iter_mut() {
                *v = identity;
            }
            return;
        }
        // Row accumulators for this tile-row, in registers/L1 instead of a
        // per-tile read-modify-write of `y`.
        let mut acc = [0.0f32; 32];
        for slot in acc[..dim].iter_mut() {
            *slot = identity;
        }
        // Words per 64-bit chunk: a whole 8×8 tile, half a 16×16 one, …
        let per = (64 / W::BITS) as usize;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let base = tc * dim;
            let words = a.tile_words(idx);
            for (ci, chunk) in words[..dim.min(words.len())].chunks(per).enumerate() {
                // Tile-granular scan: every set bit of the chunk in one
                // trailing_zeros loop; bit `b` is row `b / BITS` (within
                // the chunk), column `b % BITS` of the tile.
                let mut w64 = W::pack_chunk_u64(chunk);
                let r0 = ci * per;
                while w64 != 0 {
                    let b = w64.trailing_zeros();
                    w64 &= w64 - 1;
                    let r = r0 + (b / W::BITS) as usize;
                    let j = base + (b % W::BITS) as usize;
                    // Guard the ragged last tile-column (ncols % dim != 0).
                    if j < x.len() {
                        acc[r] = reduce(acc[r], combine(x[j]));
                    }
                }
            }
        }
        let row0 = tr * dim;
        for (r, v) in out.iter_mut().enumerate() {
            let gr = row0 + r;
            *v = if gr < nrows {
                finish(gr, acc[r])
            } else {
                identity
            };
        }
    });
}

// ---------------------------------------------------------------------------
// SWAR-vector pull kernels (PR 9)
// ---------------------------------------------------------------------------
//
// Each `_simd` kernel computes bit-for-bit the same output as its scalar
// counterpart above — it parallelises across tile rows (lanes), never across
// one row's reduction terms, so per-row fold order is unchanged — but the
// inner loop runs on whole 64-bit tile chunks ([`BitWord::pack_chunk_u64`])
// with branch-free lane arithmetic from [`super::simd`].  The scalar kernels
// stay compiled as the runtime fallback and differential reference; which
// path executes is the backend's per-context [`SimdPolicy`] decision.

use super::simd::{broadcast_lanes, lsb_lanes, nonzero_lane_msbs};

/// SWAR-vector variant of [`bmv_bin_bin_bin_into`]: instead of testing the
/// `dim` row words of a tile one by one, each 64-bit chunk of the tile is
/// ANDed against the broadcast vector word and a single SWAR non-zero-lane
/// test yields the reachable rows of up to `64 / BITS` tile rows at once.
pub fn bmv_bin_bin_bin_simd_into<W: BitWord>(a: &B2sr<W>, x: &[W], y: &mut [W]) {
    debug_assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    debug_assert!(y.len() >= a.n_tile_rows(), "output has too few tile words");
    let dim = a.tile_dim();
    let per = (64 / W::BITS) as usize;
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        if tr >= a.n_tile_rows() {
            *out = W::ZERO;
            return;
        }
        let mut acc = W::ZERO;
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xb = broadcast_lanes::<W>(x[tc]);
            let words = a.tile_words(idx);
            for (ci, chunk) in words[..dim.min(words.len())].chunks(per).enumerate() {
                // One AND + one SWAR non-zero test covers `per` tile rows;
                // each surviving lane MSB is one reachable row.
                let mut nz = nonzero_lane_msbs::<W>(W::pack_chunk_u64(chunk) & xb);
                let r0 = (ci * per) as u32;
                while nz != 0 {
                    let b = nz.trailing_zeros();
                    nz &= nz - 1;
                    acc = acc.with_bit(r0 + b / W::BITS);
                }
            }
        }
        *out = acc;
    });
}

/// SWAR-vector variant of [`bmv_bin_bin_bin_masked_into`] — the
/// [`bmv_bin_bin_bin_simd_into`] sweep with the visited filter ANDed in
/// right before the store, exactly like the scalar kernel.
pub fn bmv_bin_bin_bin_masked_simd_into<W: BitWord>(a: &B2sr<W>, x: &[W], mask: &[W], y: &mut [W]) {
    debug_assert!(mask.len() >= a.n_tile_rows(), "mask has too few tile words");
    bmv_bin_bin_bin_simd_into(a, x, y);
    let n = a.n_tile_rows();
    y.par_iter_mut().enumerate().for_each(|(tr, out)| {
        if tr < n {
            *out &= !mask[tr];
        }
    });
}

/// SWAR-vector variant of [`bmv_bin_bin_full`]: per chunk, one AND plus one
/// SWAR per-lane popcount produces the reachable-column counts of up to
/// `64 / BITS` rows at once (the scalar kernel pays one word AND + `popc`
/// per row).
pub fn bmv_bin_bin_full_simd<W: BitWord>(a: &B2sr<W>, x: &[W]) -> Vec<f32> {
    debug_assert!(x.len() >= a.n_tile_cols(), "vector has too few tile words");
    let dim = a.tile_dim();
    let per = (64 / W::BITS) as usize;
    let lane_ones = ((1u128 << W::BITS) - 1) as u64;
    let padded = a.n_tile_rows() * dim;
    let mut y = vec![0.0f32; padded];
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let xb = broadcast_lanes::<W>(x[tc]);
            let words = a.tile_words(idx);
            for (ci, chunk) in words[..dim.min(words.len())].chunks(per).enumerate() {
                let counts = super::simd::lane_popcounts::<W>(W::pack_chunk_u64(chunk) & xb);
                let r0 = ci * per;
                for r in 0..chunk.len() {
                    // Adding an exact small integer (possibly 0) keeps the
                    // accumulation identical to the scalar `+= popcount`.
                    out[r0 + r] += ((counts >> (r as u32 * W::BITS)) & lane_ones) as f32;
                }
            }
        }
    });
    y.truncate(a.nrows());
    y
}

/// SWAR-vector variant of [`bmv_bin_full_full_into`].
///
/// The scalar kernel gathers row by row (`combine(x[j])` recomputed for
/// every row that holds column `j`).  This sweep goes column-major inside
/// each tile: the tile's set columns are enumerated once (from the OR of
/// its row words), `combine(x[j])` is hoisted to one evaluation per column,
/// and a SWAR column-strobe against the packed tile chunks yields exactly
/// the rows holding that column.  For any fixed output row the columns
/// still arrive in ascending order within each tile and tiles in the same
/// order as the scalar kernel, so every per-row semiring fold — including
/// the non-associative float `+` — produces the same bits.
pub fn bmv_bin_full_full_simd_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    semiring: Semiring,
    y: &mut [f32],
) {
    debug_assert!(x.len() >= a.ncols(), "vector shorter than matrix columns");
    let dim = a.tile_dim();
    let per = (64 / W::BITS) as usize;
    let padded = a.n_tile_rows() * dim;
    debug_assert!(
        y.len() >= padded,
        "output shorter than the padded row count"
    );
    debug_assert!(dim <= 32, "B2SR tiles are at most 32x32");
    y.par_chunks_mut(dim).enumerate().for_each(|(tr, out)| {
        for v in out.iter_mut() {
            *v = semiring.identity();
        }
        if tr >= a.n_tile_rows() {
            return;
        }
        let mut acc = [0.0f32; 32];
        for slot in acc[..dim].iter_mut() {
            *slot = semiring.identity();
        }
        // Packed chunks of the current tile (at most 16 for a 32×32 tile).
        let mut packed = [0u64; 16];
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let base = tc * dim;
            let words = a.tile_words(idx);
            let mut union = W::ZERO;
            let n_chunks = dim.min(words.len()).div_ceil(per);
            for (ci, chunk) in words[..dim.min(words.len())].chunks(per).enumerate() {
                packed[ci] = W::pack_chunk_u64(chunk);
            }
            for &w in &words[..dim.min(words.len())] {
                union |= w;
            }
            for j in union.iter_ones() {
                let col = base + j as usize;
                // Guard the ragged last tile-column (ncols % dim != 0).
                if col >= x.len() {
                    continue;
                }
                let cx = semiring.combine(x[col]);
                // Column strobe: bit `r·BITS + j` of a chunk is row `r`,
                // column `j` — one mask picks column `j` of every lane.
                let strobe = lsb_lanes::<W>() << j;
                for (ci, &p) in packed[..n_chunks].iter().enumerate() {
                    let mut hits = p & strobe;
                    while hits != 0 {
                        let b = hits.trailing_zeros();
                        hits &= hits - 1;
                        let r = ci * per + (b / W::BITS) as usize;
                        acc[r] = semiring.reduce(acc[r], cx);
                    }
                }
            }
        }
        let n = out.len().min(dim);
        out[..n].copy_from_slice(&acc[..n]);
    });
}

/// SWAR-vector variant of [`bmv_bin_full_full_masked_into`]: the
/// [`bmv_bin_full_full_simd_into`] sweep with masked rows forced to the
/// semiring identity afterwards, exactly like the scalar kernel.
pub fn bmv_bin_full_full_masked_simd_into<W: BitWord>(
    a: &B2sr<W>,
    x: &[f32],
    mask: &[bool],
    semiring: Semiring,
    y: &mut [f32],
) {
    debug_assert!(mask.len() >= a.nrows(), "mask shorter than matrix rows");
    bmv_bin_full_full_simd_into(a, x, semiring, y);
    let n = a.nrows();
    y[..n].par_iter_mut().enumerate().for_each(|(i, v)| {
        if mask[i] {
            *v = semiring.identity();
        }
    });
}

/// Branch-free variant of [`pack_vector_tilewise_into`]: each output word
/// is assembled from its tile-segment with shift-OR lane writes instead of
/// a per-element conditional store, which the compiler turns into straight
/// compare+shift vector code.  Bit-identical to the scalar packing.
pub fn pack_vector_tilewise_simd_into<W: BitWord>(v: &[f32], tile_dim: usize, words: &mut Vec<W>) {
    assert!(tile_dim as u32 <= W::BITS);
    words.clear();
    words.resize(v.len().div_ceil(tile_dim), W::ZERO);
    for (w, chunk) in words.iter_mut().zip(v.chunks(tile_dim)) {
        let mut bits = 0u64;
        for (i, &x) in chunk.iter().enumerate() {
            bits |= ((x != 0.0) as u64) << i;
        }
        *w = W::from_u64(bits);
    }
}

/// Branch-free variant of [`pack_vector_bits_into`] (see
/// [`pack_vector_tilewise_simd_into`]).
pub fn pack_vector_bits_simd_into<W: BitWord>(v: &[bool], tile_dim: usize, words: &mut Vec<W>) {
    assert!(tile_dim as u32 <= W::BITS);
    words.clear();
    words.resize(v.len().div_ceil(tile_dim), W::ZERO);
    for (w, chunk) in words.iter_mut().zip(v.chunks(tile_dim)) {
        let mut bits = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            bits |= (b as u64) << i;
        }
        *w = W::from_u64(bits);
    }
}

// ---------------------------------------------------------------------------
// Push (sparse-frontier) kernels
// ---------------------------------------------------------------------------

/// `bmv_push_bin_bin()`: push-direction Boolean BMV.  `frontier` lists the
/// active *row* indices of `a` in ascending order; the out-edges of those
/// rows are scattered into `y`, which holds one word per tile-column of `a`
/// (bit `c` of word `tc` = output position `tc * dim + c`) and must be
/// zeroed by the caller.
///
/// Because the bits of a B2SR tile row *are* that row's column indicator,
/// the scatter is a plain word-OR of the frontier rows' tile words — no
/// per-edge index arithmetic at all.  This base kernel is serial and
/// allocation-free — the right shape for tiny frontiers, and the per-segment
/// worker of [`bmv_push_bin_bin_sharded`] for everything else.
pub fn bmv_push_bin_bin<W: BitWord>(a: &B2sr<W>, frontier: &[usize], y: &mut [W]) {
    debug_assert!(y.len() >= a.n_tile_cols(), "output has too few tile words");
    let dim = a.tile_dim();
    let mut i = 0;
    while i < frontier.len() {
        let tr = frontier[i] / dim;
        debug_assert!(frontier[i] < a.nrows(), "frontier row out of range");
        // Gather all frontier rows of this tile-row into one selector word.
        let mut fw = W::ZERO;
        while i < frontier.len() && frontier[i] / dim == tr {
            fw = fw.with_bit((frontier[i] % dim) as u32);
            i += 1;
        }
        for idx in a.tile_row_range(tr) {
            let tc = a.tile_colind()[idx];
            let words = a.tile_words(idx);
            let mut acc = y[tc];
            for r in fw.iter_ones() {
                acc |= words[r as usize];
            }
            y[tc] = acc;
        }
    }
}

/// `bmv_push_bin_full()`: push-direction BMV with full-precision output,
/// generic over the semiring.  For every frontier row `u`, the contribution
/// `⊗(x[u])` is folded into each out-neighbour `j` of `u` with the additive
/// monoid: `y[j] = ⊕(y[j], ⊗(x[u]))`.  `allow` filters output positions
/// (the mask); `y` must be pre-filled with the semiring identity (or, on the
/// seeded fused-accumulator path, with the accumulation baseline).
///
/// Only valid for [`Semiring::push_safe`] semirings, where skipping the
/// non-frontier (identity-valued) entries cannot change the result.  Serial
/// and allocation-free like [`bmv_push_bin_bin`], and likewise the
/// per-segment worker of [`bmv_push_bin_full_sharded`].
pub fn bmv_push_bin_full<W: BitWord, M: Fn(usize) -> bool>(
    a: &B2sr<W>,
    x: &[f32],
    frontier: &[usize],
    semiring: Semiring,
    allow: M,
    y: &mut [f32],
) {
    debug_assert!(x.len() >= a.nrows(), "vector shorter than frontier rows");
    let dim = a.tile_dim();
    for &u in frontier {
        let contrib = semiring.combine(x[u]);
        let (tr, r) = (u / dim, u % dim);
        for idx in a.tile_row_range(tr) {
            let base = a.tile_colind()[idx] * dim;
            let w = a.tile_words(idx)[r];
            for dc in w.iter_ones() {
                let j = base + dc as usize;
                // Guard the ragged last tile-column (ncols % dim != 0).
                if j < y.len() && allow(j) {
                    y[j] = semiring.reduce(y[j], contrib);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded (parallel) push kernels — PR 5
// ---------------------------------------------------------------------------

/// Sharded parallel variant of [`bmv_push_bin_bin`].  `cuts` (from
/// [`crate::shard::ShardPlan::segment_frontier`]) splits the ascending
/// frontier into `cuts.len() - 1` shard-local segments; each segment
/// scatters serially into its privatized chunk of `scratch`
/// (`n_segments × n_tile_cols` words, zeroed by the caller), segments run
/// on up to `threads` scoped workers, and the chunks are word-OR-merged
/// into `y` in ascending segment order.
///
/// The OR monoid is exact, so the result is bit-identical to the serial
/// scatter — and therefore to itself across any thread count.
pub fn bmv_push_bin_bin_sharded<W: BitWord>(
    a: &B2sr<W>,
    frontier: &[usize],
    cuts: &[usize],
    threads: usize,
    scratch: &mut [W],
    y: &mut [W],
) {
    let width = a.n_tile_cols();
    let n_seg = cuts.len().saturating_sub(1);
    debug_assert!(y.len() >= width, "output has too few tile words");
    assert!(
        scratch.len() >= n_seg * width,
        "scratch must hold one output-width chunk per segment"
    );
    crate::shard::scatter_segments(threads, n_seg, scratch, width, |s, chunk| {
        bmv_push_bin_bin(a, &frontier[cuts[s]..cuts[s + 1]], chunk);
    });
    crate::shard::merge_segments(threads, n_seg, scratch, width, &mut y[..width], |acc, v| {
        acc | v
    });
}

/// Sharded parallel variant of [`bmv_push_bin_full`].  Segments (see
/// [`bmv_push_bin_bin_sharded`]) scatter into privatized identity-filled
/// chunks of `scratch` (`n_segments × y.len()` entries), and the chunks
/// fold into `y` with the semiring monoid **in ascending segment order** —
/// per output position the fold grouping depends only on `cuts`, never on
/// `threads`, so results are bit-identical across thread counts even for
/// the non-associative float `+`.  `y` arrives pre-seeded exactly as for
/// the serial kernel (identity, or the accumulation baseline on the seeded
/// fused path).
#[allow(clippy::too_many_arguments)]
pub fn bmv_push_bin_full_sharded<W: BitWord, M: Fn(usize) -> bool + Sync>(
    a: &B2sr<W>,
    x: &[f32],
    frontier: &[usize],
    cuts: &[usize],
    semiring: Semiring,
    allow: M,
    threads: usize,
    scratch: &mut [f32],
    y: &mut [f32],
) {
    let width = y.len();
    let n_seg = cuts.len().saturating_sub(1);
    assert!(
        scratch.len() >= n_seg * width,
        "scratch must hold one output-width chunk per segment"
    );
    debug_assert!(
        scratch
            .iter()
            .take(n_seg * width)
            .all(|&v| v == semiring.identity()),
        "scratch must be identity-filled"
    );
    crate::shard::scatter_segments(threads, n_seg, scratch, width, |s, chunk| {
        bmv_push_bin_full(
            a,
            x,
            &frontier[cuts[s]..cuts[s + 1]],
            semiring,
            &allow,
            chunk,
        );
    });
    crate::shard::merge_segments(threads, n_seg, scratch, width, y, |acc, v| {
        semiring.reduce(acc, v)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::convert::from_csr;
    use bitgblas_sparse::{ops, Coo, Csr, DenseVec};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 3 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    fn sample_x(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    (i % 7) as f32 + 1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Reference boolean reachability: y[i] = OR_j A[i][j] & (x[j] != 0).
    fn reference_bool(a: &Csr, x: &[f32]) -> Vec<bool> {
        (0..a.nrows())
            .map(|r| a.row(r).0.iter().any(|&c| x[c] != 0.0))
            .collect()
    }

    #[test]
    fn bin_bin_bin_matches_reference_all_variants() {
        let a = sample(97, 3);
        let x = sample_x(97);
        let expected = reference_bool(&a, &x);
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(&a, $dim);
                let xp = pack_vector_tilewise::<$w>(&x, $dim);
                let y = bmv_bin_bin_bin(&b, &xp);
                let yb = unpack_vector_bits(&y, $dim, a.nrows());
                assert_eq!(yb, expected, "dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn bin_bin_full_counts_reachable_columns() {
        let a = sample(64, 5);
        let x = sample_x(64);
        let expected: Vec<f32> = (0..64)
            .map(|r| a.row(r).0.iter().filter(|&&c| x[c] != 0.0).count() as f32)
            .collect();
        for dim in [4usize, 8] {
            let b = from_csr::<u8>(&a, dim);
            let xp = pack_vector_tilewise::<u8>(&x, dim);
            assert_eq!(bmv_bin_bin_full(&b, &xp), expected, "dim {dim}");
        }
        let b = from_csr::<u32>(&a, 32);
        let xp = pack_vector_tilewise::<u32>(&x, 32);
        assert_eq!(bmv_bin_bin_full(&b, &xp), expected);
    }

    #[test]
    fn bin_full_full_arithmetic_matches_float_spmv() {
        let a = sample(80, 7);
        let x = sample_x(80);
        let reference = ops::spmv(&a, &DenseVec::from_vec(x.clone())).unwrap();
        for dim in [4usize, 8] {
            let b = from_csr::<u8>(&a, dim);
            let y = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
            for (i, (&got, &want)) in y.iter().zip(reference.as_slice()).enumerate() {
                assert!(
                    (got - want).abs() < 1e-4,
                    "row {i}: {got} vs {want} (dim {dim})"
                );
            }
        }
        let b = from_csr::<u16>(&a, 16);
        let y = bmv_bin_full_full(&b, &x, Semiring::Arithmetic);
        for (&got, &want) in y.iter().zip(reference.as_slice()) {
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn bin_full_full_minplus_matches_semiring_spmv() {
        let a = sample(60, 11);
        let mut x = vec![f32::INFINITY; 60];
        x[0] = 0.0;
        x[17] = 2.0;
        x[41] = 5.0;
        let reference = ops::spmv_semiring(
            &a,
            &DenseVec::from_vec(x.clone()),
            ops::SemiringKind::MinPlus,
        )
        .unwrap();
        let b = from_csr::<u32>(&a, 32);
        let y = bmv_bin_full_full(&b, &x, Semiring::MinPlus(1.0));
        assert_eq!(
            y,
            reference.as_slice(),
            "binary weights are 1.0 so +1 relaxation matches"
        );
    }

    #[test]
    fn bin_full_full_maxtimes_and_boolean() {
        let a = sample(48, 13);
        let x: Vec<f32> = (0..48).map(|i| (i % 5) as f32).collect();
        let b = from_csr::<u8>(&a, 8);
        let ymax = bmv_bin_full_full(&b, &x, Semiring::MaxTimes(1.0));
        let reference = ops::spmv_semiring(
            &a,
            &DenseVec::from_vec(x.clone()),
            ops::SemiringKind::MaxTimes,
        )
        .unwrap();
        assert_eq!(ymax, reference.as_slice());

        let ybool = bmv_bin_full_full(&b, &x, Semiring::Boolean);
        let refbool = reference_bool(&a, &x);
        for (got, want) in ybool.iter().zip(refbool) {
            assert_eq!(*got != 0.0, want);
        }
    }

    #[test]
    fn masked_bin_bin_bin_filters_visited() {
        let a = sample(40, 17);
        let x = sample_x(40);
        let dim = 8usize;
        let b = from_csr::<u8>(&a, dim);
        let xp = pack_vector_tilewise::<u8>(&x, dim);
        // Mask out every even row.
        let visited: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mask = pack_vector_bits::<u8>(&visited, dim);
        let y = bmv_bin_bin_bin_masked(&b, &xp, &mask);
        let yb = unpack_vector_bits(&y, dim, 40);
        let unmasked = unpack_vector_bits(&bmv_bin_bin_bin(&b, &xp), dim, 40);
        for i in 0..40 {
            if visited[i] {
                assert!(!yb[i], "masked row {i} must be filtered");
            } else {
                assert_eq!(yb[i], unmasked[i]);
            }
        }
    }

    #[test]
    fn masked_bin_bin_full_zeroes_masked_rows() {
        let a = sample(40, 19);
        let x = sample_x(40);
        let dim = 4usize;
        let b = from_csr::<u8>(&a, dim);
        let xp = pack_vector_tilewise::<u8>(&x, dim);
        let visited: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
        let mask = pack_vector_bits::<u8>(&visited, dim);
        let y = bmv_bin_bin_full_masked(&b, &xp, &mask);
        let unmasked = bmv_bin_bin_full(&b, &xp);
        for i in 0..40 {
            if visited[i] {
                assert_eq!(y[i], 0.0);
            } else {
                assert_eq!(y[i], unmasked[i]);
            }
        }
    }

    #[test]
    fn masked_bin_full_full_produces_identity_on_masked_rows() {
        let a = sample(32, 23);
        let mut x = vec![f32::INFINITY; 32];
        x[3] = 0.0;
        let b = from_csr::<u32>(&a, 32);
        let visited: Vec<bool> = (0..32).map(|i| i < 16).collect();
        let y = bmv_bin_full_full_masked(&b, &x, &visited, Semiring::MinPlus(1.0));
        for (i, &v) in y.iter().enumerate() {
            if visited[i] {
                assert_eq!(v, f32::INFINITY);
            }
        }
    }

    /// Reference push: scatter the out-edges of the frontier rows.
    fn reference_push_bool(a: &Csr, frontier: &[usize]) -> Vec<bool> {
        let mut y = vec![false; a.ncols()];
        for &u in frontier {
            for &c in a.row(u).0 {
                y[c] = true;
            }
        }
        y
    }

    #[test]
    fn push_bin_bin_matches_scatter_reference_all_variants() {
        let a = sample(97, 29);
        let frontier: Vec<usize> = (0..97).filter(|i| i % 9 == 0).collect();
        let expected = reference_push_bool(&a, &frontier);
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(&a, $dim);
                let mut y = vec![<$w>::default(); b.n_tile_cols()];
                bmv_push_bin_bin(&b, &frontier, &mut y);
                let yb = unpack_vector_bits(&y, $dim, a.ncols());
                assert_eq!(yb, expected, "dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn push_equals_pull_for_boolean_frontiers() {
        let a = sample(80, 31);
        let x = sample_x(80);
        let frontier: Vec<usize> = x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, _)| i)
            .collect();
        // Pull runs on Aᵀ, push scatters the rows of A — same product x·A.
        let at = from_csr::<u8>(&a.transpose(), 8);
        let xp = pack_vector_tilewise::<u8>(&x, 8);
        let pull = unpack_vector_bits(&bmv_bin_bin_bin(&at, &xp), 8, a.ncols());
        let af = from_csr::<u8>(&a, 8);
        let mut y = vec![0u8; af.n_tile_cols()];
        bmv_push_bin_bin(&af, &frontier, &mut y);
        let push = unpack_vector_bits(&y, 8, a.ncols());
        assert_eq!(push, pull);
    }

    #[test]
    fn push_bin_full_matches_pull_for_minplus_and_arithmetic() {
        let a = sample(64, 37);
        let mut x = vec![f32::INFINITY; 64];
        x[0] = 0.0;
        x[13] = 3.0;
        x[40] = 1.0;
        let semiring = Semiring::MinPlus(1.0);
        let frontier: Vec<usize> = (0..64).filter(|&i| x[i].is_finite()).collect();
        let at = from_csr::<u16>(&a.transpose(), 16);
        let pull = bmv_bin_full_full(&at, &x, semiring);
        let af = from_csr::<u16>(&a, 16);
        let mut y = vec![semiring.identity(); a.ncols()];
        bmv_push_bin_full(&af, &x, &frontier, semiring, |_| true, &mut y);
        assert_eq!(y, pull, "min-plus push must equal the pull sweep exactly");

        let xa = sample_x(64);
        let fa: Vec<usize> = (0..64).filter(|&i| xa[i] != 0.0).collect();
        let pull_sum = bmv_bin_full_full(&at, &xa, Semiring::Arithmetic);
        let mut ys = vec![0.0f32; a.ncols()];
        bmv_push_bin_full(&af, &xa, &fa, Semiring::Arithmetic, |_| true, &mut ys);
        for (i, (g, w)) in ys.iter().zip(&pull_sum).enumerate() {
            assert!((g - w).abs() < 1e-4, "position {i}: {g} vs {w}");
        }
    }

    #[test]
    fn push_respects_the_allow_filter() {
        let a = sample(40, 41);
        let x = sample_x(40);
        let frontier: Vec<usize> = (0..40).filter(|&i| x[i] != 0.0).collect();
        let b = from_csr::<u8>(&a, 8);
        let mut y = vec![0.0f32; a.ncols()];
        bmv_push_bin_full(
            &b,
            &x,
            &frontier,
            Semiring::Arithmetic,
            |j| j % 2 == 0,
            &mut y,
        );
        for (j, &v) in y.iter().enumerate() {
            if j % 2 != 0 {
                assert_eq!(v, 0.0, "filtered position {j} must stay identity");
            }
        }
    }

    #[test]
    fn sharded_push_bin_bin_matches_serial_for_every_thread_count() {
        let a = sample(300, 53);
        let frontier: Vec<usize> = (0..300).filter(|i| i % 3 == 0).collect();
        let b = from_csr::<u8>(&a, 8);
        let mut serial = vec![0u8; b.n_tile_cols()];
        bmv_push_bin_bin(&b, &frontier, &mut serial);
        // Hand-built 4-shard boundaries (aligned to the tile dim).
        let bounds = [0usize, 80, 160, 240, 300];
        let mut cuts = vec![0usize];
        for w in bounds.windows(2) {
            let end = frontier.partition_point(|&r| r < w[1]);
            if end > *cuts.last().unwrap() {
                cuts.push(end);
            }
        }
        for threads in [1usize, 2, 4, 8] {
            let width = b.n_tile_cols();
            let mut scratch = vec![0u8; (cuts.len() - 1) * width];
            let mut y = vec![0u8; width];
            bmv_push_bin_bin_sharded(&b, &frontier, &cuts, threads, &mut scratch, &mut y);
            assert_eq!(y, serial, "threads={threads}");
        }
    }

    #[test]
    fn sharded_push_bin_full_is_bit_identical_across_thread_counts() {
        let a = sample(280, 59);
        let x: Vec<f32> = (0..280).map(|i| (i % 11) as f32 * 0.37 + 0.01).collect();
        let frontier: Vec<usize> = (0..280).filter(|i| i % 2 == 0).collect();
        let bounds = [0usize, 96, 192, 280];
        let mut cuts = vec![0usize];
        for w in bounds.windows(2) {
            let end = frontier.partition_point(|&r| r < w[1]);
            if end > *cuts.last().unwrap() {
                cuts.push(end);
            }
        }
        let b = from_csr::<u16>(&a, 16);
        for semiring in [
            Semiring::Arithmetic,
            Semiring::MinPlus(1.0),
            Semiring::Boolean,
        ] {
            let mut reference: Option<Vec<u32>> = None;
            for threads in [1usize, 2, 4, 8] {
                let width = a.ncols();
                let mut scratch = vec![semiring.identity(); (cuts.len() - 1) * width];
                let mut y = vec![semiring.identity(); width];
                bmv_push_bin_full_sharded(
                    &b,
                    &x,
                    &frontier,
                    &cuts,
                    semiring,
                    |_| true,
                    threads,
                    &mut scratch,
                    &mut y,
                );
                let bits: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(&bits, r, "{semiring:?} threads={threads} diverged"),
                }
            }
            // Exact monoids additionally equal the serial scatter bitwise.
            if semiring != Semiring::Arithmetic {
                let mut serial = vec![semiring.identity(); a.ncols()];
                bmv_push_bin_full(&b, &x, &frontier, semiring, |_| true, &mut serial);
                let serial_bits: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
                assert_eq!(reference.unwrap(), serial_bits, "{semiring:?} vs serial");
            }
        }
    }

    #[test]
    fn push_with_empty_frontier_is_a_no_op() {
        let a = sample(32, 43);
        let b = from_csr::<u8>(&a, 4);
        let mut yw = vec![0u8; b.n_tile_cols()];
        bmv_push_bin_bin(&b, &[], &mut yw);
        assert!(yw.iter().all(|&w| w == 0));
        let mut y = vec![f32::INFINITY; a.ncols()];
        bmv_push_bin_full(
            &b,
            &[0.0; 32],
            &[],
            Semiring::MinPlus(1.0),
            |_| true,
            &mut y,
        );
        assert!(y.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let a = sample(50, 47);
        let x = sample_x(50);
        let b = from_csr::<u8>(&a, 8);
        let xp = pack_vector_tilewise::<u8>(&x, 8);
        let mut yw = vec![0xFFu8; b.n_tile_rows()];
        bmv_bin_bin_bin_into(&b, &xp, &mut yw);
        assert_eq!(yw, bmv_bin_bin_bin(&b, &xp));

        let visited: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let mp = pack_vector_bits::<u8>(&visited, 8);
        let mut ym = vec![0xFFu8; b.n_tile_rows()];
        bmv_bin_bin_bin_masked_into(&b, &xp, &mp, &mut ym);
        assert_eq!(ym, bmv_bin_bin_bin_masked(&b, &xp, &mp));

        let padded = b.n_tile_rows() * 8;
        let mut yf = vec![42.0f32; padded];
        bmv_bin_full_full_into(&b, &x, Semiring::Arithmetic, &mut yf);
        assert_eq!(
            &yf[..50],
            &bmv_bin_full_full(&b, &x, Semiring::Arithmetic)[..]
        );

        let mut yfm = vec![42.0f32; padded];
        bmv_bin_full_full_masked_into(&b, &x, &visited, Semiring::Arithmetic, &mut yfm);
        assert_eq!(
            &yfm[..50],
            &bmv_bin_full_full_masked(&b, &x, &visited, Semiring::Arithmetic)[..]
        );

        let mut packed = vec![0u8; 1];
        pack_vector_tilewise_into(&x, 8, &mut packed);
        assert_eq!(packed, xp);
        let mut packed_b = vec![0u8; 99];
        pack_vector_bits_into(&visited, 8, &mut packed_b);
        assert_eq!(packed_b, mp);
    }

    #[test]
    fn fused_sweep_matches_generic_kernel_plus_finish() {
        let a = sample(77, 51);
        let x = sample_x(77);
        let epilogue = |r: usize, t: f32| 2.0 * t + r as f32;
        for semiring in [
            Semiring::Arithmetic,
            Semiring::Boolean,
            Semiring::MinPlus(1.0),
            Semiring::MaxTimes(1.0),
        ] {
            macro_rules! check {
                ($w:ty, $dim:expr) => {{
                    let b = from_csr::<$w>(&a, $dim);
                    let padded = b.n_tile_rows() * $dim;
                    let mut fused = vec![42.0f32; padded];
                    bmv_bin_full_full_fused_into(&b, &x, semiring, epilogue, &mut fused);
                    let generic = bmv_bin_full_full(&b, &x, semiring);
                    for (r, &want_raw) in generic.iter().enumerate() {
                        let want = epilogue(r, want_raw);
                        let got = fused[r];
                        let both_inf = got.is_infinite() && want.is_infinite();
                        assert!(
                            both_inf || (got - want).abs() < 1e-4,
                            "{semiring:?} dim {}: row {r}: {got} vs {want}",
                            $dim
                        );
                    }
                    // Padded tail rows hold the identity.
                    for &v in &fused[a.nrows()..] {
                        assert_eq!(v, semiring.identity(), "{semiring:?}");
                    }
                }};
            }
            check!(u8, 4);
            check!(u8, 8);
            check!(u16, 16);
            check!(u32, 32);
        }
    }

    #[test]
    fn vector_packing_roundtrip() {
        let v: Vec<bool> = (0..37).map(|i| i % 4 == 0).collect();
        for dim in [4usize, 8, 16, 32] {
            let packed = pack_vector_bits::<u32>(&v, dim);
            assert_eq!(unpack_vector_bits(&packed, dim, v.len()), v, "dim {dim}");
        }
        let f: Vec<f32> = v.iter().map(|&b| if b { 2.5 } else { 0.0 }).collect();
        let packed_f = pack_vector_tilewise::<u16>(&f, 16);
        assert_eq!(unpack_vector_bits(&packed_f, 16, v.len()), v);
    }

    #[test]
    fn empty_matrix_yields_identity_outputs() {
        let a = Csr::empty(20, 20);
        let b = from_csr::<u8>(&a, 4);
        let xp = pack_vector_tilewise::<u8>(&[1.0; 20], 4);
        assert!(bmv_bin_bin_bin(&b, &xp).iter().all(|&w| w == 0));
        assert!(bmv_bin_bin_full(&b, &xp).iter().all(|&v| v == 0.0));
        let y = bmv_bin_full_full(&b, &[1.0; 20], Semiring::MinPlus(1.0));
        assert!(y.iter().all(|&v| v == f32::INFINITY));
    }

    // -- differential SWAR-vector vs scalar (PR 9) --------------------------
    //
    // Sizes 97/103 deliberately straddle tile boundaries for every dim, so
    // the ragged last tile-row/-column is exercised on both paths.

    #[test]
    fn simd_bin_bin_bin_is_bit_identical_to_scalar() {
        let a = sample(103, 31);
        let x = sample_x(103);
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(&a, $dim);
                let xp = pack_vector_tilewise::<$w>(&x, $dim);
                let mut scalar = vec![<$w>::MAX; b.n_tile_rows()];
                let mut vector = vec![0 as $w; b.n_tile_rows()];
                bmv_bin_bin_bin_into(&b, &xp, &mut scalar);
                bmv_bin_bin_bin_simd_into(&b, &xp, &mut vector);
                assert_eq!(scalar, vector, "dim {}", $dim);
                // Masked: identical word for word too.
                let visited: Vec<bool> = (0..103).map(|i| i % 2 == 0).collect();
                let mp = pack_vector_bits::<$w>(&visited, $dim);
                bmv_bin_bin_bin_masked_into(&b, &xp, &mp, &mut scalar);
                bmv_bin_bin_bin_masked_simd_into(&b, &xp, &mp, &mut vector);
                assert_eq!(scalar, vector, "masked dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn simd_bin_bin_full_is_bit_identical_to_scalar() {
        let a = sample(97, 37);
        let x = sample_x(97);
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(&a, $dim);
                let xp = pack_vector_tilewise::<$w>(&x, $dim);
                let scalar = bmv_bin_bin_full(&b, &xp);
                let vector = bmv_bin_bin_full_simd(&b, &xp);
                let sbits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                let vbits: Vec<u32> = vector.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sbits, vbits, "dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn simd_bin_full_full_is_bit_identical_to_scalar_across_semirings() {
        let a = sample(97, 41);
        // Mixed finite/infinite operand so tropical identities flow through.
        let x: Vec<f32> = (0..97)
            .map(|i| match i % 5 {
                0 => 0.25 * i as f32,
                1 => f32::INFINITY,
                2 => -1.5,
                _ => (i % 11) as f32,
            })
            .collect();
        for semiring in [
            Semiring::Arithmetic,
            Semiring::Boolean,
            Semiring::MinPlus(1.0),
            Semiring::MaxTimes(0.5),
        ] {
            macro_rules! check {
                ($w:ty, $dim:expr) => {{
                    let b = from_csr::<$w>(&a, $dim);
                    let padded = b.n_tile_rows() * $dim;
                    let mut scalar = vec![42.0f32; padded];
                    let mut vector = vec![-7.0f32; padded];
                    bmv_bin_full_full_into(&b, &x, semiring, &mut scalar);
                    bmv_bin_full_full_simd_into(&b, &x, semiring, &mut vector);
                    let sbits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                    let vbits: Vec<u32> = vector.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(sbits, vbits, "{semiring:?} dim {}", $dim);
                    // Masked: identical bits too.
                    let mask: Vec<bool> = (0..97).map(|i| i % 3 == 0).collect();
                    bmv_bin_full_full_masked_into(&b, &x, &mask, semiring, &mut scalar);
                    bmv_bin_full_full_masked_simd_into(&b, &x, &mask, semiring, &mut vector);
                    let sbits: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                    let vbits: Vec<u32> = vector.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(sbits, vbits, "masked {semiring:?} dim {}", $dim);
                }};
            }
            check!(u8, 4);
            check!(u8, 8);
            check!(u16, 16);
            check!(u32, 32);
        }
    }

    #[test]
    fn simd_packing_is_bit_identical_to_scalar() {
        let f: Vec<f32> = (0..101)
            .map(|i| if i % 3 == 0 { -0.5 * i as f32 } else { 0.0 })
            .collect();
        let b: Vec<bool> = (0..101).map(|i| i % 7 < 3).collect();
        macro_rules! check {
            ($w:ty, $dim:expr) => {{
                let mut scalar: Vec<$w> = Vec::new();
                let mut vector: Vec<$w> = Vec::new();
                pack_vector_tilewise_into(&f, $dim, &mut scalar);
                pack_vector_tilewise_simd_into(&f, $dim, &mut vector);
                assert_eq!(scalar, vector, "tilewise dim {}", $dim);
                pack_vector_bits_into(&b, $dim, &mut scalar);
                pack_vector_bits_simd_into(&b, $dim, &mut vector);
                assert_eq!(scalar, vector, "bits dim {}", $dim);
            }};
        }
        check!(u8, 4);
        check!(u8, 8);
        check!(u16, 16);
        check!(u32, 32);
    }

    #[test]
    fn simd_kernels_handle_empty_and_tiny_inputs() {
        let a = Csr::empty(20, 20);
        let b = from_csr::<u8>(&a, 4);
        let xp = pack_vector_tilewise::<u8>(&[1.0; 20], 4);
        let mut y = vec![0xFFu8; b.n_tile_rows()];
        bmv_bin_bin_bin_simd_into(&b, &xp, &mut y);
        assert!(y.iter().all(|&w| w == 0));
        let mut yf = vec![0.0f32; b.n_tile_rows() * 4];
        bmv_bin_full_full_simd_into(&b, &[1.0; 20], Semiring::MinPlus(1.0), &mut yf);
        assert!(yf.iter().all(|&v| v == f32::INFINITY));
    }
}
