//! Seeded, deterministic fault injection for the serving stack (PR 7).
//!
//! A [`FaultInjector`] holds a [`FaultPlan`]: a registry of named **fail
//! points** with an action (panic / transient error / added latency), a
//! firing probability, an optional argument filter and an optional firing
//! budget.  Production code threads the injector through dispatch sites
//! that call [`FaultInjector::fire`] with the point's name; with no
//! injector installed the sites cost one `Option` check.
//!
//! Determinism is the whole point: the injector draws from its own
//! splitmix64 stream seeded at construction, and the call sites fire in the
//! (deterministic) dispatch order of the explicitly-clocked service, so a
//! chaos test that replays the same seed and the same query stream observes
//! the *same* faults at the same dispatches — no wall clock, no global
//! state.  The chaos proptests in `bitgblas-serve` drive random fault plans
//! against random query interleavings and assert the service's
//! exactly-once/conservation invariants hold under all of them.
//!
//! ## Fail points in the tree
//!
//! | point              | argument        | fired from                       |
//! |--------------------|-----------------|----------------------------------|
//! | `grb.mxv_dispatch` | none            | planner, before an `mxv` product |
//! | `grb.mxm_dispatch` | none            | planner, before an `mxm` product |
//! | `serve.batch`      | none            | service, per batched engine call |
//! | `serve.lane`       | lane source     | service, per dispatched lane     |
//! | `grb.delta_merge`  | none            | compaction, before the fold is published |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the fail point with an [`InjectedPanic`] payload (the
    /// containment layer recognises and silences it).
    Panic,
    /// Fail transiently: fallible paths return
    /// [`GrbError::FaultInjected`](crate::grb::GrbError); the service
    /// schedules a budgeted, backed-off retry.
    Transient,
    /// Add this many virtual-clock ticks of execution latency (reported,
    /// never slept — the injector performs no wall-clock operation).
    Latency(u64),
}

/// One named fail point in a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FailSpec {
    /// The dispatch site this spec arms (e.g. `"serve.lane"`).
    pub point: &'static str,
    /// What happens when the point fires.
    pub action: FaultAction,
    /// Probability in `[0, 1]` that an armed call site fires (1.0 = always).
    pub probability: f64,
    /// When `Some(v)`, only call sites whose argument equals `v` are armed
    /// (e.g. poison exactly the lane whose source is `v`).
    pub match_arg: Option<usize>,
    /// When `Some(n)`, the spec disarms after firing `n` times.
    pub max_fires: Option<u64>,
}

impl FailSpec {
    /// A spec that always fires at `point` with `action`.
    pub fn always(point: &'static str, action: FaultAction) -> Self {
        FailSpec {
            point,
            action,
            probability: 1.0,
            match_arg: None,
            max_fires: None,
        }
    }

    /// Restrict the spec to call sites whose argument equals `arg`.
    pub fn with_arg(mut self, arg: usize) -> Self {
        self.match_arg = Some(arg);
        self
    }

    /// Fire with the given probability instead of always.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Disarm after `n` firings.
    pub fn with_max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }
}

/// An ordered registry of [`FailSpec`]s (first matching armed spec wins).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FailSpec>,
}

impl FaultPlan {
    /// An empty plan (no point ever fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a spec (builder style).
    pub fn with(mut self, spec: FailSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The registered specs, in priority order.
    pub fn specs(&self) -> &[FailSpec] {
        &self.specs
    }
}

/// The panic payload of [`FaultAction::Panic`].  Containment layers match
/// on this type to distinguish an injected crash from a genuine bug (the
/// chaos tests' panic hook silences only these).
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The fail point that fired.
    pub point: &'static str,
}

/// Per-action firing counters, for observability and test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Panics injected.
    pub panics: u64,
    /// Transient errors injected.
    pub transients: u64,
    /// Latency injections (count of firings, not total ticks).
    pub latencies: u64,
}

/// A seeded fault injector: [`FaultPlan`] + private splitmix64 stream +
/// firing counters.  Cheap to share (`Arc`) between a service and the
/// matrix context it serves; thread-safe (the PRNG draw is a mutex'd u64
/// step, the counters are relaxed atomics).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<u64>,
    fired: [AtomicU64; 3],
    per_spec: Vec<AtomicU64>,
}

/// One splitmix64 step — the same generator the compat `rand` crate uses,
/// inlined here so the core crate stays dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// An injector executing `plan`, drawing from a stream seeded with
    /// `seed`.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        let per_spec = plan.specs().iter().map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            plan,
            rng: Mutex::new(seed),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
            per_spec,
        }
    }

    /// An injector that never fires (the zero-overhead "disabled" value for
    /// code that wants to avoid an `Option`).
    pub fn disabled() -> Self {
        Self::new(0, FaultPlan::new())
    }

    /// Should the fail point `point`, called with `arg`, fire — and with
    /// what action?  Walks the plan in order; the first armed spec whose
    /// point and argument filter match gets a probability draw from the
    /// seeded stream.  Returns `None` when nothing fires.
    pub fn fire(&self, point: &str, arg: Option<usize>) -> Option<FaultAction> {
        for (i, spec) in self.plan.specs().iter().enumerate() {
            if spec.point != point {
                continue;
            }
            if let Some(want) = spec.match_arg {
                if arg != Some(want) {
                    continue;
                }
            }
            if let Some(cap) = spec.max_fires {
                if self.per_spec[i].load(Ordering::Relaxed) >= cap {
                    continue;
                }
            }
            let hit = if spec.probability >= 1.0 {
                true
            } else if spec.probability <= 0.0 {
                false
            } else {
                let draw = {
                    let mut state = self.rng.lock().expect("fault injector rng poisoned");
                    splitmix64(&mut state)
                };
                // 53 high bits → uniform f64 in [0, 1).
                let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
                u < spec.probability
            };
            if hit {
                self.per_spec[i].fetch_add(1, Ordering::Relaxed);
                let slot = match spec.action {
                    FaultAction::Panic => 0,
                    FaultAction::Transient => 1,
                    FaultAction::Latency(_) => 2,
                };
                self.fired[slot].fetch_add(1, Ordering::Relaxed);
                return Some(spec.action);
            }
        }
        None
    }

    /// How often each action class has fired so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            panics: self.fired[0].load(Ordering::Relaxed),
            transients: self.fired[1].load(Ordering::Relaxed),
            latencies: self.fired[2].load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            assert_eq!(inj.fire("serve.lane", Some(3)), None);
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn arg_filter_targets_one_lane() {
        let plan =
            FaultPlan::new().with(FailSpec::always("serve.lane", FaultAction::Panic).with_arg(7));
        let inj = FaultInjector::new(1, plan);
        assert_eq!(inj.fire("serve.lane", Some(3)), None);
        assert_eq!(inj.fire("serve.lane", Some(7)), Some(FaultAction::Panic));
        assert_eq!(inj.fire("serve.batch", Some(7)), None, "point name gates");
        assert_eq!(inj.counts().panics, 1);
    }

    #[test]
    fn max_fires_disarms() {
        let plan = FaultPlan::new()
            .with(FailSpec::always("serve.batch", FaultAction::Transient).with_max_fires(2));
        let inj = FaultInjector::new(9, plan);
        assert!(inj.fire("serve.batch", None).is_some());
        assert!(inj.fire("serve.batch", None).is_some());
        assert_eq!(inj.fire("serve.batch", None), None, "budget exhausted");
        assert_eq!(inj.counts().transients, 2);
    }

    #[test]
    fn probability_draws_are_seed_deterministic() {
        let mk = |seed| {
            let plan = FaultPlan::new().with(
                FailSpec::always("grb.mxv_dispatch", FaultAction::Latency(5)).with_probability(0.5),
            );
            FaultInjector::new(seed, plan)
        };
        let trace = |inj: &FaultInjector| -> Vec<bool> {
            (0..64)
                .map(|_| inj.fire("grb.mxv_dispatch", None).is_some())
                .collect()
        };
        let (a, b) = (mk(42), mk(42));
        assert_eq!(trace(&a), trace(&b), "same seed, same firing sequence");
        let c = mk(43);
        assert_ne!(trace(&a), trace(&c), "different seed, different sequence");
        let hits = trace(&a).iter().filter(|&&h| h).count();
        assert!((16..=48).contains(&hits), "p=0.5 over 64 draws: got {hits}");
    }

    #[test]
    fn first_matching_spec_wins() {
        let plan = FaultPlan::new()
            .with(FailSpec::always("serve.lane", FaultAction::Transient).with_arg(1))
            .with(FailSpec::always("serve.lane", FaultAction::Panic));
        let inj = FaultInjector::new(3, plan);
        assert_eq!(
            inj.fire("serve.lane", Some(1)),
            Some(FaultAction::Transient)
        );
        assert_eq!(inj.fire("serve.lane", Some(2)), Some(FaultAction::Panic));
    }
}
