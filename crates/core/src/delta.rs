//! Streaming graph mutations (PR 8): the edge-delta log, merge-on-read
//! overlay, and versioned snapshot publication.
//!
//! Every layer below this one assumes a matrix frozen at build time — the
//! B2SR tiles, the shard plans, the batched engine all pay their conversion
//! and planning cost once, at construction.  This module makes the graph
//! *mutable under live serving* without giving that amortization up:
//!
//! * **Delta log** — writers append [`EdgeDelta`]s (insert/delete) to an
//!   append-only log held by the matrix's shared [`VersionCell`]; the base
//!   representation is never touched in place.
//! * **DCSR-style staging** — the log is normalized into a
//!   [`DeltaSnapshot`]: per-row patch lists over only the *dirty* rows
//!   ([`StagedRows`], a doubly-compressed layout storing nothing for the
//!   untouched rows), plus the mirrored per-column view so both traversal
//!   directions stay one lookup.
//! * **Merge-on-read overlay** — [`DeltaOverlay`] implements
//!   [`GrbBackend`] over `base ⊕ delta`: kernels run on the unchanged base
//!   representation (B2SR bit kernels or float CSR), then only the dirty
//!   rows are re-folded through a sorted merge of the base row and its
//!   patch.  Traversals see the mutated graph with no rebuild and no
//!   per-clean-row overhead.
//! * **Versioned publication** — a [`VersionCell`] owns `(epoch, base,
//!   log, head)` behind one mutex; appends and compactions swap a fully
//!   constructed head in a single critical section, so
//!   `Matrix::snapshot()` (an Arc-pinned epoch view) is always internally
//!   consistent and bit-stable for the lifetime of the handle, no matter
//!   how many writes land after it was taken.
//! * **Compaction** — [`VersionCell::compact`] folds the log into a fresh
//!   base of the same kind (B2SR tiles are re-tiled, CSR re-packed) and
//!   re-plans the row shards *incrementally*: only shards whose row ranges
//!   intersect the dirty rows are recut
//!   ([`ShardPlan::replan_rows`](crate::shard::ShardPlan::replan_rows)); clean shard boundaries survive
//!   verbatim.  The `grb.delta_merge` fail point fires before any shared
//!   state is touched, so an injected panic or transient error leaves the
//!   pre-compaction epoch — and every outstanding snapshot — fully
//!   readable (no torn epoch; see the chaos suite in `bitgblas-serve`).
//!
//! # Exactness
//!
//! The overlay's patched rows are *pull* re-folds: `y[i] = ⊕_{c ∈ merged
//! row} ⊗(x[c])` in ascending column order, the same fold the from-scratch
//! build would run.  For the exact monoids the traversal algorithms use
//! (Boolean `∨`, tropical `min`), the fold grouping is irrelevant, so
//! overlay traversals are **bit-identical** to rebuilding the graph from
//! scratch — the property the `mutation_parity` proptests pin down.  Push
//! (sparse-frontier) sweeps patch the same way, which is exact because the
//! planner guarantees off-frontier operand entries contribute the
//! identity.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use bitgblas_sparse::{ops as float_ops, Csr};

use crate::faultinject::{FaultAction, InjectedPanic};
use crate::grb::backend::{BitB2sr, FloatCsr, GrbBackend};
use crate::grb::descriptor::Mask;
use crate::grb::error::GrbError;
use crate::grb::matrix::Backend;
use crate::grb::op::Context;
use crate::grb::workspace::Workspace;
use crate::semiring::Semiring;

/// The compaction fail point: fired once per [`VersionCell::compact`] with
/// pending deltas, after the fold is staged but **before** any shared state
/// is mutated (see the module docs on torn-epoch safety).
pub const DELTA_MERGE_POINT: &str = "grb.delta_merge";

/// What a logged mutation does to its edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// The edge exists from this point on (idempotent if already present).
    Insert,
    /// The edge is absent from this point on (idempotent if already absent).
    Delete,
}

/// One logged edge mutation.  The unit of the append-only delta log; the
/// serving layer's `Query::Mutate` carries exactly one of these per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeDelta {
    /// Source vertex (row of the adjacency matrix).
    pub row: usize,
    /// Destination vertex (column of the adjacency matrix).
    pub col: usize,
    /// Insert or delete.
    pub op: DeltaOp,
}

impl EdgeDelta {
    /// An edge insertion.
    pub fn insert(row: usize, col: usize) -> Self {
        EdgeDelta {
            row,
            col,
            op: DeltaOp::Insert,
        }
    }

    /// An edge deletion.
    pub fn delete(row: usize, col: usize) -> Self {
        EdgeDelta {
            row,
            col,
            op: DeltaOp::Delete,
        }
    }
}

/// DCSR-style staged patch lists: only the keys (rows, or columns for the
/// mirrored view) touched by the log are stored, each with its sorted
/// patch entries `(other endpoint, present)` — `present` is the edge's
/// *final* state after last-op-wins normalization and overrides the base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StagedRows {
    /// Ascending dirty keys.
    index: Vec<usize>,
    /// `offsets[i] .. offsets[i+1]` delimits `index[i]`'s entries.
    offsets: Vec<usize>,
    /// `(other endpoint, present)` pairs, ascending per key.
    entries: Vec<(usize, bool)>,
}

impl StagedRows {
    /// Build from `(key, other, present)` triples sorted by `(key, other)`
    /// with unique `(key, other)` pairs.
    fn from_sorted(triples: impl Iterator<Item = (usize, usize, bool)>) -> Self {
        let mut staged = StagedRows::default();
        for (key, other, present) in triples {
            if staged.index.last() != Some(&key) {
                staged.index.push(key);
                staged.offsets.push(staged.entries.len());
            }
            staged.entries.push((other, present));
        }
        staged.offsets.push(staged.entries.len());
        if staged.index.is_empty() {
            staged.offsets = vec![0];
        }
        staged
    }

    /// The ascending dirty keys.
    pub fn dirty(&self) -> &[usize] {
        &self.index
    }

    /// The patch entries of `key`, if it is dirty.
    pub fn patch(&self, key: usize) -> Option<&[(usize, bool)]> {
        let i = self.index.binary_search(&key).ok()?;
        Some(&self.entries[self.offsets[i]..self.offsets[i + 1]])
    }

    /// True when no key is staged.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterate `(key, patch entries)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[(usize, bool)])> {
        self.index
            .iter()
            .enumerate()
            .map(move |(i, &key)| (key, &self.entries[self.offsets[i]..self.offsets[i + 1]]))
    }

    fn storage_bytes(&self) -> usize {
        self.index.len() * std::mem::size_of::<usize>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.entries.len() * std::mem::size_of::<(usize, bool)>()
    }
}

/// Walk the sorted merge of a base row's columns with a staged patch,
/// calling `f` once per present column in ascending order.  Patch entries
/// override the base on ties; absent (`present == false`) entries suppress
/// the base column.
fn for_each_merged(base: &[usize], patch: &[(usize, bool)], f: &mut impl FnMut(usize)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < base.len() && j < patch.len() {
        let (b, (p, present)) = (base[i], patch[j]);
        if b < p {
            f(b);
            i += 1;
        } else {
            if present {
                f(p);
            }
            j += 1;
            if p == b {
                i += 1;
            }
        }
    }
    for &b in &base[i..] {
        f(b);
    }
    for &(p, present) in &patch[j..] {
        if present {
            f(p);
        }
    }
}

/// A normalized, immutable view of a delta-log prefix: last-op-wins per
/// edge, staged by row and (mirrored) by column, with the net edge-count
/// change accounted against a base CSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSnapshot {
    /// Length of the log prefix this snapshot normalizes.
    watermark: usize,
    /// Patches staged by row (the forward traversal direction).
    rows: StagedRows,
    /// The same patches staged by column (the transpose direction).
    cols: StagedRows,
    /// Edges present in the final state but absent in the base.
    inserted: usize,
    /// Edges absent in the final state but present in the base.
    deleted: usize,
}

impl DeltaSnapshot {
    /// Normalize a log prefix against `base`: later ops win per `(row,
    /// col)`, no-ops (inserting a present edge, deleting an absent one)
    /// stage harmlessly and count nothing.
    pub fn build(base: &Csr, log: &[EdgeDelta]) -> Self {
        let mut fwd: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        for d in log {
            fwd.insert((d.row, d.col), d.op == DeltaOp::Insert);
        }
        let mut rev: BTreeMap<(usize, usize), bool> = BTreeMap::new();
        let (mut inserted, mut deleted) = (0usize, 0usize);
        for (&(r, c), &present) in &fwd {
            rev.insert((c, r), present);
            let in_base = base.get(r, c).is_some();
            inserted += usize::from(present && !in_base);
            deleted += usize::from(!present && in_base);
        }
        DeltaSnapshot {
            watermark: log.len(),
            rows: StagedRows::from_sorted(fwd.into_iter().map(|((r, c), p)| (r, c, p))),
            cols: StagedRows::from_sorted(rev.into_iter().map(|((c, r), p)| (c, r, p))),
            inserted,
            deleted,
        }
    }

    /// Length of the log prefix this snapshot covers.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Ascending rows with at least one staged entry — the compaction
    /// fold's dirty set, and what the incremental shard replan keys on.
    pub fn dirty_rows(&self) -> &[usize] {
        self.rows.dirty()
    }

    /// Net stored-edge change relative to the base.
    pub fn nnz_delta(&self) -> isize {
        self.inserted as isize - self.deleted as isize
    }

    /// Edges the final state adds over the base.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Base edges the final state removes.
    pub fn deleted(&self) -> usize {
        self.deleted
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The staged view of one direction: by column iff `of_transpose`.
    fn staged(&self, of_transpose: bool) -> &StagedRows {
        if of_transpose {
            &self.cols
        } else {
            &self.rows
        }
    }

    /// Materialize `base ⊕ delta` as a fresh binary CSR: clean rows are
    /// copied verbatim, dirty rows get the sorted patch merge.  Pass the
    /// transpose base with `of_transpose` to materialize the transpose.
    pub fn merge_csr(&self, base: &Csr, of_transpose: bool) -> Csr {
        let staged = self.staged(of_transpose);
        let nrows = base.nrows();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        rowptr.push(0usize);
        let mut colind = Vec::with_capacity(base.nnz());
        for r in 0..nrows {
            let (cols, _) = base.row(r);
            match staged.patch(r) {
                None => colind.extend_from_slice(cols),
                Some(patch) => for_each_merged(cols, patch, &mut |c| colind.push(c)),
            }
            rowptr.push(colind.len());
        }
        let values = vec![1.0f32; colind.len()];
        Csr::from_raw(nrows, base.ncols(), rowptr, colind, values)
            .expect("sorted patch merge preserves the CSR invariants")
    }

    fn storage_bytes(&self) -> usize {
        self.rows.storage_bytes() + self.cols.storage_bytes()
    }
}

/// A merge-on-read [`GrbBackend`] presenting `base ⊕ delta` without a
/// rebuild: every kernel runs on the untouched base representation first,
/// then re-folds only the dirty rows through the sorted patch merge.  The
/// merged CSR views materialize lazily (first `csr()`/`csr_t()` call) for
/// the fallback paths that need whole-matrix structure (`mxm_reduce_masked`,
/// `out_degrees`).
///
/// Push (sparse-frontier) sweeps delegate to the base's sharded scatter and
/// patch the dirty output rows with the pull re-fold — exact, because the
/// planner guarantees off-frontier operand entries contribute the semiring
/// identity.  All remaining [`GrbBackend`] entry points decompose to these
/// overridden kernels via the trait's node-at-a-time defaults, which keeps
/// the overlay exact on every operation without reimplementing the engine.
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    base: Arc<dyn GrbBackend>,
    delta: Arc<DeltaSnapshot>,
    /// Whether this view is the transpose of the delta's logical
    /// orientation (set by [`GrbBackend::transpose_view`]).
    transposed: bool,
    merged: OnceLock<Csr>,
    merged_t: OnceLock<Csr>,
}

impl DeltaOverlay {
    /// Overlay `delta` on `base` (in the delta's logical orientation).
    pub fn new(base: Arc<dyn GrbBackend>, delta: Arc<DeltaSnapshot>) -> Self {
        DeltaOverlay {
            base,
            delta,
            transposed: false,
            merged: OnceLock::new(),
            merged_t: OnceLock::new(),
        }
    }

    /// The staged snapshot this overlay reads through.
    pub fn delta(&self) -> &DeltaSnapshot {
        &self.delta
    }

    /// Re-fold the dirty output rows of a single-vector product: `y[i] =
    /// ⊕_{c ∈ merged row i} ⊗(x[c])` over the sorted merge of the base row
    /// and its patch.  Masked-out rows are left as the base kernel wrote
    /// them (the identity).
    fn patch_rows(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        y: &mut [f32],
    ) {
        let staged = self.delta.staged(transpose ^ self.transposed);
        if staged.is_empty() {
            return;
        }
        let bcsr = if transpose {
            self.base.csr_t()
        } else {
            self.base.csr()
        };
        for (i, patch) in staged.iter() {
            if mask.is_some_and(|m| !m.allows(i)) {
                continue;
            }
            let (cols, _) = bcsr.row(i);
            let mut acc = semiring.identity();
            for_each_merged(cols, patch, &mut |c| {
                acc = semiring.reduce(acc, semiring.combine(x[c]));
            });
            y[i] = acc;
        }
    }

    /// The batched (`n × k` node-major) counterpart of
    /// [`DeltaOverlay::patch_rows`], gated by the flat per-lane mask.
    fn patch_lanes(
        &self,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        out: &mut [f32],
    ) {
        let staged = self.delta.staged(transpose ^ self.transposed);
        if staged.is_empty() {
            return;
        }
        let bcsr = if transpose {
            self.base.csr_t()
        } else {
            self.base.csr()
        };
        for (i, patch) in staged.iter() {
            let (cols, _) = bcsr.row(i);
            for l in 0..k {
                if mask.is_some_and(|m| !m.allows(i * k + l)) {
                    continue;
                }
                let mut acc = semiring.identity();
                for_each_merged(cols, patch, &mut |c| {
                    acc = semiring.reduce(acc, semiring.combine(x[c * k + l]));
                });
                out[i * k + l] = acc;
            }
        }
    }
}

impl GrbBackend for DeltaOverlay {
    fn kind(&self) -> Backend {
        self.base.kind()
    }

    fn nrows(&self) -> usize {
        self.base.nrows()
    }

    fn ncols(&self) -> usize {
        self.base.ncols()
    }

    fn nnz(&self) -> usize {
        (self.base.nnz() as isize + self.delta.nnz_delta()) as usize
    }

    fn csr(&self) -> &Csr {
        self.merged
            .get_or_init(|| self.delta.merge_csr(self.base.csr(), self.transposed))
    }

    fn csr_t(&self) -> &Csr {
        self.merged_t
            .get_or_init(|| self.delta.merge_csr(self.base.csr_t(), !self.transposed))
    }

    fn mxv(&self, x: &[f32], semiring: Semiring, mask: Option<&Mask>, transpose: bool) -> Vec<f32> {
        let mut y = self.base.mxv(x, semiring, mask, transpose);
        self.patch_rows(x, semiring, mask, transpose, &mut y);
        y
    }

    fn mxv_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.base.mxv_into(x, semiring, mask, transpose, ws, out);
        self.patch_rows(x, semiring, mask, transpose, out);
    }

    fn mxv_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.base
            .mxv_push_into(x, frontier, semiring, mask, transpose, ws, out);
        self.patch_rows(x, semiring, mask, transpose, out);
    }

    fn mxm_into(
        &self,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.base.mxm_into(x, k, semiring, mask, transpose, ws, out);
        self.patch_lanes(x, k, semiring, mask, transpose, out);
    }

    fn mxm_push_into(
        &self,
        x: &[f32],
        k: usize,
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.base
            .mxm_push_into(x, k, frontier, semiring, mask, transpose, ws, out);
        self.patch_lanes(x, k, semiring, mask, transpose, out);
    }

    fn mxm_reduce_masked(&self, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64 {
        // The merged CSR view makes the overlay a plain CSR operand for the
        // reference Triangle Counting kernel.
        float_ops::spgemm_masked_sum(self.csr(), b.csr_t(), mask.csr())
            .expect("operand dimensions checked by the caller")
    }

    fn storage_bytes(&self) -> usize {
        self.base.storage_bytes() + self.delta.storage_bytes()
    }

    fn transpose_view(&self) -> Box<dyn GrbBackend> {
        Box::new(DeltaOverlay {
            base: Arc::from(self.base.transpose_view()),
            delta: self.delta.clone(),
            transposed: !self.transposed,
            // The merged views swap roles, carrying any already-built one.
            merged: self.merged_t.clone(),
            merged_t: self.merged.clone(),
        })
    }

    fn clone_box(&self) -> Box<dyn GrbBackend> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// What one [`VersionCell::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// The epoch the compacted base was published as.
    pub epoch: u64,
    /// Log entries folded into the new base (entries that raced in during
    /// the fold stay pending against it).
    pub folded: usize,
    /// Edges the fold added to the base.
    pub inserted: usize,
    /// Edges the fold removed from the base.
    pub deleted: usize,
    /// Rows the fold touched — the incremental shard replan's dirty set.
    pub dirty_rows: usize,
}

/// The shared mutable version state behind a
/// [`Matrix`](crate::grb::Matrix): the current epoch, the compacted base,
/// the pending delta log, and the published head (`base` when the log is
/// empty, a [`DeltaOverlay`] otherwise).
///
/// Publication protocol: every write path constructs its new head *fully*
/// before swapping it in under the one inner mutex, so readers pinning the
/// head ([`Matrix::snapshot`](crate::grb::Matrix::snapshot)) always observe
/// a consistent `(epoch, state)` pair, and an already-pinned snapshot is
/// never mutated — epochs are immutable once published.
#[derive(Debug)]
pub struct VersionCell {
    inner: Mutex<VersionInner>,
    /// Serializes whole compactions (the fold runs outside `inner`'s
    /// critical section so writers stay live during it).
    compact_gate: Mutex<()>,
}

#[derive(Debug)]
struct VersionInner {
    epoch: u64,
    base: Arc<dyn GrbBackend>,
    log: Vec<EdgeDelta>,
    head: Arc<dyn GrbBackend>,
    epochs_published: u64,
    compactions: u64,
}

impl VersionCell {
    /// A fresh cell at epoch 0 with an empty log: `base` is the published
    /// head.
    pub fn new(base: Arc<dyn GrbBackend>) -> Self {
        VersionCell {
            inner: Mutex::new(VersionInner {
                epoch: 0,
                base: base.clone(),
                log: Vec::new(),
                head: base,
                epochs_published: 0,
                compactions: 0,
            }),
            compact_gate: Mutex::new(()),
        }
    }

    /// Lock the inner state.  Poisoning is deliberately ignored: every
    /// mutation under this lock swaps fully constructed state in single
    /// assignments, so a panic mid-critical-section (only possible on
    /// allocation failure) still leaves a consistent head.
    fn lock(&self) -> MutexGuard<'_, VersionInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The published head and its epoch, pinned atomically.
    pub fn head(&self) -> (Arc<dyn GrbBackend>, u64) {
        let inner = self.lock();
        (inner.head.clone(), inner.epoch)
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Pending (uncompacted) log entries.
    pub fn log_len(&self) -> usize {
        self.lock().log.len()
    }

    /// Epochs published since construction (appends + compactions).
    pub fn epochs_published(&self) -> u64 {
        self.lock().epochs_published
    }

    /// Completed compactions since construction.
    pub fn compactions(&self) -> u64 {
        self.lock().compactions
    }

    /// Append `deltas` to the log and publish a new epoch whose head
    /// overlays the full pending log on the base.  Returns the published
    /// epoch (the current one when `deltas` is empty).
    pub fn append(&self, deltas: &[EdgeDelta]) -> u64 {
        let mut inner = self.lock();
        if deltas.is_empty() {
            return inner.epoch;
        }
        inner.log.extend_from_slice(deltas);
        let snap = DeltaSnapshot::build(inner.base.csr(), &inner.log);
        inner.head = Arc::new(DeltaOverlay::new(inner.base.clone(), Arc::new(snap)));
        inner.epoch += 1;
        inner.epochs_published += 1;
        inner.epoch
    }

    /// Fold the pending log into a fresh base of the same backend kind and
    /// publish it as a new epoch.
    ///
    /// The fold (normalization, CSR merge, re-tiling, incremental shard
    /// replan) runs *outside* the inner critical section against a pinned
    /// `(base, log prefix)`, so writers keep appending during it; entries
    /// that race in stay pending against the new base.  The
    /// [`DELTA_MERGE_POINT`] fail point fires after staging but before any
    /// shared state changes: an injected panic or transient error leaves
    /// the published epoch and every outstanding snapshot intact.
    ///
    /// Shard plans rebuild incrementally: the new base adopts the old
    /// plan's boundaries for every shard without dirty rows and recuts only
    /// the dirty runs ([`ShardPlan::replan_rows`](crate::shard::ShardPlan::replan_rows)).
    pub fn compact(&self, ctx: &Context) -> Result<CompactReport, GrbError> {
        let _gate = self
            .compact_gate
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (base, pending) = {
            let inner = self.lock();
            (inner.base.clone(), inner.log.clone())
        };
        if pending.is_empty() {
            return Ok(CompactReport {
                epoch: self.lock().epoch,
                folded: 0,
                inserted: 0,
                deleted: 0,
                dirty_rows: 0,
            });
        }
        let delta = DeltaSnapshot::build(base.csr(), &pending);
        poll_delta_merge(ctx)?;
        let merged = delta.merge_csr(base.csr(), false);
        let new_base: Arc<dyn GrbBackend> = match base.kind() {
            Backend::Bit(ts) => Arc::new(BitB2sr::new(&merged, ts)),
            Backend::FloatCsr => Arc::new(FloatCsr::new(&merged)),
            Backend::Auto => unreachable!("backend kinds are always resolved"),
        };
        new_base.replan_shards(
            base.shard_plan(false),
            ctx.shard_config(),
            delta.dirty_rows(),
        );
        let mut inner = self.lock();
        inner.log.drain(..pending.len());
        inner.base = new_base.clone();
        inner.head = if inner.log.is_empty() {
            new_base
        } else {
            let snap = DeltaSnapshot::build(new_base.csr(), &inner.log);
            Arc::new(DeltaOverlay::new(new_base, Arc::new(snap)))
        };
        inner.epoch += 1;
        inner.epochs_published += 1;
        inner.compactions += 1;
        Ok(CompactReport {
            epoch: inner.epoch,
            folded: pending.len(),
            inserted: delta.inserted(),
            deleted: delta.deleted(),
            dirty_rows: delta.dirty_rows().len(),
        })
    }
}

/// Poll [`DELTA_MERGE_POINT`] on the context's injector, mirroring the
/// planner's dispatch fail points: `Panic` unwinds with the recognisable
/// [`InjectedPanic`] payload, `Transient` becomes a typed error, `Latency`
/// is counted upstream.
fn poll_delta_merge(ctx: &Context) -> Result<(), GrbError> {
    if let Some(inj) = ctx.fault_injector() {
        match inj.fire(DELTA_MERGE_POINT, None) {
            Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic {
                point: DELTA_MERGE_POINT,
            }),
            Some(FaultAction::Transient) => {
                return Err(GrbError::FaultInjected {
                    point: DELTA_MERGE_POINT,
                })
            }
            Some(FaultAction::Latency(_)) | None => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grb::Matrix;
    use bitgblas_sparse::Coo;

    fn csr(n: usize, edges: &[(usize, usize)]) -> Csr {
        let mut coo = Coo::new(n, n);
        for &(r, c) in edges {
            coo.push(r, c, 1.0).unwrap();
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn snapshot_normalizes_last_op_wins() {
        let base = csr(4, &[(0, 1), (1, 2)]);
        let log = [
            EdgeDelta::insert(2, 3),
            EdgeDelta::delete(2, 3),
            EdgeDelta::insert(2, 3), // final: present
            EdgeDelta::delete(0, 1), // final: absent (was in base)
            EdgeDelta::insert(1, 2), // no-op: already in base
        ];
        let snap = DeltaSnapshot::build(&base, &log);
        assert_eq!(snap.watermark(), 5);
        assert_eq!(snap.inserted(), 1);
        assert_eq!(snap.deleted(), 1);
        assert_eq!(snap.nnz_delta(), 0);
        assert_eq!(snap.dirty_rows(), &[0, 1, 2]);
        assert_eq!(snap.staged(false).patch(2), Some(&[(3, true)][..]));
        assert_eq!(snap.staged(true).patch(1), Some(&[(0, false)][..]));
        assert!(snap.staged(false).patch(3).is_none());
    }

    #[test]
    fn merged_csr_equals_scratch_build() {
        let base = csr(5, &[(0, 1), (0, 3), (1, 2), (3, 4), (4, 0)]);
        let log = [
            EdgeDelta::insert(0, 2),
            EdgeDelta::delete(0, 3),
            EdgeDelta::insert(2, 0),
            EdgeDelta::delete(4, 0),
        ];
        let snap = DeltaSnapshot::build(&base, &log);
        let expect = csr(5, &[(0, 1), (0, 2), (1, 2), (2, 0), (3, 4)]);
        assert_eq!(snap.merge_csr(&base, false), expect);
        assert_eq!(snap.merge_csr(&base.transpose(), true), expect.transpose());
    }

    #[test]
    fn overlay_matches_scratch_build_on_kernels_and_views() {
        let base = csr(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]);
        let log = [
            EdgeDelta::insert(0, 4),
            EdgeDelta::delete(2, 3),
            EdgeDelta::insert(5, 2),
        ];
        let scratch = csr(6, &[(0, 1), (0, 4), (1, 2), (3, 0), (4, 5), (5, 2)]);
        for backend in [Backend::default_bit(), Backend::FloatCsr] {
            let a = Matrix::from_csr(&base, backend);
            let snap = Arc::new(DeltaSnapshot::build(a.csr(), &log));
            let overlay = DeltaOverlay::new(Arc::from(a.state().clone_box()), snap);
            let fresh = Matrix::from_csr(&scratch, backend);
            assert_eq!(overlay.nnz(), fresh.nnz());
            assert_eq!(overlay.csr(), fresh.csr());
            assert_eq!(overlay.csr_t(), fresh.csr_t());
            let x: Vec<f32> = (0..6).map(|i| i as f32 * 0.5).collect();
            for semiring in [Semiring::Boolean, Semiring::MinPlus(1.0)] {
                for transpose in [false, true] {
                    assert_eq!(
                        overlay.mxv(&x, semiring, None, transpose),
                        fresh.state().mxv(&x, semiring, None, transpose),
                        "{backend:?} {semiring:?} transpose={transpose}"
                    );
                }
            }
            // Masked: dirty rows outside the mask keep the identity.
            let mask = Mask::new((0..6).map(|i| i % 2 == 0).collect());
            assert_eq!(
                overlay.mxv(&x, Semiring::Boolean, Some(&mask), false),
                fresh.state().mxv(&x, Semiring::Boolean, Some(&mask), false)
            );
            // The transpose view flips orientation consistently.
            let tv = overlay.transpose_view();
            assert_eq!(tv.csr(), &fresh.csr().transpose());
            assert_eq!(
                tv.mxv(&x, Semiring::Boolean, None, false),
                fresh.state().mxv(&x, Semiring::Boolean, None, true)
            );
        }
    }

    #[test]
    fn version_cell_publishes_epochs_and_pins_snapshots() {
        let base = csr(4, &[(0, 1), (1, 2)]);
        let a = Matrix::from_csr(&base, Backend::FloatCsr);
        let cell = VersionCell::new(Arc::from(a.state().clone_box()));
        let (head0, e0) = cell.head();
        assert_eq!(e0, 0);
        assert_eq!(cell.append(&[]), 0, "empty append publishes nothing");

        let e1 = cell.append(&[EdgeDelta::insert(2, 3)]);
        assert_eq!(e1, 1);
        let (head1, _) = cell.head();
        assert_eq!(head1.nnz(), 3);
        // The pinned pre-append head is untouched.
        assert_eq!(head0.nnz(), 2);
        assert!(head0.csr().get(2, 3).is_none());
        assert_eq!(cell.log_len(), 1);
        assert_eq!(cell.epochs_published(), 1);
    }

    #[test]
    fn compact_folds_the_log_and_keeps_old_snapshots_readable() {
        let base = csr(4, &[(0, 1), (1, 2), (3, 0)]);
        let a = Matrix::from_csr(&base, Backend::default_bit());
        let cell = VersionCell::new(Arc::from(a.state().clone_box()));
        cell.append(&[EdgeDelta::insert(2, 3), EdgeDelta::delete(3, 0)]);
        let (overlay_head, e_overlay) = cell.head();

        let ctx = Context::default();
        let report = cell.compact(&ctx).unwrap();
        assert_eq!(report.folded, 2);
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(report.epoch, e_overlay + 1);
        assert_eq!(cell.log_len(), 0);
        assert_eq!(cell.compactions(), 1);

        let (compacted, _) = cell.head();
        // The compacted base is a real backend of the original kind again.
        assert!(compacted.as_any().downcast_ref::<BitB2sr>().is_some());
        assert_eq!(compacted.csr(), overlay_head.csr());
        // The pre-compaction overlay snapshot still reads the same bits.
        assert_eq!(overlay_head.nnz(), 3);
        assert!(overlay_head.csr().get(2, 3).is_some());

        // Compacting an empty log publishes nothing.
        let again = cell.compact(&ctx).unwrap();
        assert_eq!(again.folded, 0);
        assert_eq!(again.epoch, report.epoch);
    }

    #[test]
    fn compact_replans_only_dirty_shards() {
        // A graph big enough for a multi-shard plan under 4 threads.
        let n = 4096;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|r| [(r, (r + 1) % n), (r, (r + 7) % n)])
            .collect();
        let base = csr(n, &edges);
        let ctx = Context::with_threads(4);
        let a = Matrix::from_csr_ctx(&base, Backend::FloatCsr, &ctx);
        let before = a
            .state()
            .shard_plan(false)
            .expect("plan built at construction")
            .clone();
        assert!(before.n_shards() >= 4, "precondition: {before:?}");

        // Mutate rows confined to the first shard only.
        let hi = before.bounds()[1];
        let cell = VersionCell::new(Arc::from(a.state().clone_box()));
        cell.append(&[
            EdgeDelta::insert(0, n - 1),
            EdgeDelta::insert(hi / 2, n - 2),
        ]);
        cell.compact(&ctx).unwrap();
        let (compacted, _) = cell.head();
        let after = compacted.shard_plan(false).expect("replanned").clone();
        // Every boundary outside the dirty shard survives verbatim.
        for &b in &before.bounds()[1..] {
            assert!(
                after.bounds().contains(&b),
                "clean boundary {b} lost: {before:?} -> {after:?}"
            );
        }
        for &b in after.bounds() {
            if !before.bounds().contains(&b) {
                assert!(b < hi, "new cut {b} escaped the dirty shard");
            }
        }
    }

    #[test]
    fn delta_merge_fail_point_leaves_the_epoch_intact() {
        use crate::faultinject::{FailSpec, FaultInjector, FaultPlan};

        let base = csr(4, &[(0, 1), (1, 2)]);
        let a = Matrix::from_csr(&base, Backend::FloatCsr);
        let cell = VersionCell::new(Arc::from(a.state().clone_box()));
        cell.append(&[EdgeDelta::insert(2, 3)]);
        let epoch_before = cell.epoch();

        let ctx = Context::default();
        let plan =
            FaultPlan::new().with(FailSpec::always(DELTA_MERGE_POINT, FaultAction::Transient));
        ctx.set_fault_injector(Some(Arc::new(FaultInjector::new(7, plan))));
        let err = cell.compact(&ctx).unwrap_err();
        assert!(matches!(
            err,
            GrbError::FaultInjected {
                point: DELTA_MERGE_POINT
            }
        ));
        assert_eq!(cell.epoch(), epoch_before, "failed compaction published");
        assert_eq!(cell.log_len(), 1, "failed compaction drained the log");

        // Disarm and retry: the same pending log folds cleanly.
        ctx.set_fault_injector(None);
        let report = cell.compact(&ctx).unwrap();
        assert_eq!(report.folded, 1);
    }
}
