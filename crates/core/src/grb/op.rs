//! The builder-style operation API: [`Context`] and [`Op`].
//!
//! GraphBLAS operations carry several optional modifiers (mask, descriptor,
//! semiring); rather than threading them all positionally through free
//! functions, operations are assembled with a builder and executed against a
//! [`Context`]:
//!
//! ```
//! use bitgblas_core::grb::{Context, Op, Mask};
//! use bitgblas_core::{Backend, Matrix, Semiring, Vector};
//! # use bitgblas_sparse::Coo;
//! # let mut coo = Coo::new(4, 4);
//! # coo.push_edge(0, 1).unwrap();
//! # coo.push_edge(1, 2).unwrap();
//! # let csr = coo.to_binary_csr();
//!
//! let ctx = Context::default();
//! let a = Matrix::from_csr_ctx(&csr, Backend::Auto, &ctx);
//! let frontier = Vector::indicator(4, &[0]);
//! let visited = Mask::complemented(vec![true, false, false, false]);
//!
//! let next = Op::vxm(&frontier, &a)
//!     .semiring(Semiring::Boolean)
//!     .mask(&visited)
//!     .run(&ctx);
//! assert_eq!(next.get(1), 1.0);
//! ```
//!
//! The [`Context`] carries the cross-operation configuration: the device
//! profile the performance model scores backends against and the sampling
//! parameters of the Algorithm-1 profile — i.e. everything
//! [`Backend::Auto`](super::Backend::Auto) needs.  Execution itself is
//! dispatched through the matrix's [`GrbBackend`](super::GrbBackend) state.

use bitgblas_perfmodel::{pascal_gtx1080, DeviceProfile};

use crate::semiring::Semiring;

use super::descriptor::{Descriptor, Mask};
use super::direction::{choose_direction, Direction};
use super::matrix::Matrix;
use super::vector::Vector;
use super::workspace::{ExecCounts, Workspace};

/// Cross-operation execution configuration *and* execution resource.
///
/// Besides the device profile and sampling parameters that
/// [`Backend::Auto`](super::Backend::Auto) and [`Direction::Auto`] score
/// against, a context owns a [`Workspace`]: the pool of reusable buffers
/// every `Op::...run(&ctx)` draws its output, packing and mask scratch from,
/// plus the push/pull execution counters.  Reusing one context across a
/// traversal loop (e.g. via [`Matrix::context`](super::Matrix::context))
/// makes the loop's steady state allocation-free.
#[derive(Debug)]
pub struct Context {
    /// Device profile used by the performance model when resolving
    /// [`Backend::Auto`](super::Backend::Auto) and [`Direction::Auto`].
    pub device: DeviceProfile,
    /// Rows sampled by the Algorithm-1 profile during auto selection.
    pub sample_rows: usize,
    /// Seed of the deterministic row sample.
    pub seed: u64,
    /// The buffer pool and op counters (fresh in every clone).
    workspace: Workspace,
}

impl Default for Context {
    fn default() -> Self {
        Context {
            device: pascal_gtx1080(),
            sample_rows: 256,
            seed: 0xB17,
            workspace: Workspace::new(),
        }
    }
}

impl Clone for Context {
    /// Clones carry the configuration only: the workspace is per-context
    /// scratch state, so each clone starts with an empty pool and zeroed
    /// counters.
    fn clone(&self) -> Self {
        Context {
            device: self.device.clone(),
            sample_rows: self.sample_rows,
            seed: self.seed,
            workspace: Workspace::new(),
        }
    }
}

impl Context {
    /// The default context (Pascal device profile, 256 sampled rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// A context modelling the given device.
    pub fn with_device(device: DeviceProfile) -> Self {
        Context {
            device,
            ..Self::default()
        }
    }

    /// The buffer pool operations executed against this context draw from.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// A snapshot of this context's execution counters (how many `mxv`s
    /// resolved to push vs pull, etc.).
    pub fn stats(&self) -> ExecCounts {
        self.workspace.stats().snapshot()
    }

    /// Return a finished vector's buffer to the pool so the next operation
    /// can reuse it — the algorithm-side half of the zero-allocation
    /// steady state.
    pub fn recycle(&self, v: Vector) {
        self.workspace.give(v.into_vec());
    }
}

/// Entry points of the builder API; each returns a builder whose `run(&ctx)`
/// executes on the matrix's backend.
pub struct Op;

impl Op {
    /// `y = A ⊕.⊗ x`: matrix × vector.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn mxv<'a>(a: &'a Matrix, x: &'a Vector) -> MxvBuilder<'a> {
        MxvBuilder {
            a,
            x,
            semiring: Semiring::Arithmetic,
            mask: None,
            desc: Descriptor::new(),
            flip: false,
        }
    }

    /// `y = x ⊕.⊗ A`: vector × matrix (the push-direction traversal).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn vxm<'a>(x: &'a Vector, a: &'a Matrix) -> MxvBuilder<'a> {
        MxvBuilder {
            a,
            x,
            semiring: Semiring::Arithmetic,
            mask: None,
            desc: Descriptor::new(),
            flip: true,
        }
    }

    /// `Σ (mask .* (A · B))`: masked matrix product reduced to a scalar (the
    /// Triangle Counting primitive).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn mxm_reduce<'a>(a: &'a Matrix, b: &'a Matrix, mask: &'a Matrix) -> MxmReduceBuilder<'a> {
        MxmReduceBuilder { a, b, mask }
    }

    /// Reduce a vector with a semiring's additive monoid.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn reduce(x: &Vector) -> ReduceBuilder<'_> {
        ReduceBuilder {
            x,
            semiring: Semiring::Arithmetic,
        }
    }

    /// Element-wise `out[i] = a[i] ⊕ b[i]`.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn ewise_add<'a>(a: &'a Vector, b: &'a Vector) -> EwiseBuilder<'a> {
        EwiseBuilder {
            a,
            b,
            semiring: Semiring::Arithmetic,
            mult: false,
        }
    }

    /// Element-wise `out[i] = a[i] ⊗ b[i]`.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn ewise_mult<'a>(a: &'a Vector, b: &'a Vector) -> EwiseBuilder<'a> {
        EwiseBuilder {
            a,
            b,
            semiring: Semiring::Arithmetic,
            mult: true,
        }
    }

    /// `out[i] = f(x[i])` (GraphBLAS `apply`).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn apply<F: Fn(f32) -> f32>(x: &Vector, f: F) -> ApplyBuilder<'_, F> {
        ApplyBuilder { x, f }
    }

    /// Indicator of entries satisfying `pred` (GraphBLAS `select`).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn select<F: Fn(f32) -> bool>(x: &Vector, pred: F) -> SelectBuilder<'_, F> {
        SelectBuilder { x, pred }
    }
}

/// Builder for `mxv` / `vxm` (created by [`Op::mxv`] / [`Op::vxm`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct MxvBuilder<'a> {
    a: &'a Matrix,
    x: &'a Vector,
    semiring: Semiring,
    mask: Option<&'a Mask>,
    desc: Descriptor,
    /// `true` for the vxm direction.
    flip: bool,
}

impl<'a> MxvBuilder<'a> {
    /// Use the given semiring (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Write only where the mask allows.
    pub fn mask(mut self, mask: &'a Mask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Use the given descriptor.
    pub fn desc(mut self, desc: Descriptor) -> Self {
        self.desc = desc;
        self
    }

    /// Shorthand for setting the descriptor's transpose flag.
    pub fn transpose(mut self) -> Self {
        self.desc.transpose = true;
        self
    }

    /// Use the given traversal direction (default: [`Direction::Auto`],
    /// which picks push or pull per operation from the frontier density).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.desc.direction = direction;
        self
    }

    /// Execute on the matrix's backend, drawing buffers from the context's
    /// workspace pool and resolving [`Direction::Auto`] against its device
    /// profile.
    pub fn run(self, ctx: &Context) -> Vector {
        let transpose = self.desc.transpose;
        // Output length is the non-contracted dimension.
        let (contracted, produced) = if transpose != self.flip {
            (self.a.nrows(), self.a.ncols())
        } else {
            (self.a.ncols(), self.a.nrows())
        };
        assert_eq!(
            contracted,
            self.x.len(),
            "{} dimension mismatch",
            if self.flip { "vxm" } else { "mxv" }
        );
        if let Some(m) = self.mask {
            assert_eq!(m.len(), produced, "mask length must equal output length");
        }
        let semiring = self.semiring;
        let x = self.x.as_slice();
        let state = self.a.state();
        let ws = ctx.workspace();

        // Resolve the direction.  Auto counts the active entries (a read-only
        // scan); the frontier index list is materialised only when the push
        // path actually runs, so the dense pull iterations — the expensive
        // ones — pay no list-building cost.
        let direction = match self.desc.direction {
            // An explicitly requested push is coerced back to pull when the
            // semiring cannot skip identity entries without changing the
            // result.
            Direction::Push if !semiring.push_safe() => Direction::Pull,
            Direction::Auto => choose_direction(
                self.x.n_active(semiring),
                contracted,
                self.a.nnz(),
                semiring,
                &ctx.device,
            ),
            d => d,
        };

        let mut out = ws.take_empty::<f32>();
        match direction {
            Direction::Push => {
                let mut frontier = ws.take_empty::<usize>();
                frontier.extend(
                    x.iter()
                        .enumerate()
                        .filter(|(_, &v)| !semiring.is_identity(v))
                        .map(|(i, _)| i),
                );
                if self.flip {
                    state.vxm_push_into(x, &frontier, semiring, self.mask, transpose, ws, &mut out);
                } else {
                    state.mxv_push_into(x, &frontier, semiring, self.mask, transpose, ws, &mut out);
                }
                ws.give(frontier);
                ws.stats().record_push_mxv();
            }
            _ => {
                if self.flip {
                    state.vxm_into(x, semiring, self.mask, transpose, ws, &mut out);
                } else {
                    state.mxv_into(x, semiring, self.mask, transpose, ws, &mut out);
                }
                ws.stats().record_pull_mxv();
            }
        }
        debug_assert_eq!(out.len(), produced);
        Vector::from_vec(out)
    }
}

/// Builder for the masked matrix-product reduction (created by
/// [`Op::mxm_reduce`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct MxmReduceBuilder<'a> {
    a: &'a Matrix,
    b: &'a Matrix,
    mask: &'a Matrix,
}

impl MxmReduceBuilder<'_> {
    /// Execute on the operands' backends (mixed backends fall back to the
    /// CSR reference kernel).
    pub fn run(self, ctx: &Context) -> f64 {
        assert_eq!(
            self.a.ncols(),
            self.b.nrows(),
            "mxm inner dimension mismatch"
        );
        assert_eq!(
            (self.mask.nrows(), self.mask.ncols()),
            (self.a.nrows(), self.b.ncols()),
            "mxm mask dimension mismatch"
        );
        ctx.workspace().stats().record_mxm_reduce();
        self.a
            .state()
            .mxm_reduce_masked(self.b.state(), self.mask.state())
    }
}

/// Builder for vector reduction (created by [`Op::reduce`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct ReduceBuilder<'a> {
    x: &'a Vector,
    semiring: Semiring,
}

impl ReduceBuilder<'_> {
    /// Use the given semiring (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Execute.
    pub fn run(self, ctx: &Context) -> f32 {
        ctx.workspace().stats().record_reduce();
        self.semiring.reduce_slice(self.x.as_slice())
    }
}

/// Builder for the element-wise monoid operations (created by
/// [`Op::ewise_add`] / [`Op::ewise_mult`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct EwiseBuilder<'a> {
    a: &'a Vector,
    b: &'a Vector,
    semiring: Semiring,
    mult: bool,
}

impl EwiseBuilder<'_> {
    /// Use the given semiring (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Execute, writing into a workspace-pooled buffer.
    pub fn run(self, ctx: &Context) -> Vector {
        assert_eq!(
            self.a.len(),
            self.b.len(),
            "ewise operands require equal lengths"
        );
        let ws = ctx.workspace();
        ws.stats().record_ewise();
        let mut out = ws.take_empty::<f32>();
        if self.mult {
            super::ewise::ewise_mult_into(
                self.a.as_slice(),
                self.b.as_slice(),
                self.semiring,
                &mut out,
            );
        } else {
            super::ewise::ewise_add_into(
                self.a.as_slice(),
                self.b.as_slice(),
                self.semiring,
                &mut out,
            );
        }
        Vector::from_vec(out)
    }
}

/// Builder for `apply` (created by [`Op::apply`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct ApplyBuilder<'a, F> {
    x: &'a Vector,
    f: F,
}

impl<F: Fn(f32) -> f32> ApplyBuilder<'_, F> {
    /// Execute, writing into a workspace-pooled buffer.
    pub fn run(self, ctx: &Context) -> Vector {
        let ws = ctx.workspace();
        ws.stats().record_apply();
        let mut out = ws.take_empty::<f32>();
        out.extend(self.x.as_slice().iter().map(|&v| (self.f)(v)));
        Vector::from_vec(out)
    }
}

/// Builder for `select` (created by [`Op::select`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct SelectBuilder<'a, F> {
    x: &'a Vector,
    pred: F,
}

impl<F: Fn(f32) -> bool> SelectBuilder<'_, F> {
    /// Execute, writing into a workspace-pooled buffer.
    pub fn run(self, ctx: &Context) -> Vector {
        let ws = ctx.workspace();
        ws.stats().record_select();
        let mut out = ws.take_empty::<f32>();
        out.extend(
            self.x
                .as_slice()
                .iter()
                .map(|&v| if (self.pred)(v) { 1.0 } else { 0.0 }),
        );
        Vector::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::TileSize;
    use crate::grb::matrix::Backend;
    use bitgblas_sparse::{Coo, Csr};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    fn close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let both_inf = x.is_infinite() && y.is_infinite();
            assert!(both_inf || (x - y).abs() < 1e-4, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn builder_mxv_agrees_across_backends() {
        let csr = sample(90, 3);
        let x = Vector::from_vec((0..90).map(|i| (i % 5) as f32).collect());
        let ctx = Context::default();
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        for ts in TileSize::ALL {
            let bit = Matrix::from_csr(&csr, Backend::Bit(ts));
            for semiring in [
                Semiring::Arithmetic,
                Semiring::MinPlus(1.0),
                Semiring::MaxTimes(1.0),
            ] {
                let yb = Op::mxv(&bit, &x).semiring(semiring).run(&ctx);
                let yf = Op::mxv(&float, &x).semiring(semiring).run(&ctx);
                close(yb.as_slice(), yf.as_slice());
            }
        }
    }

    #[test]
    fn vxm_builder_equals_mxv_on_transpose() {
        let csr = sample(50, 11);
        let x = Vector::from_vec((0..50).map(|i| (i % 3) as f32).collect());
        let ctx = Context::default();
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let at = Matrix::from_csr(&csr.transpose(), backend);
            let push = Op::vxm(&x, &a).run(&ctx);
            let reference = Op::mxv(&at, &x).run(&ctx);
            close(push.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn masked_builder_respects_complemented_mask() {
        let csr = sample(40, 7);
        let x = Vector::indicator(40, &[0, 1, 2, 3]);
        let visited: Vec<bool> = (0..40).map(|i| i < 20).collect();
        let mask = Mask::complemented(visited);
        let ctx = Context::default();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let a = Matrix::from_csr(&csr, backend);
            let y = Op::mxv(&a, &x)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .run(&ctx);
            for i in 0..20 {
                assert_eq!(
                    y.get(i),
                    0.0,
                    "visited vertex {i} must stay filtered ({backend:?})"
                );
            }
        }
    }

    #[test]
    fn descriptor_and_transpose_shorthand_agree() {
        let csr = sample(30, 13);
        let x = Vector::from_vec((0..30).map(|i| i as f32).collect());
        let ctx = Context::default();
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S32));
        let via_desc = Op::mxv(&a, &x).desc(Descriptor::with_transpose()).run(&ctx);
        let via_shorthand = Op::mxv(&a, &x).transpose().run(&ctx);
        assert_eq!(via_desc, via_shorthand);
    }

    #[test]
    fn mxm_reduce_counts_triangles_across_backends() {
        let adj = sample(60, 17).symmetrized().without_diagonal();
        let ctx = Context::default();
        let mut counts = Vec::new();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let l = Matrix::from_csr(&adj.lower_triangle(), backend);
            let lt = Matrix::from_csr(&adj.lower_triangle().transpose(), backend);
            counts.push(Op::mxm_reduce(&l, &lt, &l).run(&ctx));
        }
        assert!(
            counts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "{counts:?}"
        );
    }

    #[test]
    fn vector_builders_cover_the_ewise_family() {
        let ctx = Context::default();
        let a = Vector::from_vec(vec![1.0, 5.0, 0.0]);
        let b = Vector::from_vec(vec![2.0, 3.0, 4.0]);
        assert_eq!(
            Op::ewise_add(&a, &b)
                .semiring(Semiring::MinPlus(1.0))
                .run(&ctx)
                .as_slice(),
            &[1.0, 3.0, 0.0]
        );
        assert_eq!(
            Op::ewise_mult(&a, &b)
                .semiring(Semiring::Boolean)
                .run(&ctx)
                .as_slice(),
            &[1.0, 1.0, 0.0]
        );
        assert_eq!(
            Op::apply(&a, |v| v * 2.0).run(&ctx).as_slice(),
            &[2.0, 10.0, 0.0]
        );
        assert_eq!(
            Op::select(&a, |v| v > 0.5).run(&ctx).as_slice(),
            &[1.0, 1.0, 0.0]
        );
        assert_eq!(
            Op::reduce(&a).semiring(Semiring::MaxTimes(1.0)).run(&ctx),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn builder_rejects_bad_dimensions() {
        let a = Matrix::from_csr(&sample(10, 1), Backend::FloatCsr);
        let x = Vector::zeros(7);
        let _ = Op::mxv(&a, &x).run(&Context::default());
    }

    #[test]
    fn push_pull_and_auto_agree_for_every_backend_and_semiring() {
        let csr = sample(70, 19);
        let ctx = Context::default();
        let sparse_x = Vector::indicator(70, &[3, 31, 64]);
        let mut minplus_x = Vector::identity(70, Semiring::MinPlus(1.0));
        minplus_x.set(5, 0.0);
        minplus_x.set(44, 2.0);
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
        ] {
            let a = Matrix::from_csr(&csr, backend);
            for (x, semiring) in [
                (&sparse_x, Semiring::Boolean),
                (&sparse_x, Semiring::Arithmetic),
                (&minplus_x, Semiring::MinPlus(1.0)),
            ] {
                for flip in [false, true] {
                    let build = |dir: Direction| {
                        let op = if flip { Op::vxm(x, &a) } else { Op::mxv(&a, x) };
                        op.semiring(semiring).direction(dir).run(&ctx)
                    };
                    let pull = build(Direction::Pull);
                    let push = build(Direction::Push);
                    let auto = build(Direction::Auto);
                    close(push.as_slice(), pull.as_slice());
                    close(auto.as_slice(), pull.as_slice());
                }
            }
        }
    }

    #[test]
    fn masked_push_equals_masked_pull() {
        let csr = sample(48, 23);
        let ctx = Context::default();
        let x = Vector::indicator(48, &[0, 7, 20]);
        let visited: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let mask = Mask::complemented(visited);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let pull = Op::vxm(&x, &a)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .direction(Direction::Pull)
                .run(&ctx);
            let push = Op::vxm(&x, &a)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .direction(Direction::Push)
                .run(&ctx);
            assert_eq!(push, pull, "{backend:?}");
        }
    }

    #[test]
    fn auto_direction_switches_on_frontier_density_and_is_counted() {
        let csr = sample(512, 29);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        let before = ctx.stats();
        assert_eq!(before.total_mxv(), 0);

        // One active vertex → push.
        let sparse = Vector::indicator(512, &[0]);
        let _ = Op::vxm(&sparse, &a).semiring(Semiring::Boolean).run(&ctx);
        let after_sparse = ctx.stats();
        assert_eq!(after_sparse.push_mxv, 1, "sparse frontier must push");

        // Everything active → pull.
        let dense = Vector::from_vec(vec![1.0; 512]);
        let _ = Op::vxm(&dense, &a).semiring(Semiring::Boolean).run(&ctx);
        let after_dense = ctx.stats();
        assert_eq!(after_dense.pull_mxv, 1, "dense frontier must pull");
        assert_eq!(after_dense.total_mxv(), 2);
    }

    #[test]
    fn push_request_on_unsafe_semiring_is_coerced_to_pull() {
        let csr = sample(40, 31);
        let a = Matrix::from_csr(&csr, Backend::FloatCsr);
        let ctx = Context::default();
        let x = Vector::from_vec(vec![f32::NEG_INFINITY; 40]);
        let _ = Op::mxv(&a, &x)
            .semiring(Semiring::MaxTimes(-1.0))
            .direction(Direction::Push)
            .run(&ctx);
        assert_eq!(ctx.stats().pull_mxv, 1);
        assert_eq!(ctx.stats().push_mxv, 0);
    }

    #[test]
    fn recycled_buffers_are_reused_by_the_next_operation() {
        let csr = sample(64, 37);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        let x = Vector::indicator(64, &[1]);
        let y1 = Op::vxm(&x, &a)
            .semiring(Semiring::Boolean)
            .direction(Direction::Push)
            .run(&ctx);
        let ptr = y1.as_slice().as_ptr();
        ctx.recycle(y1);
        let y2 = Op::vxm(&x, &a)
            .semiring(Semiring::Boolean)
            .direction(Direction::Push)
            .run(&ctx);
        assert_eq!(
            y2.as_slice().as_ptr(),
            ptr,
            "the recycled output buffer must be reused"
        );
    }

    #[test]
    fn cloned_contexts_have_fresh_workspaces() {
        let ctx = Context::default();
        ctx.workspace().stats().record_push_mxv();
        let clone = ctx.clone();
        assert_eq!(clone.stats(), crate::grb::ExecCounts::default());
        assert_eq!(clone.device, ctx.device);
    }
}
