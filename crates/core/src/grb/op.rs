//! The builder-style operation API: [`Context`] and [`Op`].
//!
//! GraphBLAS operations carry several optional modifiers (mask, descriptor,
//! semiring, accumulator); operations are assembled with a builder and
//! executed against a [`Context`]:
//!
//! ```
//! use bitgblas_core::grb::{Context, Op, Mask};
//! use bitgblas_core::{Backend, Matrix, Semiring, Vector};
//! # use bitgblas_sparse::Coo;
//! # let mut coo = Coo::new(4, 4);
//! # coo.push_edge(0, 1).unwrap();
//! # coo.push_edge(1, 2).unwrap();
//! # let csr = coo.to_binary_csr();
//!
//! let ctx = Context::default();
//! let a = Matrix::from_csr_ctx(&csr, Backend::Auto, &ctx);
//! let frontier = Vector::indicator(4, &[0]);
//! let visited = Mask::complemented(vec![true, false, false, false]);
//!
//! let next = Op::vxm(&frontier, &a)
//!     .semiring(Semiring::Boolean)
//!     .mask(&visited)
//!     .run(&ctx);
//! assert_eq!(next.get(1), 1.0);
//! ```
//!
//! Since PR 3 the builders are **lazy**: each method call only grows an
//! expression chain ([`Expr`]), and nothing executes until `.run(&ctx)` —
//! shorthand for [`Context::evaluate`] — hands the chain to the planner
//! ([`super::plan`]), which fuses mask, element-wise stages and the
//! accumulator into as few kernel sweeps as the shape allows.  A whole
//! PageRank iteration is one expression:
//!
//! ```text
//! Op::vxm(&rank, &a)                  // contributions along the edges…
//!     .scale_input(&inv_out_degree)   //   …of rank[u] / deg(u)
//!     .semiring(Semiring::Arithmetic)
//!     .affine(alpha, teleport)        // α·contrib + teleport, fused into the sweep
//!     .run(&ctx)
//! ```
//!
//! and an SSSP relaxation round is `Op::vxm(&dist, &a).semiring(minplus)
//! .accum(BinaryOp::Min, &dist).run(&ctx)` — the GraphBLAS accumulator
//! (`w ⊕= A·x`) is a first-class node and folds into the same sweep.
//!
//! The [`Context`] carries the cross-operation configuration (device
//! profile, sampling parameters — everything
//! [`Backend::Auto`](super::Backend::Auto) needs) and owns the
//! [`Workspace`] buffer pool every evaluation draws from.

use bitgblas_perfmodel::{pascal_gtx1080, DeviceProfile};

use crate::calibrate::{CalibratedProfile, CalibrationSamples};
use crate::faultinject::FaultInjector;
use crate::kernels::simd::SimdPolicy;
use crate::semiring::{BinaryOp, Semiring};
use crate::shard::ShardConfig;

use super::descriptor::{Descriptor, Mask};
use super::direction::Direction;
use super::error::GrbError;
use super::expr::{Expr, Fusion, MultiExpr, MultiProducer, Producer, Stage, MAX_STAGES};
use super::matrix::Matrix;
use super::multivec::MultiVec;
use super::plan;
use super::vector::Vector;
use super::workspace::{ExecCounts, Workspace};

/// Cross-operation execution configuration *and* execution resource.
///
/// Besides the device profile and sampling parameters that
/// [`Backend::Auto`](super::Backend::Auto) and [`Direction::Auto`] score
/// against, a context owns a [`Workspace`]: the pool of reusable buffers
/// every evaluation draws its output, packing and mask scratch from, plus
/// the execution counters.  Reusing one context across a traversal loop
/// (e.g. via [`Matrix::context`](super::Matrix::context)) makes the loop's
/// steady state allocation-free.
#[derive(Debug)]
pub struct Context {
    /// Device profile used by the performance model when resolving
    /// [`Backend::Auto`](super::Backend::Auto) and [`Direction::Auto`].
    pub device: DeviceProfile,
    /// Rows sampled by the Algorithm-1 profile during auto selection.
    pub sample_rows: usize,
    /// Seed of the deterministic row sample.
    pub seed: u64,
    /// The buffer pool and op counters (fresh in every clone).
    workspace: Workspace,
    /// Optional seeded fault injector (PR 7): when installed, the planner
    /// polls the `grb.mxv_dispatch` / `grb.mxm_dispatch` fail points before
    /// each product.  Interior-mutable so tests can arm a shared context.
    fault: std::sync::Mutex<Option<std::sync::Arc<crate::faultinject::FaultInjector>>>,
    /// The empirical device model (PR 9): defaults to the static constants
    /// derived from `device`, replaced by [`Context::calibrate`].
    /// Interior-mutable like the fault injector slot.
    profile: std::sync::Mutex<CalibratedProfile>,
}

impl Default for Context {
    fn default() -> Self {
        let device = pascal_gtx1080();
        let profile = CalibratedProfile::from_device(&device);
        Context {
            device,
            sample_rows: 256,
            seed: 0xB17,
            workspace: Workspace::new(),
            fault: std::sync::Mutex::new(None),
            profile: std::sync::Mutex::new(profile),
        }
    }
}

impl Clone for Context {
    /// Clones carry the configuration only — including the push-engine
    /// thread budget, the SIMD policy, the calibrated profile and any
    /// installed fault injector: the workspace is per-context scratch
    /// state, so each clone starts with an empty pool and zeroed counters.
    fn clone(&self) -> Self {
        let workspace = Workspace::new();
        workspace.set_push_threads(self.threads());
        workspace.set_simd_policy(self.simd_policy());
        let profile = self.profile();
        workspace.set_simd_auto(profile.simd_lane_mask);
        Context {
            device: self.device.clone(),
            sample_rows: self.sample_rows,
            seed: self.seed,
            workspace,
            fault: std::sync::Mutex::new(self.fault_injector()),
            profile: std::sync::Mutex::new(profile),
        }
    }
}

impl Context {
    /// The default context (Pascal device profile, 256 sampled rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// A context modelling the given device.  The calibrated profile starts
    /// as that device's static constants (until [`Context::calibrate`]).
    pub fn with_device(device: DeviceProfile) -> Self {
        let profile = CalibratedProfile::from_device(&device);
        Context {
            device,
            profile: std::sync::Mutex::new(profile),
            ..Self::default()
        }
    }

    /// A context whose sharded push engine fans out over `threads` worker
    /// threads (PR 5).  `1` keeps every push scatter on the serial kernels;
    /// the default context uses the host parallelism.  Matrices built with
    /// this context size their row-shard plans for the budget; the budget
    /// itself can be retuned mid-run with [`Context::set_threads`], and any
    /// *resolved* scatter produces bit-identical results whichever budget
    /// executes it (see `set_threads` for the one budget-sensitive
    /// decision: `Direction::Auto`'s push/pull pricing).
    ///
    /// ```
    /// use bitgblas_core::grb::{Context, Direction, Op};
    /// use bitgblas_core::{Backend, Matrix, Semiring, TileSize, Vector};
    /// # use bitgblas_sparse::Coo;
    /// # let mut coo = Coo::new(512, 512);
    /// # for i in 0..512 { coo.push_edge(i, (i + 1) % 512).unwrap(); }
    /// # let csr = coo.to_binary_csr();
    ///
    /// let ctx = Context::with_threads(4);
    /// assert_eq!(ctx.threads(), 4);
    /// let a = Matrix::from_csr_ctx(&csr, Backend::Bit(TileSize::S8), &ctx);
    ///
    /// let frontier = Vector::indicator(512, &[0, 130, 260, 390]);
    /// let next = Op::vxm(&frontier, &a)
    ///     .semiring(Semiring::Boolean)
    ///     .direction(Direction::Push)
    ///     .run(&ctx);
    /// assert_eq!(next.get(1), 1.0);
    ///
    /// // Drop to the serial scatter for the next operations — the numbers
    /// // a traversal produces do not change, only who computes them.
    /// ctx.set_threads(1);
    /// assert_eq!(ctx.threads(), 1);
    /// ```
    pub fn with_threads(threads: usize) -> Self {
        let ctx = Self::default();
        ctx.set_threads(threads);
        ctx
    }

    /// Worker threads the sharded push scatter may fan out to (≥ 1).
    pub fn threads(&self) -> usize {
        self.workspace.push_threads()
    }

    /// Set the push-engine thread budget (interior mutability — callable on
    /// a shared context between runs; clamped to ≥ 1).  Shard *plans* are
    /// sized when a matrix is built, so for a **resolved** direction this
    /// changes only how wide already planned scatters execute — never what
    /// they compute: forced-push (and forced-pull) results are bit-identical
    /// at every budget.  The one thing the budget *does* influence is
    /// [`Direction::Auto`]'s pricing
    /// ([`choose_direction_cfg`](super::choose_direction_cfg)): retuning can
    /// flip a near-threshold operation between push and pull, and for
    /// non-exact monoids (float `+`) the two directions fold in different
    /// orders.  Pin the direction when bit-stability across retunes matters.
    pub fn set_threads(&self, threads: usize) {
        self.workspace.set_push_threads(threads);
    }

    /// The shard-planning parameters matrices built with this context hand
    /// to their backends ([`GrbBackend::prepare_shards`](super::GrbBackend::prepare_shards)):
    /// the thread budget plus the calibrated profile's cache size (the
    /// device profile's L2 until [`Context::calibrate`] measures the host).
    pub fn shard_config(&self) -> ShardConfig {
        ShardConfig {
            threads: self.threads().max(1),
            cache_bytes: self.profile().l2_bytes,
        }
    }

    /// The current scalar/vector kernel selection policy (see
    /// [`SimdPolicy`]; also settable process-wide through the
    /// [`SIMD_ENV_VAR`](super::SIMD_ENV_VAR) environment variable and per
    /// operation through [`Descriptor::simd`]).
    pub fn simd_policy(&self) -> SimdPolicy {
        self.workspace.simd_policy()
    }

    /// Set the scalar/vector selection policy (interior mutability, like
    /// [`Context::set_threads`]).  Both paths produce bit-identical results
    /// — `tests/simd_parity.rs` holds that line — so this only changes
    /// which code executes, never what it computes.
    pub fn set_simd_policy(&self, policy: SimdPolicy) {
        self.workspace.set_simd_policy(policy);
    }

    /// The current empirical device model: the static device-derived
    /// constants until [`Context::calibrate`] (or
    /// [`Context::set_profile`]) replaces them.
    pub fn profile(&self) -> CalibratedProfile {
        *self.profile.lock().expect("calibration slot poisoned")
    }

    /// Install a calibrated profile: future direction decisions price
    /// scattered writes at its `scatter_alpha`, shard plans size against its
    /// `l2_bytes`, and [`SimdPolicy::Auto`] consults its lane mask.
    pub fn set_profile(&self, profile: CalibratedProfile) {
        *self.profile.lock().expect("calibration slot poisoned") = profile;
        self.workspace.set_simd_auto(profile.simd_lane_mask);
    }

    /// Micro-bench the executing host and install the distilled profile
    /// (see [`crate::calibrate`]).  Takes a few milliseconds; degenerate
    /// timings (e.g. a zero-resolution clock) fall back to the static
    /// device constants, so calibration can only refine the model.  Returns
    /// the installed profile.
    ///
    /// ```
    /// use bitgblas_core::grb::Context;
    ///
    /// let ctx = Context::default();
    /// let profile = ctx.calibrate();
    /// // Whatever the host measured, the model stays in its sane ranges…
    /// assert!((4.0..=32.0).contains(&profile.scatter_alpha));
    /// assert!(profile.l2_bytes > 0);
    /// // …and the planner now consumes the measured numbers.
    /// assert_eq!(ctx.profile(), profile);
    /// assert_eq!(ctx.shard_config().cache_bytes, profile.l2_bytes);
    /// ```
    pub fn calibrate(&self) -> CalibratedProfile {
        self.calibrate_from(&CalibrationSamples::measure())
    }

    /// The deterministic half of [`Context::calibrate`]: distill
    /// already-collected measurement `samples` into a profile and install
    /// it.  Pure given the samples — the hook tests use to pin the
    /// measurement side.
    pub fn calibrate_from(&self, samples: &CalibrationSamples) -> CalibratedProfile {
        let profile = CalibratedProfile::from_samples(samples, &self.device);
        self.set_profile(profile);
        profile
    }

    /// The buffer pool operations executed against this context draw from.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// A snapshot of this context's execution counters (how many `mxv`s
    /// resolved to push vs pull, how many pipelines fused, etc.).
    pub fn stats(&self) -> ExecCounts {
        self.workspace.stats().snapshot()
    }

    /// Evaluate a lazy expression chain: plan it ([`super::plan`]), execute
    /// the fused (or node-at-a-time) sweeps, return the result vector.
    /// The builders' `.run(&ctx)` is shorthand for this.
    ///
    /// # Panics
    /// Panics on any precondition [`Context::try_evaluate`] would report as
    /// a [`GrbError`], with the error's `Display` text as the message.
    pub fn evaluate(&self, expr: Expr<'_>) -> Vector {
        self.try_evaluate(expr).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Context::evaluate`]: shape/dimension violations (and
    /// injected transient faults) come back as a typed [`GrbError`] instead
    /// of a panic — the entry point a serving stack uses so one malformed
    /// chain cannot detonate a batch.
    #[must_use = "the typed error must be handled, not dropped"]
    pub fn try_evaluate(&self, expr: Expr<'_>) -> Result<Vector, GrbError> {
        plan::try_execute(&expr, self)
    }

    /// Return a finished vector's buffer to the pool so the next operation
    /// can reuse it — the algorithm-side half of the zero-allocation
    /// steady state.
    pub fn recycle(&self, v: Vector) {
        self.workspace.give(v.into_vec());
    }

    /// Evaluate a lazy **batched** expression chain (matrix × multivector):
    /// plan it, execute the batched sweeps, return the `n × k` result.
    /// The [`MxmBuilder`]'s `.run(&ctx)` is shorthand for this.
    ///
    /// # Panics
    /// Panics on any precondition [`Context::try_evaluate_multi`] would
    /// report as a [`GrbError`], with the error's `Display` text.
    pub fn evaluate_multi(&self, expr: MultiExpr<'_>) -> MultiVec {
        self.try_evaluate_multi(expr)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Context::evaluate_multi`] — the batched counterpart of
    /// [`Context::try_evaluate`].
    #[must_use = "the typed error must be handled, not dropped"]
    pub fn try_evaluate_multi(&self, expr: MultiExpr<'_>) -> Result<MultiVec, GrbError> {
        plan::try_execute_multi(&expr, self)
    }

    /// Install (or with `None`, remove) a seeded [`FaultInjector`] — the
    /// planner will poll its `grb.mxv_dispatch` / `grb.mxm_dispatch` fail
    /// points before every product dispatched through this context.
    /// Interior-mutable, like [`Context::set_threads`].
    pub fn set_fault_injector(&self, injector: Option<std::sync::Arc<FaultInjector>>) {
        *self.fault.lock().expect("fault injector slot poisoned") = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<std::sync::Arc<FaultInjector>> {
        self.fault
            .lock()
            .expect("fault injector slot poisoned")
            .clone()
    }

    /// Return a finished multi-vector's buffer to the pool (the batched
    /// counterpart of [`Context::recycle`]).
    pub fn recycle_multi(&self, v: MultiVec) {
        self.workspace.give(v.into_vec());
    }
}

/// Entry points of the builder API; each returns a lazy builder whose
/// `run(&ctx)` evaluates the assembled expression chain.
pub struct Op;

impl Op {
    /// `y = A ⊕.⊗ x`: matrix × vector.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn mxv<'a>(a: &'a Matrix, x: &'a Vector) -> MxvBuilder<'a> {
        MxvBuilder::new(a, x, false)
    }

    /// `y = x ⊕.⊗ A`: vector × matrix (the push-direction traversal).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn vxm<'a>(x: &'a Vector, a: &'a Matrix) -> MxvBuilder<'a> {
        MxvBuilder::new(a, x, true)
    }

    /// `Y = A ⊕.⊗ X`: matrix × multivector — `k` simultaneous traversals
    /// (one per lane of the `n × k` frontier matrix) advanced by a single
    /// sweep that loads each adjacency tile once and applies it to every
    /// lane.  Composes with masks, stages, accumulators and
    /// [`Direction::Auto`] exactly like [`Op::mxv`]; use
    /// [`transpose`](MxmBuilder::transpose) for the `vxm`-per-column
    /// orientation a forward traversal wants.
    ///
    /// ```
    /// use bitgblas_core::grb::{Context, MultiVec, Op};
    /// use bitgblas_core::{Backend, Matrix, Semiring};
    /// # use bitgblas_sparse::Coo;
    /// # let mut coo = Coo::new(4, 4);
    /// # coo.push_edge(0, 1).unwrap();
    /// # coo.push_edge(2, 3).unwrap();
    /// # let csr = coo.to_binary_csr();
    ///
    /// let ctx = Context::default();
    /// let a = Matrix::from_csr_ctx(&csr, Backend::Auto, &ctx);
    /// // Two concurrent BFS frontiers: lane 0 from vertex 0, lane 1 from 2.
    /// let frontier = MultiVec::from_sources(4, &[0, 2]);
    /// let next = Op::mxm(&a, &frontier)
    ///     .transpose() // advance along the edges: Aᵀ·F, one hop per lane
    ///     .semiring(Semiring::Boolean)
    ///     .run(&ctx);
    /// assert_eq!(next.get(1, 0), 1.0, "lane 0 reached vertex 1");
    /// assert_eq!(next.get(3, 1), 1.0, "lane 1 reached vertex 3");
    /// ```
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn mxm<'a>(a: &'a Matrix, x: &'a MultiVec) -> MxmBuilder<'a> {
        MxmBuilder::new(a, x)
    }

    /// `Σ (mask .* (A · B))`: masked matrix product reduced to a scalar (the
    /// Triangle Counting primitive).  Already a fully fused kernel, so it
    /// takes no further chain stages.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn mxm_reduce<'a>(a: &'a Matrix, b: &'a Matrix, mask: &'a Matrix) -> MxmReduceBuilder<'a> {
        MxmReduceBuilder { a, b, mask }
    }

    /// Reduce a vector with a semiring's additive monoid.
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn reduce(x: &Vector) -> ReduceBuilder<'_> {
        ReduceBuilder {
            expr: Expr::leaf(x),
            semiring: Semiring::Arithmetic,
        }
    }

    /// Element-wise `out[i] = a[i] ⊕ b[i]` (extendable into a chain).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn ewise_add<'a>(a: &'a Vector, b: &'a Vector) -> EwiseBuilder<'a> {
        EwiseBuilder::new(a).ewise_add(b)
    }

    /// Element-wise `out[i] = a[i] ⊗ b[i]` (extendable into a chain).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn ewise_mult<'a>(a: &'a Vector, b: &'a Vector) -> EwiseBuilder<'a> {
        EwiseBuilder::new(a).ewise_mult(b)
    }

    /// `out[i] = f(x[i])` (GraphBLAS `apply`).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn apply<F: Fn(f32) -> f32 + Sync>(x: &Vector, f: F) -> ApplyBuilder<'_, F> {
        ApplyBuilder { x, f }
    }

    /// Indicator of entries satisfying `pred` (GraphBLAS `select`).
    #[must_use = "builders do nothing until run(&ctx)"]
    pub fn select<F: Fn(f32) -> bool + Sync>(x: &Vector, pred: F) -> SelectBuilder<'_, F> {
        SelectBuilder { x, pred }
    }
}

/// Builder for `mxv` / `vxm` chains (created by [`Op::mxv`] / [`Op::vxm`]).
///
/// The matrix-product root takes the usual modifiers (semiring, mask,
/// descriptor, direction); element-wise stages appended after it
/// ([`affine`](MxvBuilder::affine), [`apply`](MxvBuilder::apply),
/// [`select`](MxvBuilder::select), [`then_ewise`](MxvBuilder::then_ewise))
/// and a terminal accumulator ([`accum`](MxvBuilder::accum)) fuse into the
/// product sweep wherever the planner's rules allow.
#[must_use = "builders do nothing until run(&ctx)"]
pub struct MxvBuilder<'a> {
    a: &'a Matrix,
    x: &'a Vector,
    semiring: Semiring,
    mask: Option<&'a Mask>,
    desc: Descriptor,
    flip: bool,
    scale: Option<&'a Vector>,
    /// The expression under construction.  It carries the stage list,
    /// accumulator and fusion mode; its (leaf) producer is a placeholder
    /// that [`build`](MxvBuilder::build) replaces with the finished
    /// matrix-product root once all modifiers are known.
    chain: Expr<'a>,
}

impl<'a> MxvBuilder<'a> {
    fn new(a: &'a Matrix, x: &'a Vector, flip: bool) -> Self {
        MxvBuilder {
            a,
            x,
            semiring: Semiring::Arithmetic,
            mask: None,
            desc: Descriptor::new(),
            flip,
            scale: None,
            chain: Expr::leaf(x),
        }
    }

    /// Use the given semiring (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Write only where the mask allows.
    pub fn mask(mut self, mask: &'a Mask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Use the given descriptor.
    pub fn desc(mut self, desc: Descriptor) -> Self {
        self.desc = desc;
        self
    }

    /// Shorthand for setting the descriptor's transpose flag.
    pub fn transpose(mut self) -> Self {
        self.desc.transpose = true;
        self
    }

    /// Use the given traversal direction (default: [`Direction::Auto`],
    /// which picks push or pull per operation from the frontier density).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.desc.direction = direction;
        self
    }

    /// Override the scalar/vector kernel selection for this operation only
    /// (default: inherit the context's [`SimdPolicy`]).  Both paths are
    /// bit-identical; this pins *which* runs — the differential harness's
    /// per-op knob.
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.desc.simd = Some(policy);
        self
    }

    /// Control whether the planner may fuse this chain (default:
    /// [`Fusion::Fused`]).  [`Fusion::NodeAtATime`] forces the defining
    /// one-sweep-per-node execution — the parity and benchmark baseline.
    pub fn fusion(mut self, fusion: Fusion) -> Self {
        self.chain.set_fusion(fusion);
        self
    }

    /// Read the operand as `x[i] · scale[i]` without materialising a scaled
    /// copy through the API (PageRank's out-degree normalisation).
    pub fn scale_input(mut self, scale: &'a Vector) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Append `t = mul·t + add` to the chain — the fusion-friendly affine
    /// `apply` (PageRank's `α·contrib + teleport`).
    pub fn affine(mut self, mul: f32, add: f32) -> Self {
        self.chain.push_stage(Stage::Affine { mul, add });
        self
    }

    /// Append `t = f(t)` to the chain (GraphBLAS `apply`).  The closure is
    /// taken by reference so the chain stays allocation-free; bind it to a
    /// local before building the expression.
    pub fn apply<F: Fn(f32) -> f32 + Sync>(mut self, f: &'a F) -> Self {
        self.chain.push_stage(Stage::Apply(f));
        self
    }

    /// Append `t = if pred(t) { 1.0 } else { 0.0 }` to the chain
    /// (GraphBLAS `select`).
    pub fn select<F: Fn(f32) -> bool + Sync>(mut self, pred: &'a F) -> Self {
        self.chain.push_stage(Stage::Select(pred));
        self
    }

    /// Append `t = op(t, operand[i])` to the chain — one collapsed ewise
    /// link with an explicit operator.
    pub fn then_ewise(mut self, op: BinaryOp, operand: &'a Vector) -> Self {
        self.chain.push_stage(Stage::Ewise {
            op,
            operand: operand.as_slice(),
        });
        self
    }

    /// Terminate the chain with the GraphBLAS accumulator `out = w ⊕ t`.
    /// When `op` is the semiring's additive monoid the accumulation folds
    /// into the product sweep itself (SSSP's `dist = min(dist, relaxed)`).
    pub fn accum(mut self, op: BinaryOp, w: &'a Vector) -> Self {
        self.chain.set_accum(op, w);
        self
    }

    /// Assemble the lazy expression chain without running it.
    pub fn build(self) -> Expr<'a> {
        let mut e = self.chain;
        e.producer = Producer::Mxv {
            a: self.a,
            x: self.x,
            semiring: self.semiring,
            mask: self.mask,
            desc: self.desc,
            flip: self.flip,
            scale: self.scale,
        };
        e
    }

    /// Evaluate the chain against the context ([`Context::evaluate`]).
    ///
    /// # Panics
    /// Panics on shape/dimension violations; [`MxvBuilder::try_run`] is the
    /// fallible form.
    pub fn run(self, ctx: &Context) -> Vector {
        ctx.evaluate(self.build())
    }

    /// Evaluate the chain, reporting precondition violations as a typed
    /// [`GrbError`] instead of panicking ([`Context::try_evaluate`]).
    #[must_use = "the typed error must be handled, not dropped"]
    pub fn try_run(self, ctx: &Context) -> Result<Vector, GrbError> {
        ctx.try_evaluate(self.build())
    }
}

/// Builder for batched `mxm` (matrix × multivector) chains (created by
/// [`Op::mxm`]).
///
/// Mirrors [`MxvBuilder`] lane-for-lane: the product root takes the usual
/// modifiers (semiring, mask, descriptor, direction), element-wise stages
/// and a terminal accumulator run over the flat `n × k` storage, and
/// [`Direction::Auto`] resolves per operation from the **node-granular**
/// frontier (a node is active when any lane is — the lane-generalized
/// Beamer threshold, see [`super::choose_direction_multi`]).
///
/// The mask is **flat per-lane** (length `n · k`, position `i*k + l` gates
/// node `i` of lane `l`), so `k` traversals with `k` different visited sets
/// share one masked sweep — exactly what `bfs_multi` does.
#[must_use = "builders do nothing until run(&ctx)"]
pub struct MxmBuilder<'a> {
    a: &'a Matrix,
    x: &'a MultiVec,
    semiring: Semiring,
    mask: Option<&'a Mask>,
    desc: Descriptor,
    scale: Option<&'a Vector>,
    /// The chain under construction; its placeholder leaf producer is
    /// replaced by [`build`](MxmBuilder::build).
    chain: MultiExpr<'a>,
}

impl<'a> MxmBuilder<'a> {
    fn new(a: &'a Matrix, x: &'a MultiVec) -> Self {
        MxmBuilder {
            a,
            x,
            semiring: Semiring::Arithmetic,
            mask: None,
            desc: Descriptor::new(),
            scale: None,
            chain: MultiExpr::leaf(x),
        }
    }

    /// Use the given semiring (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Write only where the flat per-lane mask (length `n · k`, position
    /// `i*k + l` = node `i`, lane `l`) allows.
    pub fn mask(mut self, mask: &'a Mask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Use the given descriptor.
    pub fn desc(mut self, desc: Descriptor) -> Self {
        self.desc = desc;
        self
    }

    /// Shorthand for setting the descriptor's transpose flag: `Y = Aᵀ ⊕.⊗ X`
    /// — the per-column `vxm` orientation a forward traversal uses (the
    /// push scatter then walks `A` itself, like single-vector `vxm`).
    pub fn transpose(mut self) -> Self {
        self.desc.transpose = true;
        self
    }

    /// Use the given traversal direction (default: [`Direction::Auto`],
    /// resolved per operation from the node-granular frontier size).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.desc.direction = direction;
        self
    }

    /// Override the scalar/vector kernel selection for this batched
    /// operation only — the [`MxvBuilder::simd`] counterpart.
    pub fn simd(mut self, policy: SimdPolicy) -> Self {
        self.desc.simd = Some(policy);
        self
    }

    /// Control whether the epilogue may collapse into one sweep (default:
    /// [`Fusion::Fused`]).  [`Fusion::NodeAtATime`] forces one full pass
    /// per stage — the parity baseline.
    pub fn fusion(mut self, fusion: Fusion) -> Self {
        self.chain.set_fusion(fusion);
        self
    }

    /// Read node `i`'s lanes as `x[i,l] · scale[i]` without materialising a
    /// scaled copy (the batched analogue of PageRank's out-degree
    /// normalisation; `scale` has one entry per node).
    pub fn scale_input(mut self, scale: &'a Vector) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Append `t = mul·t + add` to the chain (applied to every lane).
    pub fn affine(mut self, mul: f32, add: f32) -> Self {
        self.chain.push_stage(Stage::Affine { mul, add });
        self
    }

    /// Append `t = f(t)` to the chain (GraphBLAS `apply`; closure by
    /// reference so the chain stays allocation-free).
    pub fn apply<F: Fn(f32) -> f32 + Sync>(mut self, f: &'a F) -> Self {
        self.chain.push_stage(Stage::Apply(f));
        self
    }

    /// Append `t = if pred(t) { 1.0 } else { 0.0 }` to the chain
    /// (GraphBLAS `select`).
    pub fn select<F: Fn(f32) -> bool + Sync>(mut self, pred: &'a F) -> Self {
        self.chain.push_stage(Stage::Select(pred));
        self
    }

    /// Append `t = op(t, operand[i,l])` to the chain — one collapsed ewise
    /// link against another multi-vector of the same shape.
    pub fn then_ewise(mut self, op: BinaryOp, operand: &'a MultiVec) -> Self {
        self.chain.push_stage(Stage::Ewise {
            op,
            operand: operand.as_slice(),
        });
        self
    }

    /// Terminate the chain with the GraphBLAS accumulator `out = w ⊕ t`
    /// over the flat `n × k` storage (`sssp_multi`'s
    /// `dist = min(dist, relaxed)` across all lanes at once).
    pub fn accum(mut self, op: BinaryOp, w: &'a MultiVec) -> Self {
        self.chain.set_accum(op, w);
        self
    }

    /// Assemble the lazy batched expression chain without running it.
    pub fn build(self) -> MultiExpr<'a> {
        let mut e = self.chain;
        e.producer = MultiProducer::Mxm {
            a: self.a,
            x: self.x,
            semiring: self.semiring,
            mask: self.mask,
            desc: self.desc,
            scale: self.scale,
        };
        e
    }

    /// Evaluate the chain against the context
    /// ([`Context::evaluate_multi`]).
    ///
    /// # Panics
    /// Panics on shape/dimension violations; [`MxmBuilder::try_run`] is the
    /// fallible form.
    pub fn run(self, ctx: &Context) -> MultiVec {
        ctx.evaluate_multi(self.build())
    }

    /// Evaluate the batched chain, reporting precondition violations as a
    /// typed [`GrbError`] instead of panicking
    /// ([`Context::try_evaluate_multi`]).
    #[must_use = "the typed error must be handled, not dropped"]
    pub fn try_run(self, ctx: &Context) -> Result<MultiVec, GrbError> {
        ctx.try_evaluate_multi(self.build())
    }
}

/// Builder for the masked matrix-product reduction (created by
/// [`Op::mxm_reduce`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct MxmReduceBuilder<'a> {
    a: &'a Matrix,
    b: &'a Matrix,
    mask: &'a Matrix,
}

impl MxmReduceBuilder<'_> {
    /// Execute on the operands' backends (mixed backends fall back to the
    /// CSR reference kernel).
    pub fn run(self, ctx: &Context) -> f64 {
        assert_eq!(
            self.a.ncols(),
            self.b.nrows(),
            "mxm inner dimension mismatch"
        );
        assert_eq!(
            (self.mask.nrows(), self.mask.ncols()),
            (self.a.nrows(), self.b.ncols()),
            "mxm mask dimension mismatch"
        );
        ctx.workspace().stats().record_mxm_reduce();
        self.a
            .state()
            .mxm_reduce_masked(self.b.state(), self.mask.state())
    }
}

/// Builder for scalar reduction of an expression chain (created by
/// [`Op::reduce`] or [`EwiseBuilder::reduce`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct ReduceBuilder<'a> {
    expr: Expr<'a>,
    semiring: Semiring,
}

impl ReduceBuilder<'_> {
    /// Fold with the given semiring's additive monoid (default: arithmetic
    /// sum).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Execute.  Leaf chains fold in a single fused pass without
    /// materialising the chain's result (`Op::ewise_mult(&a, &b).reduce()`
    /// is a dot product in one sweep).
    pub fn run(self, ctx: &Context) -> f32 {
        plan::execute_reduce(&self.expr, self.semiring, ctx)
    }
}

/// How one deferred ewise link resolves once the chain's semiring is known.
#[derive(Clone, Copy)]
enum EwiseSpec<'a> {
    /// `⊕` of the chain's semiring.
    Add(&'a Vector),
    /// `⊗` of the chain's semiring.
    Mult(&'a Vector),
    /// A fully-resolved stage (apply/select/affine/explicit-op ewise).
    Fixed(Stage<'a>),
}

/// Builder for element-wise chains over vectors (created by
/// [`Op::ewise_add`] / [`Op::ewise_mult`]).
///
/// Every appended link — further `ewise_*`, [`apply`](EwiseBuilder::apply),
/// [`select`](EwiseBuilder::select), [`affine`](EwiseBuilder::affine) —
/// collapses into a **single** sweep when the chain runs (or folds into a
/// scalar without materialising at all via [`reduce`](EwiseBuilder::reduce)).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct EwiseBuilder<'a> {
    first: &'a Vector,
    semiring: Semiring,
    fusion: Fusion,
    specs: [Option<EwiseSpec<'a>>; MAX_STAGES],
    n_specs: usize,
}

impl<'a> EwiseBuilder<'a> {
    fn new(first: &'a Vector) -> Self {
        EwiseBuilder {
            first,
            semiring: Semiring::Arithmetic,
            fusion: Fusion::Fused,
            specs: [None; MAX_STAGES],
            n_specs: 0,
        }
    }

    fn push_spec(&mut self, spec: EwiseSpec<'a>) {
        assert!(
            self.n_specs < MAX_STAGES,
            "expression chain exceeds {MAX_STAGES} stages; evaluate intermediate results"
        );
        self.specs[self.n_specs] = Some(spec);
        self.n_specs += 1;
    }

    /// Use the given semiring for every `ewise_add`/`ewise_mult` link
    /// (default: arithmetic).
    pub fn semiring(mut self, semiring: Semiring) -> Self {
        self.semiring = semiring;
        self
    }

    /// Control whether the planner may fuse this chain (default: fused).
    pub fn fusion(mut self, fusion: Fusion) -> Self {
        self.fusion = fusion;
        self
    }

    /// Append `t = t ⊕ operand[i]` (the semiring's additive monoid).
    pub fn ewise_add(mut self, operand: &'a Vector) -> Self {
        self.push_spec(EwiseSpec::Add(operand));
        self
    }

    /// Append `t = t ⊗ operand[i]` (the semiring's element-wise
    /// multiplication).
    pub fn ewise_mult(mut self, operand: &'a Vector) -> Self {
        self.push_spec(EwiseSpec::Mult(operand));
        self
    }

    /// Append `t = op(t, operand[i])` with an explicit operator.
    pub fn then_ewise(mut self, op: BinaryOp, operand: &'a Vector) -> Self {
        self.push_spec(EwiseSpec::Fixed(Stage::Ewise {
            op,
            operand: operand.as_slice(),
        }));
        self
    }

    /// Append `t = f(t)` (GraphBLAS `apply`; closure by reference).
    pub fn apply<F: Fn(f32) -> f32 + Sync>(mut self, f: &'a F) -> Self {
        self.push_spec(EwiseSpec::Fixed(Stage::Apply(f)));
        self
    }

    /// Append `t = if pred(t) { 1.0 } else { 0.0 }` (GraphBLAS `select`).
    pub fn select<F: Fn(f32) -> bool + Sync>(mut self, pred: &'a F) -> Self {
        self.push_spec(EwiseSpec::Fixed(Stage::Select(pred)));
        self
    }

    /// Append `t = mul·t + add`.
    pub fn affine(mut self, mul: f32, add: f32) -> Self {
        self.push_spec(EwiseSpec::Fixed(Stage::Affine { mul, add }));
        self
    }

    /// Assemble the lazy expression chain without running it.
    pub fn build(self) -> Expr<'a> {
        let mut e = Expr::leaf(self.first);
        for spec in self.specs[..self.n_specs].iter() {
            let stage = match spec.expect("spec slot") {
                EwiseSpec::Add(v) => Stage::Ewise {
                    op: BinaryOp::monoid_of(self.semiring),
                    operand: v.as_slice(),
                },
                EwiseSpec::Mult(v) => Stage::Ewise {
                    op: BinaryOp::mult_of(self.semiring),
                    operand: v.as_slice(),
                },
                EwiseSpec::Fixed(stage) => stage,
            };
            e.push_stage(stage);
        }
        e.set_fusion(self.fusion);
        e
    }

    /// Turn the chain into a scalar reduction (default fold: arithmetic
    /// sum; override with [`ReduceBuilder::semiring`]).
    pub fn reduce(self) -> ReduceBuilder<'a> {
        ReduceBuilder {
            expr: self.build(),
            semiring: Semiring::Arithmetic,
        }
    }

    /// Evaluate the chain against the context ([`Context::evaluate`]).
    pub fn run(self, ctx: &Context) -> Vector {
        ctx.evaluate(self.build())
    }
}

/// Builder for `apply` (created by [`Op::apply`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct ApplyBuilder<'a, F> {
    x: &'a Vector,
    f: F,
}

impl<F: Fn(f32) -> f32 + Sync> ApplyBuilder<'_, F> {
    /// Execute as a one-stage chain over the leaf vector.
    pub fn run(self, ctx: &Context) -> Vector {
        let mut e = Expr::leaf(self.x);
        e.push_stage(Stage::Apply(&self.f));
        ctx.evaluate(e)
    }
}

/// Builder for `select` (created by [`Op::select`]).
#[must_use = "builders do nothing until run(&ctx)"]
pub struct SelectBuilder<'a, F> {
    x: &'a Vector,
    pred: F,
}

impl<F: Fn(f32) -> bool + Sync> SelectBuilder<'_, F> {
    /// Execute as a one-stage chain over the leaf vector.
    pub fn run(self, ctx: &Context) -> Vector {
        let mut e = Expr::leaf(self.x);
        e.push_stage(Stage::Select(&self.pred));
        ctx.evaluate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::TileSize;
    use crate::grb::matrix::Backend;
    use bitgblas_sparse::{Coo, Csr};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    fn close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let both_inf = x.is_infinite() && y.is_infinite();
            assert!(both_inf || (x - y).abs() < 1e-4, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn builder_mxv_agrees_across_backends() {
        let csr = sample(90, 3);
        let x = Vector::from_vec((0..90).map(|i| (i % 5) as f32).collect());
        let ctx = Context::default();
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        for ts in TileSize::ALL {
            let bit = Matrix::from_csr(&csr, Backend::Bit(ts));
            for semiring in [
                Semiring::Arithmetic,
                Semiring::MinPlus(1.0),
                Semiring::MaxTimes(1.0),
            ] {
                let yb = Op::mxv(&bit, &x).semiring(semiring).run(&ctx);
                let yf = Op::mxv(&float, &x).semiring(semiring).run(&ctx);
                close(yb.as_slice(), yf.as_slice());
            }
        }
    }

    #[test]
    fn vxm_builder_equals_mxv_on_transpose() {
        let csr = sample(50, 11);
        let x = Vector::from_vec((0..50).map(|i| (i % 3) as f32).collect());
        let ctx = Context::default();
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let at = Matrix::from_csr(&csr.transpose(), backend);
            let push = Op::vxm(&x, &a).run(&ctx);
            let reference = Op::mxv(&at, &x).run(&ctx);
            close(push.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn masked_builder_respects_complemented_mask() {
        let csr = sample(40, 7);
        let x = Vector::indicator(40, &[0, 1, 2, 3]);
        let visited: Vec<bool> = (0..40).map(|i| i < 20).collect();
        let mask = Mask::complemented(visited);
        let ctx = Context::default();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let a = Matrix::from_csr(&csr, backend);
            let y = Op::mxv(&a, &x)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .run(&ctx);
            for i in 0..20 {
                assert_eq!(
                    y.get(i),
                    0.0,
                    "visited vertex {i} must stay filtered ({backend:?})"
                );
            }
        }
    }

    #[test]
    fn descriptor_and_transpose_shorthand_agree() {
        let csr = sample(30, 13);
        let x = Vector::from_vec((0..30).map(|i| i as f32).collect());
        let ctx = Context::default();
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S32));
        let via_desc = Op::mxv(&a, &x).desc(Descriptor::with_transpose()).run(&ctx);
        let via_shorthand = Op::mxv(&a, &x).transpose().run(&ctx);
        assert_eq!(via_desc, via_shorthand);
    }

    #[test]
    fn mxm_reduce_counts_triangles_across_backends() {
        let adj = sample(60, 17).symmetrized().without_diagonal();
        let ctx = Context::default();
        let mut counts = Vec::new();
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr, Backend::Auto] {
            let l = Matrix::from_csr(&adj.lower_triangle(), backend);
            let lt = Matrix::from_csr(&adj.lower_triangle().transpose(), backend);
            counts.push(Op::mxm_reduce(&l, &lt, &l).run(&ctx));
        }
        assert!(
            counts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "{counts:?}"
        );
    }

    #[test]
    fn vector_builders_cover_the_ewise_family() {
        let ctx = Context::default();
        let a = Vector::from_vec(vec![1.0, 5.0, 0.0]);
        let b = Vector::from_vec(vec![2.0, 3.0, 4.0]);
        assert_eq!(
            Op::ewise_add(&a, &b)
                .semiring(Semiring::MinPlus(1.0))
                .run(&ctx)
                .as_slice(),
            &[1.0, 3.0, 0.0]
        );
        assert_eq!(
            Op::ewise_mult(&a, &b)
                .semiring(Semiring::Boolean)
                .run(&ctx)
                .as_slice(),
            &[1.0, 1.0, 0.0]
        );
        assert_eq!(
            Op::apply(&a, |v| v * 2.0).run(&ctx).as_slice(),
            &[2.0, 10.0, 0.0]
        );
        assert_eq!(
            Op::select(&a, |v| v > 0.5).run(&ctx).as_slice(),
            &[1.0, 1.0, 0.0]
        );
        assert_eq!(
            Op::reduce(&a).semiring(Semiring::MaxTimes(1.0)).run(&ctx),
            5.0
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn builder_rejects_bad_dimensions() {
        let a = Matrix::from_csr(&sample(10, 1), Backend::FloatCsr);
        let x = Vector::zeros(7);
        let _ = Op::mxv(&a, &x).run(&Context::default());
    }

    #[test]
    fn push_pull_and_auto_agree_for_every_backend_and_semiring() {
        let csr = sample(70, 19);
        let ctx = Context::default();
        let sparse_x = Vector::indicator(70, &[3, 31, 64]);
        let mut minplus_x = Vector::identity(70, Semiring::MinPlus(1.0));
        minplus_x.set(5, 0.0);
        minplus_x.set(44, 2.0);
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::Bit(TileSize::S32),
            Backend::FloatCsr,
        ] {
            let a = Matrix::from_csr(&csr, backend);
            for (x, semiring) in [
                (&sparse_x, Semiring::Boolean),
                (&sparse_x, Semiring::Arithmetic),
                (&minplus_x, Semiring::MinPlus(1.0)),
            ] {
                for flip in [false, true] {
                    let build = |dir: Direction| {
                        let op = if flip { Op::vxm(x, &a) } else { Op::mxv(&a, x) };
                        op.semiring(semiring).direction(dir).run(&ctx)
                    };
                    let pull = build(Direction::Pull);
                    let push = build(Direction::Push);
                    let auto = build(Direction::Auto);
                    close(push.as_slice(), pull.as_slice());
                    close(auto.as_slice(), pull.as_slice());
                }
            }
        }
    }

    #[test]
    fn masked_push_equals_masked_pull() {
        let csr = sample(48, 23);
        let ctx = Context::default();
        let x = Vector::indicator(48, &[0, 7, 20]);
        let visited: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let mask = Mask::complemented(visited);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let pull = Op::vxm(&x, &a)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .direction(Direction::Pull)
                .run(&ctx);
            let push = Op::vxm(&x, &a)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .direction(Direction::Push)
                .run(&ctx);
            assert_eq!(push, pull, "{backend:?}");
        }
    }

    #[test]
    fn auto_direction_switches_on_frontier_density_and_is_counted() {
        let csr = sample(512, 29);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        let before = ctx.stats();
        assert_eq!(before.total_mxv(), 0);

        // One active vertex → push.
        let sparse = Vector::indicator(512, &[0]);
        let _ = Op::vxm(&sparse, &a).semiring(Semiring::Boolean).run(&ctx);
        let after_sparse = ctx.stats();
        assert_eq!(after_sparse.push_mxv, 1, "sparse frontier must push");

        // Everything active → pull.
        let dense = Vector::from_vec(vec![1.0; 512]);
        let _ = Op::vxm(&dense, &a).semiring(Semiring::Boolean).run(&ctx);
        let after_dense = ctx.stats();
        assert_eq!(after_dense.pull_mxv, 1, "dense frontier must pull");
        assert_eq!(after_dense.total_mxv(), 2);
    }

    #[test]
    fn push_request_on_unsafe_semiring_is_coerced_to_pull() {
        let csr = sample(40, 31);
        let a = Matrix::from_csr(&csr, Backend::FloatCsr);
        let ctx = Context::default();
        let x = Vector::from_vec(vec![f32::NEG_INFINITY; 40]);
        let _ = Op::mxv(&a, &x)
            .semiring(Semiring::MaxTimes(-1.0))
            .direction(Direction::Push)
            .run(&ctx);
        assert_eq!(ctx.stats().pull_mxv, 1);
        assert_eq!(ctx.stats().push_mxv, 0);
    }

    #[test]
    fn recycled_buffers_are_reused_by_the_next_operation() {
        let csr = sample(64, 37);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        let x = Vector::indicator(64, &[1]);
        let y1 = Op::vxm(&x, &a)
            .semiring(Semiring::Boolean)
            .direction(Direction::Push)
            .run(&ctx);
        let ptr = y1.as_slice().as_ptr();
        ctx.recycle(y1);
        let y2 = Op::vxm(&x, &a)
            .semiring(Semiring::Boolean)
            .direction(Direction::Push)
            .run(&ctx);
        assert_eq!(
            y2.as_slice().as_ptr(),
            ptr,
            "the recycled output buffer must be reused"
        );
    }

    #[test]
    fn cloned_contexts_have_fresh_workspaces() {
        let ctx = Context::default();
        ctx.workspace().stats().record_push_mxv();
        let clone = ctx.clone();
        assert_eq!(clone.stats(), crate::grb::ExecCounts::default());
        assert_eq!(clone.device, ctx.device);
    }

    // -- lazy-chain tests (PR 3) --------------------------------------------

    /// Every fused chain shape must equal its node-at-a-time execution.
    #[test]
    fn fused_chain_matches_node_at_a_time_in_every_direction() {
        let csr = sample(80, 41);
        let ctx = Context::default();
        let operand = Vector::from_vec((0..80).map(|i| (i % 7) as f32).collect());
        let base = Vector::from_vec((0..80).map(|i| (i % 11) as f32 * 0.5).collect());
        let x = Vector::indicator(80, &[2, 17, 33, 56]);
        let dense_x = Vector::from_vec((0..80).map(|i| (i % 4) as f32).collect());
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::FloatCsr,
        ] {
            let a = Matrix::from_csr(&csr, backend);
            for (xv, semiring) in [(&x, Semiring::Boolean), (&dense_x, Semiring::Arithmetic)] {
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    for flip in [false, true] {
                        let build = |fusion: Fusion| {
                            let op = if flip {
                                Op::vxm(xv, &a)
                            } else {
                                Op::mxv(&a, xv)
                            };
                            op.semiring(semiring)
                                .direction(dir)
                                .affine(2.0, 1.0)
                                .then_ewise(BinaryOp::Plus, &operand)
                                .accum(BinaryOp::Max, &base)
                                .fusion(fusion)
                                .run(&ctx)
                        };
                        let fused = build(Fusion::Fused);
                        let unfused = build(Fusion::NodeAtATime);
                        close(fused.as_slice(), unfused.as_slice());
                    }
                }
            }
        }
    }

    /// The monoid accumulator folds into the sweep and equals the two-op
    /// formulation (product, then element-wise accumulate).
    #[test]
    fn accum_matches_explicit_two_op_accumulate() {
        let csr = sample(64, 43);
        let ctx = Context::default();
        let semiring = Semiring::MinPlus(1.0);
        let mut dist = Vector::identity(64, semiring);
        dist.set(0, 0.0);
        dist.set(9, 2.0);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull] {
                let fused = Op::vxm(&dist, &a)
                    .semiring(semiring)
                    .direction(dir)
                    .accum(BinaryOp::Min, &dist)
                    .run(&ctx);
                let relaxed = Op::vxm(&dist, &a)
                    .semiring(semiring)
                    .direction(dir)
                    .run(&ctx);
                let two_op = Op::ewise_add(&relaxed, &dist).semiring(semiring).run(&ctx);
                assert_eq!(fused, two_op, "{backend:?} {dir:?}");
            }
        }
    }

    /// An `Or` accumulator never folds into the push scatter: `Or`
    /// normalises any nonzero baseline to `1.0`, so untouched positions
    /// must still pass through the accumulator (regression test — the
    /// fused FloatCsr push used to keep the raw baseline).
    #[test]
    fn boolean_or_accum_with_non_indicator_baseline_matches_unfused() {
        let csr = sample(48, 67);
        let ctx = Context::default();
        let x = Vector::indicator(48, &[0, 3]);
        let base = Vector::from_vec((0..48).map(|i| (i % 3) as f32 * 2.0).collect());
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let build = |fusion: Fusion| {
                    Op::vxm(&x, &a)
                        .semiring(Semiring::Boolean)
                        .direction(dir)
                        .accum(BinaryOp::Or, &base)
                        .fusion(fusion)
                        .run(&ctx)
                };
                let fused = build(Fusion::Fused);
                assert_eq!(fused, build(Fusion::NodeAtATime), "{backend:?} {dir:?}");
                // Every output is a normalised Boolean value.
                assert!(
                    fused.as_slice().iter().all(|&v| v == 0.0 || v == 1.0),
                    "{backend:?} {dir:?}: {fused:?}"
                );
            }
        }
    }

    /// Masked accumulation keeps the baseline at masked positions (the
    /// GraphBLAS `w<m> ⊕=` semantics for monoid accumulators).
    #[test]
    fn masked_accum_keeps_baseline_where_masked() {
        let csr = sample(40, 47);
        let ctx = Context::default();
        let semiring = Semiring::MinPlus(1.0);
        let mut dist = Vector::identity(40, semiring);
        dist.set(0, 0.0);
        dist.set(7, 5.0);
        let allow: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mask = Mask::new(allow.clone());
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull] {
                let out = Op::vxm(&dist, &a)
                    .semiring(semiring)
                    .mask(&mask)
                    .direction(dir)
                    .accum(BinaryOp::Min, &dist)
                    .run(&ctx);
                for (i, &allowed) in allow.iter().enumerate() {
                    if !allowed {
                        assert_eq!(
                            out.get(i),
                            dist.get(i),
                            "masked position {i} must keep the baseline ({backend:?} {dir:?})"
                        );
                    }
                }
            }
        }
    }

    /// `scale_input` equals materialising the scaled operand by hand.
    #[test]
    fn scale_input_matches_pre_scaled_operand() {
        let csr = sample(50, 53);
        let ctx = Context::default();
        let x = Vector::from_vec((0..50).map(|i| 1.0 + (i % 5) as f32).collect());
        let s = Vector::from_vec((0..50).map(|i| 0.25 * ((i % 3) as f32 + 1.0)).collect());
        let scaled = Vector::from_vec(
            x.as_slice()
                .iter()
                .zip(s.as_slice())
                .map(|(&a, &b)| a * b)
                .collect(),
        );
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let fused = Op::vxm(&x, &a).scale_input(&s).run(&ctx);
            let manual = Op::vxm(&scaled, &a).run(&ctx);
            close(fused.as_slice(), manual.as_slice());
        }
    }

    /// An ewise chain with apply/select links collapses into one sweep and
    /// equals the step-by-step evaluation.
    #[test]
    fn ewise_chain_collapses_and_matches_steps() {
        let ctx = Context::default();
        let a = Vector::from_vec(vec![1.0, 5.0, 0.0, 2.0]);
        let b = Vector::from_vec(vec![2.0, 3.0, 4.0, 0.5]);
        let c = Vector::from_vec(vec![0.0, 1.0, 1.0, 3.0]);
        let half = |v: f32| v * 0.5;
        let chained = Op::ewise_add(&a, &b)
            .apply(&half)
            .then_ewise(BinaryOp::Max, &c)
            .run(&ctx);
        assert_eq!(
            ctx.stats().ewise_chain,
            1,
            "the chain must collapse into one sweep"
        );
        let s1 = Op::ewise_add(&a, &b).run(&ctx);
        let s2 = Op::apply(&s1, half).run(&ctx);
        let s3 = Op::ewise_add(&s2, &c)
            .semiring(Semiring::MaxTimes(1.0))
            .run(&ctx);
        assert_eq!(chained, s3);
    }

    /// A dot product folds in one pass without materialising the product.
    #[test]
    fn chain_reduce_computes_dot_product() {
        let ctx = Context::default();
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let b = Vector::from_vec(vec![0.5, 0.0, 2.0, 1.0]);
        let dot = Op::ewise_mult(&a, &b).reduce().run(&ctx);
        assert_eq!(dot, 0.5 + 6.0 + 4.0);
        let max = Op::ewise_mult(&a, &b)
            .reduce()
            .semiring(Semiring::MaxTimes(1.0))
            .run(&ctx);
        assert_eq!(max, 6.0);
    }

    /// Fused pipelines are observable through the context counters.
    #[test]
    fn fused_pipelines_are_counted() {
        let csr = sample(60, 59);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        let x = Vector::from_vec(vec![1.0; 60]);
        let _ = Op::mxv(&a, &x).affine(0.5, 0.1).run(&ctx);
        assert_eq!(ctx.stats().fused_mxv, 1);
        let _ = Op::mxv(&a, &x)
            .affine(0.5, 0.1)
            .fusion(Fusion::NodeAtATime)
            .run(&ctx);
        assert_eq!(ctx.stats().fused_mxv, 1, "node-at-a-time must not count");
        assert_eq!(ctx.stats().apply, 1, "unfused stages count per node");
    }

    // -- batched (multi-vector) chain tests (PR 4) --------------------------

    /// Every column of a batched `mxm` equals the single-vector `mxv` of
    /// that column, across backends, semirings, directions and transpose.
    #[test]
    fn mxm_columns_equal_per_column_mxv() {
        let csr = sample(70, 71);
        let ctx = Context::default();
        let cols = [
            Vector::indicator(70, &[3, 31]),
            Vector::from_vec((0..70).map(|i| (i % 5) as f32).collect()),
            Vector::indicator(70, &[64]),
        ];
        let mv = MultiVec::from_columns(&cols);
        for backend in [
            Backend::Bit(TileSize::S4),
            Backend::Bit(TileSize::S8),
            Backend::Bit(TileSize::S16),
            Backend::FloatCsr,
        ] {
            let a = Matrix::from_csr(&csr, backend);
            for semiring in [Semiring::Boolean, Semiring::Arithmetic] {
                for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                    for transpose in [false, true] {
                        let mut op = Op::mxm(&a, &mv).semiring(semiring).direction(dir);
                        if transpose {
                            op = op.transpose();
                        }
                        let batched = op.run(&ctx);
                        for (l, col) in cols.iter().enumerate() {
                            let mut single = Op::mxv(&a, col).semiring(semiring).direction(dir);
                            if transpose {
                                single = single.transpose();
                            }
                            let want = single.run(&ctx);
                            close(batched.column(l).as_slice(), want.as_slice());
                        }
                    }
                }
            }
        }
    }

    /// The flat per-lane mask gates each lane independently — two lanes
    /// with different visited sets share one masked sweep.
    #[test]
    fn mxm_flat_mask_gates_lanes_independently() {
        let csr = sample(48, 73);
        let ctx = Context::default();
        let mv = MultiVec::from_sources(48, &[0, 1]);
        // Lane 0 suppresses even nodes, lane 1 suppresses odd nodes.
        let allow: Vec<bool> = (0..48 * 2).map(|f| (f / 2) % 2 != f % 2).collect();
        let mask = Mask::new(allow.clone());
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull] {
                let y = Op::mxm(&a, &mv)
                    .semiring(Semiring::Boolean)
                    .mask(&mask)
                    .direction(dir)
                    .run(&ctx);
                for i in 0..48 {
                    for l in 0..2 {
                        if !allow[i * 2 + l] {
                            assert_eq!(
                                y.get(i, l),
                                0.0,
                                "masked node {i} lane {l} must stay filtered ({backend:?} {dir:?})"
                            );
                        }
                    }
                }
                // The unmasked positions agree with the per-column masked mxv.
                for l in 0..2 {
                    let col_mask = Mask::new((0..48).map(|i| allow[i * 2 + l]).collect());
                    let want = Op::mxv(&a, &mv.column(l))
                        .semiring(Semiring::Boolean)
                        .mask(&col_mask)
                        .direction(dir)
                        .run(&ctx);
                    close(y.column(l).as_slice(), want.as_slice());
                }
            }
        }
    }

    /// Batched chains with stages and accumulators equal their
    /// node-at-a-time execution in every direction.
    #[test]
    fn mxm_fused_chain_matches_node_at_a_time() {
        let csr = sample(60, 79);
        let ctx = Context::default();
        let k = 3;
        let mv = MultiVec::from_sources(60, &[2, 17, 33]);
        let operand = MultiVec::from_vec((0..60 * k).map(|f| (f % 7) as f32).collect(), 60, k);
        let base = MultiVec::from_vec((0..60 * k).map(|f| (f % 11) as f32 * 0.5).collect(), 60, k);
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                let build = |fusion: Fusion| {
                    Op::mxm(&a, &mv)
                        .semiring(Semiring::Boolean)
                        .direction(dir)
                        .affine(2.0, 1.0)
                        .then_ewise(BinaryOp::Plus, &operand)
                        .accum(BinaryOp::Max, &base)
                        .fusion(fusion)
                        .run(&ctx)
                };
                let fused = build(Fusion::Fused);
                let unfused = build(Fusion::NodeAtATime);
                close(fused.as_slice(), unfused.as_slice());
            }
        }
    }

    /// The batched min-plus accumulator relaxes all lanes at once and
    /// equals the per-column SSSP-style relaxation.
    #[test]
    fn mxm_min_accum_equals_per_column_relaxation() {
        let csr = sample(56, 83);
        let ctx = Context::default();
        let semiring = Semiring::MinPlus(1.0);
        let mut dist = MultiVec::identity(56, 2, semiring);
        dist.set(0, 0, 0.0);
        dist.set(9, 1, 0.0);
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            for dir in [Direction::Push, Direction::Pull] {
                let relaxed = Op::mxm(&a, &dist)
                    .transpose()
                    .semiring(semiring)
                    .direction(dir)
                    .accum(BinaryOp::Min, &dist)
                    .run(&ctx);
                for l in 0..2 {
                    let col = dist.column(l);
                    let want = Op::vxm(&col, &a)
                        .semiring(semiring)
                        .direction(dir)
                        .accum(BinaryOp::Min, &col)
                        .run(&ctx);
                    close(relaxed.column(l).as_slice(), want.as_slice());
                }
            }
        }
    }

    /// `scale_input` broadcasts the per-node scale across lanes.
    #[test]
    fn mxm_scale_input_matches_pre_scaled_operand() {
        let csr = sample(40, 89);
        let ctx = Context::default();
        let k = 2;
        let mv = MultiVec::from_vec((0..40 * k).map(|f| 1.0 + (f % 5) as f32).collect(), 40, k);
        let s = Vector::from_vec((0..40).map(|i| 0.25 * ((i % 3) as f32 + 1.0)).collect());
        let scaled = MultiVec::from_vec(
            mv.as_slice()
                .chunks_exact(k)
                .zip(s.as_slice())
                .flat_map(|(lanes, &sv)| lanes.iter().map(move |&v| v * sv))
                .collect(),
            40,
            k,
        );
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let fused = Op::mxm(&a, &mv).scale_input(&s).run(&ctx);
            let manual = Op::mxm(&a, &scaled).run(&ctx);
            close(fused.as_slice(), manual.as_slice());
        }
    }

    /// Batched executions are observable through the context counters, and
    /// Auto resolves on the node-granular frontier.
    #[test]
    fn mxm_auto_direction_switches_and_is_counted() {
        let csr = sample(512, 97);
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let ctx = Context::default();
        // One active node (both lanes on the same node) → push.
        let sparse = MultiVec::from_sources(512, &[7, 7]);
        let _ = Op::mxm(&a, &sparse).semiring(Semiring::Boolean).run(&ctx);
        assert_eq!(ctx.stats().push_mxm, 1, "sparse node frontier must push");
        // Every node active in one lane → pull.
        let dense = MultiVec::filled(512, 2, 1.0);
        let _ = Op::mxm(&a, &dense).semiring(Semiring::Boolean).run(&ctx);
        assert_eq!(ctx.stats().pull_mxm, 1, "dense frontier must pull");
        assert_eq!(ctx.stats().total_mxm(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mxm_rejects_bad_dimensions() {
        let a = Matrix::from_csr(&sample(10, 1), Backend::FloatCsr);
        let x = MultiVec::zeros(7, 2);
        let _ = Op::mxm(&a, &x).run(&Context::default());
    }

    /// `build()` produces an inert expression that `ctx.evaluate` runs.
    #[test]
    fn build_then_evaluate_equals_run() {
        let csr = sample(30, 61);
        let a = Matrix::from_csr(&csr, Backend::FloatCsr);
        let ctx = Context::default();
        let x = Vector::from_vec((0..30).map(|i| i as f32).collect());
        let before = ctx.stats().total_mxv();
        let expr = Op::mxv(&a, &x).affine(2.0, 0.0).build();
        assert_eq!(ctx.stats().total_mxv(), before, "build must not execute");
        let via_evaluate = ctx.evaluate(expr);
        let via_run = Op::mxv(&a, &x).affine(2.0, 0.0).run(&ctx);
        assert_eq!(via_evaluate, via_run);
    }
}
