//! The GrB-style matrix object with pluggable storage backend and
//! versioned, snapshot-isolated mutation (PR 8).

use std::sync::Arc;

use bitgblas_sparse::Csr;

use crate::b2sr::{B2srMatrix, TileSize};
use crate::delta::{CompactReport, EdgeDelta, VersionCell};

use super::auto;
use super::backend::{BitB2sr, FloatCsr, GrbBackend};
use super::error::GrbError;
use super::op::Context;

/// Which storage format and kernel family a [`Matrix`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Bit-GraphBLAS: B2SR storage + bit kernels (the paper's contribution).
    Bit(TileSize),
    /// The baseline: 32-bit-float CSR + reference kernels (GraphBLAST /
    /// cuSPARSE stand-in).
    FloatCsr,
    /// Let the framework decide per matrix, the way the paper's Figure 5
    /// selects a tile size per matrix: the Table-V pattern classifier, the
    /// Algorithm-1 sampling profile and the memory-traffic model pick the
    /// format (and tile size) at construction.  Query the outcome with
    /// [`Matrix::resolved_backend`].
    Auto,
}

impl Backend {
    /// The default bit backend used by the paper's algorithm evaluation
    /// (B2SR-8 is optimal for the majority of matrices in Figure 5b).
    pub fn default_bit() -> Backend {
        Backend::Bit(TileSize::S8)
    }
}

/// A binary adjacency matrix held by the GraphBLAS-style layer.
///
/// The matrix owns an [`Arc`]'d [`GrbBackend`] — the storage representation
/// plus the kernels operating on it.  Construction with [`Backend::Bit`]
/// builds the B2SR representation eagerly (the "one-time conversion cost"
/// the paper amortizes); [`Backend::Auto`] first runs the format-selection
/// procedure of [`auto::auto_decision`].  Transposed representations are
/// cached lazily inside the backend.
///
/// # Mutation and snapshot isolation (PR 8)
///
/// The *representation* a handle reads through is still frozen — but the
/// graph itself no longer is.  Every `Matrix` shares a
/// [`VersionCell`] holding the current epoch, a
/// compacted base, and an append-only edge-delta log:
///
/// * **writers** — [`insert_edge`](Matrix::insert_edge) /
///   [`delete_edge`](Matrix::delete_edge) /
///   [`apply_deltas`](Matrix::apply_deltas) append to the log and publish a
///   new epoch atomically; the published head overlays the staged deltas on
///   the unchanged base (merge-on-read, no rebuild);
/// * **readers** — [`snapshot`](Matrix::snapshot) pins the published head:
///   an immutable epoch view whose traversal results are bit-stable no
///   matter how many writes land afterwards.  Each `Matrix` value is itself
///   such a pinned view (its own kernels never observe later epochs);
/// * **compaction** — [`compact`](Matrix::compact) explicitly folds the log
///   into fresh tiles of the same backend kind and re-plans row shards
///   incrementally (only dirty shards are recut).
pub struct Matrix {
    requested: Backend,
    state: Arc<dyn GrbBackend>,
    /// The context the matrix was constructed with; derived matrices
    /// ([`Matrix::lower_triangle`]) re-run auto selection against the same
    /// device profile and sampling parameters.  Snapshots share the `Arc`
    /// (same workspace pool, same fault injector).
    ctx: Arc<Context>,
    /// The shared version state mutations go through.
    versions: Arc<VersionCell>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("requested", &self.requested)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl Clone for Matrix {
    /// A deep, independent copy: the backend state is cloned, the context
    /// restarts with an empty workspace pool, and the clone begins a fresh
    /// mutation history pinned at the cloned state (pending deltas of the
    /// original's version cell are *not* carried over — clone a
    /// [`snapshot`](Matrix::snapshot) to capture them).
    fn clone(&self) -> Self {
        Matrix::from_parts(
            self.requested,
            Arc::from(self.state.clone_box()),
            Arc::new(Context::clone(&self.ctx)),
        )
    }
}

/// An immutable epoch view returned by [`Matrix::snapshot`]: the matrix
/// state published at [`epoch`](Snapshot::epoch), pinned.  Dereferences to
/// [`Matrix`], so algorithms take it wherever they take `&Matrix`; every
/// traversal through it is bit-identical for the snapshot's lifetime
/// regardless of concurrent appends or compactions.
#[derive(Debug)]
pub struct Snapshot {
    matrix: Matrix,
    epoch: u64,
}

impl Clone for Snapshot {
    /// Cheap: clones the Arc pins, not the storage (unlike
    /// [`Matrix::clone`], which deep-copies).
    fn clone(&self) -> Self {
        Snapshot {
            matrix: Matrix {
                requested: self.matrix.requested,
                state: self.matrix.state.clone(),
                ctx: self.matrix.ctx.clone(),
                versions: self.matrix.versions.clone(),
            },
            epoch: self.epoch,
        }
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Matrix;

    fn deref(&self) -> &Matrix {
        &self.matrix
    }
}

impl Snapshot {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned matrix view (also reachable by deref).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }
}

impl Matrix {
    /// Build a matrix from any CSR with the default [`Context`]: values are
    /// binarized (every stored nonzero becomes an edge), matching the
    /// homogeneous-graph assumption.
    pub fn from_csr(csr: &Csr, backend: Backend) -> Self {
        Self::from_csr_ctx(csr, backend, &Context::default())
    }

    /// Build a matrix from any CSR; the context supplies the device profile
    /// and sampling parameters [`Backend::Auto`] selects with, plus the
    /// shard-planning parameters (thread budget, cache budget) the parallel
    /// push engine partitions the scatter representations with.
    pub fn from_csr_ctx(csr: &Csr, backend: Backend, ctx: &Context) -> Self {
        let resolved = match backend {
            Backend::Auto => auto::auto_decision(csr, ctx).chosen,
            other => other,
        };
        let state: Box<dyn GrbBackend> = match resolved {
            Backend::Bit(ts) => Box::new(BitB2sr::new(csr, ts)),
            Backend::FloatCsr => Box::new(FloatCsr::new(csr)),
            Backend::Auto => unreachable!("auto_decision returns a resolved backend"),
        };
        // Row-shard plans are part of format selection: sized here, at
        // build time, from the context's device profile and thread budget.
        state.prepare_shards(ctx.shard_config());
        Matrix::from_parts(backend, Arc::from(state), Arc::new(ctx.clone()))
    }

    /// Wrap an existing backend implementation (the extension point for
    /// backends defined outside this crate).
    pub fn from_backend(state: Box<dyn GrbBackend>) -> Self {
        let ctx = Context::default();
        state.prepare_shards(ctx.shard_config());
        Matrix::from_parts(state.kind(), Arc::from(state), Arc::new(ctx))
    }

    /// Assemble a matrix around `state` with a fresh version cell pinned at
    /// that state (epoch 0, empty log).
    fn from_parts(requested: Backend, state: Arc<dyn GrbBackend>, ctx: Arc<Context>) -> Matrix {
        let versions = Arc::new(VersionCell::new(state.clone()));
        Matrix {
            requested,
            state,
            ctx,
            versions,
        }
    }

    /// The context this matrix was constructed with.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.state.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.state.ncols()
    }

    /// Number of edges (stored entries) in this handle's pinned view.
    pub fn nnz(&self) -> usize {
        self.state.nnz()
    }

    /// The backend this matrix was requested with (possibly
    /// [`Backend::Auto`]).
    pub fn backend(&self) -> Backend {
        self.requested
    }

    /// The backend actually executing operations (never [`Backend::Auto`]).
    pub fn resolved_backend(&self) -> Backend {
        self.state.kind()
    }

    /// The backend state: storage plus kernels.
    pub fn state(&self) -> &dyn GrbBackend {
        self.state.as_ref()
    }

    /// The binary CSR view (always available).
    pub fn csr(&self) -> &Csr {
        self.state.csr()
    }

    /// The B2SR view, present only when a bit backend is active *and* this
    /// handle reads the compacted base directly (a snapshot with staged
    /// deltas reads through the merge-on-read overlay instead, which serves
    /// [`Matrix::csr`] but no B2SR view until the next
    /// [`compact`](Matrix::compact)).
    pub fn b2sr(&self) -> Option<&B2srMatrix> {
        self.state
            .as_any()
            .downcast_ref::<BitB2sr>()
            .map(BitB2sr::b2sr)
    }

    /// The CSR view of `A^T`, built and cached on first use.
    pub fn csr_t(&self) -> &Csr {
        self.state.csr_t()
    }

    /// The B2SR view of `A^T`, built and cached on first use (bit backends
    /// only; see [`Matrix::b2sr`] for the overlay caveat).
    pub fn b2sr_t(&self) -> Option<&B2srMatrix> {
        self.state
            .as_any()
            .downcast_ref::<BitB2sr>()
            .map(BitB2sr::b2sr_t)
    }

    /// Out-degree of every vertex (row nnz), used by PageRank.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.csr().out_degrees()
    }

    /// Storage bytes of the active representation (B2SR for bit backends,
    /// float CSR for the baseline, base + staged patches for overlays).
    pub fn storage_bytes(&self) -> usize {
        self.state.storage_bytes()
    }

    /// Pin the latest published epoch: an immutable view of `base ⊕ log`
    /// that stays bit-stable under concurrent appends and compactions.
    /// Cheap — three `Arc` clones under one short lock; the snapshot shares
    /// this matrix's context (workspace pool, fault injector) and version
    /// cell (so `snapshot().snapshot()` re-pins the head, and mutations
    /// through the snapshot land in the same log).
    pub fn snapshot(&self) -> Snapshot {
        let (state, epoch) = self.versions.head();
        Snapshot {
            matrix: Matrix {
                requested: self.requested,
                state,
                ctx: self.ctx.clone(),
                versions: self.versions.clone(),
            },
            epoch,
        }
    }

    /// Append one edge insertion to the delta log and publish a new epoch
    /// (atomic; visible to subsequent [`snapshot`](Matrix::snapshot)s, never
    /// to already-pinned ones).  Inserting a present edge is an idempotent
    /// no-op on the view.  Returns the published epoch.
    pub fn insert_edge(&self, row: usize, col: usize) -> Result<u64, GrbError> {
        self.apply_deltas(&[EdgeDelta::insert(row, col)])
    }

    /// Append one edge deletion to the delta log and publish a new epoch.
    /// Deleting an absent edge is an idempotent no-op on the view.  Returns
    /// the published epoch.
    pub fn delete_edge(&self, row: usize, col: usize) -> Result<u64, GrbError> {
        self.apply_deltas(&[EdgeDelta::delete(row, col)])
    }

    /// Append a batch of deltas and publish **one** new epoch covering all
    /// of them (the serving layer's writer path: a coalesced mutation batch
    /// costs one publication).  Deltas are validated against the vertex set
    /// first — dimensions never change — and on any out-of-range endpoint
    /// nothing is appended.  Returns the published epoch.
    pub fn apply_deltas(&self, deltas: &[EdgeDelta]) -> Result<u64, GrbError> {
        for d in deltas {
            if d.row >= self.nrows() {
                return Err(GrbError::SourceOutOfRange {
                    what: "delta edge row",
                    source: d.row,
                    n: self.nrows(),
                });
            }
            if d.col >= self.ncols() {
                return Err(GrbError::SourceOutOfRange {
                    what: "delta edge column",
                    source: d.col,
                    n: self.ncols(),
                });
            }
        }
        Ok(self.versions.append(deltas))
    }

    /// The currently published epoch of the shared version cell (this
    /// handle's own pinned view may be older).
    pub fn head_epoch(&self) -> u64 {
        self.versions.epoch()
    }

    /// Pending (uncompacted) entries in the shared delta log.
    pub fn delta_len(&self) -> usize {
        self.versions.log_len()
    }

    /// Epochs published by the shared version cell since construction.
    pub fn epochs_published(&self) -> u64 {
        self.versions.epochs_published()
    }

    /// Completed compactions of the shared version cell.
    pub fn compactions(&self) -> u64 {
        self.versions.compactions()
    }

    /// Fold the pending delta log into a fresh base representation of the
    /// same backend kind and publish it as a new epoch — the explicit
    /// re-tiling step that restores full kernel speed after a mutation
    /// burst.  Row-shard plans rebuild *incrementally*: only shards whose
    /// row ranges intersect the fold's dirty rows are recut.  Outstanding
    /// snapshots are untouched, and the `grb.delta_merge` fail point (fired
    /// through `ctx`'s injector before publication) can prove it: a
    /// panicking or transiently-failing compaction leaves the current epoch
    /// fully readable.
    pub fn compact(&self, ctx: &Context) -> Result<CompactReport, GrbError> {
        self.versions.compact(ctx)
    }

    /// A new matrix holding the strictly lower triangle (Triangle Counting's
    /// `L`).  The requested backend is preserved — under [`Backend::Auto`]
    /// the framework re-decides on the new structure.
    pub fn lower_triangle(&self) -> Matrix {
        Matrix::from_csr_ctx(&self.csr().lower_triangle(), self.requested, &self.ctx)
    }

    /// A new matrix holding `A^T`, sharing the backend's cached transpose
    /// representation instead of reconverting.  Starts its own mutation
    /// history (mutating the transpose does not mutate the original).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_parts(
            self.requested,
            Arc::from(self.state.transpose_view()),
            Arc::new(Context::clone(&self.ctx)),
        )
    }

    /// True if the matrix equals its transpose (undirected graph).
    pub fn is_symmetric(&self) -> bool {
        let csr = self.csr();
        csr.iter().all(|(r, c, _)| csr.get(c, r).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn sample() -> Csr {
        let mut coo = Coo::new(6, 6);
        for &(r, c) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)] {
            coo.push(r, c, 2.5).unwrap(); // non-unit values: must be binarized
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn construction_binarizes_and_builds_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S4));
        assert!(a.csr().is_binary());
        assert_eq!(a.nnz(), 7);
        assert!(a.b2sr().is_some());
        assert_eq!(a.b2sr().unwrap().nnz(), 7);
        assert_eq!(a.b2sr().unwrap().tile_size(), TileSize::S4);
        assert_eq!(a.resolved_backend(), Backend::Bit(TileSize::S4));

        let f = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(f.b2sr().is_none());
        assert!(f.b2sr_t().is_none());
    }

    #[test]
    fn auto_backend_resolves_to_a_concrete_state() {
        let a = Matrix::from_csr(&sample(), Backend::Auto);
        assert_eq!(a.backend(), Backend::Auto);
        assert_ne!(a.resolved_backend(), Backend::Auto);
        // Whatever was chosen, the data survives.
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.csr(), &sample().binarized());
    }

    #[test]
    fn transpose_views_are_cached_and_correct() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S8));
        let t1 = a.csr_t() as *const Csr;
        let t2 = a.csr_t() as *const Csr;
        assert_eq!(t1, t2, "transpose must be cached");
        assert_eq!(a.csr_t(), &a.csr().transpose());
        let bt = a.b2sr_t().unwrap();
        assert_eq!(bt.to_csr(), a.csr().transpose());
    }

    #[test]
    fn lower_triangle_and_transpose_keep_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S16));
        let l = a.lower_triangle();
        assert_eq!(l.backend(), Backend::Bit(TileSize::S16));
        assert!(l.csr().iter().all(|(r, c, _)| c < r));
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(t.resolved_backend(), a.resolved_backend());
        assert_eq!(t.csr(), &a.csr().transpose());
    }

    #[test]
    fn clone_preserves_backend_state() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S4));
        let b = a.clone();
        assert_eq!(b.resolved_backend(), Backend::Bit(TileSize::S4));
        assert_eq!(b.csr(), a.csr());
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn symmetry_check() {
        let directed = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(!directed.is_symmetric());
        let sym = Matrix::from_csr(&sample().symmetrized(), Backend::FloatCsr);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn storage_bytes_reflect_backend() {
        let csr = sample().symmetrized();
        let bit = Matrix::from_csr(&csr, Backend::Bit(TileSize::S4));
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        assert_eq!(float.storage_bytes(), float.csr().storage_bytes());
        assert_eq!(bit.storage_bytes(), bit.b2sr().unwrap().storage_bytes());
    }

    #[test]
    fn default_bit_backend_is_b2sr8() {
        assert_eq!(Backend::default_bit(), Backend::Bit(TileSize::S8));
    }

    #[test]
    fn mutations_publish_epochs_and_snapshots_pin_them() {
        let a = Matrix::from_csr(&sample(), Backend::default_bit());
        let before = a.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.nnz(), 7);

        assert_eq!(a.insert_edge(5, 0).unwrap(), 1);
        assert_eq!(a.delete_edge(0, 1).unwrap(), 2);
        assert_eq!(a.head_epoch(), 2);
        assert_eq!(a.delta_len(), 2);
        // The live handle's own pinned view is epoch 0 by design...
        assert_eq!(a.nnz(), 7);
        // ...while a fresh snapshot reads base ⊕ log.
        let after = a.snapshot();
        assert_eq!(after.epoch(), 2);
        assert_eq!(after.nnz(), 7);
        assert!(after.csr().get(5, 0).is_some());
        assert!(after.csr().get(0, 1).is_none());
        // The earlier snapshot is bit-stable.
        assert!(before.csr().get(5, 0).is_none());
        assert!(before.csr().get(0, 1).is_some());
        // Snapshots re-pin the shared head.
        assert_eq!(before.snapshot().epoch(), 2);
    }

    #[test]
    fn out_of_range_deltas_are_rejected_atomically() {
        let a = Matrix::from_csr(&sample(), Backend::FloatCsr);
        let err = a.insert_edge(6, 0).unwrap_err();
        assert!(err.to_string().contains("delta edge row"));
        let err = a
            .apply_deltas(&[EdgeDelta::insert(0, 2), EdgeDelta::insert(0, 99)])
            .unwrap_err();
        assert!(err.to_string().contains("delta edge column"));
        // The valid prefix of the rejected batch was not applied.
        assert_eq!(a.delta_len(), 0);
        assert_eq!(a.head_epoch(), 0);
    }

    #[test]
    fn compaction_restores_the_bit_representation() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S8));
        a.insert_edge(5, 0).unwrap();
        let staged = a.snapshot();
        assert!(staged.b2sr().is_none(), "overlay has no B2SR view");
        let report = a.compact(a.context()).unwrap();
        assert_eq!(report.folded, 1);
        assert_eq!(a.delta_len(), 0);
        let compacted = a.snapshot();
        assert!(compacted.b2sr().is_some(), "compaction re-tiles");
        assert_eq!(compacted.csr(), staged.csr());
        assert_eq!(compacted.resolved_backend(), Backend::Bit(TileSize::S8));
        assert_eq!(a.compactions(), 1);
        assert_eq!(a.epochs_published(), 2);
    }

    #[test]
    fn clone_starts_a_fresh_history() {
        let a = Matrix::from_csr(&sample(), Backend::FloatCsr);
        a.insert_edge(5, 0).unwrap();
        let b = a.clone();
        assert_eq!(b.delta_len(), 0, "pending deltas are not carried");
        assert_eq!(b.head_epoch(), 0);
        b.insert_edge(4, 0).unwrap();
        assert!(a.snapshot().csr().get(4, 0).is_none());
    }
}
