//! The GrB-style matrix object with switchable storage backend.

use std::sync::OnceLock;

use bitgblas_sparse::Csr;

use crate::b2sr::{B2srMatrix, TileSize};

/// Which storage format and kernel family a [`Matrix`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Bit-GraphBLAS: B2SR storage + bit kernels (the paper's contribution).
    Bit(TileSize),
    /// The baseline: 32-bit-float CSR + reference kernels (GraphBLAST /
    /// cuSPARSE stand-in).
    FloatCsr,
}

impl Backend {
    /// The default bit backend used by the paper's algorithm evaluation
    /// (B2SR-8 is optimal for the majority of matrices in Figure 5b).
    pub fn default_bit() -> Backend {
        Backend::Bit(TileSize::S8)
    }
}

/// A binary adjacency matrix held by the GraphBLAS-style layer.
///
/// The binary CSR form is always kept (it is needed for conversions,
/// transposes and the float baseline); when the backend is [`Backend::Bit`]
/// the B2SR representation is built eagerly at construction (the "one-time
/// conversion cost" the paper amortizes) and the transpose lazily on first
/// use.
#[derive(Debug)]
pub struct Matrix {
    csr: Csr,
    backend: Backend,
    b2sr: Option<B2srMatrix>,
    /// Lazily-built representations of `A^T` for `vxm` / descriptor-transpose.
    csr_t: OnceLock<Csr>,
    b2sr_t: OnceLock<B2srMatrix>,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            csr: self.csr.clone(),
            backend: self.backend,
            b2sr: self.b2sr.clone(),
            csr_t: OnceLock::new(),
            b2sr_t: OnceLock::new(),
        }
    }
}

impl Matrix {
    /// Build a matrix from any CSR: values are binarized (every stored
    /// nonzero becomes an edge), matching the homogeneous-graph assumption.
    pub fn from_csr(csr: &Csr, backend: Backend) -> Self {
        let bin = if csr.is_binary() { csr.clone() } else { csr.binarized() };
        let b2sr = match backend {
            Backend::Bit(ts) => Some(B2srMatrix::from_csr(&bin, ts)),
            Backend::FloatCsr => None,
        };
        Matrix { csr: bin, backend, b2sr, csr_t: OnceLock::new(), b2sr_t: OnceLock::new() }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    /// Number of edges (stored entries).
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// The storage/kernel backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The binary CSR view (always available).
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The B2SR view, present only for the bit backend.
    pub fn b2sr(&self) -> Option<&B2srMatrix> {
        self.b2sr.as_ref()
    }

    /// The CSR view of `A^T`, built and cached on first use.
    pub fn csr_t(&self) -> &Csr {
        self.csr_t.get_or_init(|| self.csr.transpose())
    }

    /// The B2SR view of `A^T`, built and cached on first use (bit backend
    /// only).
    pub fn b2sr_t(&self) -> Option<&B2srMatrix> {
        self.b2sr.as_ref().map(|b| self.b2sr_t.get_or_init(|| b.transpose()))
    }

    /// Out-degree of every vertex (row nnz), used by PageRank.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.csr.out_degrees()
    }

    /// Storage bytes of the active representation (B2SR for the bit backend,
    /// float CSR for the baseline).
    pub fn storage_bytes(&self) -> usize {
        match &self.b2sr {
            Some(b) => b.storage_bytes(),
            None => self.csr.storage_bytes(),
        }
    }

    /// A new matrix holding the strictly lower triangle, same backend
    /// (Triangle Counting's `L`).
    pub fn lower_triangle(&self) -> Matrix {
        Matrix::from_csr(&self.csr.lower_triangle(), self.backend)
    }

    /// A new matrix holding `A^T`, same backend.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_csr(&self.csr.transpose(), self.backend)
    }

    /// True if the matrix equals its transpose (undirected graph).
    pub fn is_symmetric(&self) -> bool {
        self.csr.iter().all(|(r, c, _)| self.csr.get(c, r).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn sample() -> Csr {
        let mut coo = Coo::new(6, 6);
        for &(r, c) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)] {
            coo.push(r, c, 2.5).unwrap(); // non-unit values: must be binarized
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn construction_binarizes_and_builds_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S4));
        assert!(a.csr().is_binary());
        assert_eq!(a.nnz(), 7);
        assert!(a.b2sr().is_some());
        assert_eq!(a.b2sr().unwrap().nnz(), 7);
        assert_eq!(a.b2sr().unwrap().tile_size(), TileSize::S4);

        let f = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(f.b2sr().is_none());
        assert!(f.b2sr_t().is_none());
    }

    #[test]
    fn transpose_views_are_cached_and_correct() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S8));
        let t1 = a.csr_t() as *const Csr;
        let t2 = a.csr_t() as *const Csr;
        assert_eq!(t1, t2, "transpose must be cached");
        assert_eq!(a.csr_t(), &a.csr().transpose());
        let bt = a.b2sr_t().unwrap();
        assert_eq!(bt.to_csr(), a.csr().transpose());
    }

    #[test]
    fn lower_triangle_and_transpose_keep_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S16));
        let l = a.lower_triangle();
        assert_eq!(l.backend(), Backend::Bit(TileSize::S16));
        assert!(l.csr().iter().all(|(r, c, _)| c < r));
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
    }

    #[test]
    fn symmetry_check() {
        let directed = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(!directed.is_symmetric());
        let sym = Matrix::from_csr(&sample().symmetrized(), Backend::FloatCsr);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn storage_bytes_reflect_backend() {
        let csr = sample().symmetrized();
        let bit = Matrix::from_csr(&csr, Backend::Bit(TileSize::S4));
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        assert_eq!(float.storage_bytes(), float.csr().storage_bytes());
        assert_eq!(bit.storage_bytes(), bit.b2sr().unwrap().storage_bytes());
    }

    #[test]
    fn default_bit_backend_is_b2sr8() {
        assert_eq!(Backend::default_bit(), Backend::Bit(TileSize::S8));
    }
}
