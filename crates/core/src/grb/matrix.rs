//! The GrB-style matrix object with pluggable storage backend.

use bitgblas_sparse::Csr;

use crate::b2sr::{B2srMatrix, TileSize};

use super::auto;
use super::backend::{BitB2sr, FloatCsr, GrbBackend};
use super::op::Context;

/// Which storage format and kernel family a [`Matrix`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Bit-GraphBLAS: B2SR storage + bit kernels (the paper's contribution).
    Bit(TileSize),
    /// The baseline: 32-bit-float CSR + reference kernels (GraphBLAST /
    /// cuSPARSE stand-in).
    FloatCsr,
    /// Let the framework decide per matrix, the way the paper's Figure 5
    /// selects a tile size per matrix: the Table-V pattern classifier, the
    /// Algorithm-1 sampling profile and the memory-traffic model pick the
    /// format (and tile size) at construction.  Query the outcome with
    /// [`Matrix::resolved_backend`].
    Auto,
}

impl Backend {
    /// The default bit backend used by the paper's algorithm evaluation
    /// (B2SR-8 is optimal for the majority of matrices in Figure 5b).
    pub fn default_bit() -> Backend {
        Backend::Bit(TileSize::S8)
    }
}

/// A binary adjacency matrix held by the GraphBLAS-style layer.
///
/// The matrix owns a boxed [`GrbBackend`] — the storage representation plus
/// the kernels operating on it.  Construction with [`Backend::Bit`] builds
/// the B2SR representation eagerly (the "one-time conversion cost" the paper
/// amortizes); [`Backend::Auto`] first runs the format-selection procedure of
/// [`auto::auto_decision`].  Transposed representations are cached lazily
/// inside the backend.
#[derive(Debug)]
pub struct Matrix {
    requested: Backend,
    state: Box<dyn GrbBackend>,
    /// The context the matrix was constructed with; derived matrices
    /// ([`Matrix::lower_triangle`]) re-run auto selection against the same
    /// device profile and sampling parameters.
    ctx: Context,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        Matrix {
            requested: self.requested,
            state: self.state.clone_box(),
            ctx: self.ctx.clone(),
        }
    }
}

impl Matrix {
    /// Build a matrix from any CSR with the default [`Context`]: values are
    /// binarized (every stored nonzero becomes an edge), matching the
    /// homogeneous-graph assumption.
    pub fn from_csr(csr: &Csr, backend: Backend) -> Self {
        Self::from_csr_ctx(csr, backend, &Context::default())
    }

    /// Build a matrix from any CSR; the context supplies the device profile
    /// and sampling parameters [`Backend::Auto`] selects with, plus the
    /// shard-planning parameters (thread budget, cache budget) the parallel
    /// push engine partitions the scatter representations with.
    pub fn from_csr_ctx(csr: &Csr, backend: Backend, ctx: &Context) -> Self {
        let resolved = match backend {
            Backend::Auto => auto::auto_decision(csr, ctx).chosen,
            other => other,
        };
        let state: Box<dyn GrbBackend> = match resolved {
            Backend::Bit(ts) => Box::new(BitB2sr::new(csr, ts)),
            Backend::FloatCsr => Box::new(FloatCsr::new(csr)),
            Backend::Auto => unreachable!("auto_decision returns a resolved backend"),
        };
        // Row-shard plans are part of format selection: sized here, at
        // build time, from the context's device profile and thread budget.
        state.prepare_shards(ctx.shard_config());
        Matrix {
            requested: backend,
            state,
            ctx: ctx.clone(),
        }
    }

    /// Wrap an existing backend implementation (the extension point for
    /// backends defined outside this crate).
    pub fn from_backend(state: Box<dyn GrbBackend>) -> Self {
        let ctx = Context::default();
        state.prepare_shards(ctx.shard_config());
        Matrix {
            requested: state.kind(),
            state,
            ctx,
        }
    }

    /// The context this matrix was constructed with.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.state.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.state.ncols()
    }

    /// Number of edges (stored entries).
    pub fn nnz(&self) -> usize {
        self.state.nnz()
    }

    /// The backend this matrix was requested with (possibly
    /// [`Backend::Auto`]).
    pub fn backend(&self) -> Backend {
        self.requested
    }

    /// The backend actually executing operations (never [`Backend::Auto`]).
    pub fn resolved_backend(&self) -> Backend {
        self.state.kind()
    }

    /// The backend state: storage plus kernels.
    pub fn state(&self) -> &dyn GrbBackend {
        self.state.as_ref()
    }

    /// The binary CSR view (always available).
    pub fn csr(&self) -> &Csr {
        self.state.csr()
    }

    /// The B2SR view, present only when a bit backend is active.
    pub fn b2sr(&self) -> Option<&B2srMatrix> {
        self.state
            .as_any()
            .downcast_ref::<BitB2sr>()
            .map(BitB2sr::b2sr)
    }

    /// The CSR view of `A^T`, built and cached on first use.
    pub fn csr_t(&self) -> &Csr {
        self.state.csr_t()
    }

    /// The B2SR view of `A^T`, built and cached on first use (bit backends
    /// only).
    pub fn b2sr_t(&self) -> Option<&B2srMatrix> {
        self.state
            .as_any()
            .downcast_ref::<BitB2sr>()
            .map(BitB2sr::b2sr_t)
    }

    /// Out-degree of every vertex (row nnz), used by PageRank.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.csr().out_degrees()
    }

    /// Storage bytes of the active representation (B2SR for bit backends,
    /// float CSR for the baseline).
    pub fn storage_bytes(&self) -> usize {
        self.state.storage_bytes()
    }

    /// A new matrix holding the strictly lower triangle (Triangle Counting's
    /// `L`).  The requested backend is preserved — under [`Backend::Auto`]
    /// the framework re-decides on the new structure.
    pub fn lower_triangle(&self) -> Matrix {
        Matrix::from_csr_ctx(&self.csr().lower_triangle(), self.requested, &self.ctx)
    }

    /// A new matrix holding `A^T`, sharing the backend's cached transpose
    /// representation instead of reconverting.
    pub fn transpose(&self) -> Matrix {
        Matrix {
            requested: self.requested,
            state: self.state.transpose_view(),
            ctx: self.ctx.clone(),
        }
    }

    /// True if the matrix equals its transpose (undirected graph).
    pub fn is_symmetric(&self) -> bool {
        let csr = self.csr();
        csr.iter().all(|(r, c, _)| csr.get(c, r).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn sample() -> Csr {
        let mut coo = Coo::new(6, 6);
        for &(r, c) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)] {
            coo.push(r, c, 2.5).unwrap(); // non-unit values: must be binarized
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn construction_binarizes_and_builds_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S4));
        assert!(a.csr().is_binary());
        assert_eq!(a.nnz(), 7);
        assert!(a.b2sr().is_some());
        assert_eq!(a.b2sr().unwrap().nnz(), 7);
        assert_eq!(a.b2sr().unwrap().tile_size(), TileSize::S4);
        assert_eq!(a.resolved_backend(), Backend::Bit(TileSize::S4));

        let f = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(f.b2sr().is_none());
        assert!(f.b2sr_t().is_none());
    }

    #[test]
    fn auto_backend_resolves_to_a_concrete_state() {
        let a = Matrix::from_csr(&sample(), Backend::Auto);
        assert_eq!(a.backend(), Backend::Auto);
        assert_ne!(a.resolved_backend(), Backend::Auto);
        // Whatever was chosen, the data survives.
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.csr(), &sample().binarized());
    }

    #[test]
    fn transpose_views_are_cached_and_correct() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S8));
        let t1 = a.csr_t() as *const Csr;
        let t2 = a.csr_t() as *const Csr;
        assert_eq!(t1, t2, "transpose must be cached");
        assert_eq!(a.csr_t(), &a.csr().transpose());
        let bt = a.b2sr_t().unwrap();
        assert_eq!(bt.to_csr(), a.csr().transpose());
    }

    #[test]
    fn lower_triangle_and_transpose_keep_backend() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S16));
        let l = a.lower_triangle();
        assert_eq!(l.backend(), Backend::Bit(TileSize::S16));
        assert!(l.csr().iter().all(|(r, c, _)| c < r));
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(t.resolved_backend(), a.resolved_backend());
        assert_eq!(t.csr(), &a.csr().transpose());
    }

    #[test]
    fn clone_preserves_backend_state() {
        let a = Matrix::from_csr(&sample(), Backend::Bit(TileSize::S4));
        let b = a.clone();
        assert_eq!(b.resolved_backend(), Backend::Bit(TileSize::S4));
        assert_eq!(b.csr(), a.csr());
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn symmetry_check() {
        let directed = Matrix::from_csr(&sample(), Backend::FloatCsr);
        assert!(!directed.is_symmetric());
        let sym = Matrix::from_csr(&sample().symmetrized(), Backend::FloatCsr);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn storage_bytes_reflect_backend() {
        let csr = sample().symmetrized();
        let bit = Matrix::from_csr(&csr, Backend::Bit(TileSize::S4));
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        assert_eq!(float.storage_bytes(), float.csr().storage_bytes());
        assert_eq!(bit.storage_bytes(), bit.b2sr().unwrap().storage_bytes());
    }

    #[test]
    fn default_bit_backend_is_b2sr8() {
        assert_eq!(Backend::default_bit(), Backend::Bit(TileSize::S8));
    }
}
