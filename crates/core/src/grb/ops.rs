//! The GraphBLAS-style operations, dispatched over the two backends.
//!
//! * [`mxv`] — `y = A ⊕.⊗ x` (matrix × vector) with an optional mask;
//! * [`vxm`] — `y = x ⊕.⊗ A` (vector × matrix), i.e. `Aᵀ ⊕.⊗ x`, the
//!   push-direction traversal used by BFS/SSSP;
//! * [`mxm_reduce_masked`] — `Σ (mask .* (A · B))`, the Triangle Counting
//!   primitive;
//! * [`reduce`] — reduce a vector with the semiring's additive monoid.
//!
//! On the [`Backend::Bit`] path every operation runs on the B2SR bit kernels
//! of [`crate::kernels`]; on the [`Backend::FloatCsr`] path the reference
//! float kernels of `bitgblas-sparse` are used, reproducing the
//! GraphBLAST-style baseline.

use rayon::prelude::*;

use bitgblas_sparse::{ops as float_ops, Csr};

use crate::b2sr::B2srMatrix;
use crate::kernels::{
    bmm_bin_bin_sum_masked, bmv_bin_bin_bin, bmv_bin_bin_bin_masked, bmv_bin_full_full,
    bmv_bin_full_full_masked, pack_vector_bits, pack_vector_tilewise, unpack_vector_bits,
};
use crate::semiring::Semiring;

use super::descriptor::{Descriptor, Mask};
use super::matrix::{Backend, Matrix};
use super::vector::Vector;

/// Row-parallel CSR SpMV over an arbitrary semiring — the float-CSR baseline
/// path (GraphBLAST-style).  The adjacency matrix is binary, so a stored
/// entry contributes `⊗(x[j])` and absent entries contribute nothing; masked
/// rows are skipped entirely (GraphBLAST's early exit).
fn float_mxv(csr: &Csr, x: &[f32], semiring: Semiring, mask: Option<&Mask>) -> Vec<f32> {
    let identity = semiring.identity();
    let mut y = vec![identity; csr.nrows()];
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        if let Some(m) = mask {
            if !m.allows(r) {
                return;
            }
        }
        let (cols, _) = csr.row(r);
        let mut acc = identity;
        for &c in cols {
            acc = semiring.reduce(acc, semiring.combine(x[c]));
        }
        *out = acc;
    });
    y
}

/// Matrix–vector multiply over a semiring: `y[i] = ⊕_j A[i][j] ⊗ x[j]`,
/// optionally masked.
///
/// With `desc.transpose` set, `Aᵀ` is used (the transpose representation is
/// cached inside the [`Matrix`]).
pub fn mxv(
    a: &Matrix,
    x: &Vector,
    semiring: Semiring,
    mask: Option<&Mask>,
    desc: &Descriptor,
) -> Vector {
    assert_eq!(a.ncols(), x.len(), "mxv dimension mismatch");
    if let Some(m) = mask {
        assert_eq!(m.len(), a.nrows(), "mask length must equal output length");
    }

    let values = match a.backend() {
        Backend::Bit(_) => {
            let b2sr = if desc.transpose {
                a.b2sr_t().expect("bit backend always has a B2SR representation")
            } else {
                a.b2sr().expect("bit backend always has a B2SR representation")
            };
            bit_mxv(b2sr, x.as_slice(), semiring, mask)
        }
        Backend::FloatCsr => {
            let csr = if desc.transpose { a.csr_t() } else { a.csr() };
            float_mxv(csr, x.as_slice(), semiring, mask)
        }
    };
    Vector::from_vec(values)
}

/// Dispatch a bit-backend `mxv` over the four B2SR variants.
fn bit_mxv(b2sr: &B2srMatrix, x: &[f32], semiring: Semiring, mask: Option<&Mask>) -> Vec<f32> {
    macro_rules! run {
        ($m:expr, $w:ty) => {{
            let m = $m;
            let dim = m.tile_dim();
            match semiring {
                Semiring::Boolean => {
                    // Boolean semiring: binarize the vector and use the
                    // minimal-footprint bin/bin/bin scheme.
                    let xp = pack_vector_tilewise::<$w>(x, dim);
                    let y_bits = match mask {
                        Some(mk) => {
                            let suppressed = mk.suppressed();
                            let mp = pack_vector_bits::<$w>(&suppressed, dim);
                            bmv_bin_bin_bin_masked(m, &xp, &mp)
                        }
                        None => bmv_bin_bin_bin(m, &xp),
                    };
                    unpack_vector_bits(&y_bits, dim, m.nrows())
                        .into_iter()
                        .map(|b| if b { 1.0 } else { 0.0 })
                        .collect()
                }
                _ => match mask {
                    Some(mk) => {
                        let suppressed = mk.suppressed();
                        bmv_bin_full_full_masked(m, x, &suppressed, semiring)
                    }
                    None => bmv_bin_full_full(m, x, semiring),
                },
            }
        }};
    }
    match b2sr {
        B2srMatrix::B4(m) => run!(m, u8),
        B2srMatrix::B8(m) => run!(m, u8),
        B2srMatrix::B16(m) => run!(m, u16),
        B2srMatrix::B32(m) => run!(m, u32),
    }
}

/// Vector–matrix multiply: `y[j] = ⊕_i x[i] ⊗ A[i][j]`, which equals
/// `mxv(Aᵀ, x)`.  This is the push-direction step of BFS/SSSP.
pub fn vxm(
    x: &Vector,
    a: &Matrix,
    semiring: Semiring,
    mask: Option<&Mask>,
    desc: &Descriptor,
) -> Vector {
    // vxm(x, A) = mxv(A, x) with the transpose flag flipped.
    let flipped = Descriptor { transpose: !desc.transpose, ..*desc };
    assert_eq!(a.nrows(), x.len(), "vxm dimension mismatch");
    mxv(a, x, semiring, mask, &flipped)
}

/// Masked matrix–matrix multiply reduced to a scalar:
/// `Σ_{(i,j) ∈ mask} (A · B)[i][j]` over the arithmetic semiring.
///
/// This is the Triangle Counting primitive; with `A = L`, `B = Lᵀ`,
/// `mask = L` the result is the graph's triangle count.
pub fn mxm_reduce_masked(a: &Matrix, b: &Matrix, mask: &Matrix) -> f64 {
    assert_eq!(a.ncols(), b.nrows(), "mxm inner dimension mismatch");
    match (a.backend(), b.backend(), mask.backend()) {
        (Backend::Bit(_), Backend::Bit(_), Backend::Bit(_)) => {
            let (ab, bb, mb) = (
                a.b2sr().expect("bit backend"),
                b.b2sr().expect("bit backend"),
                mask.b2sr().expect("bit backend"),
            );
            bit_mxm_sum(ab, bb, mb) as f64
        }
        _ => {
            // Mixed or float backends fall back to the reference kernel.
            // `spgemm_masked_sum` treats its second operand as Bᵀ stored by
            // rows, so pass B's transpose CSR.
            float_ops::spgemm_masked_sum(a.csr(), b.csr_t(), mask.csr())
                .expect("dimensions checked above")
        }
    }
}

fn bit_mxm_sum(a: &B2srMatrix, b: &B2srMatrix, mask: &B2srMatrix) -> u64 {
    match (a, b, mask) {
        (B2srMatrix::B4(a), B2srMatrix::B4(b), B2srMatrix::B4(m)) => bmm_bin_bin_sum_masked(a, b, m),
        (B2srMatrix::B8(a), B2srMatrix::B8(b), B2srMatrix::B8(m)) => bmm_bin_bin_sum_masked(a, b, m),
        (B2srMatrix::B16(a), B2srMatrix::B16(b), B2srMatrix::B16(m)) => {
            bmm_bin_bin_sum_masked(a, b, m)
        }
        (B2srMatrix::B32(a), B2srMatrix::B32(b), B2srMatrix::B32(m)) => {
            bmm_bin_bin_sum_masked(a, b, m)
        }
        _ => panic!("mxm operands must use the same B2SR tile size"),
    }
}

/// Reduce a vector with the semiring's additive monoid.
pub fn reduce(x: &Vector, semiring: Semiring) -> f32 {
    semiring.reduce_slice(x.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::TileSize;
    use bitgblas_sparse::{Coo, Csr};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    fn close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let both_inf = x.is_infinite() && y.is_infinite();
            assert!(both_inf || (x - y).abs() < 1e-4, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn bit_and_float_backends_agree_on_mxv() {
        let csr = sample(90, 3);
        let x = Vector::from_vec((0..90).map(|i| (i % 5) as f32).collect());
        let float = Matrix::from_csr(&csr, Backend::FloatCsr);
        for ts in TileSize::ALL {
            let bit = Matrix::from_csr(&csr, Backend::Bit(ts));
            for semiring in [Semiring::Arithmetic, Semiring::MinPlus(1.0), Semiring::MaxTimes(1.0)] {
                let yb = mxv(&bit, &x, semiring, None, &Descriptor::new());
                let yf = mxv(&float, &x, semiring, None, &Descriptor::new());
                close(yb.as_slice(), yf.as_slice());
            }
            // Boolean compares as reachability flags.
            let yb = mxv(&bit, &x, Semiring::Boolean, None, &Descriptor::new());
            let yf = mxv(&float, &x, Semiring::Boolean, None, &Descriptor::new());
            for (b, f) in yb.as_slice().iter().zip(yf.as_slice()) {
                assert_eq!(*b != 0.0, *f != 0.0);
            }
        }
    }

    #[test]
    fn masked_mxv_respects_complemented_mask() {
        let csr = sample(40, 7);
        let x = Vector::indicator(40, &[0, 1, 2, 3]);
        let visited: Vec<bool> = (0..40).map(|i| i < 20).collect();
        let mask = Mask::complemented(visited.clone());
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let y = mxv(&a, &x, Semiring::Boolean, Some(&mask), &Descriptor::new());
            for i in 0..20 {
                assert_eq!(y.get(i), 0.0, "visited vertex {i} must stay filtered ({backend:?})");
            }
        }
    }

    #[test]
    fn vxm_equals_mxv_on_transpose() {
        let csr = sample(50, 11);
        let x = Vector::from_vec((0..50).map(|i| (i % 3) as f32).collect());
        for backend in [Backend::Bit(TileSize::S16), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let at = Matrix::from_csr(&csr.transpose(), backend);
            let push = vxm(&x, &a, Semiring::Arithmetic, None, &Descriptor::new());
            let reference = mxv(&at, &x, Semiring::Arithmetic, None, &Descriptor::new());
            close(push.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn descriptor_transpose_flag() {
        let csr = sample(30, 13);
        let x = Vector::from_vec((0..30).map(|i| i as f32).collect());
        let a = Matrix::from_csr(&csr, Backend::Bit(TileSize::S32));
        let explicit_t = Matrix::from_csr(&csr.transpose(), Backend::Bit(TileSize::S32));
        let via_desc = mxv(&a, &x, Semiring::Arithmetic, None, &Descriptor::with_transpose());
        let via_matrix = mxv(&explicit_t, &x, Semiring::Arithmetic, None, &Descriptor::new());
        close(via_desc.as_slice(), via_matrix.as_slice());
    }

    #[test]
    fn triangle_counting_primitive_agrees_across_backends() {
        // An undirected graph with known triangles.
        let adj = sample(60, 17).symmetrized().without_diagonal();
        let mut counts = Vec::new();
        for backend in [Backend::Bit(TileSize::S8), Backend::Bit(TileSize::S32), Backend::FloatCsr] {
            let l = Matrix::from_csr(&adj.lower_triangle(), backend);
            let lt = Matrix::from_csr(&adj.lower_triangle().transpose(), backend);
            let tri = mxm_reduce_masked(&l, &lt, &l);
            counts.push(tri);
        }
        assert!(counts.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "{counts:?}");
    }

    #[test]
    fn reduce_uses_semiring() {
        let v = Vector::from_vec(vec![3.0, 1.0, 7.0]);
        assert_eq!(reduce(&v, Semiring::Arithmetic), 11.0);
        assert_eq!(reduce(&v, Semiring::MinPlus(1.0)), 1.0);
        assert_eq!(reduce(&v, Semiring::MaxTimes(1.0)), 7.0);
        assert_eq!(reduce(&v, Semiring::Boolean), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mxv_rejects_bad_dimensions() {
        let a = Matrix::from_csr(&sample(10, 1), Backend::FloatCsr);
        let x = Vector::zeros(7);
        let _ = mxv(&a, &x, Semiring::Arithmetic, None, &Descriptor::new());
    }
}
