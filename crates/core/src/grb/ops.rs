//! Deprecated free-function entry points for the GraphBLAS-style operations.
//!
//! These were the original API of the GrB layer; they survive as thin shims
//! over the builder API of [`super::op`] so existing callers keep compiling.
//! New code should use the builders:
//!
//! * `mxv(a, x, s, m, d)` → `Op::mxv(&a, &x).semiring(s).mask(&m).desc(d).run(&ctx)`
//! * `vxm(x, a, s, m, d)` → `Op::vxm(&x, &a).semiring(s).mask(&m).desc(d).run(&ctx)`
//! * `mxm_reduce_masked(a, b, m)` → `Op::mxm_reduce(&a, &b, &m).run(&ctx)`
//! * `reduce(x, s)` → `Op::reduce(&x).semiring(s).run(&ctx)`

use crate::semiring::Semiring;

use super::descriptor::{Descriptor, Mask};
use super::matrix::Matrix;
use super::op::{Context, Op};
use super::vector::Vector;

/// Matrix–vector multiply over a semiring: `y[i] = ⊕_j A[i][j] ⊗ x[j]`,
/// optionally masked.
///
/// With `desc.transpose` set, `Aᵀ` is used (the transpose representation is
/// cached inside the [`Matrix`]).
#[deprecated(
    since = "0.2.0",
    note = "use `Op::mxv(&a, &x).semiring(s).mask(&m).desc(d).run(&ctx)`"
)]
pub fn mxv(
    a: &Matrix,
    x: &Vector,
    semiring: Semiring,
    mask: Option<&Mask>,
    desc: &Descriptor,
) -> Vector {
    let mut op = Op::mxv(a, x).semiring(semiring).desc(*desc);
    if let Some(m) = mask {
        op = op.mask(m);
    }
    op.run(&Context::default())
}

/// Vector–matrix multiply: `y[j] = ⊕_i x[i] ⊗ A[i][j]`, which equals
/// `mxv(Aᵀ, x)`.  This is the push-direction step of BFS/SSSP.
#[deprecated(
    since = "0.2.0",
    note = "use `Op::vxm(&x, &a).semiring(s).mask(&m).desc(d).run(&ctx)`"
)]
pub fn vxm(
    x: &Vector,
    a: &Matrix,
    semiring: Semiring,
    mask: Option<&Mask>,
    desc: &Descriptor,
) -> Vector {
    let mut op = Op::vxm(x, a).semiring(semiring).desc(*desc);
    if let Some(m) = mask {
        op = op.mask(m);
    }
    op.run(&Context::default())
}

/// Masked matrix–matrix multiply reduced to a scalar:
/// `Σ_{(i,j) ∈ mask} (A · B)[i][j]` over the arithmetic semiring.
///
/// This is the Triangle Counting primitive; with `A = L`, `B = Lᵀ`,
/// `mask = L` the result is the graph's triangle count.
#[deprecated(
    since = "0.2.0",
    note = "use `Op::mxm_reduce(&a, &b, &mask).run(&ctx)`"
)]
pub fn mxm_reduce_masked(a: &Matrix, b: &Matrix, mask: &Matrix) -> f64 {
    Op::mxm_reduce(a, b, mask).run(&Context::default())
}

/// Reduce a vector with the semiring's additive monoid.
#[deprecated(since = "0.2.0", note = "use `Op::reduce(&x).semiring(s).run(&ctx)`")]
pub fn reduce(x: &Vector, semiring: Semiring) -> f32 {
    Op::reduce(x).semiring(semiring).run(&Context::default())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::b2sr::TileSize;
    use crate::grb::matrix::Backend;
    use bitgblas_sparse::{Coo, Csr};

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    /// The shims must agree with the builder API they forward to.
    #[test]
    fn shims_match_builders() {
        let csr = sample(60, 3);
        let ctx = Context::default();
        let x = Vector::from_vec((0..60).map(|i| (i % 5) as f32).collect());
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let a = Matrix::from_csr(&csr, backend);
            let shim = mxv(
                &a,
                &x,
                Semiring::Arithmetic,
                None,
                &Descriptor::with_transpose(),
            );
            let builder = Op::mxv(&a, &x).transpose().run(&ctx);
            assert_eq!(shim, builder, "{backend:?}");

            let visited: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
            let mask = Mask::complemented(visited);
            let shim = vxm(&x, &a, Semiring::Boolean, Some(&mask), &Descriptor::new());
            let builder = Op::vxm(&x, &a)
                .semiring(Semiring::Boolean)
                .mask(&mask)
                .run(&ctx);
            assert_eq!(shim, builder, "{backend:?}");
        }
        assert_eq!(
            reduce(&x, Semiring::MinPlus(1.0)),
            Op::reduce(&x).semiring(Semiring::MinPlus(1.0)).run(&ctx)
        );

        let adj = sample(40, 9).symmetrized().without_diagonal();
        let l = Matrix::from_csr(&adj.lower_triangle(), Backend::Bit(TileSize::S8));
        let lt = Matrix::from_csr(
            &adj.lower_triangle().transpose(),
            Backend::Bit(TileSize::S8),
        );
        assert_eq!(
            mxm_reduce_masked(&l, &lt, &l),
            Op::mxm_reduce(&l, &lt, &l).run(&ctx)
        );
    }

    #[test]
    fn reduce_uses_semiring() {
        let v = Vector::from_vec(vec![3.0, 1.0, 7.0]);
        assert_eq!(reduce(&v, Semiring::Arithmetic), 11.0);
        assert_eq!(reduce(&v, Semiring::MinPlus(1.0)), 1.0);
        assert_eq!(reduce(&v, Semiring::MaxTimes(1.0)), 7.0);
        assert_eq!(reduce(&v, Semiring::Boolean), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mxv_rejects_bad_dimensions() {
        let a = Matrix::from_csr(&sample(10, 1), Backend::FloatCsr);
        let x = Vector::zeros(7);
        let _ = mxv(&a, &x, Semiring::Arithmetic, None, &Descriptor::new());
    }
}
