//! The pluggable storage/kernel backend trait and its two built-in
//! implementations.
//!
//! [`GrbBackend`] is the extension point of the GrB layer: a backend owns a
//! matrix's storage and supplies the kernel for every GraphBLAS operation.
//! The layer ships two implementations —
//!
//! * [`BitB2sr`] — B2SR storage + the bit kernels of [`crate::kernels`]
//!   (the paper's contribution);
//! * [`FloatCsr`] — 32-bit-float CSR + the reference kernels of
//!   `bitgblas-sparse` (the GraphBLAST/cuSPARSE stand-in baseline) —
//!
//! and future backends (sharded, cached, batched) plug in by implementing
//! the same trait; neither the [`super::Matrix`] object nor the algorithms
//! know which one they are running on.
//!
//! The trait is object-safe: matrices hold a `Box<dyn GrbBackend>`, and
//! cross-backend operations (`mxm_reduce_masked` with mixed operands)
//! negotiate through [`GrbBackend::as_any`] downcasts, falling back to the
//! always-available CSR view when the operands' concrete types differ.

use std::any::Any;
use std::sync::OnceLock;

use bitgblas_sparse::{ops as float_ops, Csr};

use crate::b2sr::{B2sr, B2srMatrix, TileSize};
use crate::kernels::{
    bmm_bin_bin_sum_masked, bmm_bin_bits_into, bmm_bin_bits_simd_into, bmm_bin_full_into,
    bmm_bin_full_simd_into, bmm_push_bin_full, bmm_push_bin_full_sharded, bmm_push_bits,
    bmm_push_bits_sharded, bmv_bin_bin_bin, bmv_bin_bin_bin_into, bmv_bin_bin_bin_masked,
    bmv_bin_bin_bin_masked_into, bmv_bin_bin_bin_masked_simd_into, bmv_bin_bin_bin_simd_into,
    bmv_bin_full_full, bmv_bin_full_full_fused_into, bmv_bin_full_full_into,
    bmv_bin_full_full_masked, bmv_bin_full_full_masked_into, bmv_bin_full_full_masked_simd_into,
    bmv_bin_full_full_simd_into, bmv_push_bin_bin, bmv_push_bin_bin_sharded, bmv_push_bin_full,
    bmv_push_bin_full_sharded, pack_vector_bits, pack_vector_bits_into, pack_vector_bits_simd_into,
    pack_vector_tilewise, pack_vector_tilewise_into, pack_vector_tilewise_simd_into,
    unpack_vector_bits,
};
use crate::semiring::{BinaryOp, Semiring};
use crate::shard::{worth_sharding, ShardConfig, ShardPlan};

use super::descriptor::Mask;
use super::ewise;
use super::expr::Stage;
use super::matrix::Backend;
use super::multivec::{lane_words_per_node, pack_lane_words_from};
use super::plan::{self, MxvPipeline};
use super::workspace::{Poolable, Workspace};

use bitgblas_bitops::BitWord;

/// A storage format plus the kernel family implementing every GraphBLAS
/// operation on it.
///
/// All vector operands are dense `f32` slices (the GrB layer's [`super::Vector`]
/// wraps one); binarized packing for the Boolean semiring happens inside the
/// backend, where the storage format is known.  The `transpose` flags select
/// the cached `Aᵀ` representation, so both traversal directions are one call.
///
/// The element-wise family (`reduce`, `ewise_add`, `ewise_mult`, `apply`,
/// `select`) has semiring-generic default implementations; a backend only
/// overrides them when it can do better (e.g. a future bit-packed frontier
/// backend operating on words).
pub trait GrbBackend: std::fmt::Debug + Send + Sync {
    /// The resolved backend kind (never [`Backend::Auto`]).
    fn kind(&self) -> Backend;

    /// Number of rows.
    fn nrows(&self) -> usize;

    /// Number of columns.
    fn ncols(&self) -> usize;

    /// Number of stored edges.
    fn nnz(&self) -> usize;

    /// The binary CSR view.  Always available: it is the interchange format
    /// conversions and cross-backend fallbacks go through.
    fn csr(&self) -> &Csr;

    /// The binary CSR view of `Aᵀ`, built and cached on first use.
    fn csr_t(&self) -> &Csr;

    /// `y = A ⊕.⊗ x` (or `Aᵀ` with `transpose`), optionally masked.
    fn mxv(&self, x: &[f32], semiring: Semiring, mask: Option<&Mask>, transpose: bool) -> Vec<f32>;

    /// `y = x ⊕.⊗ A`, i.e. `mxv` along the opposite direction.
    fn vxm(&self, x: &[f32], semiring: Semiring, mask: Option<&Mask>, transpose: bool) -> Vec<f32> {
        self.mxv(x, semiring, mask, !transpose)
    }

    /// Pull-direction `mxv` writing into a caller-supplied buffer, with
    /// scratch space drawn from (and returned to) the workspace pool.  The
    /// backend sizes `out` itself; built-in backends allocate nothing when
    /// the pool is warm.  The default delegates to the allocating [`mxv`]
    /// for backends defined outside this crate.
    ///
    /// [`mxv`]: GrbBackend::mxv
    fn mxv_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let _ = ws;
        let y = self.mxv(x, semiring, mask, transpose);
        out.clear();
        out.extend_from_slice(&y);
    }

    /// Push-direction (sparse-frontier) `mxv`: `frontier` lists, in
    /// ascending order, the indices of `x` whose value differs from the
    /// semiring identity.  Only those entries' edges are traversed and
    /// scattered into `out`; cost is proportional to the frontier's edge
    /// count instead of the whole matrix.
    ///
    /// Only exact for [`Semiring::push_safe`] semirings (the `Op` layer
    /// coerces unsafe requests back to pull).  The default implementation
    /// falls back to the pull sweep, so external backends stay correct
    /// without opting in.
    #[allow(clippy::too_many_arguments)]
    fn mxv_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let _ = frontier;
        self.mxv_into(x, semiring, mask, transpose, ws, out);
    }

    /// Pull-direction `vxm` writing into a caller-supplied buffer.  The
    /// default dispatches through the allocating [`vxm`] so an external
    /// backend's `vxm` override keeps taking effect; the built-in backends
    /// override this with the pooled `mxv_into(!transpose)` equivalence.
    ///
    /// [`vxm`]: GrbBackend::vxm
    fn vxm_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let _ = ws;
        let y = self.vxm(x, semiring, mask, transpose);
        out.clear();
        out.extend_from_slice(&y);
    }

    /// Push-direction (sparse-frontier) `vxm`; see [`mxv_push_into`].  The
    /// default falls back to the pull-direction [`vxm_into`] (preserving
    /// any `vxm` override); built-in backends scatter the rows of `A`
    /// directly.
    ///
    /// [`mxv_push_into`]: GrbBackend::mxv_push_into
    /// [`vxm_into`]: GrbBackend::vxm_into
    #[allow(clippy::too_many_arguments)]
    fn vxm_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let _ = frontier;
        self.vxm_into(x, semiring, mask, transpose, ws, out);
    }

    /// Batched pull-direction matrix × multivector (PR 4): `out = A ⊕.⊗ X`
    /// (or `Aᵀ` with `transpose`) where `x` is a flat node-major `n × k`
    /// frontier matrix (`x[i*k + l]` = node `i`, lane `l`) — `k`
    /// simultaneous traversals advanced by **one** matrix sweep that loads
    /// each tile once and applies it to every lane.
    ///
    /// `mask` is the flat per-lane output mask (length `produced · k`,
    /// position `i*k + l` gates node `i` of lane `l`); masked-out positions
    /// produce the semiring identity.  The backend sizes `out` itself
    /// (`produced · k` entries).  The default decomposes into `k`
    /// single-vector [`mxv_into`] calls — the node-at-a-time fallback that
    /// keeps mixed/external backends exact without opting in.
    ///
    /// [`mxv_into`]: GrbBackend::mxv_into
    #[allow(clippy::too_many_arguments)]
    fn mxm_into(
        &self,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let produced = if transpose {
            self.ncols()
        } else {
            self.nrows()
        };
        let contracted = x.len() / k;
        let mut lane: Vec<f32> = ws.take_empty();
        let mut lane_out: Vec<f32> = ws.take_empty();
        out.clear();
        out.resize(produced * k, semiring.identity());
        for l in 0..k {
            lane.clear();
            lane.extend((0..contracted).map(|i| x[i * k + l]));
            // Restrict the flat per-lane mask to this lane.
            let lane_mask =
                mask.map(|m| Mask::new((0..produced).map(|i| m.allows(i * k + l)).collect()));
            self.mxv_into(
                &lane,
                semiring,
                lane_mask.as_ref(),
                transpose,
                ws,
                &mut lane_out,
            );
            for (i, &v) in lane_out.iter().enumerate() {
                out[i * k + l] = v;
            }
        }
        ws.give(lane);
        ws.give(lane_out);
    }

    /// Batched push-direction (sparse-frontier) matrix × multivector:
    /// `frontier` lists, in ascending order, the *node* indices with at
    /// least one lane differing from the semiring identity; only those
    /// nodes' edges are traversed, and each edge scatters all `k` lane
    /// contributions at once.  Only exact for [`Semiring::push_safe`]
    /// semirings (the planner coerces unsafe requests back to pull).  The
    /// default falls back to the pull-direction [`mxm_into`], so external
    /// backends stay correct without opting in.
    ///
    /// [`mxm_into`]: GrbBackend::mxm_into
    #[allow(clippy::too_many_arguments)]
    fn mxm_push_into(
        &self,
        x: &[f32],
        k: usize,
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let _ = frontier;
        self.mxm_into(x, k, semiring, mask, transpose, ws, out);
    }

    /// Execute one fused matrix-vector pipeline (PR 3, GraphBLAS
    /// non-blocking mode): the planner hands the backend a whole
    /// `mxv → stages → accum` chain ([`MxvPipeline`]) and the backend runs
    /// it in as few sweeps as its storage allows.  The store semantics are
    /// defined by [`MxvPipeline::finish`]; the planner only emits shapes it
    /// proved fusable (see `grb::plan`).
    ///
    /// The default decomposes into the node-at-a-time entry points — the
    /// product sweep, then the collapsed epilogue as one pass — so external
    /// backends stay correct without opting in.  Built-in backends override
    /// with single-sweep kernels whose semiring is dispatched once per call
    /// instead of once per edge.
    fn mxv_fused_into(&self, p: &MxvPipeline<'_>, ws: &Workspace, out: &mut Vec<f32>) {
        match p.frontier {
            Some(frontier) => {
                self.mxv_push_into(p.x, frontier, p.semiring, p.mask, p.transpose, ws, out)
            }
            None => self.mxv_into(p.x, p.semiring, p.mask, p.transpose, ws, out),
        }
        p.finish_in_place(out);
    }

    /// Run a collapsed element-wise chain (`out[i] = w[i] ⊕
    /// stages(out[i])`) in place — the planner's entry point for ewise
    /// chains and for the epilogue of partially-fused push pipelines.  The
    /// default is the shared serial sweep; built-in backends parallelise
    /// long vectors, and a future bit-packed frontier backend could operate
    /// on words.
    fn ewise_chain_into(
        &self,
        stages: &[Stage<'_>],
        accum: Option<(BinaryOp, &[f32])>,
        out: &mut [f32],
    ) {
        plan::run_chain_in_place(stages, accum, out);
    }

    /// `Σ_{(i,j) ∈ mask} (A · B)[i][j]` over the arithmetic semiring — the
    /// Triangle Counting primitive.  `b` and `mask` may be any backend; the
    /// implementation downcasts and falls back to the CSR reference kernel
    /// when the concrete types (or tile sizes) differ.
    fn mxm_reduce_masked(&self, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64;

    /// Reduce a vector with the semiring's additive monoid.
    fn reduce(&self, x: &[f32], semiring: Semiring) -> f32 {
        semiring.reduce_slice(x)
    }

    /// Element-wise `out[i] = a[i] ⊕ b[i]` with the additive monoid.
    fn ewise_add(&self, a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
        ewise::ewise_add_slices(a, b, semiring)
    }

    /// Element-wise `out[i] = a[i] ⊗ b[i]` with the multiplicative op.
    fn ewise_mult(&self, a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
        ewise::ewise_mult_slices(a, b, semiring)
    }

    /// Apply a unary function to every entry (GraphBLAS `apply`).
    fn apply(&self, x: &[f32], f: &dyn Fn(f32) -> f32) -> Vec<f32> {
        x.iter().map(|&v| f(v)).collect()
    }

    /// Indicator of the entries satisfying a predicate (GraphBLAS `select`).
    fn select(&self, x: &[f32], pred: &dyn Fn(f32) -> bool) -> Vec<f32> {
        x.iter().map(|&v| if pred(v) { 1.0 } else { 0.0 }).collect()
    }

    /// Precompute the row-shard partition of the scatter representations
    /// (PR 5): called once at [`Matrix`](super::Matrix) construction with
    /// the context's [`ShardConfig`], so the sharded parallel push engine
    /// has its plan before the first traversal.  The default is a no-op —
    /// external backends without a sharded scatter stay on their serial
    /// push paths.
    fn prepare_shards(&self, cfg: ShardConfig) {
        let _ = cfg;
    }

    /// Install the scatter plan of a freshly *compacted* backend (PR 8):
    /// derive it incrementally from the pre-compaction plan `prev` — clean
    /// shard boundaries are kept verbatim and only the runs intersecting
    /// `dirty_rows` are recut ([`ShardPlan::replan_rows`]) — falling back
    /// to a full [`prepare_shards`](GrbBackend::prepare_shards) pass when
    /// no prior plan exists.  The default does the full pass, which keeps
    /// external backends correct without opting in.
    fn replan_shards(&self, prev: Option<&ShardPlan>, cfg: ShardConfig, dirty_rows: &[usize]) {
        let _ = (prev, dirty_rows);
        self.prepare_shards(cfg);
    }

    /// The row-shard plan of a scatter representation, if one has been
    /// built: `of_transpose` selects the plan over `Aᵀ`'s rows (the `mxv`
    /// push representation) instead of `A`'s (the `vxm` push
    /// representation).  Introspection only — `None` means the sharded
    /// engine is inactive for that representation (serial config, tiny
    /// matrix, external backend, or simply not built yet).
    fn shard_plan(&self, of_transpose: bool) -> Option<&ShardPlan> {
        let _ = of_transpose;
        None
    }

    /// Storage bytes of the active representation.
    fn storage_bytes(&self) -> usize;

    /// A new backend of the same kind holding `Aᵀ`.
    fn transpose_view(&self) -> Box<dyn GrbBackend>;

    /// Clone into a boxed backend (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn GrbBackend>;

    /// Downcast support for cross-backend negotiation.
    fn as_any(&self) -> &dyn Any;
}

/// Reference-kernel `mxm_reduce_masked` over the CSR views — the
/// cross-backend fallback path.  `spgemm_masked_sum` treats its second
/// operand as `Bᵀ` stored by rows, so `b`'s transpose CSR is passed.
fn csr_mxm_reduce_masked(a: &dyn GrbBackend, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64 {
    float_ops::spgemm_masked_sum(a.csr(), b.csr_t(), mask.csr())
        .expect("operand dimensions checked by the caller")
}

/// Expand packed Boolean output words into a dense `f32` indicator, with an
/// optional mask filter — the common tail of the Boolean pull and push paths
/// (`out` must be resized to the produced length, filled with `0.0`).
fn expand_bits_into<W: bitgblas_bitops::BitWord>(
    yw: &[W],
    dim: usize,
    mask: Option<&Mask>,
    out: &mut [f32],
) {
    match mask {
        Some(mk) => {
            for (i, o) in out.iter_mut().enumerate() {
                if yw[i / dim].bit((i % dim) as u32) && mk.allows(i) {
                    *o = 1.0;
                }
            }
        }
        None => {
            for (i, o) in out.iter_mut().enumerate() {
                if yw[i / dim].bit((i % dim) as u32) {
                    *o = 1.0;
                }
            }
        }
    }
}

/// Expand per-node `u64` lane words into a flat node-major `f32` indicator,
/// with an optional flat per-lane mask filter — the common tail of the
/// batched Boolean pull and push paths (`out` must be resized to
/// `n_nodes · k` and filled with `0.0`).
fn expand_lane_words_into(yw: &[u64], k: usize, mask: Option<&Mask>, out: &mut [f32]) {
    use rayon::prelude::*;
    let wpn = lane_words_per_node(k);
    out.par_chunks_mut(k).enumerate().for_each(|(i, lanes)| {
        let words = &yw[i * wpn..(i + 1) * wpn];
        if words.iter().all(|&w| w == 0) {
            return;
        }
        for (l, slot) in lanes.iter_mut().enumerate() {
            if words[l / 64] >> (l % 64) & 1 != 0 && mask.is_none_or(|m| m.allows(i * k + l)) {
                *slot = 1.0;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Sharded push execution (PR 5)
// ---------------------------------------------------------------------------
//
// Every helper below follows the same deterministic recipe: cut the
// ascending frontier at the plan's row-shard boundaries, decide — from the
// frontier and the plan alone, never from the thread count — whether the
// modelled scatter work dominates the fixed-order merge
// (`shard::worth_sharding`), and either run the sharded kernel (privatized
// per-segment buffers from the workspace pool, checked out *before* the
// fan-out so workers never touch the pool) or fall back to the serial
// scatter.  Scratch and cut buffers cycle through the pool, so the sharded
// steady state stays allocation-free at `threads == 1` (the parallel path
// additionally pays the scoped thread spawns of the rayon stand-in).

/// Average out-degree of a scatter representation, the frontier-edge
/// estimate `worth_sharding` weighs against the merge cost.
fn avg_degree(nnz: usize, nrows: usize) -> usize {
    (nnz / nrows.max(1)).max(1)
}

/// The engagement protocol every sharded-or-serial push helper shares:
/// cut the ascending frontier at the plan's shard boundaries, apply the
/// thread-independent [`worth_sharding`] test (merged output = `produced`
/// units of `elem_bytes`), and — when engaged — check out the privatized
/// scratch (`n_segments × width` elements of `fill`, one chunk per
/// segment).  Returns `None` for the serial path, or `Some((cuts,
/// scratch))`; after running its sharded kernel the caller hands both
/// buffers to [`finish_sharded`].  Centralising this keeps the
/// engagement-and-scratch rules single-sourced across the six kernel
/// shapes below.
#[allow(clippy::too_many_arguments)]
fn engage_sharded<T: Poolable>(
    ws: &Workspace,
    plan: &ShardPlan,
    frontier: &[usize],
    avg_deg: usize,
    produced: usize,
    elem_bytes: usize,
    width: usize,
    fill: T,
) -> Option<(Vec<usize>, Vec<T>)> {
    let mut cuts: Vec<usize> = ws.take_empty();
    plan.segment_frontier(frontier, &mut cuts);
    let n_seg = cuts.len().saturating_sub(1);
    if worth_sharding(frontier.len(), avg_deg, n_seg, produced, elem_bytes) {
        let scratch = ws.take(n_seg * width, fill);
        Some((cuts, scratch))
    } else {
        ws.give(cuts);
        None
    }
}

/// Recycle a sharded execution's buffers and record the engagement.
fn finish_sharded<T: Poolable>(ws: &Workspace, cuts: Vec<usize>, scratch: Vec<T>) {
    ws.stats().record_sharded_push(cuts.len().saturating_sub(1));
    ws.give(scratch);
    ws.give(cuts);
}

/// Boolean word scatter over a B2SR representation: sharded when the plan
/// and frontier warrant it, serial otherwise.  `yw` must be zeroed.
fn bit_push_bin_words<W: BitWord + Poolable>(
    m: &B2sr<W>,
    frontier: &[usize],
    plan: &ShardPlan,
    ws: &Workspace,
    yw: &mut [W],
) {
    let avg = avg_degree(m.nnz() as usize, m.nrows());
    // The Boolean merge is word-granular: one OR covers `tile_dim` outputs,
    // so the merge side of the engagement test is counted in words.
    let width = m.n_tile_cols();
    let elem = std::mem::size_of::<W>();
    match engage_sharded(ws, plan, frontier, avg, width, elem, width, W::ZERO) {
        Some((cuts, mut scratch)) => {
            bmv_push_bin_bin_sharded(m, frontier, &cuts, ws.push_threads(), &mut scratch, yw);
            finish_sharded(ws, cuts, scratch);
        }
        None => bmv_push_bin_bin(m, frontier, yw),
    }
}

/// Full-precision scatter over a B2SR representation: sharded or serial.
/// `y` arrives pre-seeded (identity, or the accumulation baseline on the
/// seeded fused path) exactly as for the serial kernel.
#[allow(clippy::too_many_arguments)]
fn bit_push_full<W: BitWord>(
    m: &B2sr<W>,
    x: &[f32],
    frontier: &[usize],
    semiring: Semiring,
    mask: Option<&Mask>,
    plan: &ShardPlan,
    ws: &Workspace,
    y: &mut [f32],
) {
    let avg = avg_degree(m.nnz() as usize, m.nrows());
    let width = y.len();
    match engage_sharded(
        ws,
        plan,
        frontier,
        avg,
        width,
        4,
        width,
        semiring.identity(),
    ) {
        Some((cuts, mut scratch)) => {
            let threads = ws.push_threads();
            match mask {
                Some(mk) => bmv_push_bin_full_sharded(
                    m,
                    x,
                    frontier,
                    &cuts,
                    semiring,
                    |j| mk.allows(j),
                    threads,
                    &mut scratch,
                    y,
                ),
                None => bmv_push_bin_full_sharded(
                    m,
                    x,
                    frontier,
                    &cuts,
                    semiring,
                    |_| true,
                    threads,
                    &mut scratch,
                    y,
                ),
            }
            finish_sharded(ws, cuts, scratch);
        }
        None => match mask {
            Some(mk) => bmv_push_bin_full(m, x, frontier, semiring, |j| mk.allows(j), y),
            None => bmv_push_bin_full(m, x, frontier, semiring, |_| true, y),
        },
    }
}

/// Batched Boolean lane-word scatter over a B2SR representation: sharded
/// or serial.  `yw` must be zeroed (`ncols * wpn` lane words).
#[allow(clippy::too_many_arguments)]
fn bit_push_lane_words<W: BitWord>(
    m: &B2sr<W>,
    frontier: &[usize],
    xw: &[u64],
    wpn: usize,
    plan: &ShardPlan,
    ws: &Workspace,
    yw: &mut [u64],
) {
    let avg = avg_degree(m.nnz() as usize, m.nrows());
    // Per-edge work and per-position merge both scale by `wpn`, so the
    // engagement test is the single-vector one on node counts (the lane
    // words enter only the scratch-footprint bound).
    let width = m.ncols() * wpn;
    match engage_sharded(ws, plan, frontier, avg, m.ncols(), wpn * 8, width, 0u64) {
        Some((cuts, mut scratch)) => {
            bmm_push_bits_sharded(
                m,
                frontier,
                &cuts,
                xw,
                wpn,
                ws.push_threads(),
                &mut scratch,
                yw,
            );
            finish_sharded(ws, cuts, scratch);
        }
        None => bmm_push_bits(m, frontier, xw, wpn, yw),
    }
}

/// Batched full-precision scatter over a B2SR representation: sharded or
/// serial.  `y` must be identity-filled (`ncols * k` entries).
#[allow(clippy::too_many_arguments)]
fn bit_push_multi_full<W: BitWord>(
    m: &B2sr<W>,
    x: &[f32],
    k: usize,
    frontier: &[usize],
    semiring: Semiring,
    mask: Option<&Mask>,
    plan: &ShardPlan,
    ws: &Workspace,
    y: &mut [f32],
) {
    let avg = avg_degree(m.nnz() as usize, m.nrows());
    // The per-edge lane factor cancels between scatter and merge.
    let width = m.ncols() * k;
    match engage_sharded(
        ws,
        plan,
        frontier,
        avg,
        m.ncols(),
        k * 4,
        width,
        semiring.identity(),
    ) {
        Some((cuts, mut scratch)) => {
            let threads = ws.push_threads();
            match mask {
                Some(mk) => bmm_push_bin_full_sharded(
                    m,
                    x,
                    k,
                    frontier,
                    &cuts,
                    semiring,
                    |flat| mk.allows(flat),
                    threads,
                    &mut scratch,
                    y,
                ),
                None => bmm_push_bin_full_sharded(
                    m,
                    x,
                    k,
                    frontier,
                    &cuts,
                    semiring,
                    |_| true,
                    threads,
                    &mut scratch,
                    y,
                ),
            }
            finish_sharded(ws, cuts, scratch);
        }
        None => match mask {
            Some(mk) => bmm_push_bin_full(m, x, k, frontier, semiring, |flat| mk.allows(flat), y),
            None => bmm_push_bin_full(m, x, k, frontier, semiring, |_| true, y),
        },
    }
}

/// Full-precision scatter over a CSR representation (the FloatCsr
/// baseline): sharded or serial.  `y` arrives pre-seeded like the B2SR
/// counterpart.
#[allow(clippy::too_many_arguments)]
fn csr_push_full(
    csr: &Csr,
    x: &[f32],
    frontier: &[usize],
    semiring: Semiring,
    mask: Option<&Mask>,
    plan: &ShardPlan,
    ws: &Workspace,
    y: &mut [f32],
) {
    let avg = avg_degree(csr.nnz(), csr.nrows());
    let width = y.len();
    match engage_sharded(
        ws,
        plan,
        frontier,
        avg,
        width,
        4,
        width,
        semiring.identity(),
    ) {
        Some((cuts, mut scratch)) => {
            let threads = ws.push_threads();
            let n_seg = cuts.len() - 1;
            crate::shard::scatter_segments(threads, n_seg, &mut scratch, width, |s, chunk| {
                FloatCsr::float_push_into(
                    csr,
                    x,
                    &frontier[cuts[s]..cuts[s + 1]],
                    semiring,
                    mask,
                    chunk,
                );
            });
            crate::shard::merge_segments(threads, n_seg, &scratch, width, y, |acc, v| {
                semiring.reduce(acc, v)
            });
            finish_sharded(ws, cuts, scratch);
        }
        None => FloatCsr::float_push_into(csr, x, frontier, semiring, mask, y),
    }
}

/// Batched full-precision scatter over a CSR representation: sharded or
/// serial.  `y` must be identity-filled (`ncols * k` entries).
#[allow(clippy::too_many_arguments)]
fn csr_push_multi_full(
    csr: &Csr,
    x: &[f32],
    k: usize,
    frontier: &[usize],
    semiring: Semiring,
    mask: Option<&Mask>,
    plan: &ShardPlan,
    ws: &Workspace,
    y: &mut [f32],
) {
    let avg = avg_degree(csr.nnz(), csr.nrows());
    let width = csr.ncols() * k;
    match engage_sharded(
        ws,
        plan,
        frontier,
        avg,
        csr.ncols(),
        k * 4,
        width,
        semiring.identity(),
    ) {
        Some((cuts, mut scratch)) => {
            let threads = ws.push_threads();
            let n_seg = cuts.len() - 1;
            crate::shard::scatter_segments(threads, n_seg, &mut scratch, width, |s, chunk| {
                FloatCsr::float_mxm_push_into(
                    csr,
                    x,
                    k,
                    &frontier[cuts[s]..cuts[s + 1]],
                    semiring,
                    mask,
                    chunk,
                );
            });
            crate::shard::merge_segments(
                threads,
                n_seg,
                &scratch,
                width,
                &mut y[..width],
                |acc, v| semiring.reduce(acc, v),
            );
            finish_sharded(ws, cuts, scratch);
        }
        None => FloatCsr::float_mxm_push_into(csr, x, k, frontier, semiring, mask, y),
    }
}

/// Build the shard plan of one B2SR representation from its tile-row
/// pointer (tile counts are the per-tile-row weight proxy; boundaries fall
/// on tile rows by construction).
fn plan_of_b2sr(m: &B2srMatrix, cfg: ShardConfig) -> ShardPlan {
    macro_rules! run {
        ($m:expr) => {{
            let m = $m;
            ShardPlan::from_weights(m.tile_rowptr(), m.tile_dim(), m.nrows(), cfg)
        }};
    }
    match m {
        B2srMatrix::B4(m) => run!(m),
        B2srMatrix::B8(m) => run!(m),
        B2srMatrix::B16(m) => run!(m),
        B2srMatrix::B32(m) => run!(m),
    }
}

/// Clone the built state of a `OnceLock` (plans survive `clone_box` /
/// `transpose_view`; unbuilt locks stay unbuilt).
fn clone_lock<T: Clone>(src: &OnceLock<T>) -> OnceLock<T> {
    src.get().cloned().map(OnceLock::from).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// BitB2sr
// ---------------------------------------------------------------------------

/// The Bit-GraphBLAS backend: B2SR storage, bit kernels (Tables II and III).
#[derive(Debug)]
pub struct BitB2sr {
    csr: Csr,
    b2sr: B2srMatrix,
    csr_t: OnceLock<Csr>,
    b2sr_t: OnceLock<B2srMatrix>,
    /// Shard config the scatter plans are built with (set by
    /// `prepare_shards`, defaulting to the host config on first use).
    shard_cfg: OnceLock<ShardConfig>,
    /// Row-shard plan over `A`'s rows (the `vxm` push representation).
    shards: OnceLock<ShardPlan>,
    /// Row-shard plan over `Aᵀ`'s rows (the `mxv` push representation).
    shards_t: OnceLock<ShardPlan>,
}

impl BitB2sr {
    /// Convert a binary CSR matrix into B2SR with the given tile size.  The
    /// conversion is eager (the "one-time conversion cost" the paper
    /// amortizes); the transpose representations are built lazily.
    pub fn new(csr: &Csr, tile_size: TileSize) -> Self {
        let bin = if csr.is_binary() {
            csr.clone()
        } else {
            csr.binarized()
        };
        let b2sr = B2srMatrix::from_csr(&bin, tile_size);
        BitB2sr {
            csr: bin,
            b2sr,
            csr_t: OnceLock::new(),
            b2sr_t: OnceLock::new(),
            shard_cfg: OnceLock::new(),
            shards: OnceLock::new(),
            shards_t: OnceLock::new(),
        }
    }

    /// The B2SR representation.
    pub fn b2sr(&self) -> &B2srMatrix {
        &self.b2sr
    }

    /// The B2SR representation of `Aᵀ`, built and cached on first use.
    pub fn b2sr_t(&self) -> &B2srMatrix {
        self.b2sr_t.get_or_init(|| self.b2sr.transpose())
    }

    /// The shard config (from `prepare_shards`, or the host default).
    fn shard_cfg(&self) -> ShardConfig {
        *self.shard_cfg.get_or_init(ShardConfig::default)
    }

    /// The shard plan of the scatter representation: `of_transpose` selects
    /// `Aᵀ`'s rows.  Built lazily — by the time a push executes, the
    /// representation itself already exists.
    fn scatter_plan(&self, of_transpose: bool) -> &ShardPlan {
        if of_transpose {
            self.shards_t
                .get_or_init(|| plan_of_b2sr(self.b2sr_t(), self.shard_cfg()))
        } else {
            self.shards
                .get_or_init(|| plan_of_b2sr(&self.b2sr, self.shard_cfg()))
        }
    }

    /// The tile size of the underlying B2SR matrix.
    pub fn tile_size(&self) -> TileSize {
        self.b2sr.tile_size()
    }

    /// Dispatch one `mxv` over the four B2SR variants and the Table-II
    /// kernel schemes.
    fn bit_mxv(b2sr: &B2srMatrix, x: &[f32], semiring: Semiring, mask: Option<&Mask>) -> Vec<f32> {
        macro_rules! run {
            ($m:expr, $w:ty) => {{
                let m = $m;
                let dim = m.tile_dim();
                match semiring {
                    Semiring::Boolean => {
                        // Boolean semiring: binarize the vector and use the
                        // minimal-footprint bin/bin/bin scheme.
                        let xp = pack_vector_tilewise::<$w>(x, dim);
                        let y_bits = match mask {
                            Some(mk) => {
                                let suppressed = mk.suppressed();
                                let mp = pack_vector_bits::<$w>(&suppressed, dim);
                                bmv_bin_bin_bin_masked(m, &xp, &mp)
                            }
                            None => bmv_bin_bin_bin(m, &xp),
                        };
                        unpack_vector_bits(&y_bits, dim, m.nrows())
                            .into_iter()
                            .map(|b| if b { 1.0 } else { 0.0 })
                            .collect()
                    }
                    _ => match mask {
                        Some(mk) => {
                            let suppressed = mk.suppressed();
                            bmv_bin_full_full_masked(m, x, &suppressed, semiring)
                        }
                        None => bmv_bin_full_full(m, x, semiring),
                    },
                }
            }};
        }
        match b2sr {
            B2srMatrix::B4(m) => run!(m, u8),
            B2srMatrix::B8(m) => run!(m, u8),
            B2srMatrix::B16(m) => run!(m, u16),
            B2srMatrix::B32(m) => run!(m, u32),
        }
    }

    fn bit_mxm_sum(a: &B2srMatrix, b: &B2srMatrix, mask: &B2srMatrix) -> u64 {
        match (a, b, mask) {
            (B2srMatrix::B4(a), B2srMatrix::B4(b), B2srMatrix::B4(m)) => {
                bmm_bin_bin_sum_masked(a, b, m)
            }
            (B2srMatrix::B8(a), B2srMatrix::B8(b), B2srMatrix::B8(m)) => {
                bmm_bin_bin_sum_masked(a, b, m)
            }
            (B2srMatrix::B16(a), B2srMatrix::B16(b), B2srMatrix::B16(m)) => {
                bmm_bin_bin_sum_masked(a, b, m)
            }
            (B2srMatrix::B32(a), B2srMatrix::B32(b), B2srMatrix::B32(m)) => {
                bmm_bin_bin_sum_masked(a, b, m)
            }
            _ => unreachable!("caller checks the tile sizes agree"),
        }
    }
}

impl GrbBackend for BitB2sr {
    fn kind(&self) -> Backend {
        Backend::Bit(self.b2sr.tile_size())
    }

    fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    fn csr(&self) -> &Csr {
        &self.csr
    }

    fn csr_t(&self) -> &Csr {
        self.csr_t.get_or_init(|| self.csr.transpose())
    }

    fn mxv(&self, x: &[f32], semiring: Semiring, mask: Option<&Mask>, transpose: bool) -> Vec<f32> {
        let b2sr = if transpose { self.b2sr_t() } else { &self.b2sr };
        Self::bit_mxv(b2sr, x, semiring, mask)
    }

    fn mxv_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let b2sr = if transpose { self.b2sr_t() } else { &self.b2sr };
        macro_rules! run {
            ($m:expr, $w:ty) => {{
                let m = $m;
                let dim = m.tile_dim();
                // Scalar vs SWAR-vector sweep: the workspace policy decides
                // (forced, env-seeded, or the calibrated Auto mask).  Both
                // paths are bit-identical — tests/simd_parity.rs.
                let simd = ws.simd_enabled(dim);
                match semiring {
                    Semiring::Boolean => {
                        let mut xp: Vec<$w> = ws.take_empty();
                        if simd {
                            pack_vector_tilewise_simd_into(x, dim, &mut xp);
                        } else {
                            pack_vector_tilewise_into(x, dim, &mut xp);
                        }
                        let mut yw: Vec<$w> = ws.take(m.n_tile_rows(), <$w as BitWord>::ZERO);
                        match mask {
                            Some(mk) => {
                                let mut sup: Vec<bool> = ws.take_empty();
                                mk.suppressed_into(&mut sup);
                                let mut mp: Vec<$w> = ws.take_empty();
                                if simd {
                                    pack_vector_bits_simd_into(&sup, dim, &mut mp);
                                    bmv_bin_bin_bin_masked_simd_into(m, &xp, &mp, &mut yw);
                                } else {
                                    pack_vector_bits_into(&sup, dim, &mut mp);
                                    bmv_bin_bin_bin_masked_into(m, &xp, &mp, &mut yw);
                                }
                                ws.give(sup);
                                ws.give(mp);
                            }
                            None if simd => bmv_bin_bin_bin_simd_into(m, &xp, &mut yw),
                            None => bmv_bin_bin_bin_into(m, &xp, &mut yw),
                        }
                        out.clear();
                        out.resize(m.nrows(), 0.0);
                        // The mask was already applied word-wise by the kernel.
                        expand_bits_into(&yw, dim, None, out);
                        ws.give(xp);
                        ws.give(yw);
                    }
                    _ => {
                        out.clear();
                        out.resize(m.n_tile_rows() * dim, semiring.identity());
                        match mask {
                            Some(mk) => {
                                let mut sup: Vec<bool> = ws.take_empty();
                                mk.suppressed_into(&mut sup);
                                if simd {
                                    bmv_bin_full_full_masked_simd_into(m, x, &sup, semiring, out);
                                } else {
                                    bmv_bin_full_full_masked_into(m, x, &sup, semiring, out);
                                }
                                ws.give(sup);
                            }
                            None if simd => bmv_bin_full_full_simd_into(m, x, semiring, out),
                            None => bmv_bin_full_full_into(m, x, semiring, out),
                        }
                        out.truncate(m.nrows());
                    }
                }
            }};
        }
        match b2sr {
            B2srMatrix::B4(m) => run!(m, u8),
            B2srMatrix::B8(m) => run!(m, u8),
            B2srMatrix::B16(m) => run!(m, u16),
            B2srMatrix::B32(m) => run!(m, u32),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mxv_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        // The scatter walks *rows* of the representation whose rows are the
        // frontier's domain — the opposite representation from the pull
        // sweep.  A pure-push traversal of `vxm` therefore never has to
        // build the transpose at all.
        let b2sr = if transpose { &self.b2sr } else { self.b2sr_t() };
        let plan = self.scatter_plan(!transpose);
        macro_rules! run {
            ($m:expr, $w:ty) => {{
                let m = $m;
                let dim = m.tile_dim();
                let produced = m.ncols();
                match semiring {
                    Semiring::Boolean => {
                        let mut yw: Vec<$w> = ws.take(m.n_tile_cols(), <$w as BitWord>::ZERO);
                        bit_push_bin_words(m, frontier, plan, ws, &mut yw);
                        out.clear();
                        out.resize(produced, 0.0);
                        expand_bits_into(&yw, dim, mask, out);
                        ws.give(yw);
                    }
                    _ => {
                        out.clear();
                        out.resize(produced, semiring.identity());
                        bit_push_full(m, x, frontier, semiring, mask, plan, ws, out);
                    }
                }
            }};
        }
        match b2sr {
            B2srMatrix::B4(m) => run!(m, u8),
            B2srMatrix::B8(m) => run!(m, u8),
            B2srMatrix::B16(m) => run!(m, u16),
            B2srMatrix::B32(m) => run!(m, u32),
        }
    }

    fn vxm_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.mxv_into(x, semiring, mask, !transpose, ws, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn vxm_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.mxv_push_into(x, frontier, semiring, mask, !transpose, ws, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn mxm_into(
        &self,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let b2sr = if transpose { self.b2sr_t() } else { &self.b2sr };
        macro_rules! run {
            ($m:expr, $w:ty) => {{
                let m = $m;
                let dim = m.tile_dim();
                let nrows = m.nrows();
                // The tilewise any-lane-active indicator lets the sweep
                // skip inactive columns at word granularity (exact for
                // push-safe semirings, where identity entries contribute
                // nothing).
                let mut active: Vec<bool> = ws.take_empty();
                let mut xa: Vec<$w> = ws.take_empty();
                // Batched sweeps: same per-tile-size scalar/vector decision
                // as the single-vector pull path.
                let simd = ws.simd_enabled(dim);
                if semiring.push_safe() {
                    active.extend(
                        x.chunks_exact(k)
                            .map(|lanes| lanes.iter().any(|&v| !semiring.is_identity(v))),
                    );
                    if simd {
                        pack_vector_bits_simd_into(&active, dim, &mut xa);
                    } else {
                        pack_vector_bits_into(&active, dim, &mut xa);
                    }
                }
                match semiring {
                    Semiring::Boolean => {
                        // Pack the lanes into per-node u64 words: one OR per
                        // edge advances up to 64 traversals.
                        let wpn = lane_words_per_node(k);
                        let mut xw: Vec<u64> = ws.take_empty();
                        pack_lane_words_from(x, k, |v| v != 0.0, &mut xw);
                        // The flat mask rides into the kernel as suppressed
                        // lane words, so fully-masked rows (every lane
                        // visited, the common late-traversal state) are
                        // skipped at word granularity.
                        let sup: Option<Vec<u64>> = mask.map(|mk| {
                            use rayon::prelude::*;
                            let mut mw: Vec<u64> = ws.take(nrows * wpn, 0);
                            mw.par_chunks_mut(wpn).enumerate().for_each(|(i, words)| {
                                for l in 0..k {
                                    if !mk.allows(i * k + l) {
                                        words[l / 64] |= 1u64 << (l % 64);
                                    }
                                }
                            });
                            mw
                        });
                        let mut yw: Vec<u64> = ws.take(m.n_tile_rows() * dim * wpn, 0);
                        if simd {
                            bmm_bin_bits_simd_into(m, &xw, k, &xa, sup.as_deref(), &mut yw);
                        } else {
                            bmm_bin_bits_into(m, &xw, k, &xa, sup.as_deref(), &mut yw);
                        }
                        out.clear();
                        out.resize(nrows * k, 0.0);
                        // The mask was already applied word-wise by the kernel.
                        expand_lane_words_into(&yw, k, None, out);
                        ws.give(xw);
                        ws.give(yw);
                        if let Some(mw) = sup {
                            ws.give(mw);
                        }
                    }
                    _ => {
                        out.clear();
                        out.resize(m.n_tile_rows() * dim * k, semiring.identity());
                        let xa_opt = semiring.push_safe().then_some(xa.as_slice());
                        if simd {
                            bmm_bin_full_simd_into(m, x, k, semiring, xa_opt, out);
                        } else {
                            bmm_bin_full_into(m, x, k, semiring, xa_opt, out);
                        }
                        out.truncate(nrows * k);
                        if let Some(mk) = mask {
                            let identity = semiring.identity();
                            for (flat, v) in out.iter_mut().enumerate() {
                                if !mk.allows(flat) {
                                    *v = identity;
                                }
                            }
                        }
                    }
                }
                ws.give(active);
                ws.give(xa);
            }};
        }
        match b2sr {
            B2srMatrix::B4(m) => run!(m, u8),
            B2srMatrix::B8(m) => run!(m, u8),
            B2srMatrix::B16(m) => run!(m, u16),
            B2srMatrix::B32(m) => run!(m, u32),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mxm_push_into(
        &self,
        x: &[f32],
        k: usize,
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        // Like the single-vector push, the scatter walks rows of the
        // representation whose rows are the frontier's domain — the
        // opposite representation from the pull sweep.
        let b2sr = if transpose { &self.b2sr } else { self.b2sr_t() };
        let plan = self.scatter_plan(!transpose);
        macro_rules! run {
            ($m:expr) => {{
                let m = $m;
                let produced = m.ncols();
                match semiring {
                    Semiring::Boolean => {
                        let wpn = lane_words_per_node(k);
                        let mut xw: Vec<u64> = ws.take_empty();
                        pack_lane_words_from(x, k, |v| v != 0.0, &mut xw);
                        let mut yw: Vec<u64> = ws.take(produced * wpn, 0);
                        bit_push_lane_words(m, frontier, &xw, wpn, plan, ws, &mut yw);
                        out.clear();
                        out.resize(produced * k, 0.0);
                        expand_lane_words_into(&yw, k, mask, out);
                        ws.give(xw);
                        ws.give(yw);
                    }
                    _ => {
                        out.clear();
                        out.resize(produced * k, semiring.identity());
                        bit_push_multi_full(m, x, k, frontier, semiring, mask, plan, ws, out);
                    }
                }
            }};
        }
        match b2sr {
            B2srMatrix::B4(m) => run!(m),
            B2srMatrix::B8(m) => run!(m),
            B2srMatrix::B16(m) => run!(m),
            B2srMatrix::B32(m) => run!(m),
        }
    }

    fn mxv_fused_into(&self, p: &MxvPipeline<'_>, ws: &Workspace, out: &mut Vec<f32>) {
        match p.frontier {
            Some(frontier) => {
                // Push scatter.  Full-precision pipelines with a foldable
                // accumulator seed the output with the baseline and let the
                // scatter ⊕-fold straight into it; everything else —
                // including every Boolean pipeline, whose `Or` would
                // normalise the seeded baseline (`push_folds_accum` excludes
                // it) and whose packed word scatter could not carry one
                // anyway — scatters from the identity and runs the collapsed
                // epilogue over the expansion.
                if p.push_folds_accum() {
                    let b2sr = if p.transpose {
                        &self.b2sr
                    } else {
                        self.b2sr_t()
                    };
                    let plan = self.scatter_plan(!p.transpose);
                    let (op, base) = p.accum.expect("push_folds_accum implies accum");
                    debug_assert!(op.matches_monoid(p.semiring));
                    out.clear();
                    out.extend_from_slice(base);
                    // The sharded scatter handles the baseline-seeded output
                    // exactly like the serial kernel: segments fold from the
                    // identity and merge into the seed with the monoid.
                    macro_rules! run {
                        ($m:expr) => {{
                            bit_push_full($m, p.x, frontier, p.semiring, p.mask, plan, ws, out)
                        }};
                    }
                    match b2sr {
                        B2srMatrix::B4(m) => run!(m),
                        B2srMatrix::B8(m) => run!(m),
                        B2srMatrix::B16(m) => run!(m),
                        B2srMatrix::B32(m) => run!(m),
                    }
                } else {
                    self.mxv_push_into(p.x, frontier, p.semiring, p.mask, p.transpose, ws, out);
                    p.finish_in_place(out);
                }
            }
            None => {
                if p.semiring == Semiring::Boolean {
                    // The packed bin/bin/bin kernel is the fast Boolean pull
                    // path; the collapsed epilogue runs over the expansion.
                    self.mxv_into(p.x, p.semiring, p.mask, p.transpose, ws, out);
                    p.finish_in_place(out);
                } else {
                    // Full-precision pull: one tile-granular sweep with the
                    // semiring and the epilogue both dispatched once per
                    // call (see `bmv_bin_full_full_fused_into`).
                    let b2sr = if p.transpose {
                        self.b2sr_t()
                    } else {
                        &self.b2sr
                    };
                    plan::dispatch_finish(
                        p,
                        BitPullSink {
                            b2sr,
                            semiring: p.semiring,
                            x: p.x,
                            out,
                        },
                    );
                }
            }
        }
    }

    fn ewise_chain_into(
        &self,
        stages: &[Stage<'_>],
        accum: Option<(BinaryOp, &[f32])>,
        out: &mut [f32],
    ) {
        plan::run_chain_in_place_parallel(stages, accum, out);
    }

    fn mxm_reduce_masked(&self, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64 {
        // The one-call bit path needs all three operands in B2SR with the
        // same tile size; anything else goes through the CSR fallback.
        let (bb, mb) = match (
            b.as_any().downcast_ref::<BitB2sr>(),
            mask.as_any().downcast_ref::<BitB2sr>(),
        ) {
            (Some(bb), Some(mb)) => (bb, mb),
            _ => return csr_mxm_reduce_masked(self, b, mask),
        };
        if bb.tile_size() != self.tile_size() || mb.tile_size() != self.tile_size() {
            return csr_mxm_reduce_masked(self, b, mask);
        }
        Self::bit_mxm_sum(&self.b2sr, &bb.b2sr, &mb.b2sr) as f64
    }

    fn prepare_shards(&self, cfg: ShardConfig) {
        let _ = self.shard_cfg.set(cfg);
        // The `vxm` push representation (`A`'s rows) is the traversal hot
        // path — plan it eagerly; the transpose plan builds on first use.
        let _ = self
            .shards
            .get_or_init(|| plan_of_b2sr(&self.b2sr, self.shard_cfg()));
    }

    fn replan_shards(&self, prev: Option<&ShardPlan>, cfg: ShardConfig, dirty_rows: &[usize]) {
        let _ = self.shard_cfg.set(cfg);
        let _ = self.shards.get_or_init(|| match prev {
            Some(p) => {
                macro_rules! run {
                    ($m:expr) => {{
                        let m = $m;
                        p.replan_rows(m.tile_rowptr(), m.tile_dim(), m.nrows(), cfg, dirty_rows)
                    }};
                }
                match &self.b2sr {
                    B2srMatrix::B4(m) => run!(m),
                    B2srMatrix::B8(m) => run!(m),
                    B2srMatrix::B16(m) => run!(m),
                    B2srMatrix::B32(m) => run!(m),
                }
            }
            None => plan_of_b2sr(&self.b2sr, cfg),
        });
    }

    fn shard_plan(&self, of_transpose: bool) -> Option<&ShardPlan> {
        if of_transpose {
            self.shards_t.get()
        } else {
            self.shards.get()
        }
    }

    fn storage_bytes(&self) -> usize {
        self.b2sr.storage_bytes()
    }

    fn transpose_view(&self) -> Box<dyn GrbBackend> {
        Box::new(BitB2sr {
            csr: self.csr_t().clone(),
            b2sr: self.b2sr_t().clone(),
            csr_t: OnceLock::from(self.csr.clone()),
            b2sr_t: OnceLock::from(self.b2sr.clone()),
            shard_cfg: clone_lock(&self.shard_cfg),
            // The view's `A` is this matrix's `Aᵀ`: the plans swap roles.
            shards: clone_lock(&self.shards_t),
            shards_t: clone_lock(&self.shards),
        })
    }

    fn clone_box(&self) -> Box<dyn GrbBackend> {
        Box::new(BitB2sr {
            csr: self.csr.clone(),
            b2sr: self.b2sr.clone(),
            csr_t: OnceLock::new(),
            b2sr_t: OnceLock::new(),
            shard_cfg: clone_lock(&self.shard_cfg),
            shards: clone_lock(&self.shards),
            shards_t: clone_lock(&self.shards_t),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// [`FinishSink`](plan::FinishSink) for the FloatCsr fused pull sweep: one
/// pass over the rows with the semiring dispatched **once per call** — each
/// semiring gets a monomorphised gather loop — and the pipeline epilogue
/// (handed in by [`plan::dispatch_finish`], itself monomorphised for the
/// common shapes) folded into the store.
struct CsrPullSink<'a, 'b> {
    csr: &'a Csr,
    semiring: Semiring,
    x: &'a [f32],
    mask: Option<&'a Mask>,
    out: &'b mut [f32],
}

impl plan::FinishSink for CsrPullSink<'_, '_> {
    fn run<Fin: Fn(usize, f32) -> f32 + Sync>(self, fin: Fin) {
        use rayon::prelude::*;
        let (csr, x, mask, out) = (self.csr, self.x, self.mask, self.out);
        macro_rules! sweep {
            ($identity:expr, $combine:expr, $reduce:expr) => {{
                let identity: f32 = $identity;
                let combine = $combine;
                let reduce = $reduce;
                out.par_iter_mut().enumerate().for_each(|(r, slot)| {
                    let masked = match mask {
                        Some(m) => !m.allows(r),
                        None => false,
                    };
                    let raw = if masked {
                        identity
                    } else {
                        let (cols, _) = csr.row(r);
                        let mut acc = identity;
                        for &c in cols {
                            acc = reduce(acc, combine(x[c]));
                        }
                        acc
                    };
                    *slot = fin(r, raw);
                });
            }};
        }
        match self.semiring {
            Semiring::Arithmetic => sweep!(0.0, |v: f32| v, |acc: f32, v: f32| acc + v),
            Semiring::Boolean => sweep!(
                0.0,
                |v: f32| if v != 0.0 { 1.0 } else { 0.0 },
                |acc: f32, v: f32| {
                    if acc != 0.0 || v != 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            ),
            Semiring::MinPlus(w) => sweep!(f32::INFINITY, move |v: f32| v + w, f32::min),
            Semiring::MaxTimes(w) => sweep!(f32::NEG_INFINITY, move |v: f32| v * w, f32::max),
        }
    }
}

/// [`FinishSink`](plan::FinishSink) for the BitB2sr fused pull sweep:
/// dispatches the four B2SR variants into the tile-granular
/// [`bmv_bin_full_full_fused_into`] kernel.  The mask (when present) rides
/// inside the finishing closure — the bit sweep computes every row's raw
/// value regardless, exactly like the masked bit kernels.
struct BitPullSink<'a, 'b> {
    b2sr: &'a B2srMatrix,
    semiring: Semiring,
    x: &'a [f32],
    out: &'b mut Vec<f32>,
}

impl plan::FinishSink for BitPullSink<'_, '_> {
    fn run<Fin: Fn(usize, f32) -> f32 + Sync>(self, fin: Fin) {
        let out = self.out;
        macro_rules! run {
            ($m:expr) => {{
                let m = $m;
                out.clear();
                out.resize(m.n_tile_rows() * m.tile_dim(), 0.0);
                bmv_bin_full_full_fused_into(m, self.x, self.semiring, fin, out);
                out.truncate(m.nrows());
            }};
        }
        match self.b2sr {
            B2srMatrix::B4(m) => run!(m),
            B2srMatrix::B8(m) => run!(m),
            B2srMatrix::B16(m) => run!(m),
            B2srMatrix::B32(m) => run!(m),
        }
    }
}

// ---------------------------------------------------------------------------
// FloatCsr
// ---------------------------------------------------------------------------

/// The baseline backend: 32-bit-float CSR + reference kernels (the
/// GraphBLAST / cuSPARSE stand-in).
#[derive(Debug)]
pub struct FloatCsr {
    csr: Csr,
    csr_t: OnceLock<Csr>,
    /// Shard config the scatter plans are built with (set by
    /// `prepare_shards`, defaulting to the host config on first use).
    shard_cfg: OnceLock<ShardConfig>,
    /// Row-shard plan over `A`'s rows (the `vxm` push representation).
    shards: OnceLock<ShardPlan>,
    /// Row-shard plan over `Aᵀ`'s rows (the `mxv` push representation).
    shards_t: OnceLock<ShardPlan>,
}

impl FloatCsr {
    /// Wrap a binary CSR matrix (binarizing if needed).
    pub fn new(csr: &Csr) -> Self {
        let bin = if csr.is_binary() {
            csr.clone()
        } else {
            csr.binarized()
        };
        FloatCsr {
            csr: bin,
            csr_t: OnceLock::new(),
            shard_cfg: OnceLock::new(),
            shards: OnceLock::new(),
            shards_t: OnceLock::new(),
        }
    }

    /// The shard config (from `prepare_shards`, or the host default).
    fn shard_cfg(&self) -> ShardConfig {
        *self.shard_cfg.get_or_init(ShardConfig::default)
    }

    /// The shard plan of the scatter representation: `of_transpose`
    /// selects `Aᵀ`'s rows.  Built lazily from the representation's
    /// rowptr (edge counts per row, [`crate::shard::SHARD_ALIGN`]-aligned
    /// boundaries).
    fn scatter_plan(&self, of_transpose: bool) -> &ShardPlan {
        if of_transpose {
            self.shards_t.get_or_init(|| {
                let t = self.csr_t();
                ShardPlan::from_weights(t.rowptr(), 1, t.nrows(), self.shard_cfg())
            })
        } else {
            self.shards.get_or_init(|| {
                ShardPlan::from_weights(self.csr.rowptr(), 1, self.csr.nrows(), self.shard_cfg())
            })
        }
    }

    /// Row-parallel CSR SpMV over an arbitrary semiring (GraphBLAST-style).
    /// The adjacency matrix is binary, so a stored entry contributes
    /// `⊗(x[j])` and absent entries contribute nothing; masked rows are
    /// skipped entirely (GraphBLAST's early exit).
    fn float_mxv(csr: &Csr, x: &[f32], semiring: Semiring, mask: Option<&Mask>) -> Vec<f32> {
        let mut y = vec![semiring.identity(); csr.nrows()];
        Self::float_mxv_into(csr, x, semiring, mask, &mut y);
        y
    }

    /// As [`FloatCsr::float_mxv`], writing into a caller-supplied slice of
    /// `nrows` entries pre-filled with the semiring identity.
    fn float_mxv_into(
        csr: &Csr,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        y: &mut [f32],
    ) {
        use rayon::prelude::*;
        let identity = semiring.identity();
        y.par_iter_mut().enumerate().for_each(|(r, out)| {
            if let Some(m) = mask {
                if !m.allows(r) {
                    return;
                }
            }
            let (cols, _) = csr.row(r);
            let mut acc = identity;
            for &c in cols {
                acc = semiring.reduce(acc, semiring.combine(x[c]));
            }
            *out = acc;
        });
    }

    /// Batched pull sweep: row-parallel CSR matrix × multivector over an
    /// arbitrary semiring.  `y` has `nrows · k` entries; each row's `k` lane
    /// accumulators advance together so the row's column list is walked
    /// exactly once for the whole batch.
    fn float_mxm_into(
        csr: &Csr,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        y: &mut [f32],
    ) {
        use rayon::prelude::*;
        let identity = semiring.identity();
        y.par_chunks_mut(k).enumerate().for_each(|(r, out)| {
            for v in out.iter_mut() {
                *v = identity;
            }
            // A row whose every lane is masked out produces only identities
            // — skip its edge walk entirely (GraphBLAST's early exit, per
            // batch: the common state of late traversal iterations).
            if let Some(m) = mask {
                if (0..k).all(|l| !m.allows(r * k + l)) {
                    return;
                }
            }
            let (cols, _) = csr.row(r);
            for &c in cols {
                let src = &x[c * k..(c + 1) * k];
                for (d, &s) in out.iter_mut().zip(src) {
                    *d = semiring.reduce(*d, semiring.combine(s));
                }
            }
            if let Some(m) = mask {
                for (l, v) in out.iter_mut().enumerate() {
                    if !m.allows(r * k + l) {
                        *v = identity;
                    }
                }
            }
        });
    }

    /// Batched push scatter over the rows of `csr` (the representation whose
    /// rows are the frontier's domain): every frontier node's edge list is
    /// walked once and all `k` lane contributions fold into each
    /// out-neighbour.  Serial and allocation-free like the single-vector
    /// scatter.
    #[allow(clippy::too_many_arguments)]
    fn float_mxm_push_into(
        csr: &Csr,
        x: &[f32],
        k: usize,
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        y: &mut [f32],
    ) {
        for &u in frontier {
            let src = &x[u * k..(u + 1) * k];
            for &j in csr.row(u).0 {
                for (l, &s) in src.iter().enumerate() {
                    let flat = j * k + l;
                    if mask.is_none_or(|m| m.allows(flat)) {
                        y[flat] = semiring.reduce(y[flat], semiring.combine(s));
                    }
                }
            }
        }
    }

    /// Push-direction scatter over the rows of `csr` (which must be the
    /// representation whose rows are the frontier's domain).  Serial and
    /// allocation-free, like the B2SR push kernels.
    fn float_push_into(
        csr: &Csr,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        y: &mut [f32],
    ) {
        match mask {
            Some(m) => {
                for &u in frontier {
                    let contrib = semiring.combine(x[u]);
                    for &j in csr.row(u).0 {
                        if m.allows(j) {
                            y[j] = semiring.reduce(y[j], contrib);
                        }
                    }
                }
            }
            None => {
                for &u in frontier {
                    let contrib = semiring.combine(x[u]);
                    for &j in csr.row(u).0 {
                        y[j] = semiring.reduce(y[j], contrib);
                    }
                }
            }
        }
    }
}

impl GrbBackend for FloatCsr {
    fn kind(&self) -> Backend {
        Backend::FloatCsr
    }

    fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    fn csr(&self) -> &Csr {
        &self.csr
    }

    fn csr_t(&self) -> &Csr {
        self.csr_t.get_or_init(|| self.csr.transpose())
    }

    fn mxv(&self, x: &[f32], semiring: Semiring, mask: Option<&Mask>, transpose: bool) -> Vec<f32> {
        let csr = if transpose { self.csr_t() } else { &self.csr };
        Self::float_mxv(csr, x, semiring, mask)
    }

    fn mxv_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        _ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let csr = if transpose { self.csr_t() } else { &self.csr };
        out.clear();
        out.resize(csr.nrows(), semiring.identity());
        Self::float_mxv_into(csr, x, semiring, mask, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn mxv_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        // Scatter walks rows of the opposite representation from the pull
        // sweep (see the BitB2sr implementation).
        let csr = if transpose { &self.csr } else { self.csr_t() };
        let plan = self.scatter_plan(!transpose);
        out.clear();
        out.resize(csr.ncols(), semiring.identity());
        csr_push_full(csr, x, frontier, semiring, mask, plan, ws, out);
    }

    fn vxm_into(
        &self,
        x: &[f32],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.mxv_into(x, semiring, mask, !transpose, ws, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn vxm_push_into(
        &self,
        x: &[f32],
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        self.mxv_push_into(x, frontier, semiring, mask, !transpose, ws, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn mxm_into(
        &self,
        x: &[f32],
        k: usize,
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        _ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        let csr = if transpose { self.csr_t() } else { &self.csr };
        out.clear();
        out.resize(csr.nrows() * k, semiring.identity());
        Self::float_mxm_into(csr, x, k, semiring, mask, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn mxm_push_into(
        &self,
        x: &[f32],
        k: usize,
        frontier: &[usize],
        semiring: Semiring,
        mask: Option<&Mask>,
        transpose: bool,
        ws: &Workspace,
        out: &mut Vec<f32>,
    ) {
        // Scatter walks rows of the opposite representation from the pull
        // sweep (see the BitB2sr implementation).
        let csr = if transpose { &self.csr } else { self.csr_t() };
        let plan = self.scatter_plan(!transpose);
        out.clear();
        out.resize(csr.ncols() * k, semiring.identity());
        csr_push_multi_full(csr, x, k, frontier, semiring, mask, plan, ws, out);
    }

    fn mxv_fused_into(&self, p: &MxvPipeline<'_>, ws: &Workspace, out: &mut Vec<f32>) {
        match p.frontier {
            Some(frontier) => {
                // Scatter walks rows of the opposite representation from the
                // pull sweep.  A monoid accumulator seeds the output with
                // the baseline and ⊕-folds straight into it; otherwise the
                // collapsed epilogue runs as one pass after the scatter.
                let csr = if p.transpose { &self.csr } else { self.csr_t() };
                let plan = self.scatter_plan(!p.transpose);
                out.clear();
                if p.push_folds_accum() {
                    let (_, base) = p.accum.expect("push_folds_accum implies accum");
                    out.extend_from_slice(base);
                    csr_push_full(csr, p.x, frontier, p.semiring, p.mask, plan, ws, out);
                } else {
                    out.resize(csr.ncols(), p.semiring.identity());
                    csr_push_full(csr, p.x, frontier, p.semiring, p.mask, plan, ws, out);
                    p.finish_in_place(out);
                }
            }
            None => {
                let csr = if p.transpose { self.csr_t() } else { &self.csr };
                out.clear();
                out.resize(csr.nrows(), 0.0);
                plan::dispatch_finish(
                    p,
                    CsrPullSink {
                        csr,
                        semiring: p.semiring,
                        x: p.x,
                        mask: p.mask,
                        out,
                    },
                );
            }
        }
    }

    fn ewise_chain_into(
        &self,
        stages: &[Stage<'_>],
        accum: Option<(BinaryOp, &[f32])>,
        out: &mut [f32],
    ) {
        plan::run_chain_in_place_parallel(stages, accum, out);
    }

    fn mxm_reduce_masked(&self, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64 {
        csr_mxm_reduce_masked(self, b, mask)
    }

    fn prepare_shards(&self, cfg: ShardConfig) {
        let _ = self.shard_cfg.set(cfg);
        let _ = self.shards.get_or_init(|| {
            ShardPlan::from_weights(self.csr.rowptr(), 1, self.csr.nrows(), self.shard_cfg())
        });
    }

    fn replan_shards(&self, prev: Option<&ShardPlan>, cfg: ShardConfig, dirty_rows: &[usize]) {
        let _ = self.shard_cfg.set(cfg);
        let _ = self.shards.get_or_init(|| match prev {
            Some(p) => p.replan_rows(self.csr.rowptr(), 1, self.csr.nrows(), cfg, dirty_rows),
            None => ShardPlan::from_weights(self.csr.rowptr(), 1, self.csr.nrows(), cfg),
        });
    }

    fn shard_plan(&self, of_transpose: bool) -> Option<&ShardPlan> {
        if of_transpose {
            self.shards_t.get()
        } else {
            self.shards.get()
        }
    }

    fn storage_bytes(&self) -> usize {
        self.csr.storage_bytes()
    }

    fn transpose_view(&self) -> Box<dyn GrbBackend> {
        Box::new(FloatCsr {
            csr: self.csr_t().clone(),
            csr_t: OnceLock::from(self.csr.clone()),
            shard_cfg: clone_lock(&self.shard_cfg),
            // The view's `A` is this matrix's `Aᵀ`: the plans swap roles.
            shards: clone_lock(&self.shards_t),
            shards_t: clone_lock(&self.shards),
        })
    }

    fn clone_box(&self) -> Box<dyn GrbBackend> {
        Box::new(FloatCsr {
            csr: self.csr.clone(),
            csr_t: OnceLock::new(),
            shard_cfg: clone_lock(&self.shard_cfg),
            shards: clone_lock(&self.shards),
            shards_t: clone_lock(&self.shards_t),
        })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn sample(n: usize, seed: u64) -> Csr {
        let mut coo = Coo::new(n, n);
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    #[test]
    fn backends_agree_through_the_trait_object() {
        let csr = sample(70, 5);
        let x: Vec<f32> = (0..70).map(|i| (i % 7) as f32).collect();
        let backends: Vec<Box<dyn GrbBackend>> = vec![
            Box::new(FloatCsr::new(&csr)),
            Box::new(BitB2sr::new(&csr, TileSize::S4)),
            Box::new(BitB2sr::new(&csr, TileSize::S16)),
        ];
        let reference = backends[0].mxv(&x, Semiring::Arithmetic, None, false);
        for b in &backends[1..] {
            let got = b.mxv(&x, Semiring::Arithmetic, None, false);
            for (g, r) in got.iter().zip(&reference) {
                assert!((g - r).abs() < 1e-4, "{:?}", b.kind());
            }
        }
    }

    #[test]
    fn vxm_default_is_mxv_on_the_transpose() {
        let csr = sample(40, 9);
        let x: Vec<f32> = (0..40).map(|i| (i % 3) as f32).collect();
        let b = BitB2sr::new(&csr, TileSize::S8);
        let via_vxm = b.vxm(&x, Semiring::Arithmetic, None, false);
        let via_mxv_t = b.mxv(&x, Semiring::Arithmetic, None, true);
        assert_eq!(via_vxm, via_mxv_t);
    }

    /// Direct coverage of the `csr_mxm_reduce_masked` fallback: every
    /// mixed-backend operand combination must produce the same triangle sum
    /// as the pure bit path, straight through the free function (not just
    /// incidentally via TC parity runs).
    #[test]
    fn csr_fallback_is_exact_for_every_mixed_operand_combination() {
        let adj = sample(72, 21).symmetrized().without_diagonal();
        let l = adj.lower_triangle();
        let lt = l.transpose();

        let a_bit = BitB2sr::new(&l, TileSize::S8);
        let b_bit = BitB2sr::new(&lt, TileSize::S8);
        let m_bit = BitB2sr::new(&l, TileSize::S8);
        let a_f = FloatCsr::new(&l);
        let b_f = FloatCsr::new(&lt);
        let m_f = FloatCsr::new(&l);

        // The pure bit path (popcount BMM) is the reference.
        let expected = a_bit.mxm_reduce_masked(&b_bit, &m_bit);
        assert!(expected > 0.0, "sample graph must contain triangles");

        let combos: [(&dyn GrbBackend, &dyn GrbBackend, &dyn GrbBackend, &str); 5] = [
            (&a_f, &b_f, &m_f, "float/float/float"),
            (&a_bit, &b_f, &m_f, "bit/float/float"),
            (&a_f, &b_bit, &m_f, "float/bit/float"),
            (&a_f, &b_f, &m_bit, "float/float/bit"),
            (&a_bit, &b_bit, &m_f, "bit/bit/float"),
        ];
        for (a, b, m, what) in combos {
            assert_eq!(
                csr_mxm_reduce_masked(a, b, m),
                expected,
                "fallback diverges for {what}"
            );
        }

        // The trait entry point routes mixed operands through the fallback
        // and must agree too.
        assert_eq!(a_bit.mxm_reduce_masked(&b_f, &m_bit), expected);
        assert_eq!(a_f.mxm_reduce_masked(&b_bit, &m_bit), expected);
    }

    #[test]
    fn mixed_tile_sizes_fall_back_instead_of_panicking() {
        let adj = sample(50, 3).symmetrized().without_diagonal();
        let l_csr = adj.lower_triangle();
        let a = BitB2sr::new(&l_csr, TileSize::S8);
        let b = BitB2sr::new(&l_csr.transpose(), TileSize::S16);
        let m = FloatCsr::new(&l_csr);
        let mixed = a.mxm_reduce_masked(&b, &m);
        let uniform_b = BitB2sr::new(&l_csr.transpose(), TileSize::S8);
        let uniform_m = BitB2sr::new(&l_csr, TileSize::S8);
        let bit = a.mxm_reduce_masked(&uniform_b, &uniform_m);
        assert_eq!(mixed, bit, "fallback must produce the same triangle sum");
    }

    #[test]
    fn transpose_view_swaps_dimensions_and_data() {
        let mut coo = Coo::new(6, 4);
        coo.push_edge(5, 1).unwrap();
        coo.push_edge(0, 3).unwrap();
        let csr = coo.to_binary_csr();
        for backend in [
            Box::new(BitB2sr::new(&csr, TileSize::S4)) as Box<dyn GrbBackend>,
            Box::new(FloatCsr::new(&csr)) as Box<dyn GrbBackend>,
        ] {
            let t = backend.transpose_view();
            assert_eq!(t.nrows(), 4);
            assert_eq!(t.ncols(), 6);
            assert_eq!(t.kind(), backend.kind());
            assert_eq!(t.csr(), &csr.transpose());
            assert_eq!(t.csr_t(), &csr);
        }
    }

    #[test]
    fn clone_box_preserves_kind_and_contents() {
        let csr = sample(30, 11);
        let b: Box<dyn GrbBackend> = Box::new(BitB2sr::new(&csr, TileSize::S32));
        let c = b.clone_box();
        assert_eq!(c.kind(), Backend::Bit(TileSize::S32));
        assert_eq!(c.nnz(), b.nnz());
        assert_eq!(c.csr(), b.csr());
    }

    #[test]
    fn ewise_defaults_follow_the_semiring() {
        let b = FloatCsr::new(&sample(10, 1));
        assert_eq!(
            b.ewise_add(&[1.0, 5.0], &[2.0, 3.0], Semiring::MinPlus(1.0)),
            vec![1.0, 3.0]
        );
        assert_eq!(
            b.ewise_mult(&[2.0, 0.0], &[4.0, 5.0], Semiring::Boolean),
            vec![1.0, 0.0]
        );
        assert_eq!(b.apply(&[1.0, -2.0], &f32::abs), vec![1.0, 2.0]);
        assert_eq!(b.select(&[1.0, -2.0], &|x| x > 0.0), vec![1.0, 0.0]);
        assert_eq!(b.reduce(&[3.0, 1.0, 7.0], Semiring::MaxTimes(1.0)), 7.0);
    }

    /// An external backend that overrides only the allocating `vxm` must
    /// still see its override used by the `Op` layer (via the `vxm_into`
    /// default) — the PR-1 pluggable-backend contract.
    #[derive(Debug)]
    struct VxmSpy {
        inner: FloatCsr,
        vxm_calls: std::sync::atomic::AtomicUsize,
    }

    impl GrbBackend for VxmSpy {
        fn kind(&self) -> Backend {
            self.inner.kind()
        }
        fn nrows(&self) -> usize {
            self.inner.nrows()
        }
        fn ncols(&self) -> usize {
            self.inner.ncols()
        }
        fn nnz(&self) -> usize {
            self.inner.nnz()
        }
        fn csr(&self) -> &Csr {
            self.inner.csr()
        }
        fn csr_t(&self) -> &Csr {
            self.inner.csr_t()
        }
        fn mxv(
            &self,
            x: &[f32],
            semiring: Semiring,
            mask: Option<&Mask>,
            transpose: bool,
        ) -> Vec<f32> {
            self.inner.mxv(x, semiring, mask, transpose)
        }
        fn vxm(
            &self,
            x: &[f32],
            semiring: Semiring,
            mask: Option<&Mask>,
            transpose: bool,
        ) -> Vec<f32> {
            self.vxm_calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.vxm(x, semiring, mask, transpose)
        }
        fn mxm_reduce_masked(&self, b: &dyn GrbBackend, mask: &dyn GrbBackend) -> f64 {
            self.inner.mxm_reduce_masked(b, mask)
        }
        fn storage_bytes(&self) -> usize {
            self.inner.storage_bytes()
        }
        fn transpose_view(&self) -> Box<dyn GrbBackend> {
            self.inner.transpose_view()
        }
        fn clone_box(&self) -> Box<dyn GrbBackend> {
            Box::new(VxmSpy {
                inner: FloatCsr::new(self.inner.csr()),
                vxm_calls: std::sync::atomic::AtomicUsize::new(0),
            })
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// An external backend that overrides none of the batched entry points
    /// still gets exact `mxm` results through the per-lane `mxm_into` /
    /// `mxm_push_into` defaults (including the flat per-lane mask).
    #[test]
    fn mxm_default_fallback_is_exact_for_external_backends() {
        use crate::grb::{Context, Direction, Matrix, MultiVec, Op};
        let csr = sample(36, 101);
        let ctx = Context::default();
        let external = Matrix::from_backend(Box::new(VxmSpy {
            inner: FloatCsr::new(&csr),
            vxm_calls: std::sync::atomic::AtomicUsize::new(0),
        }));
        let reference = Matrix::from_csr_ctx(&csr, Backend::FloatCsr, &ctx);
        let mv = MultiVec::from_sources(36, &[0, 5, 11]);
        let allow: Vec<bool> = (0..36 * 3).map(|f| f % 4 != 1).collect();
        let mask = Mask::new(allow);
        for dir in [Direction::Push, Direction::Pull] {
            for transpose in [false, true] {
                let build = |m: &Matrix| {
                    let mut op = Op::mxm(m, &mv)
                        .semiring(Semiring::Boolean)
                        .mask(&mask)
                        .direction(dir);
                    if transpose {
                        op = op.transpose();
                    }
                    op.run(&ctx)
                };
                assert_eq!(
                    build(&external),
                    build(&reference),
                    "{dir:?} transpose={transpose}"
                );
            }
        }
    }

    #[test]
    fn op_layer_dispatches_through_external_vxm_overrides() {
        use crate::grb::{Context, Direction, Matrix, Op, Vector};
        let csr = sample(30, 13);
        let m = Matrix::from_backend(Box::new(VxmSpy {
            inner: FloatCsr::new(&csr),
            vxm_calls: std::sync::atomic::AtomicUsize::new(0),
        }));
        let ctx = Context::default();
        let x = Vector::indicator(30, &[0, 5]);
        // Pull and (fallback) push both route through the overridden vxm.
        let _ = Op::vxm(&x, &m).direction(Direction::Pull).run(&ctx);
        let _ = Op::vxm(&x, &m).direction(Direction::Push).run(&ctx);
        let spy = m.state().as_any().downcast_ref::<VxmSpy>().unwrap();
        assert_eq!(
            spy.vxm_calls.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "external vxm override must be dispatched by Op::vxm"
        );
    }
}
