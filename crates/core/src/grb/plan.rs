//! The execution planner: walks a lazy [`Expr`] chain, pattern-matches the
//! fusable shapes and emits fused backend calls.
//!
//! This is the "non-blocking mode" half of the GrB layer redesign: the
//! builders assemble expression chains ([`super::expr`]) and this module
//! decides how many kernel sweeps each chain costs.
//!
//! # Fusion rules
//!
//! For a chain rooted at a matrix-vector product the planner emits a single
//! [`GrbBackend::mxv_fused_into`] sweep
//! when the shape allows it:
//!
//! * **Pull** (dense sweep) — always fusable: the sweep produces each output
//!   row's final semiring value `t[i]` in one go, so the mask, every
//!   element-wise stage and the accumulator fold into the store
//!   (`out[i] = w[i] ⊕ stages(t[i])`).
//! * **Push** (sparse scatter) — the scatter produces `t` by *partial*
//!   updates, so element-wise stages cannot run until the scatter finishes:
//!   * no accumulator → fusable; stages run as one collapsed epilogue pass
//!     over the output
//!     ([`GrbBackend::ewise_chain_into`]);
//!   * accumulator whose operator **is** the semiring's additive monoid and
//!     no stages → fusable by seeding the output with the accumulation
//!     baseline and letting the scatter ⊕-fold into it (associativity +
//!     commutativity of the monoid make the partial order irrelevant);
//!   * anything else (non-monoid accumulator, accumulator + stages) →
//!     node-at-a-time for the product, with the epilogue still collapsed
//!     into one chain sweep.
//!
//! Chains rooted at a leaf vector collapse into a single element-wise sweep
//! (apply/select folded into the consuming ewise pass).
//!
//! [`Fusion::NodeAtATime`] disables all of the above and executes the
//! *defining* semantics — producer sweep, then one full pass per stage, then
//! an accumulator pass — which is what the fused≡unfused parity suite and
//! the fused-vs-unfused benchmark rows compare against.  Unfusable shapes
//! always take this path, so semantics never depend on what fused.
//!
//! # Direction and workspace
//!
//! Direction resolution ([`Direction::Auto`]) happens *before* planning and
//! is identical for both paths; fused pipelines draw every scratch buffer
//! (scaled operand, frontier list, output) from the context's
//! [`Workspace`] pool, so a steady-state fused loop
//! allocates nothing (`crates/core/tests/zero_alloc.rs`).

use crate::faultinject::{FaultAction, InjectedPanic};
use crate::kernels::simd::SimdPolicy;
use crate::semiring::{BinaryOp, Semiring};

use super::backend::GrbBackend;
use super::descriptor::{Descriptor, Mask};
use super::direction::{choose_direction_multi_tuned, choose_direction_tuned, Direction};
use super::error::GrbError;
use super::expr::{eval_stages, Expr, Fusion, MultiExpr, MultiProducer, Producer, Stage};
use super::multivec::MultiVec;
use super::op::Context;
use super::vector::Vector;
use super::workspace::Workspace;

/// Scope guard applying a descriptor's per-operation
/// [`Descriptor::simd`] override to the context's workspace for the
/// dispatch, restoring the previous policy on drop (normal return, error
/// and panic paths alike).
///
/// The policy is a relaxed atomic on the shared workspace, so a concurrent
/// operation on the *same* context may observe the override mid-flight —
/// benign by construction: the scalar and vector paths are bit-identical
/// (`tests/simd_parity.rs`), so which one a racing op runs never changes
/// its result.
struct SimdOverride<'a> {
    ws: &'a Workspace,
    saved: Option<SimdPolicy>,
}

impl<'a> SimdOverride<'a> {
    fn apply(ws: &'a Workspace, desc: &Descriptor) -> Self {
        let saved = desc.simd.map(|policy| {
            let prev = ws.simd_policy();
            ws.set_simd_policy(policy);
            prev
        });
        SimdOverride { ws, saved }
    }
}

impl Drop for SimdOverride<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.saved {
            self.ws.set_simd_policy(prev);
        }
    }
}

/// Poll the named fail point on the context's injector (if any): a
/// `Transient` action becomes a typed [`GrbError::FaultInjected`], a
/// `Panic` action panics with the recognisable [`InjectedPanic`] payload,
/// and `Latency` is counted by the injector but is a no-op here (the
/// virtual-clock layers upstream account the added time).
fn poll_fail_point(ctx: &Context, point: &'static str) -> Result<(), GrbError> {
    if let Some(inj) = ctx.fault_injector() {
        match inj.fire(point, None) {
            Some(FaultAction::Panic) => std::panic::panic_any(InjectedPanic { point }),
            Some(FaultAction::Transient) => return Err(GrbError::FaultInjected { point }),
            Some(FaultAction::Latency(_)) | None => {}
        }
    }
    Ok(())
}

/// Everything a backend needs to execute one fused matrix-vector pipeline
/// in a single sweep: the (pre-scaled) operand, the resolved direction
/// (`frontier` is `Some` for push), the semiring, the mask, the collapsed
/// element-wise epilogue and the accumulator.
///
/// `transpose` is in `mxv` convention with the `vxm` flip already folded in:
/// the pull sweep runs on `Aᵀ` iff `transpose`, the push scatter walks the
/// opposite representation (exactly like
/// [`GrbBackend::mxv_into`] /
/// [`mxv_push_into`](super::GrbBackend::mxv_push_into)).
#[derive(Debug, Clone, Copy)]
pub struct MxvPipeline<'a> {
    /// The dense operand (already input-scaled if the chain requested it).
    pub x: &'a [f32],
    /// `Some(active indices)` when the resolved direction is push.
    pub frontier: Option<&'a [usize]>,
    /// The semiring of the product.
    pub semiring: Semiring,
    /// Optional output mask.
    pub mask: Option<&'a Mask>,
    /// Pull representation selector in `mxv` convention (flip folded in).
    pub transpose: bool,
    /// Collapsed element-wise epilogue, in evaluation order.
    pub stages: &'a [Stage<'a>],
    /// Optional accumulator `(⊕, baseline)`.
    pub accum: Option<(BinaryOp, &'a [f32])>,
}

impl MxvPipeline<'_> {
    /// Finish one output position: mask, stages and accumulator applied to
    /// the raw semiring value `raw` of position `i`.  This is the single
    /// definition of the pipeline's store semantics — every fused kernel
    /// funnels through it (or through a shape the planner proved
    /// equivalent).
    #[inline]
    pub fn finish(&self, i: usize, raw: f32) -> f32 {
        let t = match self.mask {
            Some(m) if !m.allows(i) => self.semiring.identity(),
            _ => raw,
        };
        let t = eval_stages(self.stages, i, t);
        match self.accum {
            Some((op, base)) => op.apply(base[i], t),
            None => t,
        }
    }

    /// Apply [`MxvPipeline::finish`] to every produced position in place —
    /// the epilogue pass of fused push pipelines.
    pub fn finish_in_place(&self, out: &mut [f32]) {
        for (i, v) in out.iter_mut().enumerate() {
            *v = self.finish(i, *v);
        }
    }

    /// True when the scatter may ⊕-fold straight into the accumulation
    /// baseline (monoid accumulator, no intervening stages).
    ///
    /// Besides matching the monoid, the fold requires `⊕(base, identity) ==
    /// base` for *every* base so untouched positions keep their seeded
    /// value: true for `+`/`min`/`max`, but **not** for `Or`, which
    /// normalises any nonzero baseline to `1.0` — Boolean accumulations
    /// therefore always take the scatter + epilogue path.
    pub fn push_folds_accum(&self) -> bool {
        self.stages.is_empty()
            && self
                .accum
                .is_some_and(|(op, _)| op.matches_monoid(self.semiring) && op != BinaryOp::Or)
    }
}

/// Receiver for a monomorphised finishing closure (see [`dispatch_finish`]).
///
/// Backends implement this on a small struct holding their sweep state;
/// `run` is called exactly once with the closure that finishes each output
/// position.
pub trait FinishSink {
    /// Run the backend's sweep with the given finishing closure.
    fn run<Fin: Fn(usize, f32) -> f32 + Sync>(self, fin: Fin);
}

/// Hand `sink` a finishing closure specialised for the pipeline's epilogue
/// shape.  The common fused shapes — a single affine stage (PageRank's
/// update), a monoid accumulator (SSSP's `min`), a bare scaled product —
/// get dedicated monomorphic closures, so the hot sweep loop carries no
/// per-row stage interpretation; everything else falls back to the general
/// [`MxvPipeline::finish`] interpreter, which is always correct.
pub fn dispatch_finish<S: FinishSink>(p: &MxvPipeline<'_>, sink: S) {
    match (p.stages, p.accum, p.mask) {
        ([Stage::Affine { mul, add }], None, None) => {
            let (mul, add) = (*mul, *add);
            sink.run(move |_, t| mul * t + add)
        }
        ([], Some((BinaryOp::Min, base)), None) => sink.run(move |i, t: f32| t.min(base[i])),
        ([], Some((BinaryOp::Max, base)), None) => sink.run(move |i, t: f32| t.max(base[i])),
        ([], Some((BinaryOp::Plus, base)), None) => sink.run(move |i, t| base[i] + t),
        ([], None, None) => sink.run(|_, t| t),
        _ => sink.run(|i, t| p.finish(i, t)),
    }
}

/// Run a collapsed element-wise chain serially: `out[i] = w[i] ⊕
/// stages(first[i])` (the shared implementation behind
/// [`GrbBackend::ewise_chain_into`]
/// defaults and leaf-chain evaluation).
pub fn run_chain_in_place(
    stages: &[Stage<'_>],
    accum: Option<(BinaryOp, &[f32])>,
    out: &mut [f32],
) {
    match accum {
        Some((op, base)) => {
            for (i, v) in out.iter_mut().enumerate() {
                *v = op.apply(base[i], eval_stages(stages, i, *v));
            }
        }
        None => {
            for (i, v) in out.iter_mut().enumerate() {
                *v = eval_stages(stages, i, *v);
            }
        }
    }
}

/// As [`run_chain_in_place`], split across cores for long vectors (the
/// built-in backends' override).
pub fn run_chain_in_place_parallel(
    stages: &[Stage<'_>],
    accum: Option<(BinaryOp, &[f32])>,
    out: &mut [f32],
) {
    use rayon::prelude::*;
    match accum {
        Some((op, base)) => out.par_iter_mut().enumerate().for_each(|(i, v)| {
            *v = op.apply(base[i], eval_stages(stages, i, *v));
        }),
        None => out.par_iter_mut().enumerate().for_each(|(i, v)| {
            *v = eval_stages(stages, i, *v);
        }),
    }
}

/// The thread budget [`Direction::Auto`]'s pricing should assume for the
/// push side: the context's budget when the scatter representation's
/// build-time shard plan is actually partitioned, and serial otherwise —
/// single-shard plans (serial build budget, tiny matrices) and external
/// backends run the serial scatter no matter what the run-time budget
/// says, so pricing them at the budget would repeat the very serial-push /
/// parallel-pull miscalibration this model exists to fix.
/// `of_transpose` selects the representation the push path would scatter
/// (`Aᵀ`'s rows for effective-`mxv`); its plan is built lazily, so the
/// eagerly-built forward plan of the same matrix and config stands in as a
/// scale proxy until then.
fn effective_push_threads(state: &dyn GrbBackend, of_transpose: bool, ctx: &Context) -> usize {
    let plan = state
        .shard_plan(of_transpose)
        .or_else(|| state.shard_plan(!of_transpose));
    match plan {
        Some(p) if p.n_shards() > 1 => ctx.threads(),
        _ => 1,
    }
}

/// Evaluate an expression chain against a context (the implementation of
/// [`Context::try_evaluate`]; [`Context::evaluate`] panics on the `Err`).
pub(crate) fn try_execute(expr: &Expr<'_>, ctx: &Context) -> Result<Vector, GrbError> {
    match expr.producer {
        Producer::Leaf(v) => execute_leaf(expr, v, ctx),
        Producer::Mxv { .. } => execute_mxv(expr, ctx),
    }
}

/// Evaluate `fold` over the chain's result without materialising it when
/// the chain is a leaf chain (the fused reduce path); matrix-rooted chains
/// evaluate normally and recycle the intermediate.
pub(crate) fn execute_reduce(expr: &Expr<'_>, fold: Semiring, ctx: &Context) -> f32 {
    ctx.workspace().stats().record_reduce();
    match expr.producer {
        Producer::Leaf(v) if expr.fusion() == Fusion::Fused => {
            let stages = expr.stages();
            let accum = expr.accum.map(|(op, w)| (op, w.as_slice()));
            check_chain_lengths(expr, v.len()).unwrap_or_else(|e| panic!("{e}"));
            // Monomorphic fast path for the dot-product shape
            // (`Op::ewise_mult(&a, &b).reduce()`).
            if accum.is_none() && fold == Semiring::Arithmetic {
                if let [Stage::Ewise {
                    op: BinaryOp::Times,
                    operand,
                }] = stages
                {
                    return v
                        .as_slice()
                        .iter()
                        .zip(*operand)
                        .map(|(&a, &b)| a * b)
                        .sum();
                }
            }
            let mut acc = fold.identity();
            for (i, &raw) in v.as_slice().iter().enumerate() {
                let t = eval_stages(stages, i, raw);
                let t = match accum {
                    Some((op, base)) => op.apply(base[i], t),
                    None => t,
                };
                acc = fold.reduce(acc, t);
            }
            acc
        }
        _ => {
            let out = try_execute(expr, ctx).unwrap_or_else(|e| panic!("{e}"));
            let r = fold.reduce_slice(out.as_slice());
            ctx.recycle(out);
            r
        }
    }
}

/// Check every stage operand and the accumulator match the produced length.
fn check_chain_lengths(expr: &Expr<'_>, produced: usize) -> Result<(), GrbError> {
    for stage in expr.stages() {
        if let Stage::Ewise { operand, .. } = stage {
            if operand.len() != produced {
                return Err(GrbError::LengthMismatch {
                    what: "ewise stage operand length must equal output length",
                    expected: produced,
                    got: operand.len(),
                });
            }
        }
    }
    if let Some((_, w)) = expr.accum {
        if w.len() != produced {
            return Err(GrbError::LengthMismatch {
                what: "accumulator length must equal output length",
                expected: produced,
                got: w.len(),
            });
        }
    }
    Ok(())
}

/// The defining node-at-a-time epilogue: one full pass per stage, then an
/// accumulator pass (shared by the single-vector and batched chains — both
/// run their stages over flat storage).
fn finish_node_at_a_time(
    stages: &[Stage<'_>],
    accum: Option<(BinaryOp, &[f32])>,
    ws: &Workspace,
    out: &mut [f32],
) {
    for stage in stages {
        match stage {
            Stage::Ewise { .. } => ws.stats().record_ewise(),
            Stage::Select(_) => ws.stats().record_select(),
            Stage::Apply(_) | Stage::Affine { .. } => ws.stats().record_apply(),
        }
        for (i, v) in out.iter_mut().enumerate() {
            *v = stage.eval(i, *v);
        }
    }
    if let Some((op, base)) = accum {
        for (i, v) in out.iter_mut().enumerate() {
            *v = op.apply(base[i], *v);
        }
    }
}

fn execute_leaf(expr: &Expr<'_>, v: &Vector, ctx: &Context) -> Result<Vector, GrbError> {
    check_chain_lengths(expr, v.len())?;
    let ws = ctx.workspace();
    let mut out = ws.take_empty::<f32>();
    out.extend_from_slice(v.as_slice());
    if expr.fusion() == Fusion::Fused {
        ws.stats().record_ewise_chain();
        run_chain_in_place_parallel(
            expr.stages(),
            expr.accum.map(|(op, w)| (op, w.as_slice())),
            &mut out,
        );
    } else {
        finish_node_at_a_time(
            expr.stages(),
            expr.accum.map(|(op, w)| (op, w.as_slice())),
            ws,
            &mut out,
        );
    }
    Ok(Vector::from_vec(out))
}

fn execute_mxv(expr: &Expr<'_>, ctx: &Context) -> Result<Vector, GrbError> {
    let Producer::Mxv {
        a,
        x,
        semiring,
        mask,
        desc,
        flip,
        scale,
    } = expr.producer
    else {
        unreachable!("execute_mxv is only called for Mxv producers")
    };
    let transpose = desc.transpose;
    // Output length is the non-contracted dimension.
    let (contracted, produced) = if transpose != flip {
        (a.nrows(), a.ncols())
    } else {
        (a.ncols(), a.nrows())
    };
    if contracted != x.len() {
        return Err(GrbError::DimensionMismatch {
            op: if flip { "vxm" } else { "mxv" },
            expected: contracted,
            got: x.len(),
        });
    }
    if let Some(m) = mask {
        if m.len() != produced {
            return Err(GrbError::LengthMismatch {
                what: "mask length must equal output length",
                expected: produced,
                got: m.len(),
            });
        }
    }
    if let Some(s) = scale {
        if s.len() != contracted {
            return Err(GrbError::LengthMismatch {
                what: "input scale length must equal operand length",
                expected: contracted,
                got: s.len(),
            });
        }
    }
    check_chain_lengths(expr, produced)?;
    poll_fail_point(ctx, "grb.mxv_dispatch")?;

    let state = a.state();
    let ws = ctx.workspace();
    let _simd = SimdOverride::apply(ws, &desc);
    let mut out = ws.take_empty::<f32>();

    // Materialize the scaled operand (if any) into pooled scratch; the
    // pull sweep gathers each entry many times, so scaling once up front is
    // strictly cheaper than scaling per gathered edge.
    let mut scaled: Option<Vec<f32>> = scale.map(|s| {
        let mut buf = ws.take_empty::<f32>();
        buf.extend(
            x.as_slice()
                .iter()
                .zip(s.as_slice())
                .map(|(&xv, &sv)| xv * sv),
        );
        buf
    });
    let x_slice: &[f32] = scaled.as_deref().unwrap_or_else(|| x.as_slice());

    // Resolve the direction before planning: Auto counts the active entries
    // with a read-only scan, an explicit push on an unsafe semiring is
    // coerced back to pull.  The threshold is parallelism-aware (PR 5): the
    // push side is priced at the context's scatter thread budget, the pull
    // side at the host parallelism its rayon sweeps fan out to.  The base
    // scatter penalty comes from the context's calibrated profile (PR 9) —
    // the static device constant until `Context::calibrate` measures the
    // host.
    let direction = match desc.direction {
        Direction::Push if !semiring.push_safe() => Direction::Pull,
        Direction::Auto => {
            let n_active = x_slice
                .iter()
                .filter(|&&v| !semiring.is_identity(v))
                .count();
            choose_direction_tuned(
                n_active,
                contracted,
                a.nnz(),
                semiring,
                ctx.profile().scatter_alpha,
                effective_push_threads(state, transpose == flip, ctx),
                crate::shard::machine_parallelism(),
            )
        }
        d => d,
    };

    let trivial = expr.n_stages() == 0 && expr.accum.is_none();
    let fuse = expr.fusion() == Fusion::Fused;
    let eff_transpose = transpose != flip;
    let accum = expr.accum.map(|(op, w)| (op, w.as_slice()));

    match direction {
        Direction::Push => {
            let mut frontier = ws.take_empty::<usize>();
            frontier.extend(
                x_slice
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| !semiring.is_identity(v))
                    .map(|(i, _)| i),
            );
            if trivial && scale.is_none() {
                // The bare stageless shape: dispatch through the
                // flip-preserving entry points so external backends'
                // overrides keep firing.
                if flip {
                    state
                        .vxm_push_into(x_slice, &frontier, semiring, mask, transpose, ws, &mut out);
                } else {
                    state
                        .mxv_push_into(x_slice, &frontier, semiring, mask, transpose, ws, &mut out);
                }
            } else {
                let p = MxvPipeline {
                    x: x_slice,
                    frontier: Some(&frontier),
                    semiring,
                    mask,
                    transpose: eff_transpose,
                    stages: expr.stages(),
                    accum,
                };
                if fuse && (p.accum.is_none() || p.push_folds_accum()) {
                    state.mxv_fused_into(&p, ws, &mut out);
                    ws.stats().record_fused_mxv();
                } else {
                    // Partial fusion: scatter node-at-a-time, but collapse
                    // the epilogue into one chain sweep when allowed.
                    state.mxv_push_into(
                        x_slice,
                        &frontier,
                        semiring,
                        mask,
                        eff_transpose,
                        ws,
                        &mut out,
                    );
                    if fuse {
                        state.ewise_chain_into(expr.stages(), accum, &mut out);
                        ws.stats().record_ewise_chain();
                    } else {
                        finish_node_at_a_time(expr.stages(), accum, ws, &mut out);
                    }
                }
            }
            ws.give(frontier);
            ws.stats().record_push_mxv();
        }
        _ => {
            if trivial && scale.is_none() {
                if flip {
                    state.vxm_into(x_slice, semiring, mask, transpose, ws, &mut out);
                } else {
                    state.mxv_into(x_slice, semiring, mask, transpose, ws, &mut out);
                }
            } else {
                let p = MxvPipeline {
                    x: x_slice,
                    frontier: None,
                    semiring,
                    mask,
                    transpose: eff_transpose,
                    stages: expr.stages(),
                    accum,
                };
                if fuse {
                    state.mxv_fused_into(&p, ws, &mut out);
                    ws.stats().record_fused_mxv();
                } else {
                    state.mxv_into(x_slice, semiring, mask, eff_transpose, ws, &mut out);
                    finish_node_at_a_time(expr.stages(), accum, ws, &mut out);
                }
            }
            ws.stats().record_pull_mxv();
        }
    }

    if let Some(buf) = scaled.take() {
        ws.give(buf);
    }
    debug_assert_eq!(out.len(), produced);
    Ok(Vector::from_vec(out))
}

// ---------------------------------------------------------------------------
// Batched (multi-vector) chains
// ---------------------------------------------------------------------------

/// Check every stage operand and the accumulator match the flat produced
/// length of a batched chain.
fn check_multi_chain_lengths(expr: &MultiExpr<'_>, produced_flat: usize) -> Result<(), GrbError> {
    for stage in expr.stages() {
        if let Stage::Ewise { operand, .. } = stage {
            if operand.len() != produced_flat {
                return Err(GrbError::LengthMismatch {
                    what: "ewise stage operand length must equal the flat output length",
                    expected: produced_flat,
                    got: operand.len(),
                });
            }
        }
    }
    if let Some((_, w)) = expr.accum {
        if w.as_slice().len() != produced_flat {
            return Err(GrbError::LengthMismatch {
                what: "accumulator shape must equal the output shape",
                expected: produced_flat,
                got: w.as_slice().len(),
            });
        }
    }
    Ok(())
}

/// Evaluate a batched expression chain against a context (the
/// implementation of [`Context::try_evaluate_multi`];
/// [`Context::evaluate_multi`] panics on the `Err`).
pub(crate) fn try_execute_multi(expr: &MultiExpr<'_>, ctx: &Context) -> Result<MultiVec, GrbError> {
    match expr.producer {
        MultiProducer::Leaf(v) => execute_multi_leaf(expr, v, ctx),
        MultiProducer::Mxm { .. } => execute_mxm(expr, ctx),
    }
}

fn execute_multi_leaf(
    expr: &MultiExpr<'_>,
    v: &MultiVec,
    ctx: &Context,
) -> Result<MultiVec, GrbError> {
    let (n, k) = (v.n_nodes(), v.n_lanes());
    check_multi_chain_lengths(expr, n * k)?;
    let ws = ctx.workspace();
    let mut out = ws.take_empty::<f32>();
    out.extend_from_slice(v.as_slice());
    let accum = expr.accum.map(|(op, w)| (op, w.as_slice()));
    if expr.fusion() == Fusion::Fused {
        ws.stats().record_ewise_chain();
        run_chain_in_place_parallel(expr.stages(), accum, &mut out);
    } else {
        finish_node_at_a_time(expr.stages(), accum, ws, &mut out);
    }
    Ok(MultiVec::from_vec(out, n, k))
}

/// Execute the batched matrix × multivector producer and its epilogue.
///
/// The fusion rule for `mxm` chains is simpler than for `mxv`: the product
/// is always one batched sweep ([`GrbBackend::mxm_into`] /
/// [`GrbBackend::mxm_push_into`], mask applied by the kernel), and under
/// [`Fusion::Fused`] the whole element-wise epilogue — stages and
/// accumulator over the flat `n × k` storage — collapses into **one**
/// [`GrbBackend::ewise_chain_into`] pass.  [`Fusion::NodeAtATime`] runs the
/// defining one-pass-per-stage semantics instead, which is what the batched
/// parity proptests compare against.
///
/// [`GrbBackend::mxm_into`]: super::GrbBackend::mxm_into
/// [`GrbBackend::mxm_push_into`]: super::GrbBackend::mxm_push_into
/// [`GrbBackend::ewise_chain_into`]: super::GrbBackend::ewise_chain_into
fn execute_mxm(expr: &MultiExpr<'_>, ctx: &Context) -> Result<MultiVec, GrbError> {
    let MultiProducer::Mxm {
        a,
        x,
        semiring,
        mask,
        desc,
        scale,
    } = expr.producer
    else {
        unreachable!("execute_mxm is only called for Mxm producers")
    };
    let transpose = desc.transpose;
    let k = x.n_lanes();
    let (contracted, produced) = if transpose {
        (a.nrows(), a.ncols())
    } else {
        (a.ncols(), a.nrows())
    };
    if contracted != x.n_nodes() {
        return Err(GrbError::DimensionMismatch {
            op: "mxm",
            expected: contracted,
            got: x.n_nodes(),
        });
    }
    if let Some(m) = mask {
        if m.len() != produced * k {
            return Err(GrbError::LengthMismatch {
                what: "mxm mask length must equal the flat output length (n \u{b7} k)",
                expected: produced * k,
                got: m.len(),
            });
        }
    }
    if let Some(s) = scale {
        if s.len() != contracted {
            return Err(GrbError::LengthMismatch {
                what: "input scale length must equal the operand's node count",
                expected: contracted,
                got: s.len(),
            });
        }
    }
    check_multi_chain_lengths(expr, produced * k)?;
    poll_fail_point(ctx, "grb.mxm_dispatch")?;

    let state = a.state();
    let ws = ctx.workspace();
    let _simd = SimdOverride::apply(ws, &desc);
    let mut out = ws.take_empty::<f32>();

    // Materialize the per-node input scaling (if any) into pooled scratch,
    // broadcast across the lanes of each node.
    let mut scaled: Option<Vec<f32>> = scale.map(|s| {
        let mut buf = ws.take_empty::<f32>();
        buf.extend(
            x.as_slice()
                .chunks_exact(k)
                .zip(s.as_slice())
                .flat_map(|(lanes, &sv)| lanes.iter().map(move |&xv| xv * sv)),
        );
        buf
    });
    let x_flat: &[f32] = scaled.as_deref().unwrap_or_else(|| x.as_slice());

    // Resolve the direction on the node-granular frontier: a node is active
    // when any of its lanes differs from the semiring identity.
    let count_active = || {
        x_flat
            .chunks_exact(k)
            .filter(|lanes| lanes.iter().any(|&v| !semiring.is_identity(v)))
            .count()
    };
    let direction = match desc.direction {
        Direction::Push if !semiring.push_safe() => Direction::Pull,
        Direction::Auto => choose_direction_multi_tuned(
            count_active(),
            contracted,
            a.nnz(),
            semiring,
            ctx.profile().scatter_alpha,
            effective_push_threads(state, !transpose, ctx),
            crate::shard::machine_parallelism(),
        ),
        d => d,
    };

    match direction {
        Direction::Push => {
            let mut frontier = ws.take_empty::<usize>();
            frontier.extend(
                x_flat
                    .chunks_exact(k)
                    .enumerate()
                    .filter(|(_, lanes)| lanes.iter().any(|&v| !semiring.is_identity(v)))
                    .map(|(i, _)| i),
            );
            state.mxm_push_into(
                x_flat, k, &frontier, semiring, mask, transpose, ws, &mut out,
            );
            ws.give(frontier);
            ws.stats().record_push_mxm();
        }
        _ => {
            state.mxm_into(x_flat, k, semiring, mask, transpose, ws, &mut out);
            ws.stats().record_pull_mxm();
        }
    }

    let accum = expr.accum.map(|(op, w)| (op, w.as_slice()));
    if expr.n_stages() > 0 || accum.is_some() {
        if expr.fusion() == Fusion::Fused {
            state.ewise_chain_into(expr.stages(), accum, &mut out);
            ws.stats().record_ewise_chain();
        } else {
            finish_node_at_a_time(expr.stages(), accum, ws, &mut out);
        }
    }

    if let Some(buf) = scaled.take() {
        ws.give(buf);
    }
    debug_assert_eq!(out.len(), produced * k);
    Ok(MultiVec::from_vec(out, produced, k))
}
