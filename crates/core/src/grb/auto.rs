//! Automatic backend/format selection — the paper's format-selection story
//! ([`Backend::Auto`]) as a first-class API.
//!
//! The paper frames Bit-GraphBLAS as a framework that *decides* how the
//! adjacency matrix is stored (Figure 5's per-matrix optimal tile sizes,
//! Algorithm 1's sampling profile, Table V's structural categories).  This
//! module composes those pieces into one decision procedure:
//!
//! 1. **Classify** the matrix's structural pattern with
//!    `bitgblas-datagen`'s Table-V classifier;
//! 2. **Estimate** the storage payoff of every B2SR variant with the
//!    Algorithm-1 sampling profile (cheap, row-sample only);
//! 3. **Model** the per-`mxv` cost of the float-CSR baseline and of every
//!    B2SR variant with `bitgblas-perfmodel`'s memory-traffic model, using a
//!    [`B2srLayout`] computed directly from the CSR structure (no conversion
//!    is performed for rejected candidates);
//! 4. **Choose** the cheapest modelled backend, with the pattern category
//!    breaking near-ties the way Figure 5b reports (dense local structure —
//!    blocks — favors large tiles; thin diagonal/road structure favors small
//!    tiles).

use bitgblas_datagen::classify::{classify, PatternCategory};
use bitgblas_perfmodel::{estimate_b2sr_bmv, estimate_csr_spmv, B2srLayout, DeviceProfile};
use bitgblas_sparse::Csr;

use crate::b2sr::{sample_profile, SamplingProfile, TileSize};

use super::matrix::Backend;
use super::op::Context;

/// Modelled cost of one candidate B2SR variant.
#[derive(Debug, Clone, PartialEq)]
pub struct TileCandidate {
    /// The tile size this candidate refers to.
    pub tile_size: TileSize,
    /// Modelled time of one `mxv` (milliseconds on the context's device).
    pub modelled_time_ms: f64,
    /// Estimated `B2SR bytes / CSR bytes` from the sampling profile.
    pub est_compression_ratio: f64,
}

/// The full record of one automatic backend decision, for reporting and for
/// tests that assert the selection logic.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoDecision {
    /// The Table-V structural category of the matrix.
    pub category: PatternCategory,
    /// Modelled time of one float-CSR `mxv` (milliseconds).
    pub float_time_ms: f64,
    /// The four B2SR candidates, ordered as [`TileSize::ALL`].
    pub candidates: Vec<TileCandidate>,
    /// Whether the sampling profile judges any variant worth converting.
    pub worth_converting: bool,
    /// The chosen backend (never [`Backend::Auto`]).
    pub chosen: Backend,
}

/// Two modelled times are a "near-tie" when they differ by less than this
/// factor; within a near-tie the pattern category decides.
const NEAR_TIE: f64 = 1.15;

/// Run the automatic format selection for one matrix.
pub fn auto_decision(csr: &Csr, ctx: &Context) -> AutoDecision {
    let category = classify(csr);
    let profile: SamplingProfile = sample_profile(csr, ctx.sample_rows, ctx.seed);
    let device: &DeviceProfile = &ctx.device;

    let float_time_ms = estimate_csr_spmv(csr, device).total_time_ms;

    // Exact layouts and the cache simulation cost a full pass over the
    // nonzeros per tile size, so the (cheap, sampled) Algorithm-1 estimates
    // prune the field first: variants whose sampled compression is more than
    // 2x the best estimate cannot win the traffic model either and are
    // scored `INFINITY` without a scan.
    let best_est = TileSize::ALL
        .iter()
        .map(|&ts| profile.estimate_for(ts).est_compression_ratio)
        .fold(f64::INFINITY, f64::min);
    const PRUNE_FACTOR: f64 = 2.0;

    let candidates: Vec<TileCandidate> = TileSize::ALL
        .iter()
        .map(|&ts| {
            let est_compression_ratio = profile.estimate_for(ts).est_compression_ratio;
            let modelled_time_ms = if est_compression_ratio <= best_est * PRUNE_FACTOR {
                let layout = B2srLayout::from_csr(csr, ts.dim());
                estimate_b2sr_bmv(&layout, device).total_time_ms
            } else {
                f64::INFINITY
            };
            TileCandidate {
                tile_size: ts,
                modelled_time_ms,
                est_compression_ratio,
            }
        })
        .collect();
    let worth_converting = profile.worth_converting();

    let chosen = choose(category, float_time_ms, &candidates, worth_converting);
    AutoDecision {
        category,
        float_time_ms,
        candidates,
        worth_converting,
        chosen,
    }
}

/// The decision rule, split out for direct testing.
fn choose(
    category: PatternCategory,
    float_time_ms: f64,
    candidates: &[TileCandidate],
    worth_converting: bool,
) -> Backend {
    // Fastest modelled bit variant.
    let best = candidates
        .iter()
        .min_by(|a, b| a.modelled_time_ms.partial_cmp(&b.modelled_time_ms).unwrap())
        .expect("candidates are never empty");

    // Keep CSR when the model gives the bit kernel no edge, or when the
    // sampling profile says no variant compresses — and, for unstructured
    // scatter (dot), whenever the modelled win is within the near-tie band:
    // the conversion cost is not worth a marginal gain on a matrix whose
    // structure gives B2SR nothing to exploit (the paper's "or keeps the
    // original format" outcome of Algorithm 1).
    if best.modelled_time_ms >= float_time_ms || !worth_converting {
        return Backend::FloatCsr;
    }
    if category == PatternCategory::Dot && best.modelled_time_ms * NEAR_TIE >= float_time_ms {
        return Backend::FloatCsr;
    }

    // Near-ties between tile sizes are resolved by the structural category,
    // mirroring Figure 5b: block-dense patterns amortize large tiles, thin
    // diagonal/road/stripe structure wants small ones.
    let near: Vec<&TileCandidate> = candidates
        .iter()
        .filter(|c| c.modelled_time_ms <= best.modelled_time_ms * NEAR_TIE)
        .collect();
    let pick: &TileCandidate = match category {
        PatternCategory::Block | PatternCategory::Hybrid => near
            .iter()
            .copied()
            .max_by_key(|c| c.tile_size.dim())
            .unwrap(),
        PatternCategory::Diagonal | PatternCategory::Road | PatternCategory::Stripe => near
            .iter()
            .copied()
            .min_by_key(|c| c.tile_size.dim())
            .unwrap(),
        PatternCategory::Dot => best,
    };
    Backend::Bit(pick.tile_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_datagen::generators;

    fn decide(csr: &Csr) -> AutoDecision {
        auto_decision(csr, &Context::default())
    }

    #[test]
    fn decision_is_deterministic_and_never_auto() {
        for csr in [
            generators::banded(512, 3, 0.7, 1),
            generators::erdos_renyi(400, 0.01, true, 2),
            generators::block_community(8, 64, 0.4, 1e-5, 3),
        ] {
            let d1 = decide(&csr);
            let d2 = decide(&csr);
            assert_eq!(d1, d2);
            assert_ne!(d1.chosen, Backend::Auto);
            assert_eq!(d1.candidates.len(), 4);
        }
    }

    #[test]
    fn banded_matrix_picks_a_small_bit_tile() {
        let d = decide(&generators::banded(2048, 3, 0.8, 7));
        match d.chosen {
            Backend::Bit(ts) => assert!(ts.dim() <= 8, "banded chose {ts}, decision {d:?}"),
            other => panic!("banded should convert to B2SR, chose {other:?} ({d:?})"),
        }
    }

    #[test]
    fn block_dense_matrix_picks_a_large_bit_tile() {
        let d = decide(&generators::block_community(16, 64, 0.5, 1e-5, 9));
        match d.chosen {
            Backend::Bit(ts) => assert!(ts.dim() >= 16, "blocks chose {ts}, decision {d:?}"),
            other => panic!("block pattern should convert to B2SR, chose {other:?} ({d:?})"),
        }
    }

    #[test]
    fn sparse_scatter_keeps_float_csr() {
        // One nonzero every few rows: every touched tile holds a single bit,
        // so the bit kernel has no modelled edge and the original format is
        // kept (conversion would buy nothing).
        let mut coo = bitgblas_sparse::Coo::new(4096, 4096);
        for r in (0..4096usize).step_by(3) {
            coo.push_edge(r, (r * 7 + 13) % 4096).unwrap();
        }
        let d = decide(&coo.to_binary_csr());
        assert_eq!(d.category, bitgblas_datagen::PatternCategory::Dot, "{d:?}");
        assert_eq!(d.chosen, Backend::FloatCsr, "{d:?}");
    }

    #[test]
    fn different_patterns_yield_different_tile_sizes() {
        // The acceptance criterion: Auto demonstrably picks different tile
        // sizes for at least two corpus patterns.
        let banded = decide(&generators::banded(2048, 3, 0.8, 7)).chosen;
        let blocks = decide(&generators::block_community(16, 64, 0.5, 1e-5, 9)).chosen;
        assert_ne!(banded, blocks, "banded {banded:?} vs blocks {blocks:?}");
    }
}
