//! The GrB-style multi-vector object: `n × k` frontier matrices.
//!
//! A traversal serving many concurrent queries does not need to sweep the
//! adjacency matrix once per query: `k` simultaneous BFS/SSSP frontiers form
//! an `n × k` **frontier matrix**, and one masked matrix-times-multivector
//! product advances all `k` traversals while loading each matrix tile
//! exactly once — the same traffic-amortization argument the paper makes for
//! bit-packing, applied across queries instead of across matrix elements.
//!
//! # Layout
//!
//! A [`MultiVec`] stores its `n × k` entries **node-major** (row-major): the
//! `k` lane values of node `i` are contiguous at `data[i*k .. (i+1)*k]`.
//! This is the layout the batched kernels want — when an edge `(u, v)` is
//! traversed, all `k` lane contributions of `u` are one contiguous read and
//! all `k` lane updates of `v` are one contiguous write.
//!
//! For the Boolean semiring the lanes additionally pack into **lane words**:
//! `k.div_ceil(64)` `u64` words per node, bit `l` of word `l / 64` set iff
//! lane `l` is active ([`MultiVec::pack_lane_words_into`]).  A batched
//! Boolean scatter then advances up to 64 traversals with a single `OR` per
//! edge (see `kernels::bmm`).
//!
//! Columns convert to and from the single-query [`Vector`] type
//! ([`MultiVec::column`], [`MultiVec::from_columns`]), which is what the
//! parity suite uses to prove column `j` of a batched traversal equals the
//! single-source run from source `j`.

use crate::semiring::Semiring;

use super::vector::Vector;

/// Number of `u64` lane words each node needs to hold `k` lane bits.
#[inline]
pub fn lane_words_per_node(k: usize) -> usize {
    k.div_ceil(64)
}

/// A dense `n × k` multi-vector: `k` parallel lanes (queries) per node.
///
/// See the [module docs](self) for the storage layout.  Construct one lane
/// per traversal source with [`MultiVec::from_sources`]:
///
/// ```
/// use bitgblas_core::grb::MultiVec;
/// use bitgblas_core::Semiring;
///
/// let f = MultiVec::from_sources(4, &[1, 3]);
/// assert_eq!((f.n_nodes(), f.n_lanes()), (4, 2));
/// assert_eq!(f.get(1, 0), 1.0);
/// assert_eq!(f.get(3, 1), 1.0);
/// assert_eq!(f.active_nodes(Semiring::Boolean), 2);
/// assert_eq!(f.column(0).as_slice(), &[0.0, 1.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVec {
    data: Vec<f32>,
    n: usize,
    k: usize,
}

impl MultiVec {
    /// An `n × k` multi-vector of zeros.
    ///
    /// # Panics
    /// Panics when `k` is zero (a multi-vector carries at least one lane).
    pub fn zeros(n: usize, k: usize) -> Self {
        Self::filled(n, k, 0.0)
    }

    /// An `n × k` multi-vector with every entry set to `fill`.
    ///
    /// # Panics
    /// Panics when `k` is zero.
    pub fn filled(n: usize, k: usize, fill: f32) -> Self {
        assert!(k > 0, "a multi-vector needs at least one lane");
        MultiVec {
            data: vec![fill; n * k],
            n,
            k,
        }
    }

    /// An `n × k` multi-vector filled with the identity of the given
    /// semiring (`0`, `+∞` or `-∞`) — the "empty" state for that domain.
    ///
    /// # Panics
    /// Panics when `k` is zero.
    pub fn identity(n: usize, k: usize, semiring: Semiring) -> Self {
        Self::filled(n, k, semiring.identity())
    }

    /// The frontier matrix of `sources.len()` traversals: lane `l` is the
    /// indicator of `sources[l]`.
    ///
    /// # Panics
    /// Panics when `sources` is empty or any source is out of range.
    pub fn from_sources(n: usize, sources: &[usize]) -> Self {
        let mut mv = Self::zeros(n, sources.len());
        for (l, &s) in sources.iter().enumerate() {
            assert!(s < n, "source vertex {s} out of range (n = {n})");
            mv.set(s, l, 1.0);
        }
        mv
    }

    /// Wrap an existing flat node-major buffer of length `n * k`.
    ///
    /// # Panics
    /// Panics when `k` is zero or the buffer length is not `n * k`.
    pub fn from_vec(data: Vec<f32>, n: usize, k: usize) -> Self {
        assert!(k > 0, "a multi-vector needs at least one lane");
        assert_eq!(data.len(), n * k, "buffer length must be n * k");
        MultiVec { data, n, k }
    }

    /// Assemble a multi-vector from equal-length column vectors (lane `l` =
    /// `columns[l]`).
    ///
    /// # Panics
    /// Panics when `columns` is empty or the lengths differ.
    pub fn from_columns(columns: &[Vector]) -> Self {
        assert!(
            !columns.is_empty(),
            "a multi-vector needs at least one lane"
        );
        let n = columns[0].len();
        let k = columns.len();
        let mut mv = Self::zeros(n, k);
        for (l, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n, "all columns must have the same length");
            for (i, &v) in col.as_slice().iter().enumerate() {
                mv.set(i, l, v);
            }
        }
        mv
    }

    /// Number of nodes (rows).
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of lanes (columns / concurrent queries).
    pub fn n_lanes(&self) -> usize {
        self.k
    }

    /// The flat node-major storage (`data[i*k + l]` = node `i`, lane `l`).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat node-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat node-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The value of node `i`, lane `l`.
    pub fn get(&self, i: usize, l: usize) -> f32 {
        self.data[i * self.k + l]
    }

    /// Set the value of node `i`, lane `l`.
    pub fn set(&mut self, i: usize, l: usize, v: f32) {
        self.data[i * self.k + l] = v;
    }

    /// Copy lane `l` out as a single-query [`Vector`].
    pub fn column(&self, l: usize) -> Vector {
        assert!(l < self.k, "lane {l} out of range (k = {})", self.k);
        Vector::from_vec((0..self.n).map(|i| self.get(i, l)).collect())
    }

    /// Number of nodes with at least one lane differing from the semiring
    /// identity — the node-granular frontier size
    /// [`choose_direction_multi`](super::choose_direction_multi) scores (a
    /// push scatter visits each active node's edges once, whatever the
    /// number of active lanes).  The planner computes the same count
    /// internally over the possibly input-scaled operand; this method is
    /// the caller-side query for sizing and instrumentation.
    pub fn active_nodes(&self, semiring: Semiring) -> usize {
        self.data
            .chunks_exact(self.k)
            .filter(|lanes| lanes.iter().any(|&v| !semiring.is_identity(v)))
            .count()
    }

    /// Total number of active entries summed over all lanes.
    pub fn lane_nnz(&self, semiring: Semiring) -> usize {
        self.data
            .iter()
            .filter(|&&v| !semiring.is_identity(v))
            .count()
    }

    /// Append the indices of all active nodes (any lane non-identity), in
    /// ascending order, to a caller-supplied (typically workspace-pooled)
    /// buffer — the frontier-list shape the push-direction batched kernels
    /// consume.  The planner derives its own list from the (possibly
    /// input-scaled) operand; use this to drive
    /// [`GrbBackend::mxm_push_into`](super::GrbBackend::mxm_push_into)
    /// directly.
    pub fn frontier_nodes_into(&self, semiring: Semiring, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.data
                .chunks_exact(self.k)
                .enumerate()
                .filter(|(_, lanes)| lanes.iter().any(|&v| !semiring.is_identity(v)))
                .map(|(i, _)| i),
        );
    }

    /// Pack the lanes into per-node `u64` words (bit `l` of node `i`'s word
    /// `l / 64` set iff lane `l` is nonzero), writing
    /// `n * lane_words_per_node(k)` words into the caller-supplied buffer —
    /// the Boolean batched-kernel operand layout
    /// (`kernels::bmm::bmm_bin_bits_into` / `bmm_push_bits`), for callers
    /// driving those kernels directly; the built-in backends pack
    /// internally from the flat operand.
    pub fn pack_lane_words_into(&self, out: &mut Vec<u64>) {
        pack_lane_words_from(&self.data, self.k, |v| v != 0.0, out);
    }
}

/// Pack any flat node-major `n × k` slice into per-node lane words, setting
/// bit `l` where `active(value)` holds (shared by the multi-vector operand
/// packing and the backend's flat-mask packing).  Node-parallel: packing
/// runs every iteration of a batched traversal loop.
pub(crate) fn pack_lane_words_from<T: Copy + Sync, F: Fn(T) -> bool + Sync>(
    flat: &[T],
    k: usize,
    active: F,
    out: &mut Vec<u64>,
) {
    use rayon::prelude::*;
    let wpn = lane_words_per_node(k);
    let n = flat.len() / k;
    out.clear();
    out.resize(n * wpn, 0u64);
    out.par_chunks_mut(wpn).enumerate().for_each(|(i, words)| {
        for (l, &v) in flat[i * k..(i + 1) * k].iter().enumerate() {
            if active(v) {
                words[l / 64] |= 1u64 << (l % 64);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expand per-node lane words back into a flat `n × k` indicator.
    fn unpack_lane_words_into(words: &[u64], k: usize, out: &mut [f32]) {
        let wpn = lane_words_per_node(k);
        for (i, lanes) in out.chunks_exact_mut(k).enumerate() {
            for (l, slot) in lanes.iter_mut().enumerate() {
                let w = words[i * wpn + l / 64];
                *slot = if w >> (l % 64) & 1 != 0 { 1.0 } else { 0.0 };
            }
        }
    }

    #[test]
    fn constructors_and_queries() {
        let mv = MultiVec::from_sources(5, &[0, 4, 0]);
        assert_eq!(mv.n_nodes(), 5);
        assert_eq!(mv.n_lanes(), 3);
        assert_eq!(mv.get(0, 0), 1.0);
        assert_eq!(mv.get(0, 2), 1.0);
        assert_eq!(mv.get(4, 1), 1.0);
        assert_eq!(mv.get(4, 0), 0.0);
        assert_eq!(mv.active_nodes(Semiring::Boolean), 2);
        assert_eq!(mv.lane_nnz(Semiring::Boolean), 3);

        let id = MultiVec::identity(3, 2, Semiring::MinPlus(1.0));
        assert!(id.as_slice().iter().all(|v| v.is_infinite()));
        assert_eq!(id.active_nodes(Semiring::MinPlus(1.0)), 0);
    }

    #[test]
    fn columns_round_trip() {
        let a = Vector::from_vec(vec![1.0, 0.0, 3.0]);
        let b = Vector::from_vec(vec![0.0, 2.0, 0.0]);
        let mv = MultiVec::from_columns(&[a.clone(), b.clone()]);
        assert_eq!(mv.column(0), a);
        assert_eq!(mv.column(1), b);
        assert_eq!(mv.as_slice(), &[1.0, 0.0, 0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn frontier_nodes_are_node_granular() {
        let mut mv = MultiVec::zeros(6, 2);
        mv.set(1, 0, 1.0);
        mv.set(1, 1, 1.0);
        mv.set(4, 1, 1.0);
        let mut f = Vec::new();
        mv.frontier_nodes_into(Semiring::Boolean, &mut f);
        assert_eq!(f, vec![1, 4]);
    }

    #[test]
    fn lane_word_packing_round_trips() {
        for k in [1usize, 3, 8, 64, 65, 130] {
            let n = 7;
            let mut mv = MultiVec::zeros(n, k);
            for i in 0..n {
                for l in 0..k {
                    if (i * 31 + l * 7) % 3 == 0 {
                        mv.set(i, l, 1.0);
                    }
                }
            }
            let mut words = Vec::new();
            mv.pack_lane_words_into(&mut words);
            assert_eq!(words.len(), n * lane_words_per_node(k));
            let mut flat = vec![9.0f32; n * k];
            unpack_lane_words_into(&words, k, &mut flat);
            assert_eq!(flat, mv.as_slice(), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_are_rejected() {
        let _ = MultiVec::zeros(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_is_rejected() {
        let _ = MultiVec::from_sources(4, &[4]);
    }
}
