//! The GrB-style vector object.
//!
//! Bit-GraphBLAS keeps frontier vectors dense: binarized for Boolean
//! semirings, full-precision for the others (§V).  `Vector` wraps a dense
//! `f32` buffer and provides the frontier-style constructors and queries the
//! algorithms need; the binarized packing is produced on demand inside the
//! ops layer.

use bitgblas_sparse::DenseVec;

use crate::semiring::Semiring;

/// A dense GraphBLAS-style vector of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: DenseVec,
}

impl Vector {
    /// Vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector {
            data: DenseVec::zeros(n),
        }
    }

    /// Vector filled with the identity of the given semiring (`0`, `+∞` or
    /// `-∞`), the "empty" state for that domain.
    pub fn identity(n: usize, semiring: Semiring) -> Self {
        Vector {
            data: DenseVec::filled(n, semiring.identity()),
        }
    }

    /// Indicator vector with `1.0` at `positions`.
    pub fn indicator(n: usize, positions: &[usize]) -> Self {
        Vector {
            data: DenseVec::indicator(n, positions),
        }
    }

    /// Wrap an existing buffer.
    pub fn from_vec(v: Vec<f32>) -> Self {
        Vector {
            data: DenseVec::from_vec(v),
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Consume into a `Vec<f32>`.
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Set the value at position `i`.
    pub fn set(&mut self, i: usize, v: f32) {
        self.data[i] = v;
    }

    /// Number of entries that differ from the given semiring's identity
    /// (= the frontier size for that domain).
    pub fn n_active(&self, semiring: Semiring) -> usize {
        self.as_slice()
            .iter()
            .filter(|&&v| !semiring.is_identity(v))
            .count()
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        self.data.nnz()
    }

    /// Boolean view: `true` where the entry differs from the semiring
    /// identity.  Used to build masks (e.g. the visited set in BFS).
    pub fn active_flags(&self, semiring: Semiring) -> Vec<bool> {
        self.as_slice()
            .iter()
            .map(|&v| !semiring.is_identity(v))
            .collect()
    }

    /// Element-wise accumulate with the semiring's additive monoid:
    /// `self[i] = self[i] ⊕ other[i]`.
    pub fn accumulate(&mut self, other: &Vector, semiring: Semiring) {
        assert_eq!(self.len(), other.len(), "accumulate requires equal lengths");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = semiring.reduce(*a, b);
        }
    }

    /// Maximum absolute difference to another vector (PageRank convergence).
    pub fn max_abs_diff(&self, other: &Vector) -> f32 {
        self.data.max_abs_diff(&other.data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.sum()
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_queries() {
        let z = Vector::zeros(4);
        assert_eq!(z.len(), 4);
        assert_eq!(z.nnz(), 0);
        let inf = Vector::identity(3, Semiring::MinPlus(1.0));
        assert!(inf.as_slice().iter().all(|v| v.is_infinite()));
        assert_eq!(inf.n_active(Semiring::MinPlus(1.0)), 0);
        let ind = Vector::indicator(5, &[0, 4]);
        assert_eq!(ind.nnz(), 2);
        assert_eq!(ind.n_active(Semiring::Boolean), 2);
        assert_eq!(
            ind.active_flags(Semiring::Boolean),
            vec![true, false, false, false, true]
        );
    }

    #[test]
    fn get_set_and_conversion() {
        let mut v = Vector::zeros(3);
        v.set(1, 4.5);
        assert_eq!(v.get(1), 4.5);
        assert_eq!(v.clone().into_vec(), vec![0.0, 4.5, 0.0]);
        let w: Vector = vec![1.0, 2.0].into();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.sum(), 3.0);
    }

    #[test]
    fn accumulate_uses_semiring_monoid() {
        let mut dist = Vector::from_vec(vec![0.0, 5.0, f32::INFINITY]);
        let relaxed = Vector::from_vec(vec![1.0, 3.0, 7.0]);
        dist.accumulate(&relaxed, Semiring::MinPlus(1.0));
        assert_eq!(dist.as_slice(), &[0.0, 3.0, 7.0]);

        let mut ranks = Vector::from_vec(vec![0.1, 0.2, 0.3]);
        ranks.accumulate(
            &Vector::from_vec(vec![0.05, 0.0, 0.1]),
            Semiring::Arithmetic,
        );
        for (got, want) in ranks.as_slice().iter().zip([0.15f32, 0.2, 0.4]) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn accumulate_length_mismatch_panics() {
        let mut a = Vector::zeros(2);
        a.accumulate(&Vector::zeros(3), Semiring::Arithmetic);
    }

    #[test]
    fn minplus_active_flags_treat_infinity_as_inactive() {
        let v = Vector::from_vec(vec![f32::INFINITY, 0.0, 2.0]);
        assert_eq!(
            v.active_flags(Semiring::MinPlus(1.0)),
            vec![false, true, true]
        );
        assert_eq!(v.n_active(Semiring::MinPlus(1.0)), 2);
    }
}
