//! Masks and descriptors for the GrB-style operations.

use super::direction::Direction;
use crate::kernels::simd::SimdPolicy;

/// A vector mask: controls which output positions an operation may write.
///
/// With `complement == false` (the GraphBLAS default) position `i` is written
/// only where `structure[i]` is `true`.  With `complement == true` the sense
/// is inverted — this is the form BFS uses (`¬visited`): only *unvisited*
/// vertices may receive a new frontier value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    structure: Vec<bool>,
    complement: bool,
}

impl Mask {
    /// A mask that allows writes where `structure[i]` is `true`.
    pub fn new(structure: Vec<bool>) -> Self {
        Mask {
            structure,
            complement: false,
        }
    }

    /// A mask that allows writes where `structure[i]` is `false`
    /// (complemented mask, e.g. "not yet visited").
    pub fn complemented(structure: Vec<bool>) -> Self {
        Mask {
            structure,
            complement: true,
        }
    }

    /// Length of the mask.
    pub fn len(&self) -> usize {
        self.structure.len()
    }

    /// True if the mask has zero length.
    pub fn is_empty(&self) -> bool {
        self.structure.is_empty()
    }

    /// Whether the mask is complemented.
    pub fn is_complemented(&self) -> bool {
        self.complement
    }

    /// The raw structure flags.
    pub fn structure(&self) -> &[bool] {
        &self.structure
    }

    /// Set structure flag `i` in place — e.g. marking a vertex visited in a
    /// complemented BFS mask without rebuilding (and reallocating) the mask
    /// every iteration.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        self.structure[i] = value;
    }

    /// Does the mask allow writing output position `i`?
    #[inline]
    pub fn allows(&self, i: usize) -> bool {
        let set = self.structure.get(i).copied().unwrap_or(false);
        set != self.complement
    }

    /// The "filter out" view used by the bit kernels: a boolean per position
    /// that is `true` where the output must be suppressed.
    pub fn suppressed(&self) -> Vec<bool> {
        let mut out = Vec::new();
        self.suppressed_into(&mut out);
        out
    }

    /// As [`Mask::suppressed`], writing into a caller-supplied (typically
    /// workspace-pooled) buffer instead of allocating.
    pub fn suppressed_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend((0..self.structure.len()).map(|i| !self.allows(i)));
    }

    /// Number of positions the mask allows.
    pub fn n_allowed(&self) -> usize {
        (0..self.structure.len())
            .filter(|&i| self.allows(i))
            .count()
    }
}

/// Operation descriptor: the handful of GraphBLAS descriptor switches the
/// algorithms need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Descriptor {
    /// Replace the output entirely (GraphBLAS `GrB_REPLACE`): positions not
    /// written by the operation are reset to the semiring identity instead of
    /// keeping their previous value.  All ops here always produce a fresh
    /// output vector, so this is informational, but kept for API parity.
    pub replace: bool,
    /// Use the transpose of the matrix operand (`GrB_TRAN`).  The [`Matrix`]
    /// object caches its transpose on first use.
    pub transpose: bool,
    /// Traversal direction for `mxv`/`vxm`: push (sparse scatter), pull
    /// (dense sweep), or per-operation automatic selection (the default —
    /// see [`Direction`]).
    pub direction: Direction,
    /// Per-operation override of the scalar/vector kernel selection
    /// ([`SimdPolicy`]); `None` (the default) inherits the context's policy.
    /// Both paths are bit-identical, so this only affects which code runs —
    /// it is the knob the differential harness uses to pin each side.
    pub simd: Option<SimdPolicy>,
}

#[allow(unused_imports)]
use super::matrix::Matrix;

impl Descriptor {
    /// The default descriptor (no transpose, no replace).
    pub fn new() -> Self {
        Self::default()
    }

    /// Descriptor with the transpose flag set.
    pub fn with_transpose() -> Self {
        Descriptor {
            transpose: true,
            ..Default::default()
        }
    }

    /// Descriptor forcing the given traversal direction.
    pub fn with_direction(direction: Direction) -> Self {
        Descriptor {
            direction,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_mask_allows_set_positions() {
        let m = Mask::new(vec![true, false, true]);
        assert!(m.allows(0));
        assert!(!m.allows(1));
        assert!(m.allows(2));
        assert!(!m.allows(7), "out of range defaults to not allowed");
        assert_eq!(m.n_allowed(), 2);
        assert_eq!(m.suppressed(), vec![false, true, false]);
        assert!(!m.is_complemented());
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn complemented_mask_inverts_sense() {
        let m = Mask::complemented(vec![true, false, true]);
        assert!(!m.allows(0));
        assert!(m.allows(1));
        assert!(!m.allows(2));
        assert!(
            m.allows(9),
            "out of range counts as unset, which a complemented mask allows"
        );
        assert_eq!(m.suppressed(), vec![true, false, true]);
        assert!(m.is_complemented());
    }

    #[test]
    fn descriptor_defaults() {
        let d = Descriptor::new();
        assert!(!d.transpose);
        assert!(!d.replace);
        assert_eq!(d.direction, Direction::Auto);
        assert!(Descriptor::with_transpose().transpose);
        assert_eq!(
            Descriptor::with_direction(Direction::Push).direction,
            Direction::Push
        );
        assert_eq!(d.simd, None, "no per-op SIMD override by default");
    }

    #[test]
    fn mask_set_updates_in_place() {
        let mut m = Mask::complemented(vec![false, false]);
        assert!(m.allows(1));
        m.set(1, true);
        assert!(!m.allows(1));
        let mut buf = vec![true; 8];
        m.suppressed_into(&mut buf);
        assert_eq!(buf, vec![false, true]);
    }
}
