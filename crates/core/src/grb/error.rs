//! Typed errors for the fallible GrB entry points (PR 7).
//!
//! Historically every shape violation in the op layer was an `assert!` —
//! acceptable for a standalone algorithm run, fatal for a serving stack
//! where one malformed query detonates a 64-lane batch.  [`GrbError`] is
//! the typed form of every precondition the planner checks; the fallible
//! entry points ([`Context::try_evaluate`](super::Context::try_evaluate),
//! [`MxvBuilder::try_run`](super::op::MxvBuilder::try_run),
//! [`MxmBuilder::try_run`](super::op::MxmBuilder::try_run) and the
//! algorithms' `try_*` wrappers) return it instead of panicking.
//!
//! The panicking entry points (`run`, `evaluate`) are kept as thin wrappers
//! that panic with the error's `Display` text, so existing
//! `#[should_panic(expected = "dimension mismatch")]`-style tests keep
//! their message contracts: every `Display` implementation below preserves
//! the historical assert message as a substring.

/// A typed precondition violation (or injected fault) from the GrB layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrbError {
    /// The contracted dimension of a product does not match the operand
    /// length (`mxv`/`vxm`/`mxm`).
    DimensionMismatch {
        /// Which operation detected the mismatch (`"mxv"`, `"vxm"`, `"mxm"`).
        op: &'static str,
        /// The contracted matrix dimension.
        expected: usize,
        /// The operand length actually supplied.
        got: usize,
    },
    /// Some chain operand (mask, input scale, ewise stage, accumulator) has
    /// the wrong length for the produced output.
    LengthMismatch {
        /// The historical assert message for this operand kind.
        what: &'static str,
        /// The required length.
        expected: usize,
        /// The length actually supplied.
        got: usize,
    },
    /// A traversal source/seed vertex does not exist in the graph.
    SourceOutOfRange {
        /// `"source vertex"` or `"seed vertex"` — matches the historical
        /// panic wording of the algorithm that rejected it.
        what: &'static str,
        /// The offending vertex id.
        source: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A batched entry point was handed zero sources.
    EmptyBatch {
        /// The historical assert message (e.g. `"bfs_multi needs at least
        /// one source"`).
        what: &'static str,
    },
    /// A seeded fail point ([`crate::faultinject`]) injected a transient
    /// error at this dispatch.  Callers treat it like any other transient
    /// failure: safe to retry.
    FaultInjected {
        /// The fail-point name that fired.
        point: &'static str,
    },
}

impl std::fmt::Display for GrbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GrbError::DimensionMismatch { op, expected, got } => write!(
                f,
                "{op} dimension mismatch (contracted dimension {expected}, operand length {got})"
            ),
            GrbError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} (expected {expected}, got {got})"),
            GrbError::SourceOutOfRange { what, source, n } => {
                write!(f, "{what} {source} out of range (n = {n})")
            }
            GrbError::EmptyBatch { what } => f.write_str(what),
            GrbError::FaultInjected { point } => {
                write!(f, "injected transient fault at fail point `{point}`")
            }
        }
    }
}

impl std::error::Error for GrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `Display` keeps the historical assert message as a substring —
    /// the contract that lets the panicking wrappers satisfy the existing
    /// `#[should_panic(expected = ...)]` suites.
    #[test]
    fn display_preserves_historical_messages() {
        let cases: [(GrbError, &str); 5] = [
            (
                GrbError::DimensionMismatch {
                    op: "mxv",
                    expected: 4,
                    got: 5,
                },
                "mxv dimension mismatch",
            ),
            (
                GrbError::LengthMismatch {
                    what: "mask length must equal output length",
                    expected: 4,
                    got: 5,
                },
                "mask length must equal output length",
            ),
            (
                GrbError::SourceOutOfRange {
                    what: "source vertex",
                    source: 10,
                    n: 4,
                },
                "source vertex 10 out of range (n = 4)",
            ),
            (
                GrbError::EmptyBatch {
                    what: "bfs_multi needs at least one source",
                },
                "at least one source",
            ),
            (
                GrbError::FaultInjected {
                    point: "grb.mxv_dispatch",
                },
                "grb.mxv_dispatch",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle:?}"
            );
        }
    }
}
