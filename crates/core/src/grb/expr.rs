//! The lazy expression IR behind the `Op` builders (GraphBLAS non-blocking
//! mode).
//!
//! Since PR 3 the builder methods of [`Op`](super::Op) no longer execute
//! anything: they assemble an [`Expr`] — a small chain-shaped expression
//! graph — and nothing runs until `.run(&ctx)` /
//! [`Context::evaluate`](super::Context::evaluate) hands the graph to the
//! planner in [`super::plan`], which pattern-matches fusable chains and emits
//! fused kernel calls.
//!
//! # Shape of the IR
//!
//! An expression is a *chain*: one [`Producer`] (a leaf vector or a
//! matrix-vector product with its mask/descriptor/input-scaling), followed by
//! up to [`MAX_STAGES`] element-wise [`Stage`]s (apply / select / affine /
//! ewise-with-a-leaf), optionally terminated by a GraphBLAS accumulator
//! (`w ⊕= t`, [`Expr::set_accum`]).  Chains cover every fusable pattern the
//! algorithms produce — mxv+mask+accum, apply/select folded into a consuming
//! ewise pass, collapsed ewise chains — while staying **allocation-free**:
//! the stage list is an inline array of references, never a boxed tree, so
//! building and evaluating an expression in an algorithm's inner loop puts
//! nothing on the heap.  Operations whose operands are themselves unevaluated
//! expressions (e.g. an ewise of two matrix products) are expressed as two
//! chains evaluated in sequence; the planner's node-at-a-time fallback keeps
//! the semantics of any chain identical whether or not it fuses.
//!
//! # Semantics
//!
//! Evaluating a chain is *defined* by its unfused (node-at-a-time)
//! execution:
//!
//! 1. `t = producer` — the masked matrix product (masked-out positions hold
//!    the semiring identity) or a copy of the leaf;
//! 2. each stage transforms `t` element-wise, in order;
//! 3. with an accumulator `(⊕, w)`: `out[i] = w[i] ⊕ t[i]`, else `out = t`.
//!
//! The planner may only fuse a chain into fewer sweeps when the fused kernel
//! provably produces the same result (see [`super::plan`] for the rules);
//! [`Fusion::NodeAtATime`] forces the fallback, which the parity suite and
//! the perf harness use to compare both paths.
//!
//! Building a chain is inert — nothing executes until the context evaluates
//! it:
//!
//! ```
//! use bitgblas_core::grb::{Context, Op};
//! use bitgblas_core::{Backend, BinaryOp, Matrix, Vector};
//! # use bitgblas_sparse::Coo;
//! # let mut coo = Coo::new(3, 3);
//! # coo.push_edge(0, 1).unwrap();
//! # let csr = coo.to_binary_csr();
//! let ctx = Context::default();
//! let a = Matrix::from_csr_ctx(&csr, Backend::FloatCsr, &ctx);
//! let x = Vector::indicator(3, &[0]);
//! let base = Vector::from_vec(vec![0.5, 0.5, 0.5]);
//!
//! // mxv → affine stage → max-accumulator, assembled but not yet run:
//! let expr = Op::mxv(&a, &x)
//!     .affine(2.0, 1.0)
//!     .accum(BinaryOp::Max, &base)
//!     .build();
//!
//! // One fused sweep happens here.
//! let y = ctx.evaluate(expr);
//! assert_eq!(y.get(0), 1.0); // max(base = 0.5, 2·(A·x)[0] + 1 = 1)
//! ```
//!
//! The batched counterpart ([`MultiExpr`], built by
//! [`Op::mxm`](super::Op::mxm)) carries an `n × k` multi-vector through the
//! same stage machinery, with every element-wise step applied to the flat
//! node-major storage — `k` concurrent traversals per sweep.

use crate::semiring::{BinaryOp, Semiring};

use super::descriptor::{Descriptor, Mask};
use super::matrix::Matrix;
use super::multivec::MultiVec;
use super::vector::Vector;

/// Maximum number of element-wise stages one expression chain can carry.
///
/// The capacity is fixed (stages are stored inline) so that building an
/// expression never allocates; algorithm inner loops need 1–3 stages.
pub const MAX_STAGES: usize = 8;

/// Whether the planner may fuse an expression into combined kernel sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fusion {
    /// Fuse whenever a matching fused kernel exists (the default).
    #[default]
    Fused,
    /// Execute one node per sweep — the reference semantics.  Used by the
    /// parity tests and the fused-vs-unfused benchmark rows.
    NodeAtATime,
}

/// One element-wise stage of an expression chain.
///
/// Stages transform the chain's running value `acc` at position `i`.  The
/// closure-carrying variants hold `Sync` references so fused kernels can run
/// them from parallel sweeps; pass closures by reference (`.apply(&f)`) so
/// the expression stays allocation-free.
#[derive(Clone, Copy)]
pub enum Stage<'a> {
    /// `acc = mul · acc + add` — the fusion-friendly form of the affine
    /// `apply`s the algorithms use (PageRank's `α·contrib + teleport`).
    Affine {
        /// Multiplier.
        mul: f32,
        /// Addend.
        add: f32,
    },
    /// `acc = f(acc)` (GraphBLAS `apply`).
    Apply(&'a (dyn Fn(f32) -> f32 + Sync)),
    /// `acc = 1.0 if pred(acc) else 0.0` (GraphBLAS `select`).
    Select(&'a (dyn Fn(f32) -> bool + Sync)),
    /// `acc = op(acc, operand[i])` — one collapsed ewise link.
    Ewise {
        /// The element-wise operator.
        op: BinaryOp,
        /// The second operand.
        operand: &'a [f32],
    },
}

impl Stage<'_> {
    /// Evaluate this stage at position `i` with running value `acc`.
    #[inline]
    pub fn eval(&self, i: usize, acc: f32) -> f32 {
        match self {
            Stage::Affine { mul, add } => mul * acc + add,
            Stage::Apply(f) => f(acc),
            Stage::Select(pred) => {
                if pred(acc) {
                    1.0
                } else {
                    0.0
                }
            }
            Stage::Ewise { op, operand } => op.apply(acc, operand[i]),
        }
    }
}

impl std::fmt::Debug for Stage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Affine { mul, add } => write!(f, "Affine({mul}·x + {add})"),
            Stage::Apply(_) => f.write_str("Apply(fn)"),
            Stage::Select(_) => f.write_str("Select(pred)"),
            Stage::Ewise { op, operand } => write!(f, "Ewise({op:?}, [..{}])", operand.len()),
        }
    }
}

/// The root of an expression chain: what produces the initial value vector.
#[derive(Debug, Clone, Copy)]
pub enum Producer<'a> {
    /// An already-materialized vector (copied into the chain's output).
    Leaf(&'a Vector),
    /// A matrix-vector product over a semiring, with the full descriptor
    /// surface of the builder API.
    Mxv {
        /// The matrix operand.
        a: &'a Matrix,
        /// The vector operand.
        x: &'a Vector,
        /// The semiring of the product.
        semiring: Semiring,
        /// Optional output mask (masked-out positions produce the semiring
        /// identity, exactly like the masked kernel sweeps).
        mask: Option<&'a Mask>,
        /// Descriptor switches (transpose, direction, fusion).
        desc: Descriptor,
        /// `true` for the `vxm` orientation (`y = x ⊕.⊗ A`).
        flip: bool,
        /// Optional input scaling: the operand is read as `x[i] · scale[i]`
        /// (PageRank's out-degree normalisation, folded into the product
        /// instead of materialising a scaled copy through the API).
        scale: Option<&'a Vector>,
    },
}

/// A lazy expression chain: producer → element-wise stages → accumulator.
///
/// Built by the [`Op`](super::Op) builders; evaluated by
/// [`Context::evaluate`](super::Context::evaluate) (or the builders'
/// `.run(&ctx)` shorthand) through the planner.  `Expr` is `Copy` and holds
/// only references — constructing one allocates nothing.
#[derive(Debug, Clone, Copy)]
#[must_use = "expressions do nothing until run(&ctx) / ctx.evaluate(..)"]
pub struct Expr<'a> {
    pub(crate) producer: Producer<'a>,
    /// Inline stage storage; only the first `n_stages` slots are live (the
    /// rest hold identity-affine fillers so the array stays `Copy`).
    stages: [Stage<'a>; MAX_STAGES],
    n_stages: usize,
    pub(crate) accum: Option<(BinaryOp, &'a Vector)>,
    fusion: Fusion,
}

/// The inert filler stage unused slots hold.
const IDENTITY_STAGE: Stage<'static> = Stage::Affine { mul: 1.0, add: 0.0 };

impl<'a> Expr<'a> {
    /// A chain whose producer is an existing vector.
    pub fn leaf(v: &'a Vector) -> Self {
        Self::from_producer(Producer::Leaf(v))
    }

    /// A chain rooted at the given producer (used by the builders).
    pub(crate) fn from_producer(producer: Producer<'a>) -> Self {
        Expr {
            producer,
            stages: [IDENTITY_STAGE; MAX_STAGES],
            n_stages: 0,
            accum: None,
            fusion: Fusion::Fused,
        }
    }

    /// Set whether the planner may fuse this chain.
    pub fn set_fusion(&mut self, fusion: Fusion) {
        self.fusion = fusion;
    }

    /// Whether the planner may fuse this chain.
    pub fn fusion(&self) -> Fusion {
        self.fusion
    }

    /// Append an element-wise stage to the chain.
    ///
    /// # Panics
    /// Panics when the chain already holds [`MAX_STAGES`] stages.
    pub fn push_stage(&mut self, stage: Stage<'a>) {
        assert!(
            self.n_stages < MAX_STAGES,
            "expression chain exceeds {MAX_STAGES} stages; evaluate intermediate results"
        );
        self.stages[self.n_stages] = stage;
        self.n_stages += 1;
    }

    /// Terminate the chain with a GraphBLAS accumulator: the evaluated
    /// result becomes `out[i] = w[i] ⊕ t[i]`.
    pub fn set_accum(&mut self, op: BinaryOp, w: &'a Vector) {
        self.accum = Some((op, w));
    }

    /// The chain's element-wise stages, in evaluation order.
    pub fn stages(&self) -> &[Stage<'a>] {
        &self.stages[..self.n_stages]
    }

    /// Number of element-wise stages in the chain.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }
}

/// Run every stage in order at position `i`, starting from `acc`.
#[inline]
pub fn eval_stages(stages: &[Stage<'_>], i: usize, mut acc: f32) -> f32 {
    for s in stages {
        acc = s.eval(i, acc);
    }
    acc
}

// ---------------------------------------------------------------------------
// Batched (multi-vector) expression chains
// ---------------------------------------------------------------------------

/// The root of a batched expression chain: what produces the initial
/// `n × k` frontier matrix.
#[derive(Debug, Clone, Copy)]
pub enum MultiProducer<'a> {
    /// An already-materialized multi-vector (copied into the output).
    Leaf(&'a MultiVec),
    /// A matrix × multivector product over a semiring — `k` simultaneous
    /// traversals advanced by one sweep.
    Mxm {
        /// The matrix operand.
        a: &'a Matrix,
        /// The `n × k` multivector operand (one lane per concurrent query).
        x: &'a MultiVec,
        /// The semiring of the product.
        semiring: Semiring,
        /// Optional flat per-lane output mask (length `produced · k`,
        /// position `i*k + l` gates node `i` of lane `l`); masked-out
        /// positions produce the semiring identity.
        mask: Option<&'a Mask>,
        /// Descriptor switches (transpose, direction).
        desc: Descriptor,
        /// Optional per-node input scaling: lane `l` of node `i` is read as
        /// `x[i*k+l] · scale[i]` (the batched analogue of PageRank's
        /// out-degree normalisation).
        scale: Option<&'a Vector>,
    },
}

/// A lazy batched expression chain: multi-vector producer → element-wise
/// stages → accumulator, mirroring [`Expr`] lane-for-lane.
///
/// Stages run over the **flat** node-major `n × k` storage, so the same
/// [`Stage`] machinery (and the same fusion rules) applies: an ewise stage's
/// operand and the accumulator baseline are multi-vectors of the same shape,
/// indexed by flat position `i*k + l`.  Built by
/// [`Op::mxm`](super::Op::mxm); evaluated by
/// [`Context::evaluate_multi`](super::Context::evaluate_multi).
#[derive(Debug, Clone, Copy)]
#[must_use = "expressions do nothing until run(&ctx) / ctx.evaluate_multi(..)"]
pub struct MultiExpr<'a> {
    pub(crate) producer: MultiProducer<'a>,
    stages: [Stage<'a>; MAX_STAGES],
    n_stages: usize,
    pub(crate) accum: Option<(BinaryOp, &'a MultiVec)>,
    fusion: Fusion,
}

impl<'a> MultiExpr<'a> {
    /// A chain whose producer is an existing multi-vector.
    pub fn leaf(v: &'a MultiVec) -> Self {
        Self::from_producer(MultiProducer::Leaf(v))
    }

    /// A chain rooted at the given producer (used by the builders).
    pub(crate) fn from_producer(producer: MultiProducer<'a>) -> Self {
        MultiExpr {
            producer,
            stages: [IDENTITY_STAGE; MAX_STAGES],
            n_stages: 0,
            accum: None,
            fusion: Fusion::Fused,
        }
    }

    /// Set whether the planner may fuse this chain's epilogue.
    pub fn set_fusion(&mut self, fusion: Fusion) {
        self.fusion = fusion;
    }

    /// Whether the planner may fuse this chain's epilogue.
    pub fn fusion(&self) -> Fusion {
        self.fusion
    }

    /// Append an element-wise stage (applied to every lane of every node).
    ///
    /// # Panics
    /// Panics when the chain already holds [`MAX_STAGES`] stages.
    pub fn push_stage(&mut self, stage: Stage<'a>) {
        assert!(
            self.n_stages < MAX_STAGES,
            "expression chain exceeds {MAX_STAGES} stages; evaluate intermediate results"
        );
        self.stages[self.n_stages] = stage;
        self.n_stages += 1;
    }

    /// Terminate the chain with a GraphBLAS accumulator: the evaluated
    /// result becomes `out[i,l] = w[i,l] ⊕ t[i,l]`.
    pub fn set_accum(&mut self, op: BinaryOp, w: &'a MultiVec) {
        self.accum = Some((op, w));
    }

    /// The chain's element-wise stages, in evaluation order.
    pub fn stages(&self) -> &[Stage<'a>] {
        &self.stages[..self.n_stages]
    }

    /// Number of element-wise stages in the chain.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_evaluate_in_order() {
        let operand = [10.0f32, 20.0, 30.0];
        let double = |v: f32| v * 2.0;
        let v = Vector::zeros(3);
        let mut e = Expr::leaf(&v);
        e.push_stage(Stage::Apply(&double));
        e.push_stage(Stage::Affine { mul: 1.0, add: 3.0 });
        e.push_stage(Stage::Ewise {
            op: BinaryOp::Plus,
            operand: &operand,
        });
        // (1.0·2 + 3) + operand[1] = 25.0
        assert_eq!(eval_stages(e.stages(), 1, 1.0), 25.0);
        assert_eq!(e.n_stages(), 3);
    }

    #[test]
    fn select_and_affine_stage_eval() {
        let pos = |v: f32| v > 0.5;
        assert_eq!(Stage::Select(&pos).eval(0, 0.7), 1.0);
        assert_eq!(Stage::Select(&pos).eval(0, 0.2), 0.0);
        assert_eq!(Stage::Affine { mul: 2.0, add: 1.0 }.eval(9, 3.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn chain_capacity_is_enforced() {
        let v = Vector::zeros(1);
        let mut e = Expr::leaf(&v);
        for _ in 0..=MAX_STAGES {
            e.push_stage(Stage::Affine { mul: 1.0, add: 0.0 });
        }
    }

    #[test]
    fn debug_formatting_is_total() {
        let v = Vector::zeros(2);
        let f = |v: f32| v;
        let p = |_: f32| true;
        let operand = [0.0f32; 2];
        let mut e = Expr::leaf(&v);
        e.push_stage(Stage::Apply(&f));
        e.push_stage(Stage::Select(&p));
        e.push_stage(Stage::Ewise {
            op: BinaryOp::Min,
            operand: &operand,
        });
        let s = format!("{e:?}");
        assert!(s.contains("Apply"), "{s}");
        assert!(s.contains("Select"), "{s}");
    }
}
