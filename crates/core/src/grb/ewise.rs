//! Element-wise slice helpers behind the GrB layer.
//!
//! GraphBLAS algorithms interleave the matrix products with element-wise
//! scalar updates of the frontier/result vectors (the "several element-wise
//! scalar operations" per iteration the paper mentions in §VI-E).  The slice
//! helpers here are the shared implementations behind the
//! [`GrbBackend`](super::GrbBackend) default methods; user-facing
//! element-wise operations go through the lazy chain builders of
//! [`Op`](super::Op) (`Op::ewise_add(&a, &b).apply(&f).run(&ctx)`), which
//! collapse whole chains into one sweep.  The pre-0.2 deprecated
//! free functions were removed in PR 3.

use crate::semiring::Semiring;

use super::descriptor::Mask;
use super::vector::Vector;

/// `out[i] = a[i] ⊕ b[i]` over raw slices (the shared implementation).
pub(crate) fn ewise_add_slices(a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
    let mut out = Vec::new();
    ewise_add_into(a, b, semiring, &mut out);
    out
}

/// As [`ewise_add_slices`], appending into a caller-supplied (typically
/// workspace-pooled) buffer.
pub(crate) fn ewise_add_into(a: &[f32], b: &[f32], semiring: Semiring, out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| semiring.reduce(x, y)));
}

/// `out[i] = a[i] ⊗ b[i]` over raw slices (the shared implementation).
pub(crate) fn ewise_mult_slices(a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
    let mut out = Vec::new();
    ewise_mult_into(a, b, semiring, &mut out);
    out
}

/// As [`ewise_mult_slices`], appending into a caller-supplied buffer.
pub(crate) fn ewise_mult_into(a: &[f32], b: &[f32], semiring: Semiring, out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| match semiring {
        Semiring::Boolean => {
            if x != 0.0 && y != 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Semiring::Arithmetic => x * y,
        Semiring::MinPlus(_) => x + y,
        Semiring::MaxTimes(_) => x * y,
    }));
}

/// Masked assignment: copy `src[i]` into `dst[i]` wherever the mask allows
/// it, leaving the other positions untouched (GraphBLAS `assign` with a
/// mask and no replace).
pub fn assign_masked(dst: &mut Vector, src: &Vector, mask: &Mask) {
    assert_eq!(dst.len(), src.len(), "assign_masked requires equal lengths");
    for i in 0..dst.len() {
        if mask.allows(i) {
            dst.set(i, src.get(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewise_add_slices_use_the_additive_monoid() {
        let a = [1.0, 5.0, f32::INFINITY];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(
            ewise_add_slices(&a, &b, Semiring::Arithmetic),
            vec![3.0, 8.0, f32::INFINITY]
        );
        assert_eq!(
            ewise_add_slices(&a, &b, Semiring::MinPlus(1.0)),
            vec![1.0, 3.0, 4.0]
        );
        assert_eq!(
            ewise_add_slices(&a, &b, Semiring::MaxTimes(1.0)),
            vec![2.0, 5.0, f32::INFINITY]
        );
        assert_eq!(
            ewise_add_slices(&[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0], Semiring::Boolean),
            vec![0.0, 1.0, 1.0]
        );
    }

    #[test]
    fn ewise_mult_slices_follow_the_multiplicative_op() {
        let a = [2.0, 0.0, 3.0];
        let b = [4.0, 5.0, 0.5];
        assert_eq!(
            ewise_mult_slices(&a, &b, Semiring::Arithmetic),
            vec![8.0, 0.0, 1.5]
        );
        assert_eq!(
            ewise_mult_slices(&a, &b, Semiring::MinPlus(0.0)),
            vec![6.0, 5.0, 3.5]
        );
        assert_eq!(
            ewise_mult_slices(&a, &b, Semiring::Boolean),
            vec![1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn assign_masked_only_touches_allowed_positions() {
        let mut dst = Vector::from_vec(vec![0.0; 4]);
        let src = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mask = Mask::new(vec![true, false, true, false]);
        assign_masked(&mut dst, &src, &mask);
        assert_eq!(dst.as_slice(), &[1.0, 0.0, 3.0, 0.0]);

        let complemented = Mask::complemented(vec![true, false, true, false]);
        assign_masked(&mut dst, &src, &complemented);
        assert_eq!(dst.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
