//! Element-wise GraphBLAS operations on vectors.
//!
//! GraphBLAS algorithms interleave the matrix products with element-wise
//! scalar updates of the frontier/result vectors (the "several element-wise
//! scalar operations" per iteration the paper mentions in §VI-E).  The slice
//! helpers here are the shared implementations behind the
//! [`GrbBackend`](super::GrbBackend) default methods and the
//! [`Op`](super::Op) builders; the old free functions remain as deprecated
//! shims.

use crate::semiring::Semiring;

use super::descriptor::Mask;
use super::op::{Context, Op};
use super::vector::Vector;

/// `out[i] = a[i] ⊕ b[i]` over raw slices (the shared implementation).
pub(crate) fn ewise_add_slices(a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
    let mut out = Vec::new();
    ewise_add_into(a, b, semiring, &mut out);
    out
}

/// As [`ewise_add_slices`], appending into a caller-supplied (typically
/// workspace-pooled) buffer.
pub(crate) fn ewise_add_into(a: &[f32], b: &[f32], semiring: Semiring, out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| semiring.reduce(x, y)));
}

/// `out[i] = a[i] ⊗ b[i]` over raw slices (the shared implementation).
pub(crate) fn ewise_mult_slices(a: &[f32], b: &[f32], semiring: Semiring) -> Vec<f32> {
    let mut out = Vec::new();
    ewise_mult_into(a, b, semiring, &mut out);
    out
}

/// As [`ewise_mult_slices`], appending into a caller-supplied buffer.
pub(crate) fn ewise_mult_into(a: &[f32], b: &[f32], semiring: Semiring, out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| match semiring {
        Semiring::Boolean => {
            if x != 0.0 && y != 0.0 {
                1.0
            } else {
                0.0
            }
        }
        Semiring::Arithmetic => x * y,
        Semiring::MinPlus(_) => x + y,
        Semiring::MaxTimes(_) => x * y,
    }));
}

/// Element-wise "addition": `out[i] = a[i] ⊕ b[i]` with the additive monoid
/// of the semiring (sum, min, max or logical OR).
#[deprecated(
    since = "0.2.0",
    note = "use `Op::ewise_add(&a, &b).semiring(s).run(&ctx)`"
)]
pub fn ewise_add(a: &Vector, b: &Vector, semiring: Semiring) -> Vector {
    assert_eq!(a.len(), b.len(), "ewise_add requires equal lengths");
    Op::ewise_add(a, b)
        .semiring(semiring)
        .run(&Context::default())
}

/// Element-wise "multiplication": `out[i] = a[i] ⊗ b[i]`.  For the
/// arithmetic semiring this is the Hadamard product; for min-plus it adds
/// the two operands; for Boolean it is a logical AND.
#[deprecated(
    since = "0.2.0",
    note = "use `Op::ewise_mult(&a, &b).semiring(s).run(&ctx)`"
)]
pub fn ewise_mult(a: &Vector, b: &Vector, semiring: Semiring) -> Vector {
    assert_eq!(a.len(), b.len(), "ewise_mult requires equal lengths");
    Op::ewise_mult(a, b)
        .semiring(semiring)
        .run(&Context::default())
}

/// Apply a unary function to every entry: `out[i] = f(a[i])` (GraphBLAS
/// `apply`).
#[deprecated(since = "0.2.0", note = "use `Op::apply(&a, f).run(&ctx)`")]
pub fn apply<F: Fn(f32) -> f32>(a: &Vector, f: F) -> Vector {
    Op::apply(a, f).run(&Context::default())
}

/// Masked assignment: copy `src[i]` into `dst[i]` wherever the mask allows
/// it, leaving the other positions untouched (GraphBLAS `assign` with a
/// mask and no replace).
pub fn assign_masked(dst: &mut Vector, src: &Vector, mask: &Mask) {
    assert_eq!(dst.len(), src.len(), "assign_masked requires equal lengths");
    for i in 0..dst.len() {
        if mask.allows(i) {
            dst.set(i, src.get(i));
        }
    }
}

/// Select the entries that satisfy a predicate, producing an indicator
/// vector (1.0 where the predicate holds) — GraphBLAS `select` specialised
/// to the uses in the algorithms (frontier extraction).
#[deprecated(since = "0.2.0", note = "use `Op::select(&a, pred).run(&ctx)`")]
pub fn select<F: Fn(f32) -> bool>(a: &Vector, pred: F) -> Vector {
    Op::select(a, pred).run(&Context::default())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn ewise_add_uses_the_additive_monoid() {
        let a = Vector::from_vec(vec![1.0, 5.0, f32::INFINITY]);
        let b = Vector::from_vec(vec![2.0, 3.0, 4.0]);
        assert_eq!(
            ewise_add(&a, &b, Semiring::Arithmetic).as_slice(),
            &[3.0, 8.0, f32::INFINITY]
        );
        assert_eq!(
            ewise_add(&a, &b, Semiring::MinPlus(1.0)).as_slice(),
            &[1.0, 3.0, 4.0]
        );
        assert_eq!(
            ewise_add(&a, &b, Semiring::MaxTimes(1.0)).as_slice(),
            &[2.0, 5.0, f32::INFINITY]
        );
        let bools = ewise_add(
            &Vector::from_vec(vec![0.0, 1.0, 0.0]),
            &Vector::from_vec(vec![0.0, 0.0, 2.0]),
            Semiring::Boolean,
        );
        assert_eq!(bools.as_slice(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn ewise_mult_follows_the_multiplicative_op() {
        let a = Vector::from_vec(vec![2.0, 0.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 0.5]);
        assert_eq!(
            ewise_mult(&a, &b, Semiring::Arithmetic).as_slice(),
            &[8.0, 0.0, 1.5]
        );
        assert_eq!(
            ewise_mult(&a, &b, Semiring::MinPlus(0.0)).as_slice(),
            &[6.0, 5.0, 3.5]
        );
        assert_eq!(
            ewise_mult(&a, &b, Semiring::Boolean).as_slice(),
            &[1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn apply_and_select() {
        let a = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(apply(&a, f32::abs).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(select(&a, |x| x > 0.0).as_slice(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn assign_masked_only_touches_allowed_positions() {
        let mut dst = Vector::from_vec(vec![0.0; 4]);
        let src = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mask = Mask::new(vec![true, false, true, false]);
        assign_masked(&mut dst, &src, &mask);
        assert_eq!(dst.as_slice(), &[1.0, 0.0, 3.0, 0.0]);

        let complemented = Mask::complemented(vec![true, false, true, false]);
        assign_masked(&mut dst, &src, &complemented);
        assert_eq!(dst.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = ewise_add(&Vector::zeros(2), &Vector::zeros(3), Semiring::Arithmetic);
    }
}
