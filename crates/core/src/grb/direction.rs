//! Traversal direction: push (sparse-frontier scatter) vs pull (dense sweep).
//!
//! A BFS/SSSP iteration with a handful of active vertices does not need to
//! sweep every tile-row of the matrix — the classic SpMV-vs-SpMSpV
//! (pull-vs-push) split of direction-optimizing traversal (Beamer et al.).
//! The GrB layer exposes the choice as a [`Direction`] descriptor switch:
//!
//! * [`Direction::Pull`] — the dense sweep: every output row reduces over
//!   its incoming edges.  One pass over the whole matrix, perfectly
//!   streaming, parallel; cost is independent of the frontier size.
//! * [`Direction::Push`] — the sparse scatter: only the frontier's rows are
//!   walked and their out-edges scattered into the output.  Cost is
//!   proportional to the frontier's edge count, but the writes are random.
//! * [`Direction::Auto`] — decide per operation from the frontier density,
//!   using the same first-order memory-traffic reasoning as the
//!   [`Backend::Auto`](super::Backend) format selection.
//!
//! # The threshold
//!
//! Pull streams the whole matrix plus the operand vector once:
//! `pull_bytes ∝ nnz + n`.  Push touches `f · d̄` edges (`f` = frontier
//! size, `d̄` = average degree), but every scattered write lands on a random
//! cache line, so each push edge costs a whole memory transaction where a
//! pull edge costs its coalesced share — a penalty of
//! `transaction_bytes / edge_bytes` taken from the device profile the
//! [`Context`](super::Context) already carries for format selection.  Push
//! wins while
//!
//! ```text
//! f · d̄ · penalty  <  nnz + n        (penalty = transaction_bytes / 8,
//!                                      clamped to [4, 32]; 16 on both
//!                                      Table-VI devices)
//! ```
//!
//! which for `nnz ≫ n` reduces to the familiar Beamer-style `f < n / α`
//! with `α ≈ penalty` — the textbook α ≈ 14 rediscovered from the traffic
//! model.

use bitgblas_perfmodel::DeviceProfile;

use crate::semiring::Semiring;

/// Which traversal direction an `mxv`/`vxm` executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Sparse-frontier scatter (SpMSpV): walk only the active rows.
    Push,
    /// Dense sweep (SpMV): reduce every output row over its edges.
    Pull,
    /// Pick per operation from the frontier density (the default).
    #[default]
    Auto,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
            Direction::Auto => "auto",
        })
    }
}

/// The modelled cost multiplier of one scattered (push) edge relative to one
/// streamed (pull) edge: a random write wastes a whole global-memory
/// transaction where the pull sweep pays ~8 coalesced bytes per edge.
pub fn scatter_penalty(device: &DeviceProfile) -> f64 {
    (device.transaction_bytes as f64 / 8.0).clamp(4.0, 32.0)
}

/// The parallelism-aware scatter penalty (PR 5).
///
/// The base penalty prices one scattered edge against one streamed pull
/// edge *at equal parallelism*.  When the push engine runs on fewer worker
/// threads than the pull sweep fans out to (`push_threads <
/// pull_threads`), every push edge is additionally slower by the thread
/// ratio — this is exactly the miscalibration the pre-PR-5 model had
/// baked in permanently: it compared a parallel pull against a serial push
/// with the equal-parallelism α, overpricing pull and flipping to push too
/// late to matter and too often to be cheap.  With the sharded engine both
/// sides scale, the ratio is 1 and α returns to the device-derived
/// transaction penalty.
pub fn scatter_penalty_parallel(
    device: &DeviceProfile,
    push_threads: usize,
    pull_threads: usize,
) -> f64 {
    scatter_penalty_parallel_alpha(scatter_penalty(device), push_threads, pull_threads)
}

/// [`scatter_penalty_parallel`] with an explicit base penalty α (PR 9).
///
/// The static entry points derive α from the device profile's transaction
/// width; a [`Context`](super::Context) that has run
/// [`calibrate`](super::Context::calibrate) passes the *measured*
/// random-vs-sequential bandwidth ratio instead, so the direction model
/// prices scattered writes at what this host actually charges for them.
pub fn scatter_penalty_parallel_alpha(alpha: f64, push_threads: usize, pull_threads: usize) -> f64 {
    let ratio = (pull_threads.max(1) as f64 / push_threads.max(1) as f64).max(1.0);
    (alpha * ratio).clamp(4.0, 256.0)
}

/// Resolve [`Direction::Auto`] for one operation: `frontier_nnz` active
/// entries of an `n`-long operand against a matrix with `nnz` edges.
///
/// Returns [`Direction::Pull`] for semirings where identity-valued entries
/// still contribute (see [`Semiring::push_safe`]); otherwise compares the
/// modelled push traffic (frontier edges × scatter penalty) against the pull
/// sweep (`nnz + n`).
pub fn choose_direction(
    frontier_nnz: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    device: &DeviceProfile,
) -> Direction {
    choose_direction_cfg(frontier_nnz, n, nnz, semiring, device, 1, 1)
}

/// Resolve [`Direction::Auto`] with an explicit parallelism configuration
/// (PR 5): `push_threads` is the sharded scatter's worker budget
/// ([`Context::threads`](super::Context::threads)), `pull_threads` the
/// parallelism of the dense sweep (the host's, since the pull kernels fan
/// out through the global rayon pool).
///
/// Two terms change against the classic formula.  The scatter penalty α
/// becomes [`scatter_penalty_parallel`] — the device transaction penalty
/// scaled by the pull/push thread ratio, so a serial push (`push_threads ==
/// 1` on a parallel host) is priced α·P, flipping to pull earlier, while
/// the sharded parallel push keeps the pure transaction α.  And when the
/// sharded engine can engage (`push_threads > 1`), the push side carries
/// one extra streamed output pass (`+ n`) for the deterministic
/// fixed-order merge of the privatized shard buffers:
///
/// ```text
/// f · d̄ · α(push_threads, pull_threads)  [+ n]   <   nnz + n
/// ```
pub fn choose_direction_cfg(
    frontier_nnz: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    device: &DeviceProfile,
    push_threads: usize,
    pull_threads: usize,
) -> Direction {
    choose_direction_tuned(
        frontier_nnz,
        n,
        nnz,
        semiring,
        scatter_penalty(device),
        push_threads,
        pull_threads,
    )
}

/// [`choose_direction_cfg`] with an explicit base scatter penalty α — the
/// entry point the planner uses once a [`Context`](super::Context) carries a
/// calibrated profile (PR 9).  Identical threshold, only the source of α
/// changes: static device constant vs measured random-write cost.
#[allow(clippy::too_many_arguments)]
pub fn choose_direction_tuned(
    frontier_nnz: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    alpha: f64,
    push_threads: usize,
    pull_threads: usize,
) -> Direction {
    if !semiring.push_safe() {
        return Direction::Pull;
    }
    let avg_deg = (nnz as f64 / n.max(1) as f64).max(1.0);
    let alpha = scatter_penalty_parallel_alpha(alpha, push_threads, pull_threads);
    let merge = if push_threads > 1 { n as f64 } else { 0.0 };
    let push_cost = frontier_nnz as f64 * avg_deg * alpha + merge;
    let pull_cost = nnz as f64 + n as f64;
    if push_cost < pull_cost {
        Direction::Push
    } else {
        Direction::Pull
    }
}

/// Resolve [`Direction::Auto`] for one **batched** (matrix × multivector)
/// operation: `active_nodes` nodes have at least one of the `k` lanes
/// differing from the semiring identity.
///
/// The Beamer threshold generalizes across lanes: a batched push scatter
/// visits each active node's edge list **once** and scatters all `k` lane
/// contributions per edge, while the batched pull sweep streams the whole
/// matrix once and reduces `k` lanes per edge — both sides of the
/// single-vector inequality scale by the same per-edge lane factor, so the
/// crossover is the single-vector threshold evaluated on the *node-granular*
/// frontier (the lane-summed frontier nnz collapsed per node):
///
/// ```text
/// active_nodes · d̄ · penalty  <  nnz + n
/// ```
pub fn choose_direction_multi(
    active_nodes: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    device: &DeviceProfile,
) -> Direction {
    choose_direction(active_nodes, n, nnz, semiring, device)
}

/// [`choose_direction_multi`] with an explicit parallelism configuration —
/// the batched counterpart of [`choose_direction_cfg`].  The lane factor
/// cancels on both sides of the inequality exactly as in the
/// equal-parallelism case, so this is the single-vector configured
/// threshold evaluated on the node-granular frontier.
#[allow(clippy::too_many_arguments)]
pub fn choose_direction_multi_cfg(
    active_nodes: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    device: &DeviceProfile,
    push_threads: usize,
    pull_threads: usize,
) -> Direction {
    choose_direction_cfg(
        active_nodes,
        n,
        nnz,
        semiring,
        device,
        push_threads,
        pull_threads,
    )
}

/// [`choose_direction_multi_cfg`] with an explicit base scatter penalty —
/// the batched counterpart of [`choose_direction_tuned`].
#[allow(clippy::too_many_arguments)]
pub fn choose_direction_multi_tuned(
    active_nodes: usize,
    n: usize,
    nnz: usize,
    semiring: Semiring,
    alpha: f64,
    push_threads: usize,
    pull_threads: usize,
) -> Direction {
    choose_direction_tuned(
        active_nodes,
        n,
        nnz,
        semiring,
        alpha,
        push_threads,
        pull_threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_perfmodel::{pascal_gtx1080, volta_titanv};

    #[test]
    fn default_is_auto_and_display_is_lowercase() {
        assert_eq!(Direction::default(), Direction::Auto);
        assert_eq!(Direction::Push.to_string(), "push");
        assert_eq!(Direction::Pull.to_string(), "pull");
        assert_eq!(Direction::Auto.to_string(), "auto");
    }

    #[test]
    fn penalty_comes_from_the_transaction_width() {
        // 128-byte transactions on both Table-VI devices → penalty 16.
        assert_eq!(scatter_penalty(&pascal_gtx1080()), 16.0);
        assert_eq!(scatter_penalty(&volta_titanv()), 16.0);
    }

    #[test]
    fn sparse_frontiers_push_and_dense_frontiers_pull() {
        let dev = pascal_gtx1080();
        let (n, nnz) = (8192, 8192 * 16);
        let sr = Semiring::Boolean;
        assert_eq!(choose_direction(1, n, nnz, sr, &dev), Direction::Push);
        assert_eq!(choose_direction(0, n, nnz, sr, &dev), Direction::Push);
        assert_eq!(choose_direction(n, n, nnz, sr, &dev), Direction::Pull);
        // The crossover sits near n / penalty for nnz >> n.
        let threshold = (nnz + n) / (16 * 16);
        assert_eq!(
            choose_direction(threshold / 2, n, nnz, sr, &dev),
            Direction::Push
        );
        assert_eq!(
            choose_direction(threshold * 2, n, nnz, sr, &dev),
            Direction::Pull
        );
    }

    #[test]
    fn serial_push_on_a_parallel_host_is_penalized() {
        let dev = pascal_gtx1080();
        // Equal parallelism: the pure transaction penalty.
        assert_eq!(scatter_penalty_parallel(&dev, 8, 8), 16.0);
        assert_eq!(scatter_penalty_parallel(&dev, 1, 1), 16.0);
        // Serial push vs an 8-wide pull: α scales by the thread ratio.
        assert_eq!(scatter_penalty_parallel(&dev, 1, 8), 128.0);
        // More push than pull workers never *discounts* below the device α.
        assert_eq!(scatter_penalty_parallel(&dev, 16, 8), 16.0);
        // The ratio is clamped so a pathological configuration cannot
        // drive the penalty to infinity.
        assert_eq!(scatter_penalty_parallel(&dev, 1, 1_000_000), 256.0);
    }

    #[test]
    fn configured_threshold_flips_earlier_for_serial_push() {
        let dev = pascal_gtx1080();
        let (n, nnz) = (8192, 8192 * 16);
        let sr = Semiring::Boolean;
        // A frontier that pushes under equal parallelism…
        let f = (nnz + n) / (16 * 16) / 2;
        assert_eq!(
            choose_direction_cfg(f, n, nnz, sr, &dev, 8, 8),
            Direction::Push
        );
        // …pulls when the push side would run serially against an 8-wide
        // pull sweep (α × 8 prices it out).
        assert_eq!(
            choose_direction_cfg(f, n, nnz, sr, &dev, 1, 8),
            Direction::Pull
        );
        // Tiny frontiers still push even with the merge surcharge.
        assert_eq!(
            choose_direction_cfg(1, n, nnz, sr, &dev, 8, 8),
            Direction::Push
        );
        // The batched variant agrees with the single-vector one.
        assert_eq!(
            choose_direction_multi_cfg(f, n, nnz, sr, &dev, 1, 8),
            Direction::Pull
        );
        // The legacy entry point is the equal-parallelism configuration.
        assert_eq!(
            choose_direction(f, n, nnz, sr, &dev),
            choose_direction_cfg(f, n, nnz, sr, &dev, 1, 1)
        );
    }

    #[test]
    fn tuned_threshold_honors_a_measured_alpha() {
        let dev = pascal_gtx1080();
        let (n, nnz) = (8192, 8192 * 16);
        let sr = Semiring::Boolean;
        // The static entry points are exactly the tuned ones evaluated at
        // the device-derived α.
        for f in [1usize, 64, 512, 4096] {
            assert_eq!(
                choose_direction_cfg(f, n, nnz, sr, &dev, 4, 8),
                choose_direction_tuned(f, n, nnz, sr, scatter_penalty(&dev), 4, 8),
                "f={f}"
            );
        }
        // A frontier right between the α=8 and α=32 crossovers flips with
        // the measured penalty.
        let f = (nnz + n) / (16 * 16);
        assert_eq!(
            choose_direction_tuned(f, n, nnz, sr, 8.0, 1, 1),
            Direction::Push
        );
        assert_eq!(
            choose_direction_tuned(f, n, nnz, sr, 32.0, 1, 1),
            Direction::Pull
        );
        // The batched variant delegates to the same threshold.
        assert_eq!(
            choose_direction_multi_tuned(f, n, nnz, sr, 8.0, 1, 1),
            Direction::Push
        );
        // α is still clamped (a degenerate measurement cannot zero it out).
        assert_eq!(scatter_penalty_parallel_alpha(0.0, 1, 1), 4.0);
        assert_eq!(scatter_penalty_parallel_alpha(1e9, 1, 1), 256.0);
    }

    #[test]
    fn push_unsafe_semirings_always_pull() {
        let dev = pascal_gtx1080();
        // MaxTimes with a non-positive factor cannot skip identity entries.
        assert_eq!(
            choose_direction(1, 1000, 16_000, Semiring::MaxTimes(-2.0), &dev),
            Direction::Pull
        );
        assert_eq!(
            choose_direction(1, 1000, 16_000, Semiring::MaxTimes(2.0), &dev),
            Direction::Push
        );
    }
}
