//! The reusable-buffer pool and execution counters behind
//! [`Context`](super::Context).
//!
//! Every `Op::...run(&ctx)` used to allocate its output, packing and mask
//! buffers afresh, which put a heap allocation (or several) on every
//! iteration of every algorithm inner loop.  A [`Workspace`] turns the
//! [`Context`](super::Context) into a real execution resource: operations
//! check buffers out of the pool, size them, and return them when done, so a
//! steady-state traversal loop (same vector lengths every iteration) performs
//! **zero** heap allocations after its first couple of iterations — see
//! `crates/core/tests/zero_alloc.rs` for the allocation-counter proof.
//!
//! # Sharded shelves (PR 5)
//!
//! The pool used to be one global `Mutex<BufferPool>`; with the sharded
//! parallel push engine, concurrent evaluations against one context (the
//! heavy-traffic serving shape) would all serialize on that lock.  The pool
//! is now **striped**: several independently locked [`BufferPool`] shelves,
//! and each thread is hashed to a *home stripe* it takes from and gives to,
//! so concurrent callers on different threads touch different locks.  The
//! sharded scatter kernels additionally check their per-segment buffers out
//! *before* fanning out (one flat scratch buffer, split into per-segment
//! chunks), so worker threads never touch the pool at all mid-kernel.
//!
//! The workspace also carries the push-engine thread budget
//! ([`Workspace::push_threads`], configured through
//! [`Context::set_threads`](super::Context::set_threads)) so the backends —
//! which only see the workspace — know how wide the sharded scatter may fan
//! out.
//!
//! # Ownership rules
//!
//! * `take_empty`/`take` transfer ownership of a pooled `Vec` to the caller;
//!   the pool keeps no reference.  The buffer's *capacity* is recycled, its
//!   contents are always reset (`take_empty` clears, `take` clears and
//!   refills), so no data leaks between operations.
//! * `give` transfers ownership back.  Giving a buffer is optional — a
//!   buffer that escapes (e.g. inside the [`Vector`](super::Vector) an op
//!   returns) is simply dropped by its new owner, and the pool refills from
//!   later `give`s.  Algorithms that want allocation-free steady state
//!   return their previous iteration's vector with
//!   [`Context::recycle`](super::Context::recycle).
//! * Each stripe's shelf is capped in buffer count ([`SHELF_CAP`]) **and**
//!   in bytes ([`SHELF_BYTE_CAP`]): recycling many differently-sized vectors
//!   evicts the oldest shelved buffers beyond the byte high-water mark, so a
//!   pathological caller cannot hoard unbounded memory inside a long-lived
//!   context.  The most recently given buffer always survives — it is the
//!   one sized for the current steady state.  (The caps are per stripe; the
//!   worst-case total is `stripes × cap`, with the stripe count a small
//!   constant derived from host parallelism.)
//!
//! Stripes are behind `Mutex`es (not `RefCell`s) so that a `Context` — and
//! the [`Matrix`](super::Matrix) that carries one — stays `Send + Sync`.
//! Operations hold a lock only while popping/pushing a buffer, never across
//! a kernel.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::kernels::simd::{lane_mask_bit, SimdPolicy, DEFAULT_LANE_MASK};
use crate::shard::machine_parallelism;

/// Environment variable overriding the workspace's initial [`SimdPolicy`]
/// (values as accepted by `SimdPolicy::from_str`: `auto`, `scalar`,
/// `vector`, …).  Read once per [`Workspace::new`], so a test or an operator
/// can flip it between context constructions.
pub const SIMD_ENV_VAR: &str = "BITGBLAS_SIMD";

/// Maximum number of recycled buffers kept per element type (per stripe).
pub const SHELF_CAP: usize = 32;

/// Byte high-water mark per shelf (per stripe): when the recycled buffers of
/// one element type exceed this, the oldest are evicted (the newest always
/// survives).  Generous enough that steady-state algorithm loops — a handful
/// of graph-sized vectors — never hit it; only callers recycling many
/// differently-sized buffers do.
pub const SHELF_BYTE_CAP: usize = 8 << 20;

/// Element types the workspace pool can hold buffers of.
///
/// Implemented for the kernel-facing scalar types: `f32` (dense vectors),
/// `bool` (mask views), `usize` (frontier index lists), the three B2SR
/// packing words (`u8`, `u16`, `u32`) and the multi-vector lane words
/// (`u64`).
pub trait Poolable: Copy + Send + 'static {
    /// The shelf of recycled buffers for this element type.
    fn shelf(pool: &mut BufferPool) -> &mut Vec<Vec<Self>>;
}

/// The typed shelves of recycled buffers (one stripe of a [`Workspace`]).
#[derive(Debug, Default)]
pub struct BufferPool {
    f32s: Vec<Vec<f32>>,
    bools: Vec<Vec<bool>>,
    usizes: Vec<Vec<usize>>,
    u8s: Vec<Vec<u8>>,
    u16s: Vec<Vec<u16>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
}

macro_rules! poolable {
    ($ty:ty, $field:ident) => {
        impl Poolable for $ty {
            #[inline]
            fn shelf(pool: &mut BufferPool) -> &mut Vec<Vec<Self>> {
                &mut pool.$field
            }
        }
    };
}

poolable!(f32, f32s);
poolable!(bool, bools);
poolable!(usize, usizes);
poolable!(u8, u8s);
poolable!(u16, u16s);
poolable!(u32, u32s);
poolable!(u64, u64s);

/// The per-context execution workspace: striped buffer pools, the
/// push-engine thread budget, and op counters.
#[derive(Debug)]
pub struct Workspace {
    stripes: Box<[Mutex<BufferPool>]>,
    push_threads: AtomicUsize,
    /// The scalar/vector selection policy, stored as the [`SimdPolicy`]
    /// discriminant (0 = auto, 1 = force-scalar, 2 = force-vector).
    simd_mode: AtomicU8,
    /// Under [`SimdPolicy::Auto`], which tile widths take the vector path:
    /// bit `i` enables dim `4 << i` (see [`lane_mask_bit`]).  Seeded from
    /// [`DEFAULT_LANE_MASK`] and overwritten by calibration.
    simd_auto: AtomicU8,
    stats: ExecStats,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// A fresh, empty workspace: one pool stripe per unit of (bounded) host
    /// parallelism, push threads defaulting to the host parallelism, SIMD
    /// policy from [`SIMD_ENV_VAR`] (default [`SimdPolicy::Auto`]).
    pub fn new() -> Self {
        let stripes = machine_parallelism().max(4).next_power_of_two().min(32);
        let policy = std::env::var(SIMD_ENV_VAR)
            .ok()
            .and_then(|v| v.parse::<SimdPolicy>().ok())
            .unwrap_or(SimdPolicy::Auto);
        Workspace {
            stripes: (0..stripes)
                .map(|_| Mutex::new(BufferPool::default()))
                .collect(),
            push_threads: AtomicUsize::new(machine_parallelism()),
            simd_mode: AtomicU8::new(policy as u8),
            simd_auto: AtomicU8::new(DEFAULT_LANE_MASK),
            stats: ExecStats::default(),
        }
    }

    /// The calling thread's home stripe index.  The thread-id hash is a
    /// per-thread constant, so it is computed once per thread and cached in
    /// TLS — a take/give pays one TLS read plus the mask, not a SipHash.
    fn home_stripe(&self) -> usize {
        thread_local! {
            static HOME_HASH: u64 = {
                let mut h = DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish()
            };
        }
        (HOME_HASH.with(|h| *h) as usize) & (self.stripes.len() - 1)
    }

    /// Worker threads the sharded push scatter may fan out to (≥ 1).
    pub fn push_threads(&self) -> usize {
        self.push_threads.load(Ordering::Relaxed).max(1)
    }

    /// Set the push-engine thread budget (interior mutability: callable on a
    /// shared context mid-run).
    pub fn set_push_threads(&self, threads: usize) {
        self.push_threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// The current scalar/vector kernel selection policy.
    pub fn simd_policy(&self) -> SimdPolicy {
        match self.simd_mode.load(Ordering::Relaxed) {
            1 => SimdPolicy::ForceScalar,
            2 => SimdPolicy::ForceVector,
            _ => SimdPolicy::Auto,
        }
    }

    /// Set the scalar/vector selection policy (interior mutability, like
    /// [`set_push_threads`](Self::set_push_threads)).
    pub fn set_simd_policy(&self, policy: SimdPolicy) {
        self.simd_mode.store(policy as u8, Ordering::Relaxed);
    }

    /// The [`SimdPolicy::Auto`] per-tile-size profitability mask (bit `i`
    /// enables the vector path for tiles of dimension `4 << i`).
    pub fn simd_auto_mask(&self) -> u8 {
        self.simd_auto.load(Ordering::Relaxed)
    }

    /// Replace the auto-mode profitability mask — calibration's hook.
    pub fn set_simd_auto(&self, mask: u8) {
        self.simd_auto.store(mask, Ordering::Relaxed);
    }

    /// Whether a kernel over tiles of dimension `tile_dim` should take the
    /// vector path right now: the forced policies answer directly, and
    /// [`SimdPolicy::Auto`] consults the per-tile-size mask.
    pub fn simd_enabled(&self, tile_dim: usize) -> bool {
        match self.simd_policy() {
            SimdPolicy::ForceScalar => false,
            SimdPolicy::ForceVector => true,
            SimdPolicy::Auto => self.simd_auto_mask() & lane_mask_bit(tile_dim) != 0,
        }
    }

    /// Check out a cleared buffer (length 0); capacity comes from the pool
    /// when a buffer of this type was previously given back.  The home
    /// stripe is tried first (blocking — uncontended in steady state);
    /// other stripes are only probed opportunistically (`try_lock`) when
    /// the home shelf is empty.
    pub fn take_empty<T: Poolable>(&self) -> Vec<T> {
        let n = self.stripes.len();
        let home = self.home_stripe();
        for off in 0..n {
            let idx = (home + off) & (n - 1);
            let popped = if off == 0 {
                let mut pool = self.stripes[idx].lock().expect("workspace pool poisoned");
                T::shelf(&mut pool).pop()
            } else {
                match self.stripes[idx].try_lock() {
                    Ok(mut pool) => T::shelf(&mut pool).pop(),
                    Err(_) => None,
                }
            };
            if let Some(mut buf) = popped {
                buf.clear();
                return buf;
            }
        }
        Vec::new()
    }

    /// Check out a buffer of exactly `len` elements, every one set to
    /// `fill`.
    pub fn take<T: Poolable>(&self, len: usize, fill: T) -> Vec<T> {
        let mut buf = self.take_empty();
        buf.resize(len, fill);
        buf
    }

    /// Return a buffer to the calling thread's home stripe for later reuse.
    /// Once that stripe's shelf exceeds the per-type count cap
    /// ([`SHELF_CAP`]) or the byte high-water mark ([`SHELF_BYTE_CAP`]), the
    /// *oldest* shelved buffers are evicted first — the just-given buffer is
    /// the one sized for the current steady state, so it always survives.
    pub fn give<T: Poolable>(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.stripes[self.home_stripe()]
            .lock()
            .expect("workspace pool poisoned");
        let shelf = T::shelf(&mut pool);
        shelf.push(buf);
        let bytes = |b: &Vec<T>| b.capacity() * std::mem::size_of::<T>();
        let mut total: usize = shelf.iter().map(bytes).sum();
        let mut evict = 0;
        while (shelf.len() - evict > SHELF_CAP || total > SHELF_BYTE_CAP) && evict + 1 < shelf.len()
        {
            total -= bytes(&shelf[evict]);
            evict += 1;
        }
        if evict > 0 {
            shelf.drain(..evict);
        }
    }

    /// The execution counters of this workspace.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The calling thread's home stripe, locked — test-only introspection.
    #[cfg(test)]
    fn home_pool(&self) -> std::sync::MutexGuard<'_, BufferPool> {
        self.stripes[self.home_stripe()].lock().unwrap()
    }
}

/// Monotonic counters of executed operations, split by kind and — for the
/// matrix-vector family — by resolved traversal direction.
///
/// The counters make [`Direction::Auto`](super::Direction) observable:
/// tests (and the perf harness) read a [`snapshot`](ExecStats::snapshot)
/// before and after a run and assert how many iterations resolved to push
/// vs pull — and, since PR 5, how many push executions took the sharded
/// parallel path and how many frontier segments they fanned out over.
///
/// Every counter is a plain relaxed atomic, so parallel kernels bump them
/// without taking any lock (and without riding the pool stripes'
/// synchronization).
#[derive(Debug, Default)]
pub struct ExecStats {
    pull_mxv: AtomicU64,
    push_mxv: AtomicU64,
    pull_mxm: AtomicU64,
    push_mxm: AtomicU64,
    sharded_push: AtomicU64,
    shard_segments: AtomicU64,
    fused_mxv: AtomicU64,
    ewise_chain: AtomicU64,
    mxm_reduce: AtomicU64,
    reduce: AtomicU64,
    ewise: AtomicU64,
    apply: AtomicU64,
    select: AtomicU64,
}

impl ExecStats {
    pub(crate) fn record_pull_mxv(&self) {
        self.pull_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_push_mxv(&self) {
        self.push_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_pull_mxm(&self) {
        self.pull_mxm.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_push_mxm(&self) {
        self.push_mxm.fetch_add(1, Ordering::Relaxed);
    }
    /// One push execution took the sharded parallel path, fanning out over
    /// `segments` frontier segments.
    pub(crate) fn record_sharded_push(&self, segments: usize) {
        self.sharded_push.fetch_add(1, Ordering::Relaxed);
        self.shard_segments
            .fetch_add(segments as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_fused_mxv(&self) {
        self.fused_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_ewise_chain(&self) {
        self.ewise_chain.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_mxm_reduce(&self) {
        self.mxm_reduce.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_reduce(&self) {
        self.reduce.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_ewise(&self) {
        self.ewise.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_apply(&self) {
        self.apply.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_select(&self) {
        self.select.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data copy of the current counter values.
    pub fn snapshot(&self) -> ExecCounts {
        ExecCounts {
            pull_mxv: self.pull_mxv.load(Ordering::Relaxed),
            push_mxv: self.push_mxv.load(Ordering::Relaxed),
            pull_mxm: self.pull_mxm.load(Ordering::Relaxed),
            push_mxm: self.push_mxm.load(Ordering::Relaxed),
            sharded_push: self.sharded_push.load(Ordering::Relaxed),
            shard_segments: self.shard_segments.load(Ordering::Relaxed),
            fused_mxv: self.fused_mxv.load(Ordering::Relaxed),
            ewise_chain: self.ewise_chain.load(Ordering::Relaxed),
            mxm_reduce: self.mxm_reduce.load(Ordering::Relaxed),
            reduce: self.reduce.load(Ordering::Relaxed),
            ewise: self.ewise.load(Ordering::Relaxed),
            apply: self.apply.load(Ordering::Relaxed),
            select: self.select.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`ExecStats`] counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecCounts {
    /// `mxv`/`vxm` executions that resolved to the pull (dense sweep) path.
    pub pull_mxv: u64,
    /// `mxv`/`vxm` executions that resolved to the push (sparse scatter) path.
    pub push_mxv: u64,
    /// Batched `mxm` (matrix × multivector) executions that resolved to pull.
    pub pull_mxm: u64,
    /// Batched `mxm` (matrix × multivector) executions that resolved to push.
    pub push_mxm: u64,
    /// Push executions (single-vector or batched) that took the sharded
    /// parallel scatter path instead of the serial kernel.
    pub sharded_push: u64,
    /// Total frontier segments fanned out by sharded push executions.
    pub shard_segments: u64,
    /// Matrix-vector pipelines executed as a single fused sweep (also
    /// counted in `pull_mxv`/`push_mxv` by resolved direction).
    pub fused_mxv: u64,
    /// Collapsed element-wise chain sweeps (leaf chains and the fused
    /// epilogue of partially-fused push pipelines).
    pub ewise_chain: u64,
    /// Masked matrix-product reductions.
    pub mxm_reduce: u64,
    /// Vector reductions.
    pub reduce: u64,
    /// Element-wise add/mult operations.
    pub ewise: u64,
    /// `apply` operations.
    pub apply: u64,
    /// `select` operations.
    pub select: u64,
}

impl ExecCounts {
    /// Total `mxv`/`vxm` executions across both directions.
    pub fn total_mxv(&self) -> u64 {
        self.pull_mxv + self.push_mxv
    }

    /// Total batched `mxm` executions across both directions.
    pub fn total_mxm(&self) -> u64 {
        self.pull_mxm + self.push_mxm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_capacity() {
        let ws = Workspace::new();
        let mut buf = ws.take::<f32>(100, 1.5);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&v| v == 1.5));
        buf.reserve(1000);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        ws.give(buf);
        let again = ws.take::<f32>(50, 0.0);
        assert_eq!(again.len(), 50);
        assert_eq!(again.capacity(), cap, "capacity must be recycled");
        assert_eq!(again.as_ptr(), ptr, "the same buffer must come back");
    }

    #[test]
    fn shelves_are_typed_and_capped() {
        let ws = Workspace::new();
        ws.give(vec![1u8; 4]);
        ws.give(vec![1u16; 4]);
        // The u8 shelf must not serve the u16 request's storage.
        let b16 = ws.take::<u16>(2, 7);
        assert_eq!(b16, vec![7, 7]);
        let bufs: Vec<Vec<usize>> = (0..2 * SHELF_CAP).map(|_| vec![0usize; 8]).collect();
        let newest_ptr = bufs.last().unwrap().as_ptr();
        for b in bufs {
            ws.give(b);
        }
        // Single-threaded gives all land in the caller's home stripe.
        let pool = ws.home_pool();
        assert!(pool.usizes.len() <= SHELF_CAP);
        // Count-cap eviction drops the oldest, never the just-given buffer
        // (it is the one sized for the current steady state).
        assert_eq!(pool.usizes.last().unwrap().as_ptr(), newest_ptr);
    }

    #[test]
    fn shelf_byte_cap_evicts_oldest_first() {
        let ws = Workspace::new();
        // 1 MiB buffers: a dozen exceed the 8 MiB shelf high-water mark.
        let elems = (1 << 20) / std::mem::size_of::<f32>();
        // Allocate everything up front so freed-and-reallocated addresses
        // cannot masquerade as surviving buffers.
        let bufs: Vec<Vec<f32>> = (0..12).map(|i| vec![i as f32; elems]).collect();
        let ptrs: Vec<*const f32> = bufs.iter().map(|b| b.as_ptr()).collect();
        for b in bufs {
            ws.give(b);
        }
        let pool = ws.home_pool();
        let total: usize = pool
            .f32s
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum();
        assert!(
            total <= SHELF_BYTE_CAP,
            "shelf holds {total} bytes, cap is {SHELF_BYTE_CAP}"
        );
        let held: Vec<_> = pool.f32s.iter().map(|b| b.as_ptr()).collect();
        assert_eq!(
            held.last().copied(),
            ptrs.last().copied(),
            "the newest buffer must survive eviction"
        );
        assert!(
            !held.contains(&ptrs[0]),
            "the oldest buffer must be evicted first"
        );
        // Eviction kept the most recent window, in order.
        assert_eq!(&held[..], &ptrs[12 - held.len()..]);
    }

    #[test]
    fn oversized_single_buffer_is_kept_but_alone() {
        let ws = Workspace::new();
        ws.give(vec![0u8; 16]);
        // A single buffer above the high-water mark evicts everything older
        // but is itself retained (it is the current steady-state size).
        let big = vec![0u8; SHELF_BYTE_CAP + 1];
        let big_ptr = big.as_ptr();
        ws.give(big);
        let pool = ws.home_pool();
        assert_eq!(pool.u8s.len(), 1);
        assert_eq!(pool.u8s[0].as_ptr(), big_ptr);
    }

    #[test]
    fn take_resets_contents() {
        let ws = Workspace::new();
        ws.give(vec![9.0f32; 64]);
        let buf = ws.take::<f32>(32, 0.0);
        assert!(buf.iter().all(|&v| v == 0.0), "stale data must be cleared");
        let empty = ws.take_empty::<f32>();
        assert!(empty.is_empty());
    }

    #[test]
    fn buffers_given_on_other_threads_are_still_reachable() {
        // A buffer given back on a worker thread lands in that thread's home
        // stripe; a later take on the main thread must still find it (stripe
        // probing) instead of allocating a fresh one.
        let ws = Workspace::new();
        let cap = 4096;
        std::thread::scope(|scope| {
            scope.spawn(|| ws.give::<f32>(Vec::with_capacity(cap)));
        });
        let buf = ws.take_empty::<f32>();
        assert_eq!(
            buf.capacity(),
            cap,
            "cross-stripe probing must find the buffer"
        );
    }

    #[test]
    fn push_threads_round_trip_and_floor_at_one() {
        let ws = Workspace::new();
        assert!(ws.push_threads() >= 1);
        ws.set_push_threads(8);
        assert_eq!(ws.push_threads(), 8);
        ws.set_push_threads(0);
        assert_eq!(ws.push_threads(), 1, "zero must clamp to serial");
    }

    #[test]
    fn simd_policy_round_trips_and_auto_consults_the_mask() {
        let ws = Workspace::new();
        // Fresh workspaces default to Auto with the static mask (unless the
        // env var is set, which the test environment does not do globally).
        ws.set_simd_policy(SimdPolicy::Auto);
        ws.set_simd_auto(DEFAULT_LANE_MASK);
        assert_eq!(ws.simd_policy(), SimdPolicy::Auto);
        assert!(ws.simd_enabled(4));
        assert!(ws.simd_enabled(8));
        assert!(ws.simd_enabled(16));
        assert!(!ws.simd_enabled(32), "S32 is below the SWAR crossover");
        ws.set_simd_policy(SimdPolicy::ForceScalar);
        assert_eq!(ws.simd_policy(), SimdPolicy::ForceScalar);
        assert!(!ws.simd_enabled(8));
        ws.set_simd_policy(SimdPolicy::ForceVector);
        assert!(ws.simd_enabled(32), "forcing overrides the mask");
        ws.set_simd_policy(SimdPolicy::Auto);
        ws.set_simd_auto(0b1000);
        assert!(!ws.simd_enabled(8));
        assert!(ws.simd_enabled(32));
        assert_eq!(ws.simd_auto_mask(), 0b1000);
    }

    #[test]
    fn simd_env_var_seeds_new_workspaces() {
        // Other tests never assert a *fresh* workspace's policy, so briefly
        // setting the process-wide variable here cannot flake them (and both
        // paths are bit-identical anyway).
        std::env::set_var(SIMD_ENV_VAR, "scalar");
        let ws = Workspace::new();
        assert_eq!(ws.simd_policy(), SimdPolicy::ForceScalar);
        std::env::set_var(SIMD_ENV_VAR, "not-a-policy");
        let ws = Workspace::new();
        assert_eq!(ws.simd_policy(), SimdPolicy::Auto, "garbage falls back");
        std::env::remove_var(SIMD_ENV_VAR);
        let ws = Workspace::new();
        assert_eq!(ws.simd_policy(), SimdPolicy::Auto);
    }

    #[test]
    fn stats_counters_accumulate() {
        let ws = Workspace::new();
        ws.stats().record_push_mxv();
        ws.stats().record_push_mxv();
        ws.stats().record_pull_mxv();
        ws.stats().record_sharded_push(5);
        ws.stats().record_sharded_push(3);
        let s = ws.stats().snapshot();
        assert_eq!(s.push_mxv, 2);
        assert_eq!(s.pull_mxv, 1);
        assert_eq!(s.total_mxv(), 3);
        assert_eq!(s.sharded_push, 2);
        assert_eq!(s.shard_segments, 8);
    }

    #[test]
    fn counters_are_lock_free_under_contention() {
        // Parallel bumps from scoped threads must all land (atomics, no
        // lock, no tearing).
        let ws = Workspace::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        ws.stats().record_push_mxv();
                        ws.stats().record_sharded_push(2);
                    }
                });
            }
        });
        let s = ws.stats().snapshot();
        assert_eq!(s.push_mxv, 4000);
        assert_eq!(s.sharded_push, 4000);
        assert_eq!(s.shard_segments, 8000);
    }
}
