//! The reusable-buffer pool and execution counters behind
//! [`Context`](super::Context).
//!
//! Every `Op::...run(&ctx)` used to allocate its output, packing and mask
//! buffers afresh, which put a heap allocation (or several) on every
//! iteration of every algorithm inner loop.  A [`Workspace`] turns the
//! [`Context`](super::Context) into a real execution resource: operations
//! check buffers out of the pool, size them, and return them when done, so a
//! steady-state traversal loop (same vector lengths every iteration) performs
//! **zero** heap allocations after its first couple of iterations — see
//! `crates/core/tests/zero_alloc.rs` for the allocation-counter proof.
//!
//! # Ownership rules
//!
//! * `take_empty`/`take` transfer ownership of a pooled `Vec` to the caller;
//!   the pool keeps no reference.  The buffer's *capacity* is recycled, its
//!   contents are always reset (`take_empty` clears, `take` clears and
//!   refills), so no data leaks between operations.
//! * `give` transfers ownership back.  Giving a buffer is optional — a
//!   buffer that escapes (e.g. inside the [`Vector`](super::Vector) an op
//!   returns) is simply dropped by its new owner, and the pool refills from
//!   later `give`s.  Algorithms that want allocation-free steady state
//!   return their previous iteration's vector with
//!   [`Context::recycle`](super::Context::recycle).
//! * Each shelf is capped in buffer count ([`SHELF_CAP`]) **and** in bytes
//!   ([`SHELF_BYTE_CAP`]): recycling many differently-sized vectors evicts
//!   the oldest shelved buffers beyond the byte high-water mark, so a
//!   pathological caller cannot hoard unbounded memory inside a long-lived
//!   context.  The most recently given buffer always survives — it is the
//!   one sized for the current steady state.
//!
//! The pool is behind a `Mutex` (not a `RefCell`) so that a `Context` — and
//! the [`Matrix`](super::Matrix) that carries one — stays `Send + Sync`.
//! Operations hold the lock only while popping/pushing a buffer, never
//! across a kernel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of recycled buffers kept per element type.
pub const SHELF_CAP: usize = 32;

/// Byte high-water mark per shelf: when the recycled buffers of one element
/// type exceed this, the oldest are evicted (the newest always survives).
/// Generous enough that steady-state algorithm loops — a handful of
/// graph-sized vectors — never hit it; only callers recycling many
/// differently-sized buffers do.
pub const SHELF_BYTE_CAP: usize = 8 << 20;

/// Element types the workspace pool can hold buffers of.
///
/// Implemented for the kernel-facing scalar types: `f32` (dense vectors),
/// `bool` (mask views), `usize` (frontier index lists), the three B2SR
/// packing words (`u8`, `u16`, `u32`) and the multi-vector lane words
/// (`u64`).
pub trait Poolable: Copy + Send + 'static {
    /// The shelf of recycled buffers for this element type.
    fn shelf(pool: &mut BufferPool) -> &mut Vec<Vec<Self>>;
}

/// The typed shelves of recycled buffers (interior of a [`Workspace`]).
#[derive(Debug, Default)]
pub struct BufferPool {
    f32s: Vec<Vec<f32>>,
    bools: Vec<Vec<bool>>,
    usizes: Vec<Vec<usize>>,
    u8s: Vec<Vec<u8>>,
    u16s: Vec<Vec<u16>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
}

macro_rules! poolable {
    ($ty:ty, $field:ident) => {
        impl Poolable for $ty {
            #[inline]
            fn shelf(pool: &mut BufferPool) -> &mut Vec<Vec<Self>> {
                &mut pool.$field
            }
        }
    };
}

poolable!(f32, f32s);
poolable!(bool, bools);
poolable!(usize, usizes);
poolable!(u8, u8s);
poolable!(u16, u16s);
poolable!(u32, u32s);
poolable!(u64, u64s);

/// The per-context execution workspace: a buffer pool plus op counters.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Mutex<BufferPool>,
    stats: ExecStats,
}

impl Workspace {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a cleared buffer (length 0); capacity comes from the pool
    /// when a buffer of this type was previously given back.
    pub fn take_empty<T: Poolable>(&self) -> Vec<T> {
        let mut pool = self.pool.lock().expect("workspace pool poisoned");
        let mut buf = T::shelf(&mut pool).pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Check out a buffer of exactly `len` elements, every one set to
    /// `fill`.
    pub fn take<T: Poolable>(&self, len: usize, fill: T) -> Vec<T> {
        let mut buf = self.take_empty();
        buf.resize(len, fill);
        buf
    }

    /// Return a buffer to the pool for later reuse.  Once the shelf exceeds
    /// the per-type count cap ([`SHELF_CAP`]) or the byte high-water mark
    /// ([`SHELF_BYTE_CAP`]), the *oldest* shelved buffers are evicted first
    /// — the just-given buffer is the one sized for the current steady
    /// state, so it always survives.
    pub fn give<T: Poolable>(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.pool.lock().expect("workspace pool poisoned");
        let shelf = T::shelf(&mut pool);
        shelf.push(buf);
        let bytes = |b: &Vec<T>| b.capacity() * std::mem::size_of::<T>();
        let mut total: usize = shelf.iter().map(bytes).sum();
        let mut evict = 0;
        while (shelf.len() - evict > SHELF_CAP || total > SHELF_BYTE_CAP) && evict + 1 < shelf.len()
        {
            total -= bytes(&shelf[evict]);
            evict += 1;
        }
        if evict > 0 {
            shelf.drain(..evict);
        }
    }

    /// The execution counters of this workspace.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }
}

/// Monotonic counters of executed operations, split by kind and — for the
/// matrix-vector family — by resolved traversal direction.
///
/// The counters make [`Direction::Auto`](super::Direction) observable:
/// tests (and the perf harness) read a [`snapshot`](ExecStats::snapshot)
/// before and after a run and assert how many iterations resolved to push
/// vs pull.
#[derive(Debug, Default)]
pub struct ExecStats {
    pull_mxv: AtomicU64,
    push_mxv: AtomicU64,
    pull_mxm: AtomicU64,
    push_mxm: AtomicU64,
    fused_mxv: AtomicU64,
    ewise_chain: AtomicU64,
    mxm_reduce: AtomicU64,
    reduce: AtomicU64,
    ewise: AtomicU64,
    apply: AtomicU64,
    select: AtomicU64,
}

impl ExecStats {
    pub(crate) fn record_pull_mxv(&self) {
        self.pull_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_push_mxv(&self) {
        self.push_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_pull_mxm(&self) {
        self.pull_mxm.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_push_mxm(&self) {
        self.push_mxm.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_fused_mxv(&self) {
        self.fused_mxv.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_ewise_chain(&self) {
        self.ewise_chain.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_mxm_reduce(&self) {
        self.mxm_reduce.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_reduce(&self) {
        self.reduce.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_ewise(&self) {
        self.ewise.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_apply(&self) {
        self.apply.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_select(&self) {
        self.select.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data copy of the current counter values.
    pub fn snapshot(&self) -> ExecCounts {
        ExecCounts {
            pull_mxv: self.pull_mxv.load(Ordering::Relaxed),
            push_mxv: self.push_mxv.load(Ordering::Relaxed),
            pull_mxm: self.pull_mxm.load(Ordering::Relaxed),
            push_mxm: self.push_mxm.load(Ordering::Relaxed),
            fused_mxv: self.fused_mxv.load(Ordering::Relaxed),
            ewise_chain: self.ewise_chain.load(Ordering::Relaxed),
            mxm_reduce: self.mxm_reduce.load(Ordering::Relaxed),
            reduce: self.reduce.load(Ordering::Relaxed),
            ewise: self.ewise.load(Ordering::Relaxed),
            apply: self.apply.load(Ordering::Relaxed),
            select: self.select.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`ExecStats`] counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecCounts {
    /// `mxv`/`vxm` executions that resolved to the pull (dense sweep) path.
    pub pull_mxv: u64,
    /// `mxv`/`vxm` executions that resolved to the push (sparse scatter) path.
    pub push_mxv: u64,
    /// Batched `mxm` (matrix × multivector) executions that resolved to pull.
    pub pull_mxm: u64,
    /// Batched `mxm` (matrix × multivector) executions that resolved to push.
    pub push_mxm: u64,
    /// Matrix-vector pipelines executed as a single fused sweep (also
    /// counted in `pull_mxv`/`push_mxv` by resolved direction).
    pub fused_mxv: u64,
    /// Collapsed element-wise chain sweeps (leaf chains and the fused
    /// epilogue of partially-fused push pipelines).
    pub ewise_chain: u64,
    /// Masked matrix-product reductions.
    pub mxm_reduce: u64,
    /// Vector reductions.
    pub reduce: u64,
    /// Element-wise add/mult operations.
    pub ewise: u64,
    /// `apply` operations.
    pub apply: u64,
    /// `select` operations.
    pub select: u64,
}

impl ExecCounts {
    /// Total `mxv`/`vxm` executions across both directions.
    pub fn total_mxv(&self) -> u64 {
        self.pull_mxv + self.push_mxv
    }

    /// Total batched `mxm` executions across both directions.
    pub fn total_mxm(&self) -> u64 {
        self.pull_mxm + self.push_mxm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_capacity() {
        let ws = Workspace::new();
        let mut buf = ws.take::<f32>(100, 1.5);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&v| v == 1.5));
        buf.reserve(1000);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        ws.give(buf);
        let again = ws.take::<f32>(50, 0.0);
        assert_eq!(again.len(), 50);
        assert_eq!(again.capacity(), cap, "capacity must be recycled");
        assert_eq!(again.as_ptr(), ptr, "the same buffer must come back");
    }

    #[test]
    fn shelves_are_typed_and_capped() {
        let ws = Workspace::new();
        ws.give(vec![1u8; 4]);
        ws.give(vec![1u16; 4]);
        // The u8 shelf must not serve the u16 request's storage.
        let b16 = ws.take::<u16>(2, 7);
        assert_eq!(b16, vec![7, 7]);
        let bufs: Vec<Vec<usize>> = (0..2 * SHELF_CAP).map(|_| vec![0usize; 8]).collect();
        let newest_ptr = bufs.last().unwrap().as_ptr();
        for b in bufs {
            ws.give(b);
        }
        let pool = ws.pool.lock().unwrap();
        assert!(pool.usizes.len() <= SHELF_CAP);
        // Count-cap eviction drops the oldest, never the just-given buffer
        // (it is the one sized for the current steady state).
        assert_eq!(pool.usizes.last().unwrap().as_ptr(), newest_ptr);
    }

    #[test]
    fn shelf_byte_cap_evicts_oldest_first() {
        let ws = Workspace::new();
        // 1 MiB buffers: a dozen exceed the 8 MiB shelf high-water mark.
        let elems = (1 << 20) / std::mem::size_of::<f32>();
        // Allocate everything up front so freed-and-reallocated addresses
        // cannot masquerade as surviving buffers.
        let bufs: Vec<Vec<f32>> = (0..12).map(|i| vec![i as f32; elems]).collect();
        let ptrs: Vec<*const f32> = bufs.iter().map(|b| b.as_ptr()).collect();
        for b in bufs {
            ws.give(b);
        }
        let pool = ws.pool.lock().unwrap();
        let total: usize = pool
            .f32s
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum();
        assert!(
            total <= SHELF_BYTE_CAP,
            "shelf holds {total} bytes, cap is {SHELF_BYTE_CAP}"
        );
        let held: Vec<_> = pool.f32s.iter().map(|b| b.as_ptr()).collect();
        assert_eq!(
            held.last().copied(),
            ptrs.last().copied(),
            "the newest buffer must survive eviction"
        );
        assert!(
            !held.contains(&ptrs[0]),
            "the oldest buffer must be evicted first"
        );
        // Eviction kept the most recent window, in order.
        assert_eq!(&held[..], &ptrs[12 - held.len()..]);
    }

    #[test]
    fn oversized_single_buffer_is_kept_but_alone() {
        let ws = Workspace::new();
        ws.give(vec![0u8; 16]);
        // A single buffer above the high-water mark evicts everything older
        // but is itself retained (it is the current steady-state size).
        let big = vec![0u8; SHELF_BYTE_CAP + 1];
        let big_ptr = big.as_ptr();
        ws.give(big);
        let pool = ws.pool.lock().unwrap();
        assert_eq!(pool.u8s.len(), 1);
        assert_eq!(pool.u8s[0].as_ptr(), big_ptr);
    }

    #[test]
    fn take_resets_contents() {
        let ws = Workspace::new();
        ws.give(vec![9.0f32; 64]);
        let buf = ws.take::<f32>(32, 0.0);
        assert!(buf.iter().all(|&v| v == 0.0), "stale data must be cleared");
        let empty = ws.take_empty::<f32>();
        assert!(empty.is_empty());
    }

    #[test]
    fn stats_counters_accumulate() {
        let ws = Workspace::new();
        ws.stats().record_push_mxv();
        ws.stats().record_push_mxv();
        ws.stats().record_pull_mxv();
        let s = ws.stats().snapshot();
        assert_eq!(s.push_mxv, 2);
        assert_eq!(s.pull_mxv, 1);
        assert_eq!(s.total_mxv(), 3);
    }
}
