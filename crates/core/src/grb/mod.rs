//! A small GraphBLAS-style object API over the Bit-GraphBLAS kernels.
//!
//! The paper presents Bit-GraphBLAS as a drop-in acceleration of the
//! GraphBLAS execution model: graph algorithms are written against matrix /
//! vector objects and semiring operations (`mxv`, `vxm`, `mxm`, `reduce`,
//! element-wise ops with masks), and the framework decides how the adjacency
//! matrix is stored and which kernel implements each operation.
//!
//! This module provides that layer with two interchangeable backends:
//!
//! * [`Backend::Bit`] — the adjacency matrix is stored in B2SR and the
//!   operations run on the bit kernels of [`crate::kernels`] (the paper's
//!   contribution);
//! * [`Backend::FloatCsr`] — the adjacency matrix stays in 32-bit-float CSR
//!   and the operations run on the reference kernels of `bitgblas-sparse`
//!   (the GraphBLAST/cuSPARSE stand-in used as the baseline).
//!
//! `bitgblas-algorithms` writes each graph algorithm once against this API
//! and the benchmarks toggle the backend, exactly as the paper compares
//! Bit-GraphBLAS to GraphBLAST.

pub mod descriptor;
pub mod ewise;
pub mod matrix;
pub mod ops;
pub mod vector;

pub use descriptor::{Descriptor, Mask};
pub use ewise::{apply, assign_masked, ewise_add, ewise_mult, select};
pub use matrix::{Backend, Matrix};
pub use ops::{mxm_reduce_masked, mxv, reduce, vxm};
pub use vector::Vector;
