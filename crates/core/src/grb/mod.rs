//! A GraphBLAS-style object API over the Bit-GraphBLAS kernels.
//!
//! The paper presents Bit-GraphBLAS as a drop-in acceleration of the
//! GraphBLAS execution model: graph algorithms are written against matrix /
//! vector objects and semiring operations (`mxv`, `vxm`, `mxm`, `reduce`,
//! element-wise ops with masks), and the framework decides how the adjacency
//! matrix is stored and which kernel implements each operation.
//!
//! This module provides that layer around the [`GrbBackend`] trait — the
//! pluggable storage/kernel interface — with three ways to pick a backend:
//!
//! * [`Backend::Bit`] — the adjacency matrix is stored in B2SR and the
//!   operations run on the bit kernels of [`crate::kernels`] (the paper's
//!   contribution), implemented by [`BitB2sr`];
//! * [`Backend::FloatCsr`] — the adjacency matrix stays in 32-bit-float CSR
//!   and the operations run on the reference kernels of `bitgblas-sparse`
//!   (the GraphBLAST/cuSPARSE stand-in baseline), implemented by
//!   [`FloatCsr`];
//! * [`Backend::Auto`] — the framework decides per matrix, combining the
//!   Table-V pattern classifier, the Algorithm-1 sampling profile and the
//!   memory-traffic model (see [`auto`]).
//!
//! # Lazy expressions and fusion (GraphBLAS non-blocking mode)
//!
//! Operations are assembled with the builder API of [`op`], but the
//! builders are **lazy**: each call grows an expression chain
//! ([`expr::Expr`]) and nothing executes until `.run(&ctx)` /
//! [`Context::evaluate`] hands the chain to the planner ([`plan`]):
//!
//! ```text
//! Op::vxm(&rank, &a)                 // lazy: builds an Expr…
//!     .scale_input(&inv_deg)
//!     .semiring(Semiring::Arithmetic)
//!     .affine(alpha, teleport)
//!     .accum(BinaryOp::Plus, &w)     // GraphBLAS accumulator, first-class
//!     .run(&ctx)                     // …planned + fused here
//! ```
//!
//! The planner pattern-matches fusable shapes — mxv+mask+accum into one
//! masked kernel sweep, apply/select folded into the consuming ewise pass,
//! ewise chains collapsed into a single loop — and emits fused calls
//! through [`GrbBackend::mxv_fused_into`] / [`GrbBackend::ewise_chain_into`].
//! Unfusable shapes (and [`expr::Fusion::NodeAtATime`]) fall back to
//! node-at-a-time execution, so semantics never depend on what fused.
//! Fused pipelines draw all scratch from the context's [`Workspace`] pool
//! and allocate nothing in steady state.
//!
//! # Batched multi-source traversal (frontier matrices)
//!
//! Since PR 4 the op layer also works on **multi-vectors**
//! ([`MultiVec`]: dense `n × k` frontier matrices, one lane per concurrent
//! query): [`Op::mxm`] advances `k` traversals with a single sweep that
//! loads each adjacency tile once and applies it to every lane (on the bit
//! backend, Boolean lanes pack into `u64` words and one `OR` per edge
//! serves up to 64 queries).  Batched chains compose with flat per-lane
//! masks, stages, accumulators and [`Direction::Auto`] (resolved on the
//! node-granular frontier) exactly like `mxv` chains; `bfs_multi`,
//! `sssp_multi` and batched betweenness centrality in
//! `bitgblas-algorithms` ride on it.
//!
//! # Sharded parallel push execution (PR 5)
//!
//! Push (sparse-frontier scatter) operations used to run serially; they now
//! execute over the row-shard partition of [`crate::shard`]: matrices carry
//! a per-representation [`crate::shard::ShardPlan`] (built at construction
//! from the context's device profile and thread budget), the frontier is
//! cut at shard boundaries, segments scatter into privatized
//! workspace-pooled buffers on up to [`Context::threads`] workers, and a
//! fixed-segment-order monoid merge makes the results **bit-identical
//! across thread counts**.  [`Direction::Auto`]'s scatter penalty is
//! parallelism-aware accordingly ([`choose_direction_cfg`]).
//!
//! `bitgblas-algorithms` writes each graph algorithm once against this API
//! and the benchmarks toggle the backend, exactly as the paper compares
//! Bit-GraphBLAS to GraphBLAST.  (The pre-0.2 free-function shims were
//! removed in PR 3; the builders are the only entry point.)

pub mod auto;
pub mod backend;
pub mod descriptor;
pub mod direction;
pub mod error;
pub mod ewise;
pub mod expr;
pub mod matrix;
pub mod multivec;
pub mod op;
pub mod plan;
pub mod vector;
pub mod workspace;

pub use auto::{auto_decision, AutoDecision, TileCandidate};
pub use backend::{BitB2sr, FloatCsr, GrbBackend};
pub use descriptor::{Descriptor, Mask};
pub use direction::{
    choose_direction, choose_direction_cfg, choose_direction_multi, choose_direction_multi_cfg,
    choose_direction_multi_tuned, choose_direction_tuned, scatter_penalty,
    scatter_penalty_parallel, scatter_penalty_parallel_alpha, Direction,
};
pub use error::GrbError;
pub use ewise::assign_masked;
pub use expr::{Expr, Fusion, MultiExpr, MultiProducer, Stage, MAX_STAGES};
pub use matrix::{Backend, Matrix, Snapshot};
pub use multivec::{lane_words_per_node, MultiVec};
pub use op::{Context, Op};
pub use plan::MxvPipeline;
pub use vector::Vector;
pub use workspace::{ExecCounts, ExecStats, Workspace, SIMD_ENV_VAR};
