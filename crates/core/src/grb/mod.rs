//! A GraphBLAS-style object API over the Bit-GraphBLAS kernels.
//!
//! The paper presents Bit-GraphBLAS as a drop-in acceleration of the
//! GraphBLAS execution model: graph algorithms are written against matrix /
//! vector objects and semiring operations (`mxv`, `vxm`, `mxm`, `reduce`,
//! element-wise ops with masks), and the framework decides how the adjacency
//! matrix is stored and which kernel implements each operation.
//!
//! This module provides that layer around the [`GrbBackend`] trait — the
//! pluggable storage/kernel interface — with three ways to pick a backend:
//!
//! * [`Backend::Bit`] — the adjacency matrix is stored in B2SR and the
//!   operations run on the bit kernels of [`crate::kernels`] (the paper's
//!   contribution), implemented by [`BitB2sr`];
//! * [`Backend::FloatCsr`] — the adjacency matrix stays in 32-bit-float CSR
//!   and the operations run on the reference kernels of `bitgblas-sparse`
//!   (the GraphBLAST/cuSPARSE stand-in baseline), implemented by
//!   [`FloatCsr`];
//! * [`Backend::Auto`] — the framework decides per matrix, combining the
//!   Table-V pattern classifier, the Algorithm-1 sampling profile and the
//!   memory-traffic model (see [`auto`]).
//!
//! Operations are assembled with the builder API of [`op`] and executed
//! against a [`Context`]:
//!
//! ```text
//! Op::mxv(&a, &x).semiring(s).mask(&m).desc(d).run(&ctx)
//! ```
//!
//! `bitgblas-algorithms` writes each graph algorithm once against this API
//! and the benchmarks toggle the backend, exactly as the paper compares
//! Bit-GraphBLAS to GraphBLAST.  The pre-0.2 free functions (`mxv`, `vxm`,
//! `mxm_reduce_masked`, `reduce`, the `ewise` family) remain available as
//! deprecated shims.

pub mod auto;
pub mod backend;
pub mod descriptor;
pub mod direction;
pub mod ewise;
pub mod matrix;
pub mod op;
pub mod ops;
pub mod vector;
pub mod workspace;

pub use auto::{auto_decision, AutoDecision, TileCandidate};
pub use backend::{BitB2sr, FloatCsr, GrbBackend};
pub use descriptor::{Descriptor, Mask};
pub use direction::{choose_direction, scatter_penalty, Direction};
pub use ewise::assign_masked;
#[allow(deprecated)]
pub use ewise::{apply, ewise_add, ewise_mult, select};
pub use matrix::{Backend, Matrix};
pub use op::{Context, Op};
#[allow(deprecated)]
pub use ops::{mxm_reduce_masked, mxv, reduce, vxm};
pub use vector::Vector;
pub use workspace::{ExecCounts, ExecStats, Workspace};
