//! Empirical device calibration (PR 9).
//!
//! The planner's cost model used to run entirely on *static* constants: the
//! scatter penalty α came from the modelled GPU's transaction width
//! ([`crate::grb::scatter_penalty`]), the shard cache
//! budget from the modelled L2 size
//! ([`ShardConfig::from_device`](crate::shard::ShardConfig)), and the
//! scalar-vs-SWAR kernel choice from a hardcoded per-tile-size mask
//! ([`DEFAULT_LANE_MASK`]).  Those constants describe the *paper's* Table-VI
//! devices — not the machine actually executing the kernels.  This module
//! measures the executing host and distills the measurements into a
//! [`CalibratedProfile`] that the [`Context`](crate::grb::Context) persists
//! and feeds back into direction choice, shard sizing, and SIMD selection.
//!
//! The design splits *measuring* from *deciding* so the decision logic is
//! deterministic and unit-testable:
//!
//! * [`CalibrationSamples`] is a plain bag of raw timings — produced either
//!   by the real micro-benchmarks ([`CalibrationSamples::measure`]) or by a
//!   pinned stub in tests.
//! * [`CalibratedProfile::from_samples`] is a **pure function** from samples
//!   (plus the static fallback) to a profile.  Degenerate samples — zeros,
//!   negatives, NaNs, the zero-resolution-clock case in CI — fall back to
//!   the static device-derived profile field by field, so calibration can
//!   only ever refine the model, never break it.
//!
//! Profiles round-trip through `Display`/`FromStr` (a single `key=value`
//! line) so a calibrated profile can be persisted across processes via a
//! file or environment variable.

use std::time::Instant;

use bitgblas_perfmodel::DeviceProfile;

use crate::grb::scatter_penalty;
use crate::kernels::simd::{lane_popcounts, DEFAULT_LANE_MASK};

/// Where a [`CalibratedProfile`]'s numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalibrationSource {
    /// Derived from the modelled device profile's static constants (the
    /// pre-calibration behavior, and the degenerate-measurement fallback).
    #[default]
    Static,
    /// Distilled from micro-benchmark samples of the executing host.
    Measured,
}

/// The empirical device model the planner consumes.
///
/// Defaults (and degenerate-measurement fallbacks) reproduce the static
/// constants exactly, so a context that never calibrates — or calibrates on
/// a broken clock — plans identically to the pre-calibration code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedProfile {
    /// Base scatter penalty α: the modelled cost of one random (push) write
    /// relative to one streamed (pull) edge.  Feeds
    /// [`scatter_penalty_parallel_alpha`](crate::grb::scatter_penalty_parallel_alpha)
    /// and the Beamer-style direction threshold.
    pub scatter_alpha: f64,
    /// Effective last-level cache budget in bytes; feeds the
    /// [`ShardConfig`](crate::shard::ShardConfig) that sizes push shards.
    pub l2_bytes: usize,
    /// Per-tile-size SWAR profitability mask for
    /// [`SimdPolicy::Auto`](crate::kernels::simd::SimdPolicy): bit `i`
    /// enables the vector path for tiles of dimension `4 << i`.
    pub simd_lane_mask: u8,
    /// Whether these numbers are static constants or host measurements.
    pub source: CalibrationSource,
}

impl CalibratedProfile {
    /// The static profile implied by a modelled device — bit-compatible
    /// with the pre-calibration constants.
    pub fn from_device(device: &DeviceProfile) -> Self {
        CalibratedProfile {
            scatter_alpha: scatter_penalty(device),
            l2_bytes: device.l2_kb.max(1) * 1024,
            simd_lane_mask: DEFAULT_LANE_MASK,
            source: CalibrationSource::Static,
        }
    }

    /// Distill raw measurement samples into a profile, falling back to the
    /// static `device` constants field by field when a sample is degenerate
    /// (non-finite, non-positive, or empty — e.g. a zero-resolution clock
    /// timing every pass at 0 ns).  Pure and deterministic: the same samples
    /// always yield the same profile.
    pub fn from_samples(samples: &CalibrationSamples, device: &DeviceProfile) -> Self {
        let fallback = Self::from_device(device);
        let finite_pos = |v: f64| v.is_finite() && v > 0.0;

        let scatter_alpha =
            if finite_pos(samples.seq_ns_per_word) && finite_pos(samples.rand_ns_per_word) {
                (samples.rand_ns_per_word / samples.seq_ns_per_word).clamp(4.0, 32.0)
            } else {
                fallback.scatter_alpha
            };

        // Effective L2: the largest working-set size whose per-word cost is
        // still within 1.5× of the fastest size on the curve.
        let mut l2_bytes = fallback.l2_bytes;
        let valid_curve = !samples.l2_curve.is_empty()
            && samples
                .l2_curve
                .iter()
                .all(|&(bytes, ns)| bytes > 0 && finite_pos(ns));
        if valid_curve {
            let best = samples
                .l2_curve
                .iter()
                .map(|&(_, ns)| ns)
                .fold(f64::INFINITY, f64::min);
            if let Some(bytes) = samples
                .l2_curve
                .iter()
                .filter(|&&(_, ns)| ns <= best * 1.5)
                .map(|&(bytes, _)| bytes)
                .max()
            {
                l2_bytes = bytes;
            }
        }

        // SIMD crossover: tile size `4 << i` takes the vector path iff the
        // measured scalar/vector time ratio shows an actual speedup.
        let speedups_valid = samples.simd_speedup.iter().all(|&s| finite_pos(s));
        let simd_lane_mask = if speedups_valid {
            samples
                .simd_speedup
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > 1.0)
                .fold(0u8, |mask, (i, _)| mask | (1 << i))
        } else {
            fallback.simd_lane_mask
        };

        let measured = scatter_alpha != fallback.scatter_alpha
            || l2_bytes != fallback.l2_bytes
            || simd_lane_mask != fallback.simd_lane_mask
            || (finite_pos(samples.seq_ns_per_word)
                && finite_pos(samples.rand_ns_per_word)
                && valid_curve
                && speedups_valid);
        CalibratedProfile {
            scatter_alpha,
            l2_bytes,
            simd_lane_mask,
            source: if measured {
                CalibrationSource::Measured
            } else {
                CalibrationSource::Static
            },
        }
    }
}

impl std::fmt::Display for CalibratedProfile {
    /// One `key=value` line — the persistence format [`std::str::FromStr`] parses
    /// back, e.g. `alpha=12.5 l2=4194304 lanes=0b0111 source=measured`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "alpha={} l2={} lanes={:#06b} source={}",
            self.scatter_alpha,
            self.l2_bytes,
            self.simd_lane_mask,
            match self.source {
                CalibrationSource::Static => "static",
                CalibrationSource::Measured => "measured",
            }
        )
    }
}

impl std::str::FromStr for CalibratedProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut profile = CalibratedProfile {
            scatter_alpha: 0.0,
            l2_bytes: 0,
            simd_lane_mask: 0,
            source: CalibrationSource::Static,
        };
        let (mut saw_alpha, mut saw_l2, mut saw_lanes) = (false, false, false);
        for field in s.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "alpha" => {
                    profile.scatter_alpha = value
                        .parse::<f64>()
                        .map_err(|e| format!("bad alpha {value:?}: {e}"))?;
                    saw_alpha = true;
                }
                "l2" => {
                    profile.l2_bytes = value
                        .parse::<usize>()
                        .map_err(|e| format!("bad l2 {value:?}: {e}"))?;
                    saw_l2 = true;
                }
                "lanes" => {
                    let digits = value.strip_prefix("0b").unwrap_or(value);
                    profile.simd_lane_mask = u8::from_str_radix(digits, 2)
                        .map_err(|e| format!("bad lanes {value:?}: {e}"))?;
                    saw_lanes = true;
                }
                "source" => {
                    profile.source = match value {
                        "static" => CalibrationSource::Static,
                        "measured" => CalibrationSource::Measured,
                        other => return Err(format!("bad source {other:?}")),
                    };
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        if !(saw_alpha && saw_l2 && saw_lanes) {
            return Err("missing alpha=, l2= or lanes= field".into());
        }
        Ok(profile)
    }
}

/// Raw micro-benchmark timings — the measurement half of calibration,
/// separated from the decision half so tests can pin it.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSamples {
    /// Nanoseconds per word of a sequential streaming pass.
    pub seq_ns_per_word: f64,
    /// Nanoseconds per word of a random-stride scatter pass over the same
    /// footprint.  `rand / seq` is the empirical scatter penalty α.
    pub rand_ns_per_word: f64,
    /// `(working_set_bytes, ns_per_word)` pairs of a pointer-chase sweep at
    /// growing footprints; the knee locates the effective L2 size.
    pub l2_curve: Vec<(usize, f64)>,
    /// Scalar-time / vector-time ratio of the tile sweep per tile size
    /// (index `i` = dimension `4 << i`); > 1 means SWAR wins.
    pub simd_speedup: [f64; 4],
}

impl CalibrationSamples {
    /// Micro-benchmark the executing host.  Kept deliberately small (a few
    /// MiB of traffic, well under 50 ms) — this runs synchronously inside
    /// [`Context::calibrate`](crate::grb::Context::calibrate).
    pub fn measure() -> Self {
        // -- streaming vs scattered writes ---------------------------------
        const WORDS: usize = 1 << 16;
        let mut buf = vec![0u64; WORDS];
        // Warm the buffer (and the allocator) before timing anything.
        for (i, w) in buf.iter_mut().enumerate() {
            *w = i as u64;
        }
        let seq_ns = {
            let t = Instant::now();
            let mut acc = 0u64;
            for &w in &buf {
                acc = acc.wrapping_add(w);
            }
            std::hint::black_box(acc);
            t.elapsed().as_nanos() as f64
        };
        let rand_ns = {
            // Large-stride index walk: every write lands on a fresh cache
            // line.  The LCG step is a full-period odd multiplier mod 2^16.
            let t = Instant::now();
            let mut idx = 1usize;
            for i in 0..WORDS {
                buf[idx] = buf[idx].wrapping_add(i as u64);
                idx = (idx.wrapping_mul(25_173).wrapping_add(13_849)) & (WORDS - 1);
            }
            std::hint::black_box(&buf);
            t.elapsed().as_nanos() as f64
        };

        // -- cache-size knee ------------------------------------------------
        let mut l2_curve = Vec::new();
        for shift in [14usize, 16, 18, 20, 22] {
            let words = (1usize << shift) / 8;
            let slice = &mut buf[..words.min(WORDS)];
            let t = Instant::now();
            let mut idx = 1usize;
            let n = slice.len();
            for i in 0..n * 4 {
                slice[idx] = slice[idx].wrapping_add(i as u64);
                idx = (idx.wrapping_mul(25_173).wrapping_add(13_849)) % n.max(1);
            }
            std::hint::black_box(&slice);
            let ns = t.elapsed().as_nanos() as f64 / (n * 4).max(1) as f64;
            l2_curve.push((1usize << shift, ns));
        }

        // -- scalar vs SWAR sweep crossover ---------------------------------
        // Time the core per-chunk operation of each path over the same
        // words: per-row popcount (scalar) vs one SWAR lane popcount.
        let simd_speedup = std::array::from_fn(|i| {
            let bits = 4u32 << i.min(3);
            let scalar = {
                let t = Instant::now();
                let mut acc = 0u64;
                for &w in &buf {
                    // One popcount per `bits`-wide lane, like the scalar
                    // kernel's per-row loop.
                    let mut rest = w;
                    for _ in 0..(64 / bits.max(8)) {
                        acc = acc.wrapping_add((rest & 0xff).count_ones() as u64);
                        rest >>= 8;
                    }
                }
                std::hint::black_box(acc);
                t.elapsed().as_nanos() as f64
            };
            let vector = {
                let t = Instant::now();
                let mut acc = 0u64;
                for &w in &buf {
                    acc = acc.wrapping_add(match bits {
                        4 | 8 => lane_popcounts::<u8>(w),
                        16 => lane_popcounts::<u16>(w),
                        _ => lane_popcounts::<u32>(w),
                    });
                }
                std::hint::black_box(acc);
                t.elapsed().as_nanos() as f64
            };
            if vector > 0.0 {
                scalar / vector
            } else {
                0.0
            }
        });

        CalibrationSamples {
            seq_ns_per_word: seq_ns / WORDS as f64,
            rand_ns_per_word: rand_ns / WORDS as f64,
            l2_curve,
            simd_speedup,
        }
    }

    /// Samples that are degenerate in every field (what a zero-resolution
    /// clock produces) — [`CalibratedProfile::from_samples`] maps these to
    /// the static fallback.  Public so tests outside the crate can exercise
    /// the fallback path.
    pub fn degenerate() -> Self {
        CalibrationSamples {
            seq_ns_per_word: 0.0,
            rand_ns_per_word: 0.0,
            l2_curve: Vec::new(),
            simd_speedup: [0.0; 4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_perfmodel::pascal_gtx1080;

    fn pinned_samples() -> CalibrationSamples {
        CalibrationSamples {
            seq_ns_per_word: 1.0,
            rand_ns_per_word: 12.5,
            l2_curve: vec![
                (1 << 14, 1.0),
                (1 << 16, 1.05),
                (1 << 18, 1.2),
                (1 << 20, 1.4),
                (1 << 22, 9.0),
            ],
            simd_speedup: [2.0, 3.0, 1.5, 0.7],
        }
    }

    #[test]
    fn static_profile_reproduces_the_device_constants() {
        let dev = pascal_gtx1080();
        let p = CalibratedProfile::from_device(&dev);
        assert_eq!(p.scatter_alpha, scatter_penalty(&dev));
        assert_eq!(p.l2_bytes, dev.l2_kb * 1024);
        assert_eq!(p.simd_lane_mask, DEFAULT_LANE_MASK);
        assert_eq!(p.source, CalibrationSource::Static);
    }

    #[test]
    fn from_samples_is_pure_and_deterministic() {
        let dev = pascal_gtx1080();
        let a = CalibratedProfile::from_samples(&pinned_samples(), &dev);
        let b = CalibratedProfile::from_samples(&pinned_samples(), &dev);
        assert_eq!(a, b);
        assert_eq!(a.scatter_alpha, 12.5);
        // Knee: 1 << 20 is the largest size within 1.5× of the 1.0 floor.
        assert_eq!(a.l2_bytes, 1 << 20);
        // Speedups > 1 at S4/S8/S16, ≤ 1 at S32.
        assert_eq!(a.simd_lane_mask, 0b0111);
        assert_eq!(a.source, CalibrationSource::Measured);
    }

    #[test]
    fn alpha_is_clamped_to_the_model_range() {
        let dev = pascal_gtx1080();
        let mut s = pinned_samples();
        s.rand_ns_per_word = 1000.0;
        assert_eq!(
            CalibratedProfile::from_samples(&s, &dev).scatter_alpha,
            32.0
        );
        s.rand_ns_per_word = 1.0;
        assert_eq!(CalibratedProfile::from_samples(&s, &dev).scatter_alpha, 4.0);
    }

    #[test]
    fn degenerate_samples_fall_back_to_the_static_profile() {
        let dev = pascal_gtx1080();
        let fallback = CalibratedProfile::from_device(&dev);
        assert_eq!(
            CalibratedProfile::from_samples(&CalibrationSamples::degenerate(), &dev),
            fallback
        );
        // Partial degeneracy falls back field by field.
        let mut s = pinned_samples();
        s.seq_ns_per_word = f64::NAN;
        let p = CalibratedProfile::from_samples(&s, &dev);
        assert_eq!(p.scatter_alpha, fallback.scatter_alpha);
        assert_eq!(p.l2_bytes, 1 << 20, "valid curve still refines L2");
        let mut s = pinned_samples();
        s.l2_curve.push((0, 1.0));
        let p = CalibratedProfile::from_samples(&s, &dev);
        assert_eq!(p.l2_bytes, fallback.l2_bytes);
        let mut s = pinned_samples();
        s.simd_speedup[2] = -1.0;
        let p = CalibratedProfile::from_samples(&s, &dev);
        assert_eq!(p.simd_lane_mask, fallback.simd_lane_mask);
    }

    #[test]
    fn profile_round_trips_through_display() {
        let dev = pascal_gtx1080();
        for p in [
            CalibratedProfile::from_device(&dev),
            CalibratedProfile::from_samples(&pinned_samples(), &dev),
        ] {
            let text = p.to_string();
            let back: CalibratedProfile = text.parse().unwrap();
            assert_eq!(back, p, "{text}");
        }
        assert!("alpha=1.0".parse::<CalibratedProfile>().is_err());
        assert!("alpha=x l2=1 lanes=0b1"
            .parse::<CalibratedProfile>()
            .is_err());
        assert!("alpha=1 l2=1 lanes=0b1 source=warp"
            .parse::<CalibratedProfile>()
            .is_err());
    }

    #[test]
    fn real_measurement_produces_a_usable_profile() {
        // Whatever this host's clock does, the distilled profile must stay
        // inside the model's sane ranges (that is the fallback's job).
        let dev = pascal_gtx1080();
        let p = CalibratedProfile::from_samples(&CalibrationSamples::measure(), &dev);
        assert!((4.0..=32.0).contains(&p.scatter_alpha));
        assert!(p.l2_bytes > 0);
    }
}
