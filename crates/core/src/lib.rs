//! # bitgblas-core
//!
//! The core of the Bit-GraphBLAS reproduction — the paper's primary
//! contribution, reimplemented in Rust on top of the software warp model of
//! `bitgblas-bitops` and the sparse substrate of `bitgblas-sparse`.
//!
//! The crate is organised around the paper's three research questions:
//!
//! * **RQ-1 (storage format)** — [`b2sr`] implements the Bit-Block Compressed
//!   Sparse Row format in its four variants (B2SR-4/8/16/32): a CSR-like upper
//!   level over fixed-size tiles (`TileRowPtr`, `TileColInd`) and a dense
//!   bit-packed lower level (`BitTiles`), together with the CSR↔B2SR
//!   conversions, transposition, storage statistics (compression ratio,
//!   non-empty-tile ratio, nonzero occupancy) and the sampling-profile
//!   tile-size selector of Algorithm 1.
//!
//! * **RQ-2 (computation)** — [`kernels`] implements the BMV and BMM schemes of
//!   Tables II and III: `bmv_bin_bin_bin`, `bmv_bin_bin_full`,
//!   `bmv_bin_full_full` (plus masked variants) and `bmm_bin_bin_sum` (plus the
//!   masked variant used by Triangle Counting), each structured as
//!   one-warp-per-tile-row over the software warp model and parallelised
//!   across tile-rows with Rayon.  The push (sparse-frontier scatter)
//!   kernels parallelise through [`shard`]: row-shard partition plans,
//!   privatized per-segment scatter and a fixed-order monoid merge that
//!   keeps results bit-identical across thread counts.
//!
//! * **Graph-algorithm support** — [`semiring`] provides the semiring domains
//!   of Table IV (Boolean, arithmetic, tropical min-plus, tropical max-times)
//!   and [`grb`] exposes a GraphBLAS-style object API (`Matrix`, `Vector`,
//!   the `Op` builders, masks and descriptors) over the pluggable
//!   [`grb::GrbBackend`] trait.  Two backends ship here — the B2SR bit
//!   backend (this paper) and the float-CSR baseline (the GraphBLAST
//!   stand-in) — plus [`grb::Backend::Auto`], which picks format and tile
//!   size per matrix from the pattern classifier, the Algorithm-1 sampling
//!   profile and the memory-traffic model.  `bitgblas-algorithms` builds
//!   BFS/SSSP/PR/CC/TC on this API.
//!
//! * **Streaming mutations** — [`delta`] keeps the graph mutable under
//!   live serving: an append-only edge-delta log with DCSR-style staged
//!   rows, a merge-on-read overlay backend (`base ⊕ delta`, no rebuild),
//!   versioned epoch publication behind [`grb::Matrix::snapshot`], and
//!   explicit compaction that re-tiles the base and re-plans row shards
//!   incrementally.
//!
//! * **Vector kernels + calibration (PR 9)** — [`kernels::simd`] is the
//!   SWAR vector engine behind the `_simd` kernel variants (runtime-selected
//!   with the scalar kernels always compiled as fallback and differential
//!   reference), and [`calibrate`] micro-benches the executing host into a
//!   [`CalibratedProfile`] that replaces the static device constants in
//!   direction choice, shard sizing, and the scalar/vector crossover.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod b2sr;
pub mod calibrate;
pub mod delta;
pub mod faultinject;
pub mod grb;
pub mod kernels;
pub mod semiring;
pub mod shard;

pub use b2sr::{B2sr, B2srMatrix, TileSize};
pub use calibrate::{CalibratedProfile, CalibrationSamples, CalibrationSource};
pub use delta::{
    CompactReport, DeltaOp, DeltaOverlay, DeltaSnapshot, EdgeDelta, StagedRows, VersionCell,
    DELTA_MERGE_POINT,
};
pub use faultinject::{FailSpec, FaultAction, FaultInjector, FaultPlan, InjectedPanic};
pub use grb::{
    Backend, Context, Descriptor, Direction, Expr, Fusion, GrbBackend, GrbError, Matrix, MultiVec,
    Op, Snapshot, Vector,
};
pub use kernels::simd::SimdPolicy;
pub use semiring::{BinaryOp, Semiring};
pub use shard::{ShardConfig, ShardPlan};
