//! The B2SR container types.

use bitgblas_bitops::BitWord;
use bitgblas_sparse::Csr;

/// The four tile dimensions evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileSize {
    /// 4×4 tiles packed into `u8` rows (B2SR-4).
    S4,
    /// 8×8 tiles packed into `u8` rows (B2SR-8).
    S8,
    /// 16×16 tiles packed into `u16` rows (B2SR-16).
    S16,
    /// 32×32 tiles packed into `u32` rows (B2SR-32).
    S32,
}

impl TileSize {
    /// All four variants, smallest first.
    pub const ALL: [TileSize; 4] = [TileSize::S4, TileSize::S8, TileSize::S16, TileSize::S32];

    /// The tile dimension (4, 8, 16 or 32).
    #[inline]
    pub fn dim(self) -> usize {
        match self {
            TileSize::S4 => 4,
            TileSize::S8 => 8,
            TileSize::S16 => 16,
            TileSize::S32 => 32,
        }
    }

    /// Bytes used to store one packed tile row (the packing word size of
    /// Table I).
    #[inline]
    pub fn bytes_per_tile_row(self) -> usize {
        match self {
            TileSize::S4 | TileSize::S8 => 1,
            TileSize::S16 => 2,
            TileSize::S32 => 4,
        }
    }

    /// Bytes used to store one whole packed tile.
    #[inline]
    pub fn bytes_per_tile(self) -> usize {
        self.dim() * self.bytes_per_tile_row()
    }

    /// The `TileSize` for a given dimension, if it is one of the supported
    /// four.
    pub fn from_dim(dim: usize) -> Option<TileSize> {
        match dim {
            4 => Some(TileSize::S4),
            8 => Some(TileSize::S8),
            16 => Some(TileSize::S16),
            32 => Some(TileSize::S32),
            _ => None,
        }
    }
}

impl std::fmt::Display for TileSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B2SR-{}", self.dim())
    }
}

/// A binary sparse matrix in Bit-Block Compressed Sparse Row format.
///
/// `W` is the packing word (`u8` for B2SR-4/8, `u16` for B2SR-16, `u32` for
/// B2SR-32); `tile_dim ≤ W::BITS` rows of `tile_dim` bits are stored per
/// non-empty tile, row-major, least-significant bit = left-most column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct B2sr<W: BitWord> {
    pub(crate) nrows: usize,
    pub(crate) ncols: usize,
    pub(crate) tile_dim: usize,
    pub(crate) n_tile_rows: usize,
    pub(crate) n_tile_cols: usize,
    /// Cumulative non-empty-tile counts per tile-row (`n_tile_rows + 1`).
    pub(crate) tile_rowptr: Vec<usize>,
    /// Tile-column index of each non-empty tile.
    pub(crate) tile_colind: Vec<usize>,
    /// `tile_dim` packed words per non-empty tile, concatenated.
    pub(crate) bit_tiles: Vec<W>,
}

impl<W: BitWord> B2sr<W> {
    /// Assemble a B2SR matrix from its raw parts (used by the converter and
    /// by tests that build tiles directly).
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        tile_dim: usize,
        tile_rowptr: Vec<usize>,
        tile_colind: Vec<usize>,
        bit_tiles: Vec<W>,
    ) -> Self {
        assert!(
            tile_dim > 0 && tile_dim as u32 <= W::BITS,
            "tile_dim must fit the packing word"
        );
        let n_tile_rows = nrows.div_ceil(tile_dim);
        let n_tile_cols = ncols.div_ceil(tile_dim);
        assert_eq!(tile_rowptr.len(), n_tile_rows + 1, "tile_rowptr length");
        assert_eq!(
            *tile_rowptr.last().unwrap_or(&0),
            tile_colind.len(),
            "tile count"
        );
        assert_eq!(
            bit_tiles.len(),
            tile_colind.len() * tile_dim,
            "bit_tiles length"
        );
        debug_assert!(
            tile_colind.iter().all(|&c| c < n_tile_cols),
            "tile column in range"
        );
        B2sr {
            nrows,
            ncols,
            tile_dim,
            n_tile_rows,
            n_tile_cols,
            tile_rowptr,
            tile_colind,
            bit_tiles,
        }
    }

    /// Number of rows of the represented matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the represented matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The tile dimension (4, 8, 16 or 32).
    pub fn tile_dim(&self) -> usize {
        self.tile_dim
    }

    /// Number of tile rows (`ceil(nrows / tile_dim)`).
    pub fn n_tile_rows(&self) -> usize {
        self.n_tile_rows
    }

    /// Number of tile columns.
    pub fn n_tile_cols(&self) -> usize {
        self.n_tile_cols
    }

    /// Number of non-empty tiles.
    pub fn n_tiles(&self) -> usize {
        self.tile_colind.len()
    }

    /// The `TileRowPtr` array.
    pub fn tile_rowptr(&self) -> &[usize] {
        &self.tile_rowptr
    }

    /// The `TileColInd` array.
    pub fn tile_colind(&self) -> &[usize] {
        &self.tile_colind
    }

    /// The raw `BitTiles` storage.
    pub fn bit_tiles(&self) -> &[W] {
        &self.bit_tiles
    }

    /// The packed words of the tile at slot `idx` (row-major, `tile_dim`
    /// words).
    pub fn tile_words(&self, idx: usize) -> &[W] {
        &self.bit_tiles[idx * self.tile_dim..(idx + 1) * self.tile_dim]
    }

    /// Iterate over `(tile_row, tile_col, words)` for every non-empty tile.
    pub fn iter_tiles(&self) -> impl Iterator<Item = (usize, usize, &[W])> + '_ {
        (0..self.n_tile_rows).flat_map(move |tr| {
            (self.tile_rowptr[tr]..self.tile_rowptr[tr + 1])
                .map(move |idx| (tr, self.tile_colind[idx], self.tile_words(idx)))
        })
    }

    /// The slots (indices into `tile_colind`/`bit_tiles`) of tile-row `tr`.
    pub fn tile_row_range(&self, tr: usize) -> std::ops::Range<usize> {
        self.tile_rowptr[tr]..self.tile_rowptr[tr + 1]
    }

    /// Number of set bits across all tiles — equals the nnz of the original
    /// binary matrix.
    pub fn nnz(&self) -> u64 {
        self.bit_tiles.iter().map(|w| w.popcount() as u64).sum()
    }

    /// Storage footprint in bytes, counting 4-byte integers for the two index
    /// arrays and the Table-I packing word size for the tiles.
    pub fn storage_bytes(&self) -> usize {
        let word_bytes = match TileSize::from_dim(self.tile_dim) {
            Some(ts) => ts.bytes_per_tile_row(),
            // Non-standard tile dims fall back to the word's own width.
            None => (W::BITS / 8) as usize,
        };
        4 * (self.tile_rowptr.len() + self.tile_colind.len()) + word_bytes * self.bit_tiles.len()
    }

    /// True if the bit at matrix coordinates `(r, c)` is set.
    pub fn get(&self, r: usize, c: usize) -> bool {
        if r >= self.nrows || c >= self.ncols {
            return false;
        }
        let (tr, tc) = (r / self.tile_dim, c / self.tile_dim);
        let range = self.tile_row_range(tr);
        let cols = &self.tile_colind[range.clone()];
        match cols.binary_search(&tc) {
            Ok(pos) => {
                let idx = range.start + pos;
                let word = self.tile_words(idx)[r % self.tile_dim];
                word.bit((c % self.tile_dim) as u32)
            }
            Err(_) => false,
        }
    }

    /// Reconstruct the binary CSR matrix (all values `1.0`).
    pub fn to_csr(&self) -> Csr {
        let mut coo = bitgblas_sparse::Coo::new(self.nrows, self.ncols);
        for (tr, tc, words) in self.iter_tiles() {
            for (dr, &w) in words.iter().enumerate() {
                let r = tr * self.tile_dim + dr;
                if r >= self.nrows {
                    break;
                }
                for dc in w.iter_ones() {
                    let c = tc * self.tile_dim + dc as usize;
                    if c < self.ncols {
                        coo.push_edge(r, c).expect("in bounds by construction");
                    }
                }
            }
        }
        coo.to_binary_csr()
    }

    /// Transpose: returns the B2SR representation of `A^T`.
    ///
    /// As the paper notes, only the upper-level index arrays need a CSR→CSC
    /// style permutation; each bit tile is transposed in place with a pure
    /// bit permutation.
    pub fn transpose(&self) -> B2sr<W> {
        let dim = self.tile_dim;
        // Count tiles per transposed tile-row (= original tile-column).
        let n_trows_t = self.ncols.div_ceil(dim);
        let mut tile_rowptr = vec![0usize; n_trows_t + 1];
        for &tc in &self.tile_colind {
            tile_rowptr[tc + 1] += 1;
        }
        for i in 0..n_trows_t {
            tile_rowptr[i + 1] += tile_rowptr[i];
        }
        let mut next = tile_rowptr.clone();
        let n_tiles = self.n_tiles();
        let mut tile_colind = vec![0usize; n_tiles];
        let mut bit_tiles = vec![W::ZERO; n_tiles * dim];
        for (tr, tc, words) in self.iter_tiles() {
            let slot = next[tc];
            next[tc] += 1;
            tile_colind[slot] = tr;
            let transposed = bitgblas_bitops::pack::transpose_tile(words, dim);
            bit_tiles[slot * dim..(slot + 1) * dim].copy_from_slice(&transposed);
        }
        // Tiles within a transposed tile-row must be sorted by tile column.
        // Because we visit the original tiles in (tr, tc) order, tiles land in
        // each bucket already sorted by tr (the new column index), so the
        // structure is valid as built.
        B2sr {
            nrows: self.ncols,
            ncols: self.nrows,
            tile_dim: dim,
            n_tile_rows: n_trows_t,
            n_tile_cols: self.nrows.div_ceil(dim),
            tile_rowptr,
            tile_colind,
            bit_tiles,
        }
    }
}

/// A type-erased B2SR matrix covering the four Table-I variants, so callers
/// can pick the tile size at run time (e.g. from the sampling profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum B2srMatrix {
    /// B2SR-4 (4×4 tiles, `u8` packing).
    B4(B2sr<u8>),
    /// B2SR-8 (8×8 tiles, `u8` packing).
    B8(B2sr<u8>),
    /// B2SR-16 (16×16 tiles, `u16` packing).
    B16(B2sr<u16>),
    /// B2SR-32 (32×32 tiles, `u32` packing).
    B32(B2sr<u32>),
}

impl B2srMatrix {
    /// Convert a binary CSR matrix into the requested B2SR variant.
    pub fn from_csr(csr: &Csr, size: TileSize) -> B2srMatrix {
        match size {
            TileSize::S4 => B2srMatrix::B4(super::convert::from_csr::<u8>(csr, 4)),
            TileSize::S8 => B2srMatrix::B8(super::convert::from_csr::<u8>(csr, 8)),
            TileSize::S16 => B2srMatrix::B16(super::convert::from_csr::<u16>(csr, 16)),
            TileSize::S32 => B2srMatrix::B32(super::convert::from_csr::<u32>(csr, 32)),
        }
    }

    /// The tile size of this variant.
    pub fn tile_size(&self) -> TileSize {
        match self {
            B2srMatrix::B4(_) => TileSize::S4,
            B2srMatrix::B8(_) => TileSize::S8,
            B2srMatrix::B16(_) => TileSize::S16,
            B2srMatrix::B32(_) => TileSize::S32,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match self {
            B2srMatrix::B4(m) => m.nrows(),
            B2srMatrix::B8(m) => m.nrows(),
            B2srMatrix::B16(m) => m.nrows(),
            B2srMatrix::B32(m) => m.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            B2srMatrix::B4(m) => m.ncols(),
            B2srMatrix::B8(m) => m.ncols(),
            B2srMatrix::B16(m) => m.ncols(),
            B2srMatrix::B32(m) => m.ncols(),
        }
    }

    /// Number of set bits (nnz of the binary matrix).
    pub fn nnz(&self) -> u64 {
        match self {
            B2srMatrix::B4(m) => m.nnz(),
            B2srMatrix::B8(m) => m.nnz(),
            B2srMatrix::B16(m) => m.nnz(),
            B2srMatrix::B32(m) => m.nnz(),
        }
    }

    /// Number of non-empty tiles.
    pub fn n_tiles(&self) -> usize {
        match self {
            B2srMatrix::B4(m) => m.n_tiles(),
            B2srMatrix::B8(m) => m.n_tiles(),
            B2srMatrix::B16(m) => m.n_tiles(),
            B2srMatrix::B32(m) => m.n_tiles(),
        }
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        match self {
            B2srMatrix::B4(m) => m.storage_bytes(),
            B2srMatrix::B8(m) => m.storage_bytes(),
            B2srMatrix::B16(m) => m.storage_bytes(),
            B2srMatrix::B32(m) => m.storage_bytes(),
        }
    }

    /// Reconstruct the binary CSR matrix.
    pub fn to_csr(&self) -> Csr {
        match self {
            B2srMatrix::B4(m) => m.to_csr(),
            B2srMatrix::B8(m) => m.to_csr(),
            B2srMatrix::B16(m) => m.to_csr(),
            B2srMatrix::B32(m) => m.to_csr(),
        }
    }

    /// Transpose, preserving the variant.
    pub fn transpose(&self) -> B2srMatrix {
        match self {
            B2srMatrix::B4(m) => B2srMatrix::B4(m.transpose()),
            B2srMatrix::B8(m) => B2srMatrix::B8(m.transpose()),
            B2srMatrix::B16(m) => B2srMatrix::B16(m.transpose()),
            B2srMatrix::B32(m) => B2srMatrix::B32(m.transpose()),
        }
    }

    /// The upper-level tile structure as a `bitgblas-perfmodel` layout, for
    /// feeding this matrix into the memory-traffic model.
    pub fn layout(&self) -> bitgblas_perfmodel::B2srLayout {
        macro_rules! to_layout {
            ($m:expr) => {
                bitgblas_perfmodel::B2srLayout::from_parts(
                    $m.nrows(),
                    $m.ncols(),
                    $m.tile_dim(),
                    $m.tile_colind().to_vec(),
                )
            };
        }
        match self {
            B2srMatrix::B4(m) => to_layout!(m),
            B2srMatrix::B8(m) => to_layout!(m),
            B2srMatrix::B16(m) => to_layout!(m),
            B2srMatrix::B32(m) => to_layout!(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_size_properties() {
        assert_eq!(TileSize::S4.dim(), 4);
        assert_eq!(TileSize::S32.dim(), 32);
        assert_eq!(TileSize::S4.bytes_per_tile(), 4);
        assert_eq!(TileSize::S8.bytes_per_tile(), 8);
        assert_eq!(TileSize::S16.bytes_per_tile(), 32);
        assert_eq!(TileSize::S32.bytes_per_tile(), 128);
        assert_eq!(TileSize::from_dim(16), Some(TileSize::S16));
        assert_eq!(TileSize::from_dim(7), None);
        assert_eq!(TileSize::S8.to_string(), "B2SR-8");
        assert_eq!(TileSize::ALL.len(), 4);
    }

    #[test]
    fn from_parts_and_accessors() {
        // A 4x4 matrix with one tile of dim 4: identity pattern.
        let words: Vec<u8> = vec![0b0001, 0b0010, 0b0100, 0b1000];
        let m = B2sr::<u8>::from_parts(4, 4, 4, vec![0, 1], vec![0], words.clone());
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.n_tiles(), 1);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.tile_words(0), &words[..]);
        assert!(m.get(2, 2));
        assert!(!m.get(2, 3));
        assert!(!m.get(9, 9));
        let tiles: Vec<_> = m.iter_tiles().collect();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].0, 0);
        assert_eq!(tiles[0].1, 0);
    }

    #[test]
    #[should_panic(expected = "bit_tiles length")]
    fn from_parts_rejects_bad_lengths() {
        let _ = B2sr::<u8>::from_parts(4, 4, 4, vec![0, 1], vec![0], vec![0u8; 3]);
    }

    #[test]
    fn storage_accounting_matches_table1() {
        // One non-empty tile per variant: index arrays (2+1 ints) + tile bytes.
        let m4 = B2sr::<u8>::from_parts(4, 4, 4, vec![0, 1], vec![0], vec![0xFu8; 4]);
        assert_eq!(m4.storage_bytes(), 4 * 3 + 4);
        let m8 = B2sr::<u8>::from_parts(8, 8, 8, vec![0, 1], vec![0], vec![0xFFu8; 8]);
        assert_eq!(m8.storage_bytes(), 4 * 3 + 8);
        let m16 = B2sr::<u16>::from_parts(16, 16, 16, vec![0, 1], vec![0], vec![0u16; 16]);
        assert_eq!(m16.storage_bytes(), 4 * 3 + 32);
        let m32 = B2sr::<u32>::from_parts(32, 32, 32, vec![0, 1], vec![0], vec![0u32; 32]);
        assert_eq!(m32.storage_bytes(), 4 * 3 + 128);
    }
}
