//! Storage statistics for B2SR — the quantities plotted in Figures 3 and 5
//! and tabulated in Table I.

use bitgblas_sparse::Csr;

use super::format::{B2srMatrix, TileSize};

/// One row of Table I: the per-tile packing format and its space saving.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingRow {
    /// Tile size of the variant.
    pub tile_size: TileSize,
    /// Bytes a full tile would occupy in 32-bit-float CSR storage
    /// ("at most": values + column indices).
    pub csr_bytes_per_tile: usize,
    /// Bytes of the binarized packed tile.
    pub packed_bytes_per_tile: usize,
    /// The space-saving factor (`csr / packed`).
    pub saving_factor: f64,
}

/// Compute Table I: the maximal per-tile space saving of each packing format
/// relative to 32-bit-float CSR value storage.
///
/// The paper counts only the 4-byte float values of a full tile against the
/// packed bit representation (`4×4 float → 4×1 uchar = 16×`, all larger tiles
/// = 32×).
pub fn packing_table() -> Vec<PackingRow> {
    TileSize::ALL
        .iter()
        .map(|&ts| {
            let dim = ts.dim();
            let csr_bytes = dim * dim * 4;
            let packed = ts.bytes_per_tile();
            PackingRow {
                tile_size: ts,
                csr_bytes_per_tile: csr_bytes,
                packed_bytes_per_tile: packed,
                saving_factor: csr_bytes as f64 / packed as f64,
            }
        })
        .collect()
}

/// Aggregate storage statistics of a matrix under one B2SR tile size.
#[derive(Debug, Clone, PartialEq)]
pub struct B2srStats {
    /// The tile size the statistics refer to.
    pub tile_size: TileSize,
    /// Number of non-empty tiles.
    pub n_tiles: usize,
    /// Total number of tile positions (`n_tile_rows × n_tile_cols`).
    pub n_tile_slots: usize,
    /// Fraction of tile positions that are non-empty (Figure 3a, in %
    /// when multiplied by 100).
    pub nonempty_tile_ratio: f64,
    /// Average fraction of set bits inside the non-empty tiles (Figure 3b).
    pub nonzero_occupancy: f64,
    /// B2SR storage footprint in bytes.
    pub b2sr_bytes: usize,
    /// CSR (float, 32-bit index) storage footprint in bytes.
    pub csr_bytes: usize,
    /// `b2sr_bytes / csr_bytes` — the paper's compression ratio (< 1 means
    /// B2SR is smaller; Figure 5a's x-axis as a percentage).
    pub compression_ratio: f64,
}

/// Compute the storage statistics of `csr` under the given tile size.
pub fn stats_for(csr: &Csr, size: TileSize) -> B2srStats {
    let b2sr = B2srMatrix::from_csr(csr, size);
    let n_tiles = b2sr.n_tiles();
    let dim = size.dim();
    let n_tile_slots = csr.nrows().div_ceil(dim) * csr.ncols().div_ceil(dim);
    let nonempty_tile_ratio = if n_tile_slots == 0 {
        0.0
    } else {
        n_tiles as f64 / n_tile_slots as f64
    };
    let nonzero_occupancy = if n_tiles == 0 {
        0.0
    } else {
        b2sr.nnz() as f64 / (n_tiles as f64 * (dim * dim) as f64)
    };
    let b2sr_bytes = b2sr.storage_bytes();
    let csr_bytes = csr.storage_bytes();
    let compression_ratio = if csr_bytes == 0 {
        0.0
    } else {
        b2sr_bytes as f64 / csr_bytes as f64
    };
    B2srStats {
        tile_size: size,
        n_tiles,
        n_tile_slots,
        nonempty_tile_ratio,
        nonzero_occupancy,
        b2sr_bytes,
        csr_bytes,
        compression_ratio,
    }
}

/// Compute the statistics for all four variants (one Figure 3 x-position per
/// entry).
pub fn stats_all_sizes(csr: &Csr) -> Vec<B2srStats> {
    TileSize::ALL.iter().map(|&ts| stats_for(csr, ts)).collect()
}

/// The tile size with the smallest B2SR footprint for this matrix (the
/// "optimal" series of Figure 5b).
pub fn optimal_tile_size(csr: &Csr) -> TileSize {
    stats_all_sizes(csr)
        .into_iter()
        .min_by(|a, b| a.b2sr_bytes.cmp(&b.b2sr_bytes))
        .map(|s| s.tile_size)
        .unwrap_or(TileSize::S8)
}

/// The tile sizes that actually compress the matrix (compression ratio below
/// 1.0 — the "compressed" series of Figure 5b).
pub fn compressing_tile_sizes(csr: &Csr) -> Vec<TileSize> {
    stats_all_sizes(csr)
        .into_iter()
        .filter(|s| s.compression_ratio < 1.0)
        .map(|s| s.tile_size)
        .collect()
}

/// Exact B2SR byte sizes for all four variants, convenient for reporting
/// (e.g. the mycielskian12 example of §III-C).
pub fn byte_sizes(csr: &Csr) -> Vec<(TileSize, usize)> {
    stats_all_sizes(csr)
        .into_iter()
        .map(|s| (s.tile_size, s.b2sr_bytes))
        .collect()
}

/// Direct conversion helper mirroring [`stats_for`] but reusing an existing
/// conversion when the caller already has one (avoids converting twice in
/// benches).
pub fn stats_from_b2sr(csr: &Csr, b2sr: &B2srMatrix) -> B2srStats {
    let size = b2sr.tile_size();
    let dim = size.dim();
    let n_tiles = b2sr.n_tiles();
    let n_tile_slots = csr.nrows().div_ceil(dim) * csr.ncols().div_ceil(dim);
    B2srStats {
        tile_size: size,
        n_tiles,
        n_tile_slots,
        nonempty_tile_ratio: if n_tile_slots == 0 {
            0.0
        } else {
            n_tiles as f64 / n_tile_slots as f64
        },
        nonzero_occupancy: if n_tiles == 0 {
            0.0
        } else {
            b2sr.nnz() as f64 / (n_tiles as f64 * (dim * dim) as f64)
        },
        b2sr_bytes: b2sr.storage_bytes(),
        csr_bytes: csr.storage_bytes(),
        compression_ratio: if csr.storage_bytes() == 0 {
            0.0
        } else {
            b2sr.storage_bytes() as f64 / csr.storage_bytes() as f64
        },
    }
}

/// Space saving of the pure bit packing for a single full tile, by word type,
/// reproducing the "up to 32×" claim: `dim*dim*4` bytes of floats vs the
/// packed bytes.
pub fn tile_saving(size: TileSize) -> f64 {
    let dim = size.dim();
    (dim * dim * 4) as f64 / size.bytes_per_tile() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn banded(n: usize, bw: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
                coo.push_edge(r, c).unwrap();
            }
        }
        coo.to_binary_csr()
    }

    #[test]
    fn table1_matches_paper() {
        let t = packing_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].saving_factor, 16.0); // 4x4
        assert_eq!(t[1].saving_factor, 32.0); // 8x8
        assert_eq!(t[2].saving_factor, 32.0); // 16x16
        assert_eq!(t[3].saving_factor, 32.0); // 32x32
        assert_eq!(t[3].csr_bytes_per_tile, 4096);
        assert_eq!(t[3].packed_bytes_per_tile, 128);
        assert_eq!(tile_saving(TileSize::S4), 16.0);
        assert_eq!(tile_saving(TileSize::S32), 32.0);
    }

    #[test]
    fn stats_are_consistent() {
        let a = banded(256, 2);
        for s in stats_all_sizes(&a) {
            assert!(s.nonempty_tile_ratio > 0.0 && s.nonempty_tile_ratio <= 1.0);
            assert!(s.nonzero_occupancy > 0.0 && s.nonzero_occupancy <= 1.0);
            assert!(s.b2sr_bytes > 0);
            assert_eq!(s.csr_bytes, a.storage_bytes());
            assert!((s.compression_ratio - s.b2sr_bytes as f64 / s.csr_bytes as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn banded_matrix_compresses_well() {
        // A banded matrix has dense tiles along the diagonal: B2SR should be
        // significantly smaller than float CSR for at least one tile size.
        let a = banded(1024, 3);
        let best = stats_all_sizes(&a)
            .into_iter()
            .map(|s| s.compression_ratio)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.6, "expected good compression, got ratio {best}");
        assert!(!compressing_tile_sizes(&a).is_empty());
    }

    #[test]
    fn scattered_matrix_compresses_poorly_at_large_tiles() {
        // One isolated nonzero per 32x32 tile region: every non-empty 32x32
        // tile stores 128 bytes for a single bit, worse than CSR's 12 bytes.
        let n = 512;
        let mut coo = Coo::new(n, n);
        for i in (0..n).step_by(32) {
            for j in (0..n).step_by(32) {
                coo.push_edge(i, j).unwrap();
            }
        }
        let a = coo.to_binary_csr();
        let s32 = stats_for(&a, TileSize::S32);
        assert!(
            s32.compression_ratio > 1.0,
            "ratio {}",
            s32.compression_ratio
        );
        // The small-tile variant wastes much less.
        let s4 = stats_for(&a, TileSize::S4);
        assert!(s4.compression_ratio < s32.compression_ratio);
        assert_eq!(optimal_tile_size(&a), TileSize::S4);
    }

    #[test]
    fn nonempty_ratio_grows_with_tile_size() {
        // Figure 3a trend: larger tiles -> fewer slots -> higher non-empty %.
        let a = banded(512, 1);
        let stats = stats_all_sizes(&a);
        for w in stats.windows(2) {
            assert!(
                w[1].nonempty_tile_ratio >= w[0].nonempty_tile_ratio - 1e-9,
                "{:?} -> {:?}",
                w[0].tile_size,
                w[1].tile_size
            );
        }
    }

    #[test]
    fn occupancy_falls_with_tile_size() {
        // Figure 3b trend: larger tiles dilute the nonzeros.
        let a = banded(512, 1);
        let stats = stats_all_sizes(&a);
        for w in stats.windows(2) {
            assert!(w[1].nonzero_occupancy <= w[0].nonzero_occupancy + 1e-9);
        }
    }

    #[test]
    fn stats_from_existing_conversion_match() {
        let a = banded(128, 2);
        let b = B2srMatrix::from_csr(&a, TileSize::S16);
        assert_eq!(stats_from_b2sr(&a, &b), stats_for(&a, TileSize::S16));
    }

    #[test]
    fn empty_matrix_stats() {
        let a = Csr::empty(64, 64);
        let s = stats_for(&a, TileSize::S8);
        assert_eq!(s.n_tiles, 0);
        assert_eq!(s.nonzero_occupancy, 0.0);
        assert_eq!(s.nonempty_tile_ratio, 0.0);
    }
}
