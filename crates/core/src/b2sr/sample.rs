//! The sampling-profile tile-size selector — Algorithm 1 of the paper.
//!
//! Converting a matrix to B2SR only pays off when the bit tiles capture
//! enough nonzeros.  Rather than converting with every tile size and
//! measuring (which costs as much as the conversions themselves), the paper
//! samples `N` rows, counts how many `k`-wide column buckets each sampled row
//! touches, and estimates the compression rate of each B2SR variant from
//! those counts.  Users then pick the tile size whose estimated compression
//! is acceptable — or keep CSR if none is.

use bitgblas_sparse::Csr;

use super::format::TileSize;

/// The per-tile-size estimate produced by the sampling profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileSizeEstimate {
    /// The tile size the estimate refers to.
    pub tile_size: TileSize,
    /// Average number of touched `k`-wide column buckets per sampled row
    /// (`NnzBitRow` in Algorithm 1).
    pub avg_touched_buckets: f64,
    /// Average nonzeros per sampled row (`NnzElement`).
    pub avg_row_nnz: f64,
    /// Average occupancy of the touched buckets (nonzeros / (buckets × k)).
    pub est_occupancy: f64,
    /// Estimated `B2SR bytes / CSR bytes` compression ratio.
    pub est_compression_ratio: f64,
}

/// The result of running Algorithm 1 on a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingProfile {
    /// Number of rows sampled.
    pub sampled_rows: usize,
    /// One estimate per B2SR variant, ordered as [`TileSize::ALL`].
    pub estimates: Vec<TileSizeEstimate>,
}

impl SamplingProfile {
    /// The tile size with the lowest estimated compression ratio.
    pub fn recommended_tile_size(&self) -> TileSize {
        self.estimates
            .iter()
            .min_by(|a, b| {
                a.est_compression_ratio
                    .partial_cmp(&b.est_compression_ratio)
                    .unwrap()
            })
            .map(|e| e.tile_size)
            .unwrap_or(TileSize::S8)
    }

    /// True if at least one variant is estimated to compress the matrix
    /// (ratio below 1.0) — the "worth converting" decision.
    pub fn worth_converting(&self) -> bool {
        self.estimates.iter().any(|e| e.est_compression_ratio < 1.0)
    }

    /// The estimate for one specific tile size.
    pub fn estimate_for(&self, size: TileSize) -> &TileSizeEstimate {
        self.estimates
            .iter()
            .find(|e| e.tile_size == size)
            .expect("profile always contains all four variants")
    }
}

/// Run the sampling profile (Algorithm 1) on `n_samples` rows of `csr`,
/// selected deterministically from `seed`.
///
/// Sampling more rows captures the matrix characteristics more accurately at
/// proportionally higher cost; `n_samples` is clamped to the number of rows.
pub fn sample_profile(csr: &Csr, n_samples: usize, seed: u64) -> SamplingProfile {
    let nrows = csr.nrows();
    let n_samples = n_samples.clamp(1, nrows.max(1));

    // Deterministic sample of row indices (splitmix-style hash of the index).
    let sampled: Vec<usize> = if n_samples >= nrows {
        (0..nrows).collect()
    } else {
        let mut rows: Vec<usize> = (0..n_samples)
            .map(|i| {
                let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % nrows
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    };
    let n_sampled = sampled.len().max(1);

    let estimates = TileSize::ALL
        .iter()
        .map(|&ts| {
            let k = ts.dim();
            let mut total_buckets = 0usize;
            let mut total_nnz = 0usize;
            let mut bucket_scratch: Vec<usize> = Vec::new();
            for &r in &sampled {
                if r >= nrows {
                    continue;
                }
                let (cols, _) = csr.row(r);
                total_nnz += cols.len();
                bucket_scratch.clear();
                bucket_scratch.extend(cols.iter().map(|&c| c / k));
                bucket_scratch.dedup(); // columns are sorted, so buckets are too
                total_buckets += bucket_scratch.len();
            }
            let avg_touched_buckets = total_buckets as f64 / n_sampled as f64;
            let avg_row_nnz = total_nnz as f64 / n_sampled as f64;
            let est_occupancy = if total_buckets == 0 {
                0.0
            } else {
                total_nnz as f64 / (total_buckets as f64 * k as f64)
            };

            // Estimated storage per row, using the conservative (worst-case)
            // assumption that rows within the same tile-row touch *disjoint*
            // column buckets, so every touched bucket of a row costs a whole
            // tile (`bytes_per_tile` of BitTiles plus a 4-byte TileColInd
            // entry) and each row carries its 1/k share of TileRowPtr.  Row
            // sampling alone cannot observe vertical sharing, so the estimate
            // is an upper bound on the true B2SR size: a matrix judged "worth
            // converting" here will compress at least this well in practice.
            // CSR costs 4 bytes of column index + 4 bytes of value per
            // nonzero, plus 4 bytes of RowPtr per row.
            let est_b2sr_bytes_per_row =
                avg_touched_buckets * (ts.bytes_per_tile() as f64 + 4.0) + 4.0 / k as f64;
            let est_csr_bytes_per_row = avg_row_nnz * 8.0 + 4.0;
            let est_compression_ratio = if est_csr_bytes_per_row == 0.0 {
                f64::INFINITY
            } else {
                est_b2sr_bytes_per_row / est_csr_bytes_per_row
            };

            TileSizeEstimate {
                tile_size: ts,
                avg_touched_buckets,
                avg_row_nnz,
                est_occupancy,
                est_compression_ratio,
            }
        })
        .collect();

    SamplingProfile {
        sampled_rows: n_sampled,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b2sr::stats;
    use bitgblas_sparse::Coo;

    fn banded(n: usize, bw: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(bw)..(r + bw + 1).min(n) {
                coo.push_edge(r, c).unwrap();
            }
        }
        coo.to_binary_csr()
    }

    fn scattered(n: usize, stride: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in (0..n).step_by(stride) {
            coo.push_edge(r, (r * 7 + 13) % n).unwrap();
        }
        coo.to_binary_csr()
    }

    #[test]
    fn profile_contains_all_variants_and_is_deterministic() {
        let a = banded(512, 3);
        let p1 = sample_profile(&a, 64, 42);
        let p2 = sample_profile(&a, 64, 42);
        assert_eq!(p1, p2);
        assert_eq!(p1.estimates.len(), 4);
        assert!(p1.sampled_rows > 0 && p1.sampled_rows <= 64);
        for ts in TileSize::ALL {
            assert_eq!(p1.estimate_for(ts).tile_size, ts);
        }
    }

    #[test]
    fn banded_matrix_is_worth_converting() {
        let a = banded(1024, 3);
        let p = sample_profile(&a, 128, 7);
        assert!(p.worth_converting(), "estimates: {:#?}", p.estimates);
    }

    #[test]
    fn estimate_tracks_actual_compression_ordering() {
        // The estimated best tile size should actually compress the matrix
        // (sanity of the estimator rather than exact agreement).
        let a = banded(1024, 2);
        let p = sample_profile(&a, 256, 3);
        let rec = p.recommended_tile_size();
        let actual = stats::stats_for(&a, rec);
        assert!(
            actual.compression_ratio < 1.0,
            "recommended {rec} does not compress (actual {})",
            actual.compression_ratio
        );
    }

    #[test]
    fn sparse_scatter_is_not_worth_converting_at_large_tiles() {
        let a = scattered(4096, 3);
        let p = sample_profile(&a, 512, 9);
        let e32 = p.estimate_for(TileSize::S32);
        // One nonzero per touched 32-wide bucket: estimated ratio must exceed 1.
        assert!(e32.est_compression_ratio > 1.0, "{e32:?}");
    }

    #[test]
    fn sampling_everything_equals_full_scan() {
        let a = banded(100, 1);
        let p_all = sample_profile(&a, 100, 1);
        assert_eq!(p_all.sampled_rows, 100);
        let p_more = sample_profile(&a, 10_000, 1);
        assert_eq!(p_more.sampled_rows, 100, "clamped to nrows");
        assert_eq!(p_all.estimates, p_more.estimates);
    }

    #[test]
    fn occupancy_decreases_with_tile_size() {
        let a = banded(512, 1);
        let p = sample_profile(&a, 512, 0);
        let occs: Vec<f64> = p.estimates.iter().map(|e| e.est_occupancy).collect();
        for w in occs.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "occupancy should not grow with tile size: {occs:?}"
            );
        }
    }
}
