//! CSR ↔ B2SR conversion.
//!
//! The paper converts CSR to B2SR in two steps: `cusparseXcsr2bsrNnz()`
//! discovers the non-empty tiles per tile-row, then per-tile bit-packing
//! kernels encode each tile (§III-B, "Bit-packing overhead": the whole
//! routine costs 3–34 ms and is amortized over repeated use of the graph).
//! Here the same two passes run on the CPU, parallelised over tile-rows with
//! Rayon exactly like the per-tile-row GPU kernels.

use rayon::prelude::*;

use bitgblas_bitops::BitWord;
use bitgblas_sparse::Csr;

use super::format::B2sr;

/// One tile-row's worth of conversion output.
struct TileRow<W> {
    tile_cols: Vec<usize>,
    words: Vec<W>,
}

/// Convert a binary CSR matrix into B2SR with the given tile dimension.
///
/// Any nonzero value in `csr` is treated as a set bit (the matrix is
/// binarized on the fly), matching the paper's homogeneous-graph assumption.
///
/// # Panics
/// Panics if `tile_dim` is zero or larger than the packing word `W`.
pub fn from_csr<W: BitWord>(csr: &Csr, tile_dim: usize) -> B2sr<W> {
    assert!(
        tile_dim > 0 && tile_dim as u32 <= W::BITS,
        "tile_dim {tile_dim} does not fit packing word of {} bits",
        W::BITS
    );
    let nrows = csr.nrows();
    let ncols = csr.ncols();
    let n_tile_rows = nrows.div_ceil(tile_dim);

    // One parallel task per tile-row: discover non-empty tile columns and
    // pack their bits in a single pass over the CSR rows of that tile-row.
    let rows: Vec<TileRow<W>> = (0..n_tile_rows)
        .into_par_iter()
        .map(|tr| {
            let r_start = tr * tile_dim;
            let r_end = ((tr + 1) * tile_dim).min(nrows);

            // Pass 1 (csr2bsrNnz analogue): which tile columns are non-empty?
            let mut tile_cols: Vec<usize> = Vec::new();
            for r in r_start..r_end {
                for &c in csr.row(r).0 {
                    tile_cols.push(c / tile_dim);
                }
            }
            tile_cols.sort_unstable();
            tile_cols.dedup();

            // Pass 2 (bit-packing kernel): scatter each nonzero into its
            // tile's row word.
            let mut words = vec![W::ZERO; tile_cols.len() * tile_dim];
            for r in r_start..r_end {
                let local_r = r - r_start;
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    if v == 0.0 {
                        continue;
                    }
                    let tc = c / tile_dim;
                    let slot = tile_cols
                        .binary_search(&tc)
                        .expect("tile discovered in pass 1");
                    let local_c = (c % tile_dim) as u32;
                    let w = &mut words[slot * tile_dim + local_r];
                    *w = w.with_bit(local_c);
                }
            }
            TileRow { tile_cols, words }
        })
        .collect();

    // Stitch the per-tile-row results into the global arrays.
    let mut tile_rowptr = vec![0usize; n_tile_rows + 1];
    for (tr, row) in rows.iter().enumerate() {
        tile_rowptr[tr + 1] = tile_rowptr[tr] + row.tile_cols.len();
    }
    let n_tiles = tile_rowptr[n_tile_rows];
    let mut tile_colind = Vec::with_capacity(n_tiles);
    let mut bit_tiles = Vec::with_capacity(n_tiles * tile_dim);
    for row in rows {
        tile_colind.extend_from_slice(&row.tile_cols);
        bit_tiles.extend_from_slice(&row.words);
    }

    B2sr::from_parts(nrows, ncols, tile_dim, tile_rowptr, tile_colind, bit_tiles)
}

/// Convenience wrapper: convert and return along with the conversion time in
/// seconds, for the conversion-overhead experiment (§III-B).
pub fn from_csr_timed<W: BitWord>(csr: &Csr, tile_dim: usize) -> (B2sr<W>, f64) {
    let start = std::time::Instant::now();
    let b = from_csr::<W>(csr, tile_dim);
    (b, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitgblas_sparse::Coo;

    fn sample(n: usize, seed: u64) -> Csr {
        // Deterministic pseudo-random binary matrix without external deps.
        let mut coo = Coo::new(n, n);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n * 4 {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            coo.push_edge(r, c).unwrap();
        }
        coo.to_binary_csr()
    }

    #[test]
    fn roundtrip_all_variants() {
        let a = sample(100, 3);
        assert_eq!(from_csr::<u8>(&a, 4).to_csr(), a);
        assert_eq!(from_csr::<u8>(&a, 8).to_csr(), a);
        assert_eq!(from_csr::<u16>(&a, 16).to_csr(), a);
        assert_eq!(from_csr::<u32>(&a, 32).to_csr(), a);
    }

    #[test]
    fn roundtrip_non_multiple_dimensions() {
        for n in [1usize, 5, 17, 33, 63, 65] {
            let a = sample(n, n as u64);
            let b = from_csr::<u32>(&a, 32);
            assert_eq!(b.to_csr(), a, "n={n}");
            assert_eq!(b.n_tile_rows(), n.div_ceil(32));
        }
    }

    #[test]
    fn nnz_preserved() {
        let a = sample(200, 9);
        for dim in [4usize, 8] {
            let b = from_csr::<u8>(&a, dim);
            assert_eq!(b.nnz() as usize, a.nnz());
        }
    }

    #[test]
    fn tile_structure_matches_bsr() {
        // The upper level of B2SR must agree with the float BSR conversion.
        let a = sample(96, 5);
        let b2 = from_csr::<u8>(&a, 8);
        let bsr = bitgblas_sparse::Bsr::from_csr(&a, 8);
        assert_eq!(b2.n_tiles(), bsr.n_blocks());
        assert_eq!(b2.tile_rowptr(), bsr.block_rowptr());
        assert_eq!(b2.tile_colind(), bsr.block_colind());
    }

    #[test]
    fn explicit_zeros_are_not_packed() {
        let a = Csr::from_raw(4, 4, vec![0, 2, 2, 2, 2], vec![0, 1], vec![0.0, 1.0]).unwrap();
        let b = from_csr::<u8>(&a, 4);
        assert_eq!(b.nnz(), 1);
        assert!(!b.get(0, 0));
        assert!(b.get(0, 1));
    }

    #[test]
    fn empty_matrix_converts() {
        let a = Csr::empty(40, 40);
        let b = from_csr::<u16>(&a, 16);
        assert_eq!(b.n_tiles(), 0);
        assert_eq!(b.nnz(), 0);
        assert_eq!(b.to_csr().nnz(), 0);
    }

    #[test]
    fn transpose_matches_csr_transpose() {
        let a = sample(70, 12);
        for_each_variant(&a);
    }

    fn for_each_variant(a: &Csr) {
        let t = a.transpose();
        assert_eq!(from_csr::<u8>(a, 4).transpose().to_csr(), t);
        assert_eq!(from_csr::<u8>(a, 8).transpose().to_csr(), t);
        assert_eq!(from_csr::<u16>(a, 16).transpose().to_csr(), t);
        assert_eq!(from_csr::<u32>(a, 32).transpose().to_csr(), t);
    }

    #[test]
    fn timed_conversion_reports_duration() {
        let a = sample(128, 1);
        let (b, secs) = from_csr_timed::<u32>(&a, 32);
        assert!(secs >= 0.0);
        assert_eq!(b.to_csr(), a);
    }

    #[test]
    #[should_panic(expected = "does not fit packing word")]
    fn oversized_tile_dim_panics() {
        let a = sample(16, 2);
        let _ = from_csr::<u8>(&a, 16);
    }
}
