//! B2SR — Bit-Block Compressed Sparse Row (RQ-1 of the paper).
//!
//! B2SR is a two-level representation of a binary adjacency matrix:
//!
//! * the **upper level** is a CSR structure over fixed-size square tiles:
//!   `TileRowPtr` (cumulative count of non-empty tiles per tile-row) and
//!   `TileColInd` (tile-column index of each non-empty tile);
//! * the **lower level** stores each non-empty tile as a dense *bit* matrix:
//!   `BitTiles` holds `tile_dim` packing words per tile, one bit per element.
//!
//! Four variants are produced by the tile dimension (Table I): B2SR-4 and
//! B2SR-8 pack rows into `u8`, B2SR-16 into `u16` and B2SR-32 into `u32`,
//! yielding 16×–32× storage savings per tile over 32-bit-float storage.
//!
//! Submodules:
//! * [`mod@format`] — the [`B2sr`] container, the [`TileSize`] selector and the
//!   type-erased [`B2srMatrix`] wrapper;
//! * [`convert`] — parallel CSR→B2SR conversion, B2SR→CSR reconstruction and
//!   transposition;
//! * [`stats`] — storage accounting: compression ratio, non-empty-tile ratio,
//!   nonzero occupancy (Figures 3 and 5, Table I);
//! * [`sample`] — the sampling-profile tile-size selector (Algorithm 1).

pub mod convert;
pub mod format;
pub mod sample;
pub mod stats;

pub use format::{B2sr, B2srMatrix, TileSize};
pub use sample::{sample_profile, SamplingProfile};
pub use stats::{B2srStats, PackingRow};
