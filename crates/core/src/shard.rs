//! Row-shard partition plans for the parallel push (scatter) engine.
//!
//! Until PR 5 every push kernel was serial: the scatter writes of different
//! frontier rows can land on the same output position, so the kernels simply
//! processed the frontier in ascending order on one core.  This module
//! supplies the partitioning scheme that parallelises the scatter without
//! giving up determinism:
//!
//! * a [`ShardPlan`] splits a scatter representation's **rows** into
//!   contiguous, edge-balanced, cache-sized ranges ("row shards"), chosen
//!   once per matrix from a [`ShardConfig`] (device cache budget + worker
//!   thread count);
//! * at execution time the ascending frontier is cut at the shard boundaries
//!   into **segments** ([`ShardPlan::segment_frontier`]); each segment
//!   scatters serially into a *privatized* output buffer, segments run on
//!   worker threads concurrently ([`scatter_segments`]), and the private
//!   buffers are folded into the real output **in fixed segment order**
//!   ([`merge_segments`]).
//!
//! # Determinism guarantee
//!
//! Per output position, the merge folds the segment contributions in
//! ascending segment order, and within a segment the scatter folds in
//! ascending frontier order — so the grouping of the semiring-monoid folds
//! is a pure function of the *plan and the frontier*, never of how many
//! threads executed the segments.  Results are therefore **bit-identical
//! across thread counts** (1, 2, 4, 8, …), including for float semirings
//! where fold grouping matters (`+` is not associative in `f32`); for
//! idempotent/exact monoids (`min`, `max`, `or`) the sharded result is
//! additionally bit-identical to the fully serial scatter.

use bitgblas_perfmodel::DeviceProfile;

/// Upper bound on the number of shards in one plan.  Bounds both the merge
/// cost (one privatized buffer per *active* segment is folded into the
/// output) and the scratch footprint (`n_segments × output_width`).
pub const MAX_SHARDS: usize = 32;

/// Row alignment of shard boundaries: a multiple of every B2SR tile
/// dimension (4/8/16/32), so a bit-tile row never straddles two shards.
pub const SHARD_ALIGN: usize = 32;

/// The modelled cost of one scattered edge relative to one streamed output
/// element, reused by [`worth_sharding`] as the scatter-vs-merge work ratio
/// (the same first-order transaction penalty `Direction::Auto` prices push
/// edges with — see `grb::direction::scatter_penalty`).
pub const SCATTER_EDGE_WEIGHT: usize = 16;

/// The effective parallelism of this host — what the rayon stand-in's pull
/// sweeps fan out to.  Cached after the first query:
/// `available_parallelism` consults the cgroup filesystem on Linux, which
/// allocates, and this is called on zero-allocation hot paths.
pub fn machine_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Parameters a [`ShardPlan`] is derived from: the scatter-side worker
/// thread budget and the cache budget the per-shard working set should fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Worker threads the sharded scatter may fan out to (1 = serial push:
    /// plans degenerate to a single shard).
    pub threads: usize,
    /// Last-level cache budget in bytes; shards are sized so one shard's
    /// edge data is a cache-resident fraction of it.
    pub cache_bytes: usize,
}

impl ShardConfig {
    /// Derive a config from a device profile (the L2 size of the modelled
    /// device is the cache budget) and an explicit thread count.
    pub fn from_device(device: &DeviceProfile, threads: usize) -> Self {
        ShardConfig {
            threads: threads.max(1),
            cache_bytes: (device.l2_kb.max(1)) * 1024,
        }
    }
}

impl Default for ShardConfig {
    /// Host parallelism and a 2 MiB cache budget.
    fn default() -> Self {
        ShardConfig {
            threads: machine_parallelism(),
            cache_bytes: 2 << 20,
        }
    }
}

/// A partition of a scatter representation's rows into contiguous shards.
///
/// `bounds` is ascending with `bounds[0] == 0` and `bounds.last() == nrows`;
/// shard `s` covers rows `bounds[s] .. bounds[s+1]`.  Boundaries are aligned
/// to [`SHARD_ALIGN`] rows (for B2SR, to tile-row boundaries), and the plan
/// balances the matrix's *edge* counts across shards, not its row counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// The trivial single-shard plan (serial scatter).
    pub fn single(nrows: usize) -> Self {
        ShardPlan {
            bounds: vec![0, nrows],
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The shard boundaries (ascending row indices, first 0, last `nrows`).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Build a plan over row weights given as a cumulative (rowptr-style)
    /// array: `cum[u]` is the total weight of the first `u` *units*, each
    /// unit covering `rows_per_unit` consecutive rows.  CSR passes its
    /// `rowptr` with `rows_per_unit == 1`; B2SR passes its tile-row pointer
    /// with `rows_per_unit == tile_dim` so boundaries fall on tile rows.
    ///
    /// The sizing rule: the per-shard weight target is a cache-resident
    /// slice of the config's budget (`cache_bytes / 64`, floored at 1024
    /// units), the shard count is clamped to `[threads, 4·threads]` so
    /// every worker has work, and both [`MAX_SHARDS`] and the
    /// [`SHARD_ALIGN`] row granularity cap it from above.  Degenerate
    /// inputs (serial config, tiny or empty matrices) get the single-shard
    /// plan, which keeps the serial kernels on their old path.
    pub fn from_weights(
        cum: &[usize],
        rows_per_unit: usize,
        nrows: usize,
        cfg: ShardConfig,
    ) -> ShardPlan {
        let units = cum.len().saturating_sub(1);
        let total = cum.last().copied().unwrap_or(0);
        let threads = cfg.threads;
        if threads <= 1
            || units == 0
            || total == 0
            || nrows < threads.max(2).saturating_mul(SHARD_ALIGN)
        {
            return ShardPlan::single(nrows);
        }
        let target = (cfg.cache_bytes / 64).max(1024);
        let n = (total / target)
            .clamp(threads, threads.saturating_mul(4))
            .min(MAX_SHARDS)
            .min(nrows / SHARD_ALIGN);
        if n <= 1 {
            return ShardPlan::single(nrows);
        }
        let align_units = SHARD_ALIGN.div_ceil(rows_per_unit.max(1)).max(1);
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(0usize);
        for i in 1..n {
            // The unit where the i-th equal-weight cut falls, rounded up to
            // the alignment granularity.
            let want = total / n * i;
            let u = cum.partition_point(|&c| c < want);
            let ua = u.div_ceil(align_units) * align_units;
            let row = (ua * rows_per_unit).min(nrows);
            if row > *bounds.last().expect("bounds never empty") && row < nrows {
                bounds.push(row);
            }
        }
        bounds.push(nrows);
        if bounds.len() < 3 {
            return ShardPlan::single(nrows);
        }
        ShardPlan { bounds }
    }

    /// Re-plan incrementally after a compaction (PR 8): shards whose row
    /// ranges contain no dirty row keep their boundaries **verbatim**, and
    /// every maximal run of dirty shards has its interior boundaries recut
    /// from the new weights with the same sizing rule as
    /// [`ShardPlan::from_weights`], restricted to the run's row range.
    ///
    /// `cum`/`rows_per_unit`/`nrows` describe the *compacted* matrix (same
    /// dimensions as the one this plan was built for — compaction never
    /// changes the vertex set, only the edges); `dirty_rows` is the
    /// ascending list of rows the fold touched.  A dirty run may gain
    /// shards when its edge weight grew past the per-shard target (and
    /// lose them when it shrank), bounded so the whole plan never exceeds
    /// [`MAX_SHARDS`]; boundaries stay [`SHARD_ALIGN`]-aligned because
    /// clean boundaries are reused and new cuts are aligned the same way
    /// `from_weights` aligns them.
    ///
    /// With no dirty rows the plan is returned unchanged; single-shard
    /// plans (and serial configs) fall back to a full
    /// [`ShardPlan::from_weights`] pass, since their only shard is dirty
    /// whenever anything is.
    pub fn replan_rows(
        &self,
        cum: &[usize],
        rows_per_unit: usize,
        nrows: usize,
        cfg: ShardConfig,
        dirty_rows: &[usize],
    ) -> ShardPlan {
        debug_assert_eq!(
            self.bounds.last().copied(),
            Some(nrows),
            "replan must cover the same row count as the original plan"
        );
        if dirty_rows.is_empty() {
            return self.clone();
        }
        let n = self.n_shards();
        if n <= 1 || cfg.threads <= 1 {
            return ShardPlan::from_weights(cum, rows_per_unit, nrows, cfg);
        }
        let rpu = rows_per_unit.max(1);
        let units = cum.len().saturating_sub(1);
        let align_units = SHARD_ALIGN.div_ceil(rpu).max(1);
        let target = (cfg.cache_bytes / 64).max(1024);
        // Weight of the unit range covering rows [lo, hi).
        let weight_of = |lo: usize, hi: usize| -> (usize, usize, usize) {
            let ulo = (lo / rpu).min(units);
            let uhi = hi.div_ceil(rpu).min(units);
            (ulo, uhi, cum[uhi] - cum[ulo])
        };
        // A shard is dirty iff any dirty row falls inside it; `dirty_rows`
        // is ascending, so one forward sweep marks them all.
        let mut dirty_shard = vec![false; n];
        let mut pos = 0usize;
        for (s, flag) in dirty_shard.iter_mut().enumerate() {
            let hi = self.bounds[s + 1];
            let end = pos + dirty_rows[pos..].partition_point(|&r| r < hi);
            *flag = end > pos;
            pos = end;
        }
        let mut headroom = MAX_SHARDS.saturating_sub(n);
        let mut bounds = Vec::with_capacity(self.bounds.len());
        bounds.push(0usize);
        let mut s = 0;
        while s < n {
            if !dirty_shard[s] {
                bounds.push(self.bounds[s + 1]);
                s += 1;
                continue;
            }
            let run_start = s;
            while s < n && dirty_shard[s] {
                s += 1;
            }
            let old_count = s - run_start;
            let (lo, hi) = (self.bounds[run_start], self.bounds[s]);
            let (ulo, _, run_w) = weight_of(lo, hi);
            // The run's shard count follows the same weight-vs-target rule
            // as `from_weights`, capped by the plan-wide headroom so the
            // merged plan never exceeds MAX_SHARDS.
            let k = (run_w / target).max(1).min(old_count + headroom);
            headroom -= k.saturating_sub(old_count).min(headroom);
            for i in 1..k {
                let want = cum[ulo] + run_w / k * i;
                let u = cum.partition_point(|&c| c < want);
                let ua = u.div_ceil(align_units) * align_units;
                let row = (ua * rpu).min(hi);
                if row > *bounds.last().expect("bounds never empty") && row < hi {
                    bounds.push(row);
                }
            }
            bounds.push(hi);
        }
        ShardPlan { bounds }
    }

    /// Cut an ascending frontier at the shard boundaries: on return `cuts`
    /// holds `n_segments + 1` positions into `frontier` such that segment
    /// `s` is `frontier[cuts[s] .. cuts[s+1]]`, every segment lies entirely
    /// within one shard, and no segment is empty (shards with no frontier
    /// rows contribute no cut).  `cuts` is cleared first; an empty frontier
    /// yields `cuts == [0]` (zero segments).
    pub fn segment_frontier(&self, frontier: &[usize], cuts: &mut Vec<usize>) {
        cuts.clear();
        cuts.push(0);
        let mut pos = 0usize;
        for &bound in &self.bounds[1..] {
            let end = pos + frontier[pos..].partition_point(|&r| r < bound);
            if end > pos {
                cuts.push(end);
            }
            pos = end;
        }
        // Frontier rows at or past the last bound (ragged callers) form one
        // trailing segment.
        if pos < frontier.len() {
            cuts.push(frontier.len());
        }
    }
}

/// Upper bound on the privatized scratch one sharded scatter may check out
/// (`n_segments × output_width` elements).  Scatters whose scratch would
/// exceed this stay on the serial kernel — the bound is a pure function of
/// the plan, frontier and output shape, so it cannot break the
/// across-thread-counts determinism, and it keeps a pathological shape
/// (huge output × many lanes × many segments) from pinning gigabytes in
/// the workspace pool.
pub const SCRATCH_BYTE_CAP: usize = 64 << 20;

/// Should a scatter with `frontier_len` active rows of average degree
/// `avg_deg` over `n_segments` frontier segments use the sharded engine?
/// `produced` is the merged element count and `elem_bytes` the element
/// size, bounding the scratch footprint.
///
/// The sharded path pays a deterministic merge pass of `n_segments ×
/// produced` streamed elements on top of the scatter; it is engaged only
/// when the modelled scatter work (frontier edges, each costing
/// [`SCATTER_EDGE_WEIGHT`] streamed-element equivalents) dominates that
/// merge, and the privatized scratch stays under [`SCRATCH_BYTE_CAP`].
/// The predicate is a pure function of the frontier, the plan and the
/// output shape — never of the executing thread count — which is what
/// keeps results bit-identical across thread counts.
pub fn worth_sharding(
    frontier_len: usize,
    avg_deg: usize,
    n_segments: usize,
    produced: usize,
    elem_bytes: usize,
) -> bool {
    n_segments > 1
        && (frontier_len as u128) * (avg_deg.max(1) as u128) * (SCATTER_EDGE_WEIGHT as u128)
            >= (n_segments as u128) * (produced as u128)
        && (n_segments as u128) * (produced as u128) * (elem_bytes as u128)
            <= SCRATCH_BYTE_CAP as u128
}

/// Run `scatter(segment_index, private_chunk)` for every frontier segment,
/// on up to `threads` scoped worker threads.  `scratch` supplies one
/// `width`-sized private chunk per segment (`scratch[s*width ..
/// (s+1)*width]`), pre-initialised by the caller; segments are assigned to
/// workers round-robin.  With `threads <= 1` (or a single segment) the
/// segments run inline on the caller's thread — same chunks, same order, no
/// spawn, no allocation.
pub fn scatter_segments<T, F>(
    threads: usize,
    n_segments: usize,
    scratch: &mut [T],
    width: usize,
    scatter: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if n_segments == 0 {
        return;
    }
    debug_assert!(scratch.len() >= n_segments * width);
    if threads <= 1 || n_segments == 1 {
        for (s, chunk) in scratch.chunks_mut(width).take(n_segments).enumerate() {
            scatter(s, chunk);
        }
        return;
    }
    let workers = threads.min(n_segments);
    // Hand whole chunks to workers round-robin; the Vec-of-lists is the only
    // allocation of the parallel path (the thread spawns below dwarf it).
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..workers)
        .map(|_| Vec::with_capacity(n_segments.div_ceil(workers)))
        .collect();
    for (s, chunk) in scratch.chunks_mut(width).take(n_segments).enumerate() {
        per_worker[s % workers].push((s, chunk));
    }
    // The caller works worker 0's list itself instead of idling in the
    // join: `workers`-wide execution costs `workers - 1` spawns.
    std::thread::scope(|scope| {
        let mut lists = per_worker.into_iter();
        let mine = lists.next().expect("workers >= 1");
        for list in lists {
            let scatter = &scatter;
            scope.spawn(move || {
                for (s, chunk) in list {
                    scatter(s, chunk);
                }
            });
        }
        for (s, chunk) in mine {
            scatter(s, chunk);
        }
    });
}

/// Fold the per-segment private buffers into `out`, position-parallel:
/// `out[i] = fold(... fold(fold(out[i], seg0[i]), seg1[i]) ...)` — segment
/// order is ascending for every position regardless of how the positions
/// are split across threads, which is the merge half of the determinism
/// guarantee.  `out` arrives pre-seeded (zeros, the semiring identity, or
/// an accumulation baseline).
pub fn merge_segments<T, F>(
    threads: usize,
    n_segments: usize,
    scratch: &[T],
    width: usize,
    out: &mut [T],
    fold: F,
) where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if n_segments == 0 {
        return;
    }
    debug_assert!(scratch.len() >= n_segments * width);
    debug_assert!(out.len() <= width);
    let run = |start: usize, part: &mut [T]| {
        for s in 0..n_segments {
            let seg = &scratch[s * width + start..s * width + start + part.len()];
            for (o, &v) in part.iter_mut().zip(seg) {
                *o = fold(*o, v);
            }
        }
    };
    if threads <= 1 || out.len() < 4096 {
        run(0, out);
        return;
    }
    let workers = threads.min(out.len());
    let chunk = out.len().div_ceil(workers);
    // As in `scatter_segments`, the caller folds the first range itself.
    std::thread::scope(|scope| {
        let mut parts = out.chunks_mut(chunk).enumerate();
        let mine = parts.next();
        for (ci, part) in parts {
            let run = &run;
            scope.spawn(move || run(ci * chunk, part));
        }
        if let Some((ci, part)) = mine {
            run(ci * chunk, part);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize) -> ShardConfig {
        ShardConfig {
            threads,
            cache_bytes: 2 << 20,
        }
    }

    /// A rowptr with `deg` edges per row.
    fn uniform_rowptr(nrows: usize, deg: usize) -> Vec<usize> {
        (0..=nrows).map(|r| r * deg).collect()
    }

    #[test]
    fn serial_config_and_tiny_matrices_get_single_shards() {
        let rp = uniform_rowptr(4096, 8);
        assert_eq!(ShardPlan::from_weights(&rp, 1, 4096, cfg(1)).n_shards(), 1);
        let tiny = uniform_rowptr(64, 8);
        assert_eq!(ShardPlan::from_weights(&tiny, 1, 64, cfg(8)).n_shards(), 1);
        assert_eq!(ShardPlan::from_weights(&[0], 1, 0, cfg(8)).n_shards(), 1);
    }

    #[test]
    fn plans_are_aligned_balanced_and_bounded() {
        let nrows = 8192;
        let rp = uniform_rowptr(nrows, 16);
        let plan = ShardPlan::from_weights(&rp, 1, nrows, cfg(4));
        assert!(plan.n_shards() >= 4, "want ≥ threads shards, got {plan:?}");
        assert!(plan.n_shards() <= MAX_SHARDS);
        assert_eq!(plan.bounds()[0], 0);
        assert_eq!(*plan.bounds().last().unwrap(), nrows);
        for w in plan.bounds().windows(2) {
            assert!(w[0] < w[1], "bounds must be strictly ascending");
        }
        for &b in &plan.bounds()[1..plan.bounds().len() - 1] {
            assert_eq!(b % SHARD_ALIGN, 0, "interior bounds must be aligned");
        }
        // Uniform weights → near-equal shard sizes.
        let sizes: Vec<usize> = plan.bounds().windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 2 * SHARD_ALIGN, "unbalanced shards: {sizes:?}");
    }

    #[test]
    fn skewed_weights_move_the_boundaries() {
        // All the weight in the first quarter of the rows.
        let nrows = 4096;
        let cum: Vec<usize> = (0..=nrows)
            .map(|r| {
                if r < nrows / 4 {
                    r * 32
                } else {
                    nrows / 4 * 32
                }
            })
            .collect();
        let plan = ShardPlan::from_weights(&cum, 1, nrows, cfg(4));
        assert!(plan.n_shards() > 1);
        // Every interior boundary must fall inside the weighted quarter.
        for &b in &plan.bounds()[1..plan.bounds().len() - 1] {
            assert!(
                b <= nrows / 4 + SHARD_ALIGN,
                "boundary {b} ignores the weight skew"
            );
        }
    }

    #[test]
    fn tile_row_units_scale_boundaries_to_rows() {
        // 512 tile-rows of dim 8 → 4096 rows; uniform tile counts.
        let cum: Vec<usize> = (0..=512).map(|t| t * 4).collect();
        let plan = ShardPlan::from_weights(&cum, 8, 4096, cfg(4));
        assert!(plan.n_shards() > 1);
        for &b in plan.bounds() {
            assert_eq!(b % 8, 0, "bounds must fall on tile rows");
        }
        assert_eq!(*plan.bounds().last().unwrap(), 4096);
    }

    #[test]
    fn replan_preserves_clean_bounds_and_recuts_dirty_runs() {
        let nrows = 8192;
        let rp = uniform_rowptr(nrows, 16);
        let plan = ShardPlan::from_weights(&rp, 1, nrows, cfg(4));
        assert!(plan.n_shards() >= 4, "precondition: several shards");

        // No dirty rows → identical plan.
        assert_eq!(plan.replan_rows(&rp, 1, nrows, cfg(4), &[]), plan);

        // Inflate the weight of shard 1's rows by 16x and dirty one of its
        // rows: every boundary outside shard 1 must survive verbatim, and
        // the heavier shard must split.
        let (lo, hi) = (plan.bounds()[1], plan.bounds()[2]);
        let mut heavy = vec![0usize; nrows + 1];
        for r in 0..nrows {
            let deg = if (lo..hi).contains(&r) { 256 } else { 16 };
            heavy[r + 1] = heavy[r] + deg;
        }
        let replanned = plan.replan_rows(&heavy, 1, nrows, cfg(4), &[lo]);
        for &b in plan.bounds() {
            assert!(
                replanned.bounds().contains(&b),
                "clean boundary {b} was not preserved: {replanned:?}"
            );
        }
        assert!(
            replanned.n_shards() > plan.n_shards(),
            "16x heavier dirty shard should split: {replanned:?}"
        );
        assert!(replanned.n_shards() <= MAX_SHARDS);
        for &b in &replanned.bounds()[1..replanned.bounds().len() - 1] {
            assert_eq!(b % SHARD_ALIGN, 0, "new cuts must stay aligned");
        }
        for w in replanned.bounds().windows(2) {
            assert!(w[0] < w[1], "bounds must stay strictly ascending");
        }
        // Every new boundary lies inside the dirty shard's row range.
        for &b in replanned.bounds() {
            if !plan.bounds().contains(&b) {
                assert!((lo..hi).contains(&b), "cut {b} escaped the dirty run");
            }
        }
    }

    #[test]
    fn replan_of_single_shard_plans_falls_back_to_full_replan() {
        let nrows = 8192;
        let rp = uniform_rowptr(nrows, 16);
        let single = ShardPlan::single(nrows);
        let replanned = single.replan_rows(&rp, 1, nrows, cfg(4), &[0]);
        assert_eq!(replanned, ShardPlan::from_weights(&rp, 1, nrows, cfg(4)));
        assert!(replanned.n_shards() > 1);
    }

    #[test]
    fn segment_frontier_respects_bounds_and_skips_empty_shards() {
        let plan = ShardPlan {
            bounds: vec![0, 128, 256, 384, 512],
        };
        let frontier = [3, 64, 127, 300, 301, 510];
        let mut cuts = vec![99];
        plan.segment_frontier(&frontier, &mut cuts);
        // Shard 0: rows 3,64,127; shard 1: none; shard 2: 300,301; shard 3: 510.
        assert_eq!(cuts, vec![0, 3, 5, 6]);
        plan.segment_frontier(&[], &mut cuts);
        assert_eq!(cuts, vec![0]);
        plan.segment_frontier(&[200], &mut cuts);
        assert_eq!(cuts, vec![0, 1]);
    }

    #[test]
    fn worth_sharding_weighs_scatter_against_merge_and_memory() {
        // Fat frontier over few segments: engage.
        assert!(worth_sharding(1024, 16, 4, 8192, 4));
        // A couple of rows over many segments: merge dominates, stay serial.
        assert!(!worth_sharding(2, 4, 8, 8192, 4));
        // Single segment never engages.
        assert!(!worth_sharding(10_000, 16, 1, 8192, 4));
        // A scratch footprint past the byte cap stays serial no matter how
        // much scatter work there is (32 segs × 1M outputs × 64 lanes × 4B).
        assert!(!worth_sharding(500_000, 64, 32, 1 << 20, 64 * 4));
        // The same shape with one lane and fewer segments fits and engages.
        assert!(worth_sharding(500_000, 64, 8, 1 << 20, 4));
    }

    #[test]
    fn scatter_and_merge_are_deterministic_across_thread_counts() {
        // Fold with a grouping-sensitive float op and verify bit-identity
        // across executions with 1, 2, 4 and 8 threads.
        let n_seg = 5;
        let width = 1000;
        let reference: Option<Vec<u32>> = None;
        let mut reference = reference;
        for threads in [1usize, 2, 4, 8] {
            let mut scratch = vec![0.0f32; n_seg * width];
            scatter_segments(threads, n_seg, &mut scratch, width, |s, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (s as f32 + 1.0) * 0.1 + i as f32 * 1e-3;
                }
            });
            let mut out = vec![0.25f32; width];
            merge_segments(threads, n_seg, &scratch, width, &mut out, |a, b| a + b);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn merge_folds_segments_in_ascending_order() {
        // A non-commutative fold exposes the order: f(a, b) = 2a + b.
        let scratch = [1.0f32, 10.0, 100.0];
        let mut out = [0.0f32];
        merge_segments(1, 3, &scratch, 1, &mut out, |a, b| 2.0 * a + b);
        // ((0*2+1)*2+10)*2+100 = 124.
        assert_eq!(out[0], 124.0);
    }
}
