//! # bitgblas-bitops
//!
//! Bit-manipulation substrate for the Bit-GraphBLAS reproduction.
//!
//! The original system is built on CUDA warp intrinsics:
//!
//! * `__popc()` — population count of a 32-bit word (bit-dot-product when
//!   paired with a bitwise AND),
//! * `__ballot_sync()` — warp vote collecting one predicate bit per lane into a
//!   32-bit word (a 90° clockwise rotation of a bit-column into a bit-row),
//! * `__brev()` — bit reversal (paired with ballot it gives the anticlockwise
//!   rotation used for column-major packing),
//! * `__shfl_sync()` — broadcast of a register value from one lane to the whole
//!   warp (used to stream the B tile's bit-rows through every lane during BMM).
//!
//! No GPU is available in this environment, so this crate provides a faithful
//! *software warp model*: a [`warp::Warp`] is a group of 32 lanes whose
//! register state lives in plain arrays, and the intrinsics above are
//! implemented as ordinary functions over those arrays ([`intrinsics`]).  The
//! higher-level kernels in `bitgblas-core` are written against this model so
//! that their structure mirrors the paper's CUDA listings (Listing 1 and 2)
//! line for line, which is what makes the reproduction meaningful: the bit-level
//! algorithms — AND + popcount dot products, ballot-based transposition,
//! shuffle-broadcast matrix products — are exercised exactly as on the GPU,
//! only the scheduling of warps differs (Rayon tasks instead of SM schedulers).
//!
//! The crate also provides the [`word::BitWord`] abstraction over the packing
//! word sizes used by the four B2SR variants (`u8` for 4×4 and 8×8 tiles,
//! `u16` for 16×16, `u32` for 32×32) and the low-level packing helpers in
//! [`pack`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod intrinsics;
pub mod pack;
pub mod warp;
pub mod word;

pub use intrinsics::{ballot, brev_u32, popc_u32, shfl, FULL_MASK};
pub use warp::{Warp, WARP_SIZE};
pub use word::{pack_chunk_u64_generic, BitWord};
