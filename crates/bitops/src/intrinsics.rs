//! Software implementations of the CUDA bit intrinsics used by Bit-GraphBLAS.
//!
//! Each function documents the CUDA intrinsic it stands in for.  The functions
//! operate on plain integers (or small arrays standing for warp register
//! files), so they can be called both from the structured [`crate::warp`]
//! model and directly from tight loops in the kernels.

/// The full-warp participation mask, equivalent to CUDA's `0xFFFFFFFF` mask
/// argument of `__ballot_sync` / `__shfl_sync`.
pub const FULL_MASK: u32 = 0xFFFF_FFFF;

/// Population count of a 32-bit word — software `__popc()`.
///
/// Together with a bitwise AND this realizes the bit-dot-product at the heart
/// of both BMV and BMM:
///
/// ```
/// use bitgblas_bitops::popc_u32;
/// let a_row = 0b1011_0010u32;
/// let b_col = 0b1010_0110u32;
/// assert_eq!(popc_u32(a_row & b_col), 3);
/// ```
#[inline(always)]
pub fn popc_u32(x: u32) -> u32 {
    x.count_ones()
}

/// Population count of a 64-bit word — software `__popcll()`.
#[inline(always)]
pub fn popc_u64(x: u64) -> u32 {
    x.count_ones()
}

/// Bit reversal of a 32-bit word — software `__brev()`.
///
/// Used during column-major packing: `brev(ballot(pred))` rotates a bit-column
/// 90° anticlockwise into a bit-row (§IV of the paper).
#[inline(always)]
pub fn brev_u32(x: u32) -> u32 {
    x.reverse_bits()
}

/// Bit reversal of an 8-bit word, used by the 4×4 and 8×8 tile packers.
#[inline(always)]
pub fn brev_u8(x: u8) -> u8 {
    x.reverse_bits()
}

/// Bit reversal of a 16-bit word, used by the 16×16 tile packer.
#[inline(always)]
pub fn brev_u16(x: u16) -> u16 {
    x.reverse_bits()
}

/// Warp vote — software `__ballot_sync(FULL_MASK, pred)`.
///
/// `preds[l]` is the predicate evaluated by lane `l`; the result has bit `l`
/// set iff lane `l`'s predicate was true.  This is exactly the "transpose a
/// bit-column into a bit-row (90° clockwise)" operation described in the
/// paper.
///
/// Lanes beyond `preds.len()` are treated as inactive (predicate false), which
/// matches a partially-populated warp at a matrix edge.
#[inline]
pub fn ballot(preds: &[bool]) -> u32 {
    debug_assert!(preds.len() <= 32, "a warp has at most 32 lanes");
    let mut word = 0u32;
    for (lane, &p) in preds.iter().enumerate() {
        if p {
            word |= 1u32 << lane;
        }
    }
    word
}

/// Warp vote from an iterator of predicates, convenient when the predicate is
/// computed on the fly (e.g. `f[i] > 0.0` while packing a float tile).
#[inline]
pub fn ballot_from<I: IntoIterator<Item = bool>>(preds: I) -> u32 {
    let mut word = 0u32;
    for (lane, p) in preds.into_iter().enumerate() {
        debug_assert!(lane < 32, "a warp has at most 32 lanes");
        if p {
            word |= 1u32 << lane;
        }
    }
    word
}

/// Warp shuffle — software `__shfl_sync(FULL_MASK, value, src_lane)`.
///
/// `regs` is the per-lane register file (one value per lane); the call returns
/// the value held by `src_lane`.  In the BMM kernel this broadcasts bit-row
/// `k` of the B tile to every lane so each lane can accumulate its own output
/// bit-row.
#[inline(always)]
pub fn shfl<T: Copy>(regs: &[T], src_lane: usize) -> T {
    regs[src_lane % regs.len()]
}

/// Software `__shfl_down_sync`: returns the register of `lane + delta`, or the
/// lane's own value when the source would fall outside the warp.  Used by the
/// warp-level reduction helpers.
#[inline(always)]
pub fn shfl_down<T: Copy>(regs: &[T], lane: usize, delta: usize) -> T {
    let src = lane + delta;
    if src < regs.len() {
        regs[src]
    } else {
        regs[lane]
    }
}

/// Warp-level sum reduction implemented with `shfl_down`, mirroring the
/// classic butterfly reduction on GPUs.  Returns the sum of all lane values.
#[inline]
pub fn warp_reduce_sum(regs: &[u32]) -> u64 {
    // The software model can reduce directly, but we keep the butterfly shape
    // so the operation count matches the GPU implementation (log2(32) steps).
    let mut vals: Vec<u64> = regs.iter().map(|&v| v as u64).collect();
    let n = vals.len();
    let mut delta = 1;
    while delta < n {
        for lane in 0..n {
            let src = lane + delta;
            if src < n {
                vals[lane] += vals[src];
            }
        }
        delta <<= 1;
    }
    vals.first().copied().unwrap_or(0)
}

/// Warp-level minimum reduction over `f32` registers (used by the min-plus
/// semiring kernels, e.g. SSSP relaxation).
#[inline]
pub fn warp_reduce_min(regs: &[f32]) -> f32 {
    regs.iter().copied().fold(f32::INFINITY, f32::min)
}

/// Find-first-set (1-based like CUDA's `__ffs`): position of the least
/// significant set bit, 0 when no bit is set.
#[inline(always)]
pub fn ffs_u32(x: u32) -> u32 {
    if x == 0 {
        0
    } else {
        x.trailing_zeros() + 1
    }
}

/// Count leading zeros — software `__clz()`.
#[inline(always)]
pub fn clz_u32(x: u32) -> u32 {
    x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popc_counts_bits() {
        assert_eq!(popc_u32(0), 0);
        assert_eq!(popc_u32(u32::MAX), 32);
        assert_eq!(popc_u32(0b1010_1010), 4);
        assert_eq!(popc_u64(u64::MAX), 64);
    }

    #[test]
    fn popc_and_is_dot_product() {
        // Bit-dot-product of two binary vectors packed into words.
        let a = 0b1101_0011u32;
        let b = 0b0101_0110u32;
        let expected: u32 = (0..8).map(|i| ((a >> i) & 1) * ((b >> i) & 1)).sum();
        assert_eq!(popc_u32(a & b), expected);
    }

    #[test]
    fn brev_reverses() {
        assert_eq!(brev_u32(0x0000_0001), 0x8000_0000);
        assert_eq!(brev_u32(brev_u32(0xDEAD_BEEF)), 0xDEAD_BEEF);
        assert_eq!(brev_u8(0b0000_0001), 0b1000_0000);
        assert_eq!(brev_u16(0x0001), 0x8000);
    }

    #[test]
    fn ballot_collects_predicates() {
        let preds = [true, false, true, true];
        assert_eq!(ballot(&preds), 0b1101);
        let all = [true; 32];
        assert_eq!(ballot(&all), u32::MAX);
        assert_eq!(ballot(&[]), 0);
    }

    #[test]
    fn ballot_from_iterator_matches_slice_form() {
        let preds = [true, true, false, false, true];
        assert_eq!(ballot(&preds), ballot_from(preds.iter().copied()));
    }

    #[test]
    fn shfl_broadcasts_lane_value() {
        let regs: Vec<u32> = (0..32).map(|i| i * 10).collect();
        assert_eq!(shfl(&regs, 0), 0);
        assert_eq!(shfl(&regs, 7), 70);
        assert_eq!(shfl(&regs, 31), 310);
        // Wraps like a masked modulo rather than UB for out-of-range lanes.
        assert_eq!(shfl(&regs, 32), 0);
    }

    #[test]
    fn shfl_down_shifts_within_warp() {
        let regs: Vec<u32> = (0..8).collect();
        assert_eq!(shfl_down(&regs, 0, 4), 4);
        assert_eq!(shfl_down(&regs, 6, 4), 6); // out of range -> own value
    }

    #[test]
    fn warp_reduce_sum_adds_all_lanes() {
        let regs: Vec<u32> = (1..=32).collect();
        assert_eq!(warp_reduce_sum(&regs), (1..=32u64).sum());
        assert_eq!(warp_reduce_sum(&[]), 0);
        assert_eq!(warp_reduce_sum(&[7]), 7);
    }

    #[test]
    fn warp_reduce_min_finds_minimum() {
        let regs = [3.5f32, 1.25, 9.0, 2.0];
        assert_eq!(warp_reduce_min(&regs), 1.25);
        assert_eq!(warp_reduce_min(&[]), f32::INFINITY);
    }

    #[test]
    fn ffs_and_clz() {
        assert_eq!(ffs_u32(0), 0);
        assert_eq!(ffs_u32(1), 1);
        assert_eq!(ffs_u32(0b1000), 4);
        assert_eq!(clz_u32(1), 31);
        assert_eq!(clz_u32(u32::MAX), 0);
    }
}
