//! Low-level bit-packing helpers.
//!
//! Figure 2 of the paper shows the two packings of a 32×32 float tile into 32
//! `u32` words:
//!
//! * **column-major packing** — lane `i` holds bit-column `i`:
//!   `BVal[i] = __brev(__ballot_sync(FULL_MASK, f[i] > 0))` repeated per row;
//! * **row-major packing** — lane `i` holds bit-row `i`:
//!   `BVal[i] = (BVal[i] << 1) | (f[i] > 0)` repeated per column.
//!
//! The functions here implement both packings for a generic square tile of
//! dimension `dim ≤ 32` stored as a row-major `f32` slice, plus the nibble
//! packing (two 4-bit rows per `u8`) used by B2SR-4, and dense bit-vector
//! packing/unpacking for the binarized frontier vectors of the BMV kernels.

use crate::intrinsics::{ballot_from, brev_u32};
use crate::word::BitWord;

/// Pack a dense row-major `dim × dim` `f32` tile into `dim` words, **row-major**:
/// word `r` holds row `r`, bit `c` of word `r` is set iff `tile[r*dim + c] != 0`.
///
/// Bit `c` is the *least-significant-first* convention used throughout the
/// crate (bit 0 = column 0), matching how `__ballot_sync` indexes lanes.
pub fn pack_tile_rowmajor<W: BitWord>(tile: &[f32], dim: usize) -> Vec<W> {
    assert!(dim as u32 <= W::BITS, "tile dimension exceeds word width");
    assert_eq!(tile.len(), dim * dim, "tile slice has wrong length");
    let mut words = vec![W::ZERO; dim];
    for r in 0..dim {
        let mut w = W::ZERO;
        for c in 0..dim {
            if tile[r * dim + c] != 0.0 {
                w = w.with_bit(c as u32);
            }
        }
        words[r] = w;
    }
    words
}

/// Pack a dense row-major `dim × dim` `f32` tile into `dim` words,
/// **column-major**: word `c` holds column `c`, bit `r` of word `c` is set iff
/// `tile[r*dim + c] != 0`.
///
/// This is the default packing for the multiplicand tiles (the adjacency
/// matrix is accessed row-by-row while the binarized vector is packed
/// column-major, so the bit-dot-product is a single AND + popcount).
pub fn pack_tile_colmajor<W: BitWord>(tile: &[f32], dim: usize) -> Vec<W> {
    assert!(dim as u32 <= W::BITS, "tile dimension exceeds word width");
    assert_eq!(tile.len(), dim * dim, "tile slice has wrong length");
    let mut words = vec![W::ZERO; dim];
    for c in 0..dim {
        let mut w = W::ZERO;
        for r in 0..dim {
            if tile[r * dim + c] != 0.0 {
                w = w.with_bit(r as u32);
            }
        }
        words[c] = w;
    }
    words
}

/// The ballot-based 32×32 column packer exactly as in Figure 2 of the paper:
/// for each row the 32 "lanes" vote on `f > 0`, the vote word is bit-reversed,
/// and the packed columns are accumulated by shifting.
///
/// Only meaningful for `dim == 32`; provided to validate that the generic
/// packers above produce the same result as the intrinsic formulation
/// (`pack_tile_colmajor::<u32>` must equal `pack_tile_colmajor_ballot`
/// up to the documented bit order).
pub fn pack_tile_colmajor_ballot(tile: &[f32]) -> [u32; 32] {
    assert_eq!(tile.len(), 32 * 32, "ballot packer requires a 32x32 tile");
    let mut cols = [0u32; 32];
    for r in 0..32 {
        // Lane i votes on element (r, i) of the tile.
        let vote = ballot_from((0..32).map(|lane| tile[r * 32 + lane] != 0.0));
        let rev = brev_u32(vote);
        // Bit 31-i of `rev` is row-r's element in column i; distribute it.
        for (c, col) in cols.iter_mut().enumerate() {
            if (rev >> (31 - c)) & 1 == 1 {
                *col |= 1 << r;
            }
        }
    }
    cols
}

/// Unpack `dim` row-major words back into a dense row-major `f32` tile with
/// 1.0 at set bits — the inverse of [`pack_tile_rowmajor`].
pub fn unpack_tile_rowmajor<W: BitWord>(words: &[W], dim: usize) -> Vec<f32> {
    assert_eq!(words.len(), dim, "word slice has wrong length");
    let mut tile = vec![0.0f32; dim * dim];
    for r in 0..dim {
        for c in 0..dim {
            if words[r].bit(c as u32) {
                tile[r * dim + c] = 1.0;
            }
        }
    }
    tile
}

/// Transpose a packed square bit-tile: `out[c].bit(r) == input[r].bit(c)`.
///
/// B2SR stores tiles row-major for `mxv`; the transpose (needed when the
/// algorithm wants `A^T`, e.g. pull-direction traversal or TC's `L·L^T`) is a
/// pure bit permutation.
pub fn transpose_tile<W: BitWord>(words: &[W], dim: usize) -> Vec<W> {
    assert_eq!(words.len(), dim);
    let mut out = vec![W::ZERO; dim];
    for (r, word) in words.iter().enumerate() {
        for c in word.iter_ones() {
            if (c as usize) < dim {
                out[c as usize] = out[c as usize].with_bit(r as u32);
            }
        }
    }
    out
}

/// Pack two 4-bit rows into each `u8`: nibble packing for B2SR-4 (§III-B).
///
/// `rows` holds one 4-bit row per entry (only the low nibble used); the result
/// has `ceil(len/2)` bytes, with even rows in the low nibble and odd rows in
/// the high nibble.
pub fn pack_nibbles(rows: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.len().div_ceil(2));
    let mut it = rows.chunks(2);
    for pair in &mut it {
        let low = pair[0] & 0x0F;
        let high = if pair.len() > 1 {
            (pair[1] & 0x0F) << 4
        } else {
            0
        };
        out.push(low | high);
    }
    out
}

/// Inverse of [`pack_nibbles`]: expand each byte back into two 4-bit rows.
/// `n_rows` tells how many rows were originally packed (to drop a padding
/// nibble when the count was odd).
pub fn unpack_nibbles(packed: &[u8], n_rows: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n_rows);
    for &byte in packed {
        out.push(byte & 0x0F);
        if out.len() < n_rows {
            out.push(byte >> 4);
        }
        if out.len() >= n_rows {
            break;
        }
    }
    out.truncate(n_rows);
    out
}

/// Pack a dense `f32` vector into a bit-vector of `W` words: bit `i % BITS` of
/// word `i / BITS` is set iff `v[i] != 0`.  This is the "binarized vector"
/// layout consumed by `bmv_bin_bin_*`.
pub fn pack_bitvector<W: BitWord>(v: &[f32]) -> Vec<W> {
    let bits = W::BITS as usize;
    let mut words = vec![W::ZERO; v.len().div_ceil(bits)];
    for (i, &x) in v.iter().enumerate() {
        if x != 0.0 {
            words[i / bits] = words[i / bits].with_bit((i % bits) as u32);
        }
    }
    words
}

/// Pack a boolean slice into a bit-vector of `W` words.
pub fn pack_bools<W: BitWord>(v: &[bool]) -> Vec<W> {
    let bits = W::BITS as usize;
    let mut words = vec![W::ZERO; v.len().div_ceil(bits)];
    for (i, &b) in v.iter().enumerate() {
        if b {
            words[i / bits] = words[i / bits].with_bit((i % bits) as u32);
        }
    }
    words
}

/// Unpack a bit-vector into `len` booleans (inverse of [`pack_bools`]).
pub fn unpack_bools<W: BitWord>(words: &[W], len: usize) -> Vec<bool> {
    let bits = W::BITS as usize;
    (0..len)
        .map(|i| {
            let w = i / bits;
            w < words.len() && words[w].bit((i % bits) as u32)
        })
        .collect()
}

/// Count the set bits of a packed bit-vector.
pub fn count_ones<W: BitWord>(words: &[W]) -> u64 {
    words.iter().map(|w| w.popcount() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tile(dim: usize) -> Vec<f32> {
        // Deterministic pattern: (r*7 + c*3) % 5 == 0 marks a nonzero.
        (0..dim * dim)
            .map(|i| {
                let (r, c) = (i / dim, i % dim);
                if (r * 7 + c * 3) % 5 == 0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn rowmajor_pack_roundtrip() {
        for dim in [4usize, 8, 16, 32] {
            let tile = sample_tile(dim);
            let packed = pack_tile_rowmajor::<u32>(&tile, dim);
            let back = unpack_tile_rowmajor(&packed, dim);
            assert_eq!(tile, back, "dim {dim}");
        }
    }

    #[test]
    fn colmajor_is_transpose_of_rowmajor() {
        for dim in [4usize, 8, 16, 32] {
            let tile = sample_tile(dim);
            let rows = pack_tile_rowmajor::<u32>(&tile, dim);
            let cols = pack_tile_colmajor::<u32>(&tile, dim);
            assert_eq!(transpose_tile(&rows, dim), cols, "dim {dim}");
            assert_eq!(transpose_tile(&cols, dim), rows, "dim {dim}");
        }
    }

    #[test]
    fn ballot_packer_matches_generic_colmajor() {
        let tile = sample_tile(32);
        let generic = pack_tile_colmajor::<u32>(&tile, 32);
        let ballot = pack_tile_colmajor_ballot(&tile);
        assert_eq!(generic, ballot.to_vec());
    }

    #[test]
    fn pack_respects_word_width() {
        let tile = sample_tile(8);
        let as_u8 = pack_tile_rowmajor::<u8>(&tile, 8);
        let as_u32 = pack_tile_rowmajor::<u32>(&tile, 8);
        for r in 0..8 {
            assert_eq!(as_u8[r] as u32, as_u32[r]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds word width")]
    fn packing_16_into_u8_panics() {
        let tile = sample_tile(16);
        let _ = pack_tile_rowmajor::<u8>(&tile, 16);
    }

    #[test]
    fn nibble_roundtrip_even_and_odd() {
        let rows: Vec<u8> = vec![0b0001, 0b1010, 0b0110, 0b1111, 0b0101];
        let packed = pack_nibbles(&rows);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_nibbles(&packed, rows.len()), rows);

        let even: Vec<u8> = vec![0xF, 0x1, 0x2, 0x3];
        assert_eq!(unpack_nibbles(&pack_nibbles(&even), 4), even);
    }

    #[test]
    fn nibble_packing_halves_storage() {
        let rows = vec![0x0Fu8; 64];
        assert_eq!(pack_nibbles(&rows).len(), 32);
    }

    #[test]
    fn bitvector_pack_counts_nonzeros() {
        let v: Vec<f32> = (0..100)
            .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        let packed = pack_bitvector::<u32>(&v);
        assert_eq!(packed.len(), 4);
        assert_eq!(
            count_ones(&packed),
            v.iter().filter(|&&x| x != 0.0).count() as u64
        );
    }

    #[test]
    fn bools_roundtrip() {
        let v: Vec<bool> = (0..77).map(|i| i % 5 == 0 || i % 7 == 0).collect();
        for_each_word_width(&v);
    }

    fn for_each_word_width(v: &[bool]) {
        assert_eq!(unpack_bools(&pack_bools::<u8>(v), v.len()), v);
        assert_eq!(unpack_bools(&pack_bools::<u16>(v), v.len()), v);
        assert_eq!(unpack_bools(&pack_bools::<u32>(v), v.len()), v);
        assert_eq!(unpack_bools(&pack_bools::<u64>(v), v.len()), v);
    }

    #[test]
    fn transpose_is_involution() {
        let tile = sample_tile(16);
        let rows = pack_tile_rowmajor::<u16>(&tile, 16);
        assert_eq!(transpose_tile(&transpose_tile(&rows, 16), 16), rows);
    }
}
