//! The software warp execution model.
//!
//! On the GPU, a *warp* of 32 threads executes in lockstep and communicates
//! through register shuffles and votes.  Bit-GraphBLAS assigns one tile-row of
//! the B2SR matrix to one warp ("warp-consolidation" model, §IV of the paper).
//!
//! This module models a warp as a value type: [`Warp`] carries the lane count
//! and provides the collective operations (`ballot`, `shfl`, reductions) over
//! explicit per-lane register slices.  Kernels written against this model have
//! the same structure as the CUDA listings — an outer loop over tiles, an
//! inner per-lane body, collectives where the paper uses intrinsics — which is
//! the point of the substitution documented in `DESIGN.md`.

use crate::intrinsics;

/// Number of lanes per warp on every NVIDIA architecture the paper targets.
pub const WARP_SIZE: usize = 32;

/// A software warp: a group of up to 32 lanes executing a kernel body in
/// lockstep.
///
/// The model is deliberately simple: per-lane "registers" are slices indexed
/// by lane id, and collectives are plain functions over those slices.  The
/// determinism of the model (no real concurrency inside a warp) makes kernel
/// results reproducible and easy to test, while the surrounding tile-row loop
/// is parallelized across real CPU threads with Rayon in `bitgblas-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Warp {
    lanes: usize,
}

impl Default for Warp {
    fn default() -> Self {
        Self::full()
    }
}

impl Warp {
    /// A full 32-lane warp.
    #[inline]
    pub fn full() -> Self {
        Warp { lanes: WARP_SIZE }
    }

    /// A warp with `lanes` active lanes (1..=32).  Tiles smaller than 32×32
    /// (B2SR-4/8/16) only keep `tile_dim` lanes active, mirroring the thread
    /// mappings of Figure 4 in the paper.
    ///
    /// # Panics
    /// Panics if `lanes` is zero or greater than [`WARP_SIZE`].
    #[inline]
    pub fn with_lanes(lanes: usize) -> Self {
        assert!(
            (1..=WARP_SIZE).contains(&lanes),
            "a warp has between 1 and {WARP_SIZE} lanes, got {lanes}"
        );
        Warp { lanes }
    }

    /// Number of active lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Iterator over the active lane ids (`0..lanes`).
    #[inline]
    pub fn lane_ids(&self) -> std::ops::Range<usize> {
        0..self.lanes
    }

    /// Run `body` once per active lane and collect the per-lane results into a
    /// register file (a `Vec` with one entry per lane).
    ///
    /// This is the software analogue of a SIMT region: each lane sees its own
    /// `laneid` exactly as the CUDA kernels do.
    #[inline]
    pub fn map<T, F: FnMut(usize) -> T>(&self, body: F) -> Vec<T> {
        (0..self.lanes).map(body).collect()
    }

    /// Warp vote: evaluate `pred` on every active lane and pack the outcomes
    /// into a 32-bit word (software `__ballot_sync`).
    #[inline]
    pub fn ballot<F: FnMut(usize) -> bool>(&self, pred: F) -> u32 {
        intrinsics::ballot_from((0..self.lanes).map(pred))
    }

    /// Broadcast the register of `src_lane` to the whole warp (software
    /// `__shfl_sync`).
    #[inline]
    pub fn shfl<T: Copy>(&self, regs: &[T], src_lane: usize) -> T {
        debug_assert_eq!(regs.len(), self.lanes);
        intrinsics::shfl(regs, src_lane)
    }

    /// Sum-reduce a `u32` register file across the warp.
    #[inline]
    pub fn reduce_sum(&self, regs: &[u32]) -> u64 {
        debug_assert_eq!(regs.len(), self.lanes);
        intrinsics::warp_reduce_sum(regs)
    }

    /// Min-reduce an `f32` register file across the warp.
    #[inline]
    pub fn reduce_min(&self, regs: &[f32]) -> f32 {
        debug_assert_eq!(regs.len(), self.lanes);
        intrinsics::warp_reduce_min(regs)
    }
}

/// Split a range of `n_items` work items into contiguous chunks of
/// `items_per_warp`, returning `(warp_id, start, end)` triples.
///
/// This mirrors how thread blocks map warps to consecutive tile-rows in the
/// `bmv_bin_full_full` kernel (32 warps per block processing 32 consecutive
/// tile-rows); the caller typically feeds the chunks to Rayon.
pub fn warp_partition(n_items: usize, items_per_warp: usize) -> Vec<(usize, usize, usize)> {
    assert!(items_per_warp > 0, "items_per_warp must be positive");
    let mut out = Vec::with_capacity(n_items.div_ceil(items_per_warp));
    let mut start = 0usize;
    let mut warp_id = 0usize;
    while start < n_items {
        let end = (start + items_per_warp).min(n_items);
        out.push((warp_id, start, end));
        start = end;
        warp_id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_warp_has_32_lanes() {
        assert_eq!(Warp::full().lanes(), 32);
        assert_eq!(Warp::default().lanes(), 32);
    }

    #[test]
    fn partial_warp_respects_lane_count() {
        for lanes in [1, 4, 8, 16, 32] {
            let w = Warp::with_lanes(lanes);
            assert_eq!(w.lanes(), lanes);
            assert_eq!(w.lane_ids().count(), lanes);
        }
    }

    #[test]
    #[should_panic(expected = "between 1 and 32")]
    fn zero_lane_warp_panics() {
        let _ = Warp::with_lanes(0);
    }

    #[test]
    #[should_panic(expected = "between 1 and 32")]
    fn oversized_warp_panics() {
        let _ = Warp::with_lanes(33);
    }

    #[test]
    fn map_runs_body_per_lane() {
        let w = Warp::with_lanes(8);
        let regs = w.map(|lane| lane * lane);
        assert_eq!(regs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn ballot_packs_lane_predicates() {
        let w = Warp::with_lanes(8);
        let word = w.ballot(|lane| lane % 2 == 0);
        assert_eq!(word, 0b0101_0101);
        let full = Warp::full().ballot(|_| true);
        assert_eq!(full, u32::MAX);
    }

    #[test]
    fn shfl_broadcasts() {
        let w = Warp::with_lanes(4);
        let regs = w.map(|lane| (lane as u32 + 1) * 100);
        assert_eq!(w.shfl(&regs, 2), 300);
    }

    #[test]
    fn reductions() {
        let w = Warp::with_lanes(16);
        let regs = w.map(|lane| lane as u32);
        assert_eq!(w.reduce_sum(&regs), (0..16u64).sum());
        let fregs = w.map(|lane| 100.0 - lane as f32);
        assert_eq!(w.reduce_min(&fregs), 85.0);
    }

    #[test]
    fn warp_partition_covers_range_without_overlap() {
        let parts = warp_partition(100, 32);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], (0, 0, 32));
        assert_eq!(parts[3], (3, 96, 100));
        let covered: usize = parts.iter().map(|&(_, s, e)| e - s).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn warp_partition_empty_input() {
        assert!(warp_partition(0, 32).is_empty());
    }
}
