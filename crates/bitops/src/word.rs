//! The [`BitWord`] abstraction over the packing word types used by B2SR.
//!
//! The four B2SR variants pack each tile row into a different unsigned
//! integer type (Table I of the paper):
//!
//! | Tile size | Packing word | bits used per row |
//! |-----------|--------------|-------------------|
//! | 4×4       | `u8` (nibble)| 4                 |
//! | 8×8       | `u8`         | 8                 |
//! | 16×16     | `u16`        | 16                |
//! | 32×32     | `u32`        | 32                |
//!
//! `BitWord` exposes exactly the operations the kernels need — population
//! count, AND, OR, shift, bit get/set, reversal — so the BMV/BMM kernels can
//! be written once, generic over the tile size.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not, Shl, Shr};

/// An unsigned machine word used to pack one row of a bit-tile.
pub trait BitWord:
    Copy
    + Clone
    + Debug
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
    + 'static
{
    /// Number of bits in the word (8, 16 or 32).
    const BITS: u32;

    /// The all-zeros word.
    const ZERO: Self;

    /// The all-ones word.
    const ONES: Self;

    /// Word with only the lowest bit set.
    const ONE: Self;

    /// Population count (`__popc` equivalent for this word width).
    fn popcount(self) -> u32;

    /// Bit reversal (`__brev` equivalent for this word width).
    fn reverse(self) -> Self;

    /// True if bit `i` (0 = least significant) is set.
    fn bit(self, i: u32) -> bool;

    /// Return `self` with bit `i` set.
    fn with_bit(self, i: u32) -> Self;

    /// Return `self` with bit `i` cleared.
    fn without_bit(self, i: u32) -> Self;

    /// Widen to `u64` (for accumulation and serialization).
    fn to_u64(self) -> u64;

    /// Truncating conversion from `u64`.
    fn from_u64(v: u64) -> Self;

    /// Number of trailing zeros; `Self::BITS` when the word is zero.
    fn trailing_zeros(self) -> u32;

    /// Iterator over the indices of set bits, from least to most significant.
    fn iter_ones(self) -> BitIter<Self> {
        BitIter { word: self }
    }

    /// Pack up to `64 / BITS` words into one `u64`: word `k` occupies bits
    /// `[k·BITS, (k+1)·BITS)`.  This is the tile-granular load of the fused
    /// BMV sweep — a whole 8×8 tile (or half a 16×16 one) becomes a single
    /// word whose set bits are enumerated in one `trailing_zeros` loop,
    /// instead of scanning the tile row-word by row-word.
    ///
    /// The concrete word types override this with branch-free full-chunk
    /// fast paths (a full `u8` chunk is one little-endian `u64` load);
    /// [`pack_chunk_u64_generic`] is the reference shift-OR loop every
    /// override must agree with, and the fallback for partial chunks.
    ///
    /// # Panics
    /// Debug-asserts that the chunk fits (`words.len() * BITS <= 64`).
    #[inline]
    fn pack_chunk_u64(words: &[Self]) -> u64 {
        pack_chunk_u64_generic(words)
    }
}

/// The reference shift-OR implementation of [`BitWord::pack_chunk_u64`]:
/// word `k` of the chunk lands at bits `[k·BITS, (k+1)·BITS)`.  The
/// per-type overrides are tested against this loop.
///
/// # Panics
/// Debug-asserts that the chunk fits (`words.len() * BITS <= 64`).
#[inline]
pub fn pack_chunk_u64_generic<W: BitWord>(words: &[W]) -> u64 {
    debug_assert!(words.len() as u32 * W::BITS <= 64);
    let mut packed = 0u64;
    for (k, &w) in words.iter().enumerate() {
        packed |= w.to_u64() << (k as u32 * W::BITS);
    }
    packed
}

/// Iterator over set-bit positions of a [`BitWord`].
#[derive(Debug, Clone)]
pub struct BitIter<W: BitWord> {
    word: W,
}

impl<W: BitWord> Iterator for BitIter<W> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == W::ZERO {
            None
        } else {
            let i = self.word.trailing_zeros();
            self.word = self.word.without_bit(i);
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.word.popcount() as usize;
        (n, Some(n))
    }
}

impl<W: BitWord> ExactSizeIterator for BitIter<W> {}

macro_rules! impl_bitword {
    ($ty:ty, $bits:expr, $pack:path) => {
        impl BitWord for $ty {
            const BITS: u32 = $bits;
            const ZERO: Self = 0;
            const ONES: Self = <$ty>::MAX;
            const ONE: Self = 1;

            #[inline(always)]
            fn popcount(self) -> u32 {
                self.count_ones()
            }

            #[inline(always)]
            fn reverse(self) -> Self {
                self.reverse_bits()
            }

            #[inline(always)]
            fn bit(self, i: u32) -> bool {
                debug_assert!(i < Self::BITS);
                (self >> i) & 1 == 1
            }

            #[inline(always)]
            fn with_bit(self, i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                self | (1 << i)
            }

            #[inline(always)]
            fn without_bit(self, i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                self & !(1 << i)
            }

            #[inline(always)]
            fn to_u64(self) -> u64 {
                self as u64
            }

            #[inline(always)]
            fn from_u64(v: u64) -> Self {
                v as $ty
            }

            #[inline(always)]
            fn trailing_zeros(self) -> u32 {
                <$ty>::trailing_zeros(self)
            }

            #[inline(always)]
            fn pack_chunk_u64(words: &[Self]) -> u64 {
                $pack(words)
            }
        }
    };
}

/// Full 8-byte chunks (a whole 8×8 tile, or two B2SR-4 tiles' worth of
/// rows) are a single little-endian `u64` load — the hot case of the
/// tile-granular sweeps.
#[inline(always)]
fn pack_chunk_u8(words: &[u8]) -> u64 {
    match <[u8; 8]>::try_from(words) {
        Ok(bytes) => u64::from_le_bytes(bytes),
        Err(_) => pack_chunk_u64_generic(words),
    }
}

/// Full 4-halfword chunks (a quarter of a 16×16 tile) pack with three
/// shift-ORs, no loop.
#[inline(always)]
fn pack_chunk_u16(words: &[u16]) -> u64 {
    match words {
        [a, b, c, d] => {
            (*a as u64) | ((*b as u64) << 16) | ((*c as u64) << 32) | ((*d as u64) << 48)
        }
        _ => pack_chunk_u64_generic(words),
    }
}

/// Full 2-word chunks (two rows of a 32×32 tile) pack with one shift-OR.
#[inline(always)]
fn pack_chunk_u32(words: &[u32]) -> u64 {
    match words {
        [a, b] => (*a as u64) | ((*b as u64) << 32),
        _ => pack_chunk_u64_generic(words),
    }
}

/// A `u64` "chunk" is the word itself.
#[inline(always)]
fn pack_chunk_u64_word(words: &[u64]) -> u64 {
    match words {
        [a] => *a,
        _ => pack_chunk_u64_generic(words),
    }
}

impl_bitword!(u8, 8, pack_chunk_u8);
impl_bitword!(u16, 16, pack_chunk_u16);
impl_bitword!(u32, 32, pack_chunk_u32);
impl_bitword!(u64, 64, pack_chunk_u64_word);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bits<W: BitWord>() {
        let mut w = W::ZERO;
        for i in (0..W::BITS).step_by(3) {
            w = w.with_bit(i);
        }
        for i in 0..W::BITS {
            assert_eq!(w.bit(i), i % 3 == 0, "bit {i}");
        }
        let cleared = (0..W::BITS).fold(w, |acc, i| acc.without_bit(i));
        assert_eq!(cleared, W::ZERO);
    }

    #[test]
    fn set_get_clear_u8() {
        roundtrip_bits::<u8>();
    }

    #[test]
    fn set_get_clear_u16() {
        roundtrip_bits::<u16>();
    }

    #[test]
    fn set_get_clear_u32() {
        roundtrip_bits::<u32>();
    }

    #[test]
    fn set_get_clear_u64() {
        roundtrip_bits::<u64>();
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(u8::ONES.popcount(), 8);
        assert_eq!(u16::ONES.popcount(), 16);
        assert_eq!(u32::ONES.popcount(), 32);
        assert_eq!(u64::ONES.popcount(), 64);
        assert_eq!(u32::ONE.trailing_zeros(), 0);
        assert_eq!(u32::ZERO.trailing_zeros(), 32);
    }

    #[test]
    fn pack_chunk_u64_places_each_word_at_its_offset() {
        let bytes: [u8; 8] = [0x01, 0x02, 0x00, 0x80, 0xFF, 0x00, 0x10, 0x7E];
        assert_eq!(u8::pack_chunk_u64(&bytes), u64::from_le_bytes(bytes));
        // Partial chunks (B2SR-4 stores 4 words per tile).
        assert_eq!(u8::pack_chunk_u64(&bytes[..4]), 0x8000_0201);
        let halves: [u16; 4] = [0xBEEF, 0x0000, 0x1234, 0x8001];
        assert_eq!(u16::pack_chunk_u64(&halves), 0x8001_1234_0000_BEEF);
        let words: [u32; 2] = [0xDEAD_BEEF, 0x0BAD_F00D];
        assert_eq!(u32::pack_chunk_u64(&words), 0x0BAD_F00D_DEAD_BEEF);
        assert_eq!(u8::pack_chunk_u64(&[]), 0);
        // Set-bit positions survive the packing: bit b of word k lands at
        // k*BITS + b.
        for (k, &w) in halves.iter().enumerate() {
            for b in w.iter_ones() {
                let packed = u16::pack_chunk_u64(&halves);
                assert_ne!(packed & (1u64 << (k as u32 * 16 + b)), 0);
            }
        }
    }

    #[test]
    fn pack_chunk_fast_paths_match_the_generic_loop() {
        // Full and partial chunks of every word type must agree with the
        // reference shift-OR loop the overrides replace.
        let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..64 {
            let bytes: Vec<u8> = (0..8).map(|_| next() as u8).collect();
            for len in 0..=8 {
                assert_eq!(
                    u8::pack_chunk_u64(&bytes[..len]),
                    pack_chunk_u64_generic(&bytes[..len])
                );
            }
            let halves: Vec<u16> = (0..4).map(|_| next() as u16).collect();
            for len in 0..=4 {
                assert_eq!(
                    u16::pack_chunk_u64(&halves[..len]),
                    pack_chunk_u64_generic(&halves[..len])
                );
            }
            let words: Vec<u32> = (0..2).map(|_| next() as u32).collect();
            for len in 0..=2 {
                assert_eq!(
                    u32::pack_chunk_u64(&words[..len]),
                    pack_chunk_u64_generic(&words[..len])
                );
            }
            let w = next();
            assert_eq!(u64::pack_chunk_u64(&[w]), w);
            assert_eq!(u64::pack_chunk_u64(&[]), 0);
        }
    }

    #[test]
    fn iter_ones_yields_all_set_bits() {
        let w: u32 = 0b1001_0110;
        let ones: Vec<u32> = w.iter_ones().collect();
        assert_eq!(ones, vec![1, 2, 4, 7]);
        assert_eq!(0u16.iter_ones().count(), 0);
        assert_eq!(u8::ONES.iter_ones().count(), 8);
    }

    #[test]
    fn iter_ones_size_hint_is_exact() {
        let w: u32 = 0xF0F0_00FF;
        let it = w.iter_ones();
        assert_eq!(
            it.size_hint(),
            (w.count_ones() as usize, Some(w.count_ones() as usize))
        );
    }

    #[test]
    fn reverse_matches_std() {
        assert_eq!(BitWord::reverse(0x01u8), 0x80u8);
        assert_eq!(BitWord::reverse(0x0001u16), 0x8000u16);
        assert_eq!(BitWord::reverse(0x0000_0001u32), 0x8000_0000u32);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0xFF, 0xFFFF, 0xFFFF_FFFF] {
            assert_eq!(u32::from_u64(v).to_u64(), v & 0xFFFF_FFFF);
            assert_eq!(u8::from_u64(v).to_u64(), v & 0xFF);
        }
    }
}
