//! The evaluation corpus: named stand-ins for the paper's matrices and a
//! parameterised sweep standing in for the 521-matrix SuiteSparse set.
//!
//! The real SuiteSparse files are not available offline, so every matrix that
//! appears by name in the paper's tables and figures is replaced by a seeded
//! synthetic matrix of the **same structural category** (per Table V and the
//! per-matrix pattern notes in §VI-E) and of comparable (sometimes moderately
//! scaled-down) size, so the relative behaviour of the kernels — which is
//! driven by pattern and density, not by the exact vertex ids — is preserved.
//! The mapping is documented entry by entry in [`named_matrix`].

use bitgblas_sparse::Csr;

use crate::classify::PatternCategory;
use crate::generators as gen;

/// One matrix of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Human-readable name (either a paper matrix stand-in or a sweep id).
    pub name: String,
    /// The structural category the generator targets.
    pub category: PatternCategory,
    /// The binary adjacency matrix.
    pub matrix: Csr,
}

/// Names of all per-matrix stand-ins available from [`named_matrix`], in the
/// order they appear in the paper's tables.
pub fn named_matrix_list() -> Vec<&'static str> {
    vec![
        // Tables VII / VIII (SpMV-based algorithms).
        "delaunay_n14",
        "se",
        "debr",
        "ash292",
        "netz4504_dual",
        "minnesota",
        "jagmesh6",
        "uk",
        "whitaker3_dual",
        "rajat07",
        "3dtube",
        "Erdos02",
        "mycielskian9",
        "EX3",
        "net25",
        "mycielskian10",
        // Table IX additions (Triangle Counting).
        "sstmodel",
        "jagmesh2",
        "lock2232",
        "ramage02",
        "s4dkt3m2",
        "opt1",
        "trdheim",
        "mycielskian12",
        "mycielskian13",
        "vsp_c-60_data_cti_cs4",
        // Figure 3 matrices (tile-trend study).
        "G47",
        "sphere3",
        "cage",
        "will199",
        "email-Eu-core",
        // Kernel-plot outliers referenced in §VI-D.
        "ins2",
        "mycielskian8",
        "vsp_south31_slptsk",
    ]
}

/// Return the synthetic stand-in for a matrix named in the paper, or `None`
/// for unknown names.
///
/// Every entry notes the original's structure (as reported by SuiteSparse and
/// by the paper's category assignment) and the generator used to mimic it.
pub fn named_matrix(name: &str) -> Option<Csr> {
    let m = match name {
        // --- stripe patterns (paper: delaunay_n14, se, debr are "stripe") ---
        // delaunay_n14: 16384-node Delaunay triangulation, avg degree ~6;
        // stand-in: regular stripes at mesh-like offsets.
        "delaunay_n14" => gen::stripes(16384, &[1, 2, 127, 128], 0.75, 0x14),
        // se: structural engineering mesh (~32k rows); scaled-down stripes.
        "se" => gen::stripes(8192, &[1, 3, 64, 65], 0.8, 0x5e),
        // debr: de Bruijn-like graph, long-range regular stripes.
        "debr" => gen::stripes(8192, &[1, 2048, 4096], 0.9, 0xdeb),
        // --- diagonal patterns ---
        // ash292: 292x292 least-squares structure, narrow band.
        "ash292" => gen::banded(292, 4, 0.6, 0x292),
        // netz4504_dual: 1174-node dual mesh, banded.
        "netz4504_dual" => gen::banded(1174, 3, 0.7, 0x4504),
        // minnesota: 2642-node road network.
        "minnesota" => gen::grid2d(48, 55),
        // jagmesh6: 1377-node FEM mesh, banded.
        "jagmesh6" => gen::banded(1377, 5, 0.6, 0x6a6),
        // jagmesh2: 1009-node FEM mesh.
        "jagmesh2" => gen::banded(1009, 5, 0.6, 0x6a2),
        // uk: 4824-node road-like graph.
        "uk" => gen::grid2d(67, 72),
        // whitaker3_dual: 19190-node dual mesh, banded.
        "whitaker3_dual" => gen::banded(19190, 4, 0.65, 0x3d),
        // rajat07: 14842-node circuit matrix, diagonal-dominant.
        "rajat07" => gen::banded(14842, 6, 0.4, 0x707),
        // 3dtube: 45330-node 3-D CFD mesh; scaled-down 3-D grid (17^3 = 4913).
        "3dtube" => gen::grid3d(17, 17, 17),
        // sphere3 / cage: FEM/DNA electrophoresis meshes, 3-D grid-like.
        "sphere3" => gen::grid3d(12, 12, 12),
        "cage" => gen::banded(366, 8, 0.5, 0xca6e),
        // sstmodel, lock2232, s4dkt3m2, opt1, trdheim, ramage02: FEM/structural
        // matrices with banded structure of various widths.
        "sstmodel" => gen::banded(3345, 8, 0.5, 0x55),
        "lock2232" => gen::banded(2232, 10, 0.5, 0x2232),
        "ramage02" => gen::banded(1476, 40, 0.5, 0x9a02),
        "s4dkt3m2" => gen::banded(4893, 12, 0.5, 0x5443),
        "opt1" => gen::banded(3938, 30, 0.4, 0x0971),
        "trdheim" => gen::banded(2455, 25, 0.6, 0x7d),
        // --- block patterns ---
        // Erdos02: collaboration network, dense core + sparse periphery.
        "Erdos02" => gen::block_community(8, 100, 0.35, 2e-5, 0xe02),
        // EX3: FEM matrix with dense blocks.
        "EX3" => gen::block_community(12, 64, 0.45, 1e-5, 0xe3),
        // net25: optimisation problem with rectangular dense blocks.
        "net25" => gen::block_community(16, 80, 0.3, 2e-5, 0x25),
        // mycielskian family: exact construction (block-dense structure).
        "mycielskian8" => gen::mycielskian(8),
        "mycielskian9" => gen::mycielskian(9),
        "mycielskian10" => gen::mycielskian(10),
        "mycielskian12" => gen::mycielskian(12),
        "mycielskian13" => gen::mycielskian(13),
        // vsp_* graph-partitioning instances: hybrid block + scatter.
        "vsp_c-60_data_cti_cs4" => gen::hybrid(4096, 0x60),
        "vsp_south31_slptsk" => gen::hybrid(3072, 0x31),
        "vsp_c-30_data_data" => gen::hybrid(2048, 0x30),
        // --- dot / hybrid patterns used in Figure 3 ---
        // G47: random graph (Gset), pure scatter.
        "G47" => gen::erdos_renyi(1000, 0.012, true, 0x47),
        // will199: small unstructured matrix.
        "will199" => gen::erdos_renyi(199, 0.05, false, 0xc199),
        // email-Eu-core: 1005-node email network, power-law.
        "email-Eu-core" => gen::rmat(10, 16, 0.57, 0.19, 0.19, 0xeee),
        // ins2: insurance optimisation matrix — large dense-block structure;
        // the paper's biggest kernel speedups appear here.
        "ins2" => gen::block_community(16, 128, 0.5, 1e-6, 0x1152),
        _ => return None,
    };
    Some(m)
}

/// The category each named stand-in targets (used for per-category reporting
/// in the algorithm tables).
pub fn named_matrix_category(name: &str) -> Option<PatternCategory> {
    use PatternCategory::*;
    let c = match name {
        "delaunay_n14" | "se" | "debr" => Stripe,
        "ash292" | "netz4504_dual" | "jagmesh6" | "jagmesh2" | "whitaker3_dual" | "rajat07"
        | "cage" | "sstmodel" | "lock2232" | "ramage02" | "s4dkt3m2" | "opt1" | "trdheim" => {
            Diagonal
        }
        "minnesota" | "uk" => Road,
        "3dtube" | "sphere3" => Diagonal,
        "Erdos02" | "EX3" | "net25" | "ins2" | "mycielskian8" | "mycielskian9"
        | "mycielskian10" | "mycielskian12" | "mycielskian13" => Block,
        "vsp_c-60_data_cti_cs4" | "vsp_south31_slptsk" | "vsp_c-30_data_data" => Hybrid,
        "G47" | "will199" | "email-Eu-core" => Dot,
        _ => return None,
    };
    Some(c)
}

/// Generate the "521-matrix-like" synthetic sweep used by the Figure 5
/// compression study and the Figure 6/7 kernel sweeps.
///
/// `count` matrices are produced, cycling through the six categories with the
/// approximate shares reported in Table V (diagonal ≈ 46 %, dot ≈ 37 %,
/// hybrid ≈ 26 %, block ≈ 25 %, stripe ≈ 13 %, road ≈ 5 % — shares overlap in
/// the paper because hybrids count twice; here each matrix gets one label).
/// Sizes and densities vary deterministically with the index and `seed`.
pub fn corpus_sweep(count: usize, seed: u64) -> Vec<CorpusEntry> {
    // Category schedule out of 100 slots, approximating Table V shares.
    const SCHEDULE: [(PatternCategory, usize); 6] = [
        (PatternCategory::Diagonal, 33),
        (PatternCategory::Dot, 22),
        (PatternCategory::Hybrid, 15),
        (PatternCategory::Block, 17),
        (PatternCategory::Stripe, 9),
        (PatternCategory::Road, 4),
    ];
    let mut schedule = Vec::with_capacity(100);
    for (cat, share) in SCHEDULE {
        schedule.extend(std::iter::repeat_n(cat, share));
    }

    (0..count)
        .map(|i| {
            // Stride through the schedule with a step coprime to its length so
            // small sweeps still cover every category.
            let cat = schedule[(i * 37) % schedule.len()];
            let s = seed.wrapping_add(i as u64 * 7919);
            // Size grows with the index so the sweep spans small to mid-size.
            let n = 256 + (i % 17) * 192;
            let matrix = match cat {
                PatternCategory::Diagonal => {
                    gen::banded(n, 2 + i % 7, 0.4 + 0.05 * (i % 8) as f64, s)
                }
                PatternCategory::Dot => {
                    gen::erdos_renyi(n, 0.002 + 0.002 * (i % 6) as f64, true, s)
                }
                PatternCategory::Hybrid => gen::hybrid(n, s),
                PatternCategory::Block => gen::block_community(
                    2 + i % 6,
                    32 + (i % 4) * 16,
                    0.25 + 0.05 * (i % 5) as f64,
                    1e-5,
                    s,
                ),
                PatternCategory::Stripe => {
                    gen::stripes(n, &[1 + i % 3, n / 8 + 1, n / 3 + 1], 0.7, s)
                }
                PatternCategory::Road => {
                    let side = (n as f64).sqrt() as usize;
                    gen::grid2d(side, side)
                }
            };
            CorpusEntry {
                name: format!("sweep_{i:04}_{cat}"),
                category: cat,
                matrix,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_matrix_is_constructible_binary_and_square() {
        for name in named_matrix_list() {
            let m = named_matrix(name).unwrap_or_else(|| panic!("missing generator for {name}"));
            assert!(m.nrows() > 0, "{name} is empty");
            assert_eq!(m.nrows(), m.ncols(), "{name} is not square");
            assert!(m.is_binary(), "{name} is not binary");
            assert!(m.nnz() > 0, "{name} has no edges");
            assert!(
                named_matrix_category(name).is_some(),
                "{name} has no category assigned"
            );
        }
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(named_matrix("definitely_not_a_matrix").is_none());
        assert!(named_matrix_category("nope").is_none());
    }

    #[test]
    fn mycielskian_standins_have_catalogue_sizes() {
        assert_eq!(named_matrix("mycielskian9").unwrap().nrows(), 383);
        assert_eq!(named_matrix("mycielskian10").unwrap().nrows(), 767);
        assert_eq!(named_matrix("mycielskian12").unwrap().nrows(), 3071);
    }

    #[test]
    fn named_matrices_are_deterministic() {
        let a = named_matrix("delaunay_n14").unwrap();
        let b = named_matrix("delaunay_n14").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_sweep_has_requested_count_and_varied_categories() {
        let sweep = corpus_sweep(60, 99);
        assert_eq!(sweep.len(), 60);
        let mut cats: Vec<_> = sweep.iter().map(|e| e.category).collect();
        cats.sort_by_key(|c| format!("{c}"));
        cats.dedup();
        assert!(
            cats.len() >= 5,
            "sweep should span most categories, got {cats:?}"
        );
        for e in &sweep {
            assert!(e.matrix.is_binary());
            assert_eq!(e.matrix.nrows(), e.matrix.ncols());
        }
    }

    #[test]
    fn corpus_sweep_is_deterministic() {
        let a = corpus_sweep(10, 5);
        let b = corpus_sweep(10, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
    }
}
