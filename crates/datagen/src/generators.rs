//! Seeded graph and matrix generators covering the paper's six structural
//! categories.
//!
//! Every generator returns a **binary, square** adjacency matrix in CSR form
//! (values all `1.0`), matching the homogeneous graphs Bit-GraphBLAS targets.
//! Generators take an explicit `seed` so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bitgblas_sparse::{Coo, Csr};

/// Erdős–Rényi `G(n, p)` digraph, optionally symmetrized — the "dot" category
/// (nonzeros scattered at random).
pub fn erdos_renyi(n: usize, p: f64, symmetric: bool, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    // For very sparse graphs sample edge counts per row rather than testing
    // all n^2 pairs: geometric skipping over the flattened index space.
    let total = (n as f64) * (n as f64);
    let expected = (total * p).ceil() as usize;
    if p <= 0.05 {
        let mut inserted = std::collections::HashSet::with_capacity(expected);
        while inserted.len() < expected {
            let r = rng.gen_range(0..n);
            let c = rng.gen_range(0..n);
            if r != c && inserted.insert((r, c)) {
                coo.push_edge(r, c).expect("in bounds");
                if symmetric {
                    coo.push_edge(c, r).expect("in bounds");
                }
            }
        }
    } else {
        for r in 0..n {
            for c in 0..n {
                if r != c && rng.gen_bool(p) {
                    coo.push_edge(r, c).expect("in bounds");
                    if symmetric {
                        coo.push_edge(c, r).expect("in bounds");
                    }
                }
            }
        }
    }
    coo.to_binary_csr()
}

/// R-MAT power-law graph (Graph500-style) with partition probabilities
/// `(a, b, c, d)`; `d` is implied as `1 - a - b - c`.  Power-law graphs are
/// the "dot"/"hybrid" category and stress load balance.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    assert!(
        a + b + c < 1.0 + 1e-9,
        "partition probabilities must sum below 1"
    );
    let n = 1usize << scale;
    let n_edges = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n, n, n_edges * 2);
    for _ in 0..n_edges {
        let (mut row, mut col) = (0usize, 0usize);
        let mut span = n >> 1;
        while span > 0 {
            let x: f64 = rng.gen();
            if x < a {
                // top-left: nothing added
            } else if x < a + b {
                col += span;
            } else if x < a + b + c {
                row += span;
            } else {
                row += span;
                col += span;
            }
            span >>= 1;
        }
        if row != col {
            coo.push_undirected_edge(row, col).expect("in bounds");
        }
    }
    coo.to_binary_csr()
}

/// Banded matrix: the main diagonal plus `bandwidth` sub/super-diagonals with
/// the given fill probability — the "diagonal" category (e.g. meshes such as
/// jagmesh6, whitaker3_dual, minnesota after reordering).
pub fn banded(n: usize, bandwidth: usize, fill: f64, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            if r != c && rng.gen_bool(fill) {
                coo.push_edge(r, c).expect("in bounds");
            }
        }
    }
    coo.to_binary_csr().symmetrized()
}

/// Block-community graph: `n_blocks` dense communities of `block_size`
/// vertices with `intra` fill, plus sparse `inter` connections — the "block"
/// category (net25, EX3, Erdos02 stand-ins).
pub fn block_community(
    n_blocks: usize,
    block_size: usize,
    intra: f64,
    inter: f64,
    seed: u64,
) -> Csr {
    let n = n_blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for b in 0..n_blocks {
        let base = b * block_size;
        for i in 0..block_size {
            for j in 0..block_size {
                if i != j && rng.gen_bool(intra) {
                    coo.push_edge(base + i, base + j).expect("in bounds");
                }
            }
        }
    }
    // Sparse inter-community edges.
    let n_inter = ((n as f64) * (n as f64) * inter).ceil() as usize;
    for _ in 0..n_inter {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if r / block_size != c / block_size {
            coo.push_edge(r, c).expect("in bounds");
        }
    }
    coo.to_binary_csr().symmetrized()
}

/// Stripe matrix: `n_stripes` off-diagonal lines at fixed offsets — the
/// "stripe" category (delaunay_n14, se, debr stand-ins have banded stripes at
/// regular offsets from circuit / mesh orderings).
pub fn stripes(n: usize, offsets: &[usize], fill: f64, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for &off in offsets {
            if off == 0 {
                continue;
            }
            if r + off < n && rng.gen_bool(fill) {
                coo.push_edge(r, r + off).expect("in bounds");
            }
            if r >= off && rng.gen_bool(fill) {
                coo.push_edge(r, r - off).expect("in bounds");
            }
        }
    }
    coo.to_binary_csr().symmetrized()
}

/// 2-D grid (rook adjacency) — the "road" category: every vertex connects to
/// its 4 neighbours in a `rows × cols` lattice.
pub fn grid2d(rows: usize, cols: usize) -> Csr {
    let n = rows * cols;
    let mut coo = Coo::new(n, n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push_undirected_edge(id(r, c), id(r, c + 1))
                    .expect("in bounds");
            }
            if r + 1 < rows {
                coo.push_undirected_edge(id(r, c), id(r + 1, c))
                    .expect("in bounds");
            }
        }
    }
    coo.to_binary_csr()
}

/// 3-D grid (6-neighbour stencil) — stand-in for FEM/CFD meshes such as
/// 3dtube, sphere3, cage.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    coo.push_undirected_edge(id(x, y, z), id(x + 1, y, z))
                        .expect("in bounds");
                }
                if y + 1 < ny {
                    coo.push_undirected_edge(id(x, y, z), id(x, y + 1, z))
                        .expect("in bounds");
                }
                if z + 1 < nz {
                    coo.push_undirected_edge(id(x, y, z), id(x, y, z + 1))
                        .expect("in bounds");
                }
            }
        }
    }
    coo.to_binary_csr()
}

/// Path graph `P_n`.
pub fn path(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n.saturating_sub(1) {
        coo.push_undirected_edge(i, i + 1).expect("in bounds");
    }
    coo.to_binary_csr()
}

/// Cycle graph `C_n`.
pub fn cycle(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n.saturating_sub(1) {
        coo.push_undirected_edge(i, i + 1).expect("in bounds");
    }
    if n > 2 {
        coo.push_undirected_edge(n - 1, 0).expect("in bounds");
    }
    coo.to_binary_csr()
}

/// Star graph `S_n` (vertex 0 is the hub).
pub fn star(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 1..n {
        coo.push_undirected_edge(0, i).expect("in bounds");
    }
    coo.to_binary_csr()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                coo.push_edge(i, j).expect("in bounds");
            }
        }
    }
    coo.to_binary_csr()
}

/// The Mycielski construction applied to a graph `g`: returns a
/// triangle-free(-preserving) graph with `2·n + 1` vertices and
/// `3·|E| + n` edges.
pub fn mycielski_step(g: &Csr) -> Csr {
    let n = g.nrows();
    let nn = 2 * n + 1;
    let w = 2 * n;
    let mut coo = Coo::new(nn, nn);
    // Original edges (upper triangle once, symmetrized below by construction).
    for (r, c, _) in g.iter() {
        if r < c {
            // v_r -- v_c
            coo.push_undirected_edge(r, c).expect("in bounds");
            // u_r -- v_c and v_r -- u_c
            coo.push_undirected_edge(n + r, c).expect("in bounds");
            coo.push_undirected_edge(r, n + c).expect("in bounds");
        }
    }
    // u_i -- w for all i.
    for i in 0..n {
        coo.push_undirected_edge(n + i, w).expect("in bounds");
    }
    coo.to_binary_csr()
}

/// `mycielskian(k)` for `k ≥ 2`: the Mycielskian family as catalogued in
/// SuiteSparse (mycielskian2 = K2, each further index applies one Mycielski
/// step).  mycielskian9 has 383 vertices, mycielskian12 has 3071.
pub fn mycielskian(k: u32) -> Csr {
    assert!(k >= 2, "mycielskian is defined for k >= 2");
    let mut g = complete(2); // mycielskian2 = K2
    for _ in 2..k {
        g = mycielski_step(&g);
    }
    g
}

/// A "hybrid" pattern: block communities overlaid with a random scatter and a
/// diagonal band — the paper's sixth category (a combination of two or more
/// patterns).
pub fn hybrid(n: usize, seed: u64) -> Csr {
    let band = banded(n, 2, 0.8, seed);
    let blocks = block_community(
        n.div_ceil(64).max(2),
        64.min(n / 2).max(2),
        0.2,
        0.0,
        seed + 1,
    );
    let scatter = erdos_renyi(n, (4.0 / n as f64).min(0.05), true, seed + 2);
    // Union of the three patterns, truncated/padded to n×n.
    let mut coo = Coo::new(n, n);
    for m in [&band, &blocks, &scatter] {
        for (r, c, _) in m.iter() {
            if r < n && c < n {
                coo.push_edge(r, c).expect("in bounds");
            }
        }
    }
    coo.to_binary_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_symmetric(a: &Csr) -> bool {
        a.iter().all(|(r, c, _)| a.get(c, r).is_some())
    }

    #[test]
    fn erdos_renyi_is_seeded_and_binary() {
        let a = erdos_renyi(128, 0.02, true, 7);
        let b = erdos_renyi(128, 0.02, true, 7);
        let c = erdos_renyi(128, 0.02, true, 8);
        assert_eq!(a, b, "same seed must give identical matrices");
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.is_binary());
        assert!(a.nnz() > 0);
        assert_eq!(a.nrows(), 128);
    }

    #[test]
    fn erdos_renyi_dense_branch() {
        let a = erdos_renyi(32, 0.3, false, 3);
        assert!(a.density() > 0.15 && a.density() < 0.5);
        assert!(a.get(0, 0).is_none(), "no self loops");
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let a = rmat(8, 8, 0.57, 0.19, 0.19, 42);
        assert_eq!(a.nrows(), 256);
        assert!(a.is_binary());
        let degs = a.out_degrees();
        let max = *degs.iter().max().unwrap();
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max as f64 > 3.0 * avg,
            "R-MAT should have hub vertices (max {max}, avg {avg})"
        );
        assert!(is_symmetric(&a));
    }

    #[test]
    fn banded_stays_within_band() {
        let a = banded(64, 3, 1.0, 1);
        for (r, c, _) in a.iter() {
            assert!(r.abs_diff(c) <= 3);
        }
        assert!(is_symmetric(&a));
    }

    #[test]
    fn block_community_is_block_structured() {
        let a = block_community(4, 16, 0.9, 0.0, 5);
        assert_eq!(a.nrows(), 64);
        for (r, c, _) in a.iter() {
            assert_eq!(r / 16, c / 16, "no inter-block edges when inter=0");
        }
    }

    #[test]
    fn stripes_only_at_requested_offsets() {
        let a = stripes(100, &[7, 13], 1.0, 2);
        for (r, c, _) in a.iter() {
            let d = r.abs_diff(c);
            assert!(d == 7 || d == 13, "unexpected offset {d}");
        }
    }

    #[test]
    fn grid2d_degrees_are_lattice_like() {
        let a = grid2d(10, 10);
        assert_eq!(a.nrows(), 100);
        let degs = a.out_degrees();
        assert_eq!(*degs.iter().max().unwrap(), 4);
        assert_eq!(*degs.iter().min().unwrap(), 2);
        assert_eq!(a.nnz(), 2 * (9 * 10 + 10 * 9));
        assert!(is_symmetric(&a));
    }

    #[test]
    fn grid3d_counts_edges() {
        let a = grid3d(4, 4, 4);
        assert_eq!(a.nrows(), 64);
        // 3 * 4*4*3 undirected edges = 144, stored twice.
        assert_eq!(a.nnz(), 2 * 144);
    }

    #[test]
    fn small_classics() {
        assert_eq!(path(5).nnz(), 8);
        assert_eq!(cycle(5).nnz(), 10);
        assert_eq!(star(5).nnz(), 8);
        assert_eq!(complete(5).nnz(), 20);
        assert_eq!(cycle(2).nnz(), 2);
        assert_eq!(path(1).nnz(), 0);
    }

    #[test]
    fn mycielskian_sizes_match_catalogue() {
        // |V(k)| = 3 * 2^(k-2) - 1, |E(k+1)| = 3|E(k)| + |V(k)|.
        let m3 = mycielskian(3); // C5
        assert_eq!(m3.nrows(), 5);
        assert_eq!(m3.nnz(), 10);
        let m4 = mycielskian(4); // Grötzsch graph: 11 vertices, 20 edges
        assert_eq!(m4.nrows(), 11);
        assert_eq!(m4.nnz(), 40);
        let m9 = mycielskian(9);
        assert_eq!(m9.nrows(), 383);
        assert!(is_symmetric(&m9));
    }

    #[test]
    fn mycielskian_is_triangle_free_early() {
        // The Mycielskian of a triangle-free graph is triangle-free; C5 and
        // the Grötzsch graph famously have chromatic number 3 and 4 with no
        // triangles.  Count triangles by trace(A^3)/6 on the small cases.
        for k in [3u32, 4, 5] {
            let a = mycielskian(k);
            let a2 = bitgblas_sparse::ops::spgemm(&a, &a).unwrap();
            let a3 = bitgblas_sparse::ops::spgemm(&a2, &a).unwrap();
            let trace: f32 = (0..a.nrows()).filter_map(|i| a3.get(i, i)).sum();
            assert_eq!(trace, 0.0, "mycielskian({k}) must be triangle-free");
        }
    }

    #[test]
    fn hybrid_combines_patterns() {
        let a = hybrid(256, 11);
        assert_eq!(a.nrows(), 256);
        assert!(a.is_binary());
        // Should contain both near-diagonal and far-from-diagonal entries.
        let near = a.iter().filter(|(r, c, _)| r.abs_diff(*c) <= 2).count();
        let far = a.iter().filter(|(r, c, _)| r.abs_diff(*c) > 16).count();
        assert!(near > 0 && far > 0);
    }

    #[test]
    #[should_panic(expected = "defined for k >= 2")]
    fn mycielskian_rejects_k1() {
        let _ = mycielskian(1);
    }
}
