//! Structural pattern classifier reproducing Table V of the paper.
//!
//! The paper groups the 521 evaluation matrices into six visual categories
//! based on where their nonzeros sit.  The classifier here is a lightweight
//! structural heuristic over the same notions: distance from the diagonal,
//! concentration into tiles (blocks), alignment along fixed off-diagonal
//! offsets (stripes), regular low-degree lattices (roads) and unstructured
//! scatter (dots).  A matrix matching two or more categories strongly is
//! *hybrid*, as in the paper.

use bitgblas_sparse::Csr;

/// The six structural categories of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternCategory {
    /// Nonzeros scattered randomly over the matrix.
    Dot,
    /// Nonzeros centralised around the main diagonal.
    Diagonal,
    /// Square/rectangular dense blocks or contours.
    Block,
    /// One or more lines at fixed off-diagonal offsets.
    Stripe,
    /// Regular low-degree lattice distribution (road networks, grids).
    Road,
    /// A combination of two or more of the patterns above.
    Hybrid,
}

impl std::fmt::Display for PatternCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PatternCategory::Dot => "dot",
            PatternCategory::Diagonal => "diagonal",
            PatternCategory::Block => "block",
            PatternCategory::Stripe => "stripe",
            PatternCategory::Road => "road",
            PatternCategory::Hybrid => "hybrid",
        };
        write!(f, "{s}")
    }
}

/// Per-category affinity scores in `[0, 1]`, useful for reporting and for the
/// hybrid decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternScores {
    /// Fraction of nonzeros within a narrow band around the diagonal.
    pub diagonal: f64,
    /// Concentration of nonzeros into a small fraction of 64×64 tiles.
    pub block: f64,
    /// Fraction of nonzeros on the few most popular off-diagonal offsets.
    pub stripe: f64,
    /// Degree-regularity score (low, uniform degrees ⇒ road-like).
    pub road: f64,
    /// Scatter score (inverse of all structural scores).
    pub dot: f64,
}

/// Compute the per-category affinity scores of a matrix.
pub fn pattern_scores(a: &Csr) -> PatternScores {
    let n = a.nrows().max(1);
    if a.nnz() == 0 {
        // An empty matrix has no structure at all.
        return PatternScores {
            diagonal: 0.0,
            block: 0.0,
            stripe: 0.0,
            road: 0.0,
            dot: 1.0,
        };
    }
    let nnz = a.nnz();

    // Diagonal affinity: nonzeros within a band of width ~1% of n (at least 4).
    let band = (n / 100).max(4);
    let in_band = a.iter().filter(|(r, c, _)| r.abs_diff(*c) <= band).count();
    let diagonal = in_band as f64 / nnz as f64;

    // Stripe affinity: mass on the few most popular |r-c| offsets outside the
    // near-diagonal band.
    let mut offset_counts: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut off_band_total = 0usize;
    for (r, c, _) in a.iter() {
        let d = r.abs_diff(c);
        if d > band {
            *offset_counts.entry(d).or_insert(0) += 1;
            off_band_total += 1;
        }
    }
    let stripe = if off_band_total == 0 {
        0.0
    } else {
        let mut counts: Vec<usize> = offset_counts.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        let top: usize = counts.iter().take(4).sum();
        top as f64 / off_band_total as f64
    };

    // Block affinity: how concentrated nonzeros are in 64x64 tiles — measured
    // as 1 - (non-empty tile fraction / expected fraction under uniform
    // scatter), clamped to [0,1].
    let tile = 64usize;
    let nt = n.div_ceil(tile);
    let mut tiles = std::collections::HashSet::new();
    for (r, c, _) in a.iter() {
        tiles.insert((r / tile, c / tile));
    }
    let nonempty_frac = tiles.len() as f64 / ((nt * nt) as f64);
    // Under uniform scatter, expected fraction of non-empty tiles:
    let per_tile = nnz as f64 / ((nt * nt) as f64);
    let expected_frac = 1.0 - (-per_tile).exp();
    let block = if expected_frac > 0.0 {
        (1.0 - nonempty_frac / expected_frac).clamp(0.0, 1.0)
    } else {
        0.0
    };

    // Road affinity: low average degree with low variance.
    let degs = a.out_degrees();
    let avg = degs.iter().sum::<usize>() as f64 / n as f64;
    let var = degs.iter().map(|&d| (d as f64 - avg).powi(2)).sum::<f64>() / n as f64;
    let cv = if avg > 0.0 { var.sqrt() / avg } else { 0.0 };
    let road = if avg > 0.0 && avg <= 6.0 && cv < 0.5 {
        1.0 - cv
    } else {
        0.0
    };

    // Dot affinity: whatever is left when nothing else explains the structure.
    let structural_max = diagonal.max(block).max(stripe).max(road);
    let dot = (1.0 - structural_max).clamp(0.0, 1.0);

    PatternScores {
        diagonal,
        block,
        stripe,
        road,
        dot,
    }
}

/// Classify a matrix into one of the Table V categories.
///
/// A matrix is *hybrid* when two or more structural scores are strong
/// simultaneously; otherwise the strongest score wins; a matrix with no
/// strong structure is *dot*.
pub fn classify(a: &Csr) -> PatternCategory {
    let s = pattern_scores(a);
    const STRONG: f64 = 0.6;

    // Road takes precedence over diagonal only when the matrix is lattice-like
    // AND not mostly banded (grids permuted to band order count as diagonal).
    let road_strong = s.road >= 0.8 && s.diagonal < 0.9;
    let candidates = [
        (PatternCategory::Diagonal, s.diagonal),
        (PatternCategory::Block, s.block),
        (PatternCategory::Stripe, s.stripe),
        (
            PatternCategory::Road,
            if road_strong { s.road } else { 0.0 },
        ),
    ];
    let strong: Vec<_> = candidates.iter().filter(|(_, v)| *v >= STRONG).collect();
    // Lattice regularity is the most specific signal: a grid also looks like a
    // pair of stripes (offsets 1 and `width`), but a stripe matrix does not
    // look like a lattice, so Road wins whenever it is strong.
    if road_strong && !strong.is_empty() {
        return PatternCategory::Road;
    }
    match strong.len() {
        0 => PatternCategory::Dot,
        1 => strong[0].0,
        _ => {
            // Diagonal + stripe frequently co-occur for banded meshes; treat a
            // dominant diagonal as diagonal rather than hybrid, as the paper's
            // examples (minnesota, jagmesh) are labelled diagonal.
            let best = candidates
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if best.1 >= 0.9 {
                best.0
            } else {
                PatternCategory::Hybrid
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn banded_matrix_is_diagonal() {
        let a = generators::banded(512, 3, 0.9, 1);
        assert_eq!(classify(&a), PatternCategory::Diagonal);
        assert!(pattern_scores(&a).diagonal > 0.9);
    }

    #[test]
    fn random_matrix_is_dot() {
        let a = generators::erdos_renyi(512, 0.01, true, 2);
        let cat = classify(&a);
        assert_eq!(
            cat,
            PatternCategory::Dot,
            "scores: {:?}",
            pattern_scores(&a)
        );
    }

    #[test]
    fn block_matrix_is_block() {
        let a = generators::block_community(6, 64, 0.5, 0.0, 3);
        let s = pattern_scores(&a);
        assert!(s.block > 0.5, "block score too low: {s:?}");
        let cat = classify(&a);
        assert!(
            cat == PatternCategory::Block || cat == PatternCategory::Hybrid,
            "unexpected category {cat} (scores {s:?})"
        );
    }

    #[test]
    fn stripe_matrix_is_stripe() {
        let a = generators::stripes(1024, &[101, 211], 0.9, 4);
        let s = pattern_scores(&a);
        assert!(s.stripe > 0.9, "stripe score too low: {s:?}");
        assert_eq!(classify(&a), PatternCategory::Stripe);
    }

    #[test]
    fn grid_is_road_or_diagonal() {
        // A 2-D grid in natural ordering is band-structured; both labels are
        // structurally accurate, the paper files road networks separately
        // because of their geographic orderings.
        let a = generators::grid2d(40, 40);
        let cat = classify(&a);
        assert!(
            cat == PatternCategory::Road || cat == PatternCategory::Diagonal,
            "unexpected {cat}"
        );
    }

    #[test]
    fn scores_are_in_unit_interval() {
        for seed in 0..5u64 {
            let a = generators::hybrid(256, seed);
            let s = pattern_scores(&a);
            for v in [s.diagonal, s.block, s.stripe, s.road, s.dot] {
                assert!((0.0..=1.0).contains(&v), "score out of range: {s:?}");
            }
        }
    }

    #[test]
    fn empty_matrix_is_dot() {
        let a = Csr::empty(16, 16);
        assert_eq!(classify(&a), PatternCategory::Dot);
    }

    #[test]
    fn display_names() {
        assert_eq!(PatternCategory::Diagonal.to_string(), "diagonal");
        assert_eq!(PatternCategory::Hybrid.to_string(), "hybrid");
    }
}
