//! # bitgblas-datagen
//!
//! Synthetic workload generation for the Bit-GraphBLAS reproduction.
//!
//! The paper evaluates on all 521 binary square matrices of the SuiteSparse
//! Matrix Collection and groups them into six structural categories
//! (Table V): *dot* (random scatter), *diagonal*, *block*, *stripe*, *road*
//! (regular grid-like) and *hybrid*.  The collection is not available in this
//! offline environment, so this crate generates a synthetic corpus with the
//! same structural classes and comparable sizes/densities:
//!
//! * [`generators`] — seeded graph/matrix generators for every category
//!   (Erdős–Rényi, R-MAT/Kronecker power-law, banded/diagonal, block
//!   community, stripes, 2-D/3-D grids, Mycielskian, and small classics);
//! * [`mod@classify`] — a structural classifier reproducing the Table V
//!   categorisation;
//! * [`corpus`] — a named catalogue of stand-ins for the matrices that appear
//!   in the paper's per-matrix tables (delaunay_n14, ash292, mycielskian9,
//!   3dtube, …) plus a parameterised "521-matrix-like" sweep used by the
//!   compression histogram experiment (Figure 5).
//!
//! All generators are deterministic given a seed, so every experiment in
//! `EXPERIMENTS.md` is exactly reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod classify;
pub mod corpus;
pub mod generators;

pub use classify::{classify, PatternCategory};
pub use corpus::{corpus_sweep, named_matrix, named_matrix_list, CorpusEntry};
