//! # bitgblas-bench
//!
//! The experiment harness of the Bit-GraphBLAS reproduction.  Each binary in
//! `src/bin/` regenerates one table or figure of the paper's evaluation
//! (§VI); the Criterion benches in `benches/` provide statistically sound
//! kernel timings for the same comparisons.  `EXPERIMENTS.md` in the
//! workspace root records one captured run of every binary next to the
//! paper's numbers.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1_packing` | Table I — per-tile packing space savings |
//! | `fig3_tile_trends` | Figure 3a/3b — tile ratio and occupancy vs tile size |
//! | `fig5_compression` | Figure 5a/5b — compression histogram, optimal tile sizes |
//! | `table5_patterns` | Table V — pattern-category shares of the corpus |
//! | `fig6_7_kernels` | Figures 6/7 — BMV/BMM speedup over the float baseline |
//! | `table7_8_algorithms` | Tables VII/VIII — BFS/SSSP/PR/CC runtimes vs baseline |
//! | `table9_tc` | Table IX — Triangle Counting runtimes vs baseline |
//! | `memstats` | §VI-C — memory transactions and L1 hit rates |
//! | `conversion_overhead` | §III-B — CSR→B2SR conversion cost |
//! | `perf_suite` | machine-readable perf trajectory (`BENCH_PR6.json`): BMV push/pull/auto, all five algorithms, fused vs unfused pipelines, batched vs sequential multi-source traversal and PPR, sharded-push thread scaling, open-loop serving rows |
//!
//! This library holds the small shared utilities: wall-clock timing with
//! warm-up, geometric means, and the fixed matrix lists used by the tables.

#![warn(missing_docs)]

use std::time::Instant;

use bitgblas_sparse::Csr;

/// Number of timed repetitions used by the harness binaries (the paper
/// reports the average of 5 runs).
pub const RUNS: usize = 5;

/// Wall-clock statistics over the [`RUNS`] timed repetitions.
///
/// The paper reports 5-run averages, but on small graphs the mean hides
/// warm-up jitter (allocator growth, page faults, lazy transpose builds on
/// the first repetition after the warm-up call); `min` and `median` expose
/// the steady-state cost the average smears out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Arithmetic mean of the individual run times, in milliseconds.
    pub mean_ms: f64,
    /// Fastest single run, in milliseconds.
    pub min_ms: f64,
    /// Median run, in milliseconds.
    pub median_ms: f64,
}

/// Time `f` over [`RUNS`] individually-measured repetitions after one
/// warm-up call; returns mean, min and median wall-clock milliseconds.
pub fn time_stats_ms<T, F: FnMut() -> T>(mut f: F) -> TimingStats {
    let _warmup = f();
    let mut samples = [0.0f64; RUNS];
    for s in samples.iter_mut() {
        let start = Instant::now();
        std::hint::black_box(f());
        *s = start.elapsed().as_secs_f64() * 1e3;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    TimingStats {
        mean_ms: samples.iter().sum::<f64>() / RUNS as f64,
        min_ms: samples[0],
        median_ms: samples[RUNS / 2],
    }
}

/// Time `f` over [`RUNS`] repetitions after one warm-up call; returns the
/// average wall-clock milliseconds.
pub fn time_avg_ms<T, F: FnMut() -> T>(f: F) -> f64 {
    time_stats_ms(f).mean_ms
}

/// Geometric mean of a slice of positive values (0 when empty).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The matrices of Tables VII and VIII (SpMV-based algorithm comparison).
pub fn table7_matrices() -> Vec<&'static str> {
    vec![
        "delaunay_n14",
        "se",
        "debr",
        "ash292",
        "netz4504_dual",
        "minnesota",
        "jagmesh6",
        "uk",
        "whitaker3_dual",
        "rajat07",
        "3dtube",
        "Erdos02",
        "mycielskian9",
        "EX3",
        "net25",
        "mycielskian10",
    ]
}

/// The matrices of Table IX (Triangle Counting comparison).
pub fn table9_matrices() -> Vec<&'static str> {
    vec![
        "delaunay_n14",
        "se",
        "debr",
        "sstmodel",
        "jagmesh2",
        "lock2232",
        "ramage02",
        "s4dkt3m2",
        "opt1",
        "trdheim",
        "3dtube",
        "mycielskian12",
        "Erdos02",
        "mycielskian9",
        "mycielskian13",
        "vsp_c-60_data_cti_cs4",
    ]
}

/// The matrices of Figure 3 (tile-size trend study).
pub fn fig3_matrices() -> Vec<&'static str> {
    vec!["G47", "sphere3", "cage", "will199", "email-Eu-core"]
}

/// Load a named corpus matrix, panicking with a clear message when absent.
pub fn load(name: &str) -> Csr {
    bitgblas_datagen::corpus::named_matrix(name)
        .unwrap_or_else(|| panic!("matrix {name} is not in the synthetic corpus"))
}

/// Pretty-print a speedup ("3.1x", "0.8x").
pub fn fmt_speedup(base_ms: f64, ours_ms: f64) -> String {
    if ours_ms <= 0.0 {
        return "inf".to_string();
    }
    format!("{:.1}x", base_ms / ours_ms)
}

/// Parse `--device pascal|volta` style arguments; defaults to Pascal.
pub fn device_from_args() -> bitgblas_perfmodel::DeviceProfile {
    let args: Vec<String> = std::env::args().collect();
    let mut device = "pascal".to_string();
    for i in 0..args.len() {
        if args[i] == "--device" && i + 1 < args.len() {
            device = args[i + 1].clone();
        }
    }
    bitgblas_perfmodel::device::profile_by_name(&device)
        .unwrap_or_else(|| panic!("unknown device '{device}', expected 'pascal' or 'volta'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn timing_returns_positive_average() {
        let ms = time_avg_ms(|| (0..1000u64).sum::<u64>());
        assert!(ms >= 0.0);
    }

    #[test]
    fn timing_stats_are_internally_consistent() {
        let stats = time_stats_ms(|| (0..10_000u64).sum::<u64>());
        assert!(stats.min_ms >= 0.0);
        assert!(stats.min_ms <= stats.median_ms, "{stats:?}");
        assert!(stats.min_ms <= stats.mean_ms, "{stats:?}");
        // The median of 5 sorted samples can never exceed the maximum, and
        // the mean sits between min and max.
        assert!(stats.mean_ms > 0.0 || stats.min_ms == 0.0);
    }

    #[test]
    fn table_matrix_lists_resolve_in_the_corpus() {
        for name in table7_matrices()
            .into_iter()
            .chain(table9_matrices())
            .chain(fig3_matrices())
        {
            let m = load(name);
            assert!(m.nnz() > 0, "{name}");
        }
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(10.0, 2.0), "5.0x");
        assert_eq!(fmt_speedup(1.0, 0.0), "inf");
    }
}
