//! §III-B — bit-packing (CSR → B2SR) conversion overhead.
//!
//! The paper reports 3–34 ms for the conversion routine and argues the
//! one-time cost is amortized over repeated use of the graph; this harness
//! measures the conversion time of every Table VII matrix for all four tile
//! sizes and compares it with the cost of a single BMV, giving the number of
//! SpMV iterations needed to amortize the conversion.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin conversion_overhead`

use bitgblas_bench::{load, table7_matrices, time_avg_ms};
use bitgblas_core::b2sr::convert::from_csr_timed;
use bitgblas_core::kernels::bmv_bin_full_full;
use bitgblas_core::{Semiring, TileSize};
use bitgblas_sparse::{ops, DenseVec};

fn main() {
    println!("§III-B: CSR -> B2SR conversion overhead (ms) and amortization");
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9} {:>9} {:>16}",
        "matrix", "nnz", "4x4", "8x8", "16x16", "32x32", "amortize (iters)"
    );

    for name in table7_matrices() {
        let csr = load(name);
        let x: Vec<f32> = (0..csr.ncols()).map(|i| (i % 3) as f32).collect();
        let x_dense = DenseVec::from_vec(x.clone());

        let mut times = Vec::new();
        for ts in TileSize::ALL {
            let t = match ts {
                TileSize::S4 => from_csr_timed::<u8>(&csr, 4).1,
                TileSize::S8 => from_csr_timed::<u8>(&csr, 8).1,
                TileSize::S16 => from_csr_timed::<u16>(&csr, 16).1,
                TileSize::S32 => from_csr_timed::<u32>(&csr, 32).1,
            };
            times.push(t * 1e3);
        }

        // Amortization: how many SpMV iterations does the B2SR-8 conversion
        // pay for, given the per-iteration saving over the float baseline?
        let b8 = from_csr_timed::<u8>(&csr, 8).0;
        let base_ms = time_avg_ms(|| ops::spmv_parallel(&csr, &x_dense).unwrap());
        let ours_ms = time_avg_ms(|| bmv_bin_full_full(&b8, &x, Semiring::Arithmetic));
        let amortize = if base_ms > ours_ms {
            format!("{:.0}", times[1] / (base_ms - ours_ms))
        } else {
            "n/a (no gain)".to_string()
        };

        println!(
            "{:<16} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>16}",
            name,
            csr.nnz(),
            times[0],
            times[1],
            times[2],
            times[3],
            amortize
        );
    }

    println!(
        "\nPaper: the conversion routine costs 3-34 ms and is amortized by repeated kernel use."
    );
}
