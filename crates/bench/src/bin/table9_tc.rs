//! Table IX — Triangle Counting (the SpGEMM/BMM-based algorithm):
//! Bit-GraphBLAS vs the float-CSR baseline, per matrix.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin table9_tc -- --device pascal`

use std::time::Instant;

use bitgblas_algorithms::triangle_count;
use bitgblas_bench::{device_from_args, fmt_speedup, load, table9_matrices};
use bitgblas_core::grb::Matrix;
use bitgblas_core::{Backend, TileSize};

fn ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let device = device_from_args();
    println!(
        "Table IX: Triangle Counting runtimes (ms, CPU substrate; device profile {} selected for\n\
         reporting parity — wall-clock columns are device-independent)\n",
        device.name
    );
    println!(
        "{:<24} {:>10} {:>12} {:>14} {:>14} {:>9}",
        "matrix", "vertices", "triangles", "baseline (ms)", "B2SR-32 (ms)", "speedup"
    );

    for name in table9_matrices() {
        // TC operates on the undirected simple graph.
        let csr = load(name).symmetrized().without_diagonal();
        let baseline = Matrix::from_csr(&csr, Backend::FloatCsr);
        let ours = Matrix::from_csr(&csr, Backend::Bit(TileSize::S32));

        let (tri_base, t_base) = ms(|| triangle_count(&baseline));
        let (tri_ours, t_ours) = ms(|| triangle_count(&ours));
        assert_eq!(tri_base, tri_ours, "{name}: backends disagree");

        println!(
            "{:<24} {:>10} {:>12} {:>14.2} {:>14.2} {:>9}",
            name,
            csr.nrows(),
            tri_ours,
            t_base,
            t_ours,
            fmt_speedup(t_base, t_ours)
        );
    }

    println!(
        "\nPaper: TC accelerates 2-52x on Pascal and 1-27x on Volta, with the largest gains on\n\
         diagonal/mesh matrices (3dtube, trdheim) and the smallest on the mycielskian family."
    );
}
