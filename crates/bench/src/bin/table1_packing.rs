//! Table I — binarized packing format: per-tile storage of full-precision
//! CSR vs the bit-packed tile, and the resulting space saving.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin table1_packing`

use bitgblas_core::b2sr::stats::packing_table;

fn main() {
    println!("Table I: binarized packing format");
    println!(
        "{:<12} {:<26} {:<26} {:>18}",
        "Tile Size", "CSR storage (at most)", "Binarized packing", "Space saving/tile"
    );
    for row in packing_table() {
        let dim = row.tile_size.dim();
        let packed_desc = match row.tile_size.dim() {
            4 | 8 => format!("{dim} x 1 unsigned char"),
            16 => format!("{dim} x 1 unsigned short"),
            _ => format!("{dim} x 1 unsigned int"),
        };
        println!(
            "{:<12} {:<26} {:<26} {:>17.0}x",
            format!("{dim}x{dim}"),
            format!("{dim}x{dim} float ({} B)", row.csr_bytes_per_tile),
            format!("{packed_desc} ({} B)", row.packed_bytes_per_tile),
            row.saving_factor
        );
    }
    println!("\nPaper reports: 16x for 4x4 tiles and 32x for 8x8, 16x16 and 32x32 tiles.");
}
