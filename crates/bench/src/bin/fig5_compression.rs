//! Figure 5 — compression of the evaluation corpus: (a) histogram of the
//! B2SR/CSR compression ratio per tile size, (b) number of matrices whose
//! optimal (smallest) representation is each tile size, and how many are
//! compressed (< 100 %) at all.
//!
//! The paper runs this over the 521 SuiteSparse binary matrices; here the
//! synthetic sweep of `bitgblas-datagen` plays that role (120 matrices across
//! the six pattern categories), plus every named stand-in.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin fig5_compression`

use bitgblas_core::b2sr::stats::{compressing_tile_sizes, optimal_tile_size, stats_for};
use bitgblas_core::TileSize;
use bitgblas_datagen::corpus;
use bitgblas_sparse::Csr;

fn main() {
    // Corpus: the parameterised sweep plus the named stand-ins.
    let mut matrices: Vec<(String, Csr)> = corpus::corpus_sweep(120, 0x521)
        .into_iter()
        .map(|e| (e.name, e.matrix))
        .collect();
    for name in corpus::named_matrix_list() {
        matrices.push((name.to_string(), corpus::named_matrix(name).unwrap()));
    }
    println!("corpus: {} matrices\n", matrices.len());

    // Figure 5a: histogram of compression ratios per tile size (10 % buckets).
    println!(
        "Figure 5a: compression-ratio histogram (# matrices per 10% bucket, ratio = B2SR/CSR)"
    );
    println!(
        "{:>10} {:>7} {:>7} {:>7} {:>7}",
        "bucket", "4x4", "8x8", "16x16", "32x32"
    );
    let mut hist = [[0usize; 4]; 11]; // 0-10%, ..., 90-100%, >100%
    for (_, csr) in &matrices {
        for (k, ts) in TileSize::ALL.iter().enumerate() {
            let ratio = stats_for(csr, *ts).compression_ratio;
            let bucket = if ratio >= 1.0 {
                10
            } else {
                (ratio * 10.0) as usize
            };
            hist[bucket][k] += 1;
        }
    }
    for (b, row) in hist.iter().enumerate() {
        let label = if b == 10 {
            ">100%".to_string()
        } else {
            format!("{}-{}%", b * 10, b * 10 + 10)
        };
        println!(
            "{:>10} {:>7} {:>7} {:>7} {:>7}",
            label, row[0], row[1], row[2], row[3]
        );
    }

    // Figure 5b: optimal and compressed counts per tile size.
    let mut optimal = [0usize; 4];
    let mut compressed = [0usize; 4];
    for (_, csr) in &matrices {
        let best = optimal_tile_size(csr);
        optimal[TileSize::ALL.iter().position(|&t| t == best).unwrap()] += 1;
        for ts in compressing_tile_sizes(csr) {
            compressed[TileSize::ALL.iter().position(|&t| t == ts).unwrap()] += 1;
        }
    }
    println!("\nFigure 5b: per-tile-size counts over the corpus");
    println!("{:<12} {:>9} {:>12}", "tile size", "optimal", "compressed");
    for (k, ts) in TileSize::ALL.iter().enumerate() {
        println!(
            "{:<12} {:>9} {:>12}",
            ts.to_string(),
            optimal[k],
            compressed[k]
        );
    }
    println!(
        "\nPaper (521 matrices): optimal = 162 / 291 / 26 / 12 and compressed = 491 / 421 / 329 / 263\n\
         for B2SR-4/8/16/32 — small tiles are optimal for most matrices and almost all matrices\n\
         compress under B2SR-4; the synthetic corpus should show the same ordering."
    );
}
