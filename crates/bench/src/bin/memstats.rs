//! §VI-C — memory-system statistics: modelled global-memory load
//! transactions and L1 hit rates of the float CSR SpMV vs the B2SR BMV, per
//! matrix and device.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin memstats -- --device pascal`

use bitgblas_bench::{device_from_args, load, table7_matrices};
use bitgblas_perfmodel::traffic::compare_traffic;
use bitgblas_perfmodel::B2srLayout;

fn main() {
    let device = device_from_args();
    println!(
        "§VI-C memory statistics on the {} profile ({} GB/s, {} KiB L1/SM)\n",
        device.name, device.mem_bandwidth_gbps, device.l1_per_sm_kb
    );
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "matrix", "nnz", "CSR loads", "B2SR loads", "reduction", "CSR L1%", "B2SR L1%"
    );

    let mut names = vec!["mycielskian8"];
    names.extend(table7_matrices());
    for name in names {
        let csr = load(name);
        let layout = B2srLayout::from_csr(&csr, 8);
        let cmp = compare_traffic(&csr, &layout, &device);
        println!(
            "{:<16} {:>10} {:>14} {:>14} {:>9.1}x {:>9.1}% {:>9.1}%",
            name,
            csr.nnz(),
            cmp.csr.load_transactions,
            cmp.b2sr.load_transactions,
            cmp.transaction_reduction,
            cmp.csr.l1_hit_rate * 100.0,
            cmp.b2sr.l1_hit_rate * 100.0
        );
    }

    println!(
        "\nPaper (§VI-C, mycielskian8): global load transactions fall 4x (6630 -> 1826) and the L1\n\
         hit rate rises from 65.6% to 81.8%; the model should show a comparable transaction\n\
         reduction on the block-dense matrices."
    );
}
