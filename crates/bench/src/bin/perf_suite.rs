//! `perf_suite` — the machine-readable performance harness.
//!
//! Times the BMV kernel in all three traversal directions, the five graph
//! algorithms, the fused vs node-at-a-time execution of the PageRank/SSSP
//! expression pipelines (PR 3), the **batched multi-source traversal
//! engine** against k sequential single-source runs (PR 4), and — since
//! PR 5 — the **sharded parallel push engine** under explicit thread
//! budgets, on a fixed synthetic corpus.  Results are written as JSON rows
//! `{bench, backend, direction, threads, ms, ms_min, ms_median}` so every
//! future PR has a perf trajectory to compare against (`BENCH_PR5.json`
//! for this PR).  Execution mode is encoded in the bench name
//! (`pagerank_fused/…` vs `pagerank_unfused/…`; `bfs_multi_batched/…` vs
//! `bfs_multi_seq/…`, both k = 8 sources); the `bfs_push_sharded/…` /
//! `sssp_push_sharded/…` families carry the push thread budget in the
//! `threads` field (1 = the serial-push baseline, all other rows report 0
//! = host default).
//!
//! Usage:
//!
//! ```text
//! perf_suite [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` — one tiny graph end-to-end, for CI: proves the harness runs
//!   and emits parseable JSON (including the fused, batched and
//!   sharded-push rows CI asserts on) in a couple of seconds.
//! * `--out PATH` — output path (default `BENCH_PR5.json`).
//!
//! The headline comparisons — BFS `Direction::Auto` vs always-pull, fused
//! vs unfused PageRank, batched vs sequential multi-source BFS/SSSP, and
//! the sharded-push thread-scaling curve — are printed to stdout after the
//! JSON is written.

use bitgblas_bench::{time_stats_ms, TimingStats};
use bitgblas_core::grb::{Context, Direction, Fusion, Op, Vector};
use bitgblas_core::{Backend, Matrix, Semiring, TileSize};
use bitgblas_datagen::generators;
use bitgblas_sparse::Csr;

use bitgblas_algorithms::{
    betweenness_centrality, bfs_dir, bfs_multi, connected_components, pagerank, sssp_dir,
    sssp_multi, sssp_with, triangle_count, PageRankConfig,
};

/// One emitted JSON row.
struct Row {
    bench: String,
    backend: &'static str,
    direction: String,
    stats: TimingStats,
    /// Push-engine thread budget of the run (PR 5 thread-scaling rows);
    /// `0` = the host-default budget of an unconfigured context.
    threads: usize,
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Bit(TileSize::S4) => "Bit4",
        Backend::Bit(TileSize::S8) => "Bit8",
        Backend::Bit(TileSize::S16) => "Bit16",
        Backend::Bit(TileSize::S32) => "Bit32",
        Backend::FloatCsr => "FloatCsr",
        Backend::Auto => "Auto",
    }
}

/// Serialize the rows as a JSON array (no external JSON crate in this
/// offline workspace; every field is a controlled identifier or a number).
fn to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"backend\": \"{}\", \"direction\": \"{}\", \
             \"threads\": {}, \"ms\": {:.6}, \"ms_min\": {:.6}, \"ms_median\": {:.6}}}{}\n",
            r.bench,
            r.backend,
            r.direction,
            r.threads,
            r.stats.mean_ms,
            r.stats.min_ms,
            r.stats.median_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Time one raw `vxm` (a single BFS-style hop) in the given direction, with
/// a ~1% frontier.
fn bench_bmv(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    let n = m.nrows();
    let frontier: Vec<usize> = (0..n).step_by(100).collect();
    let x = Vector::indicator(n, &frontier);
    for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
        let stats = time_stats_ms(|| {
            Op::vxm(&x, m)
                .semiring(Semiring::Boolean)
                .direction(dir)
                .run(m.context())
        });
        rows.push(Row {
            bench: format!("bmv/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
        });
    }
}

/// Time the traversal algorithms (BFS and SSSP per direction, PR/CC/TC on
/// their fixed execution shape).
fn bench_algorithms(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
        let stats = time_stats_ms(|| bfs_dir(m, 0, dir));
        rows.push(Row {
            bench: format!("bfs/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
        });
        let stats = time_stats_ms(|| sssp_dir(m, 0, dir));
        rows.push(Row {
            bench: format!("sssp/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
        });
    }
    let stats = time_stats_ms(|| pagerank(m, &PageRankConfig::default()));
    rows.push(Row {
        bench: format!("pagerank/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });
    let stats = time_stats_ms(|| connected_components(m));
    rows.push(Row {
        bench: format!("cc/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });
    let stats = time_stats_ms(|| triangle_count(m));
    rows.push(Row {
        bench: format!("tc/{name}"),
        backend: backend_name(backend),
        direction: "none".to_string(),
        stats,
        threads: 0,
    });
}

/// Time the fused vs node-at-a-time execution of the PR-3 expression
/// pipelines: the whole PageRank run (fixed iteration count so both modes
/// do identical work) and the SSSP relaxation loop.
fn bench_fusion(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    for (mode, fusion) in [("fused", Fusion::Fused), ("unfused", Fusion::NodeAtATime)] {
        let config = PageRankConfig {
            max_iterations: 10,
            tolerance: 0.0,
            fusion,
            ..Default::default()
        };
        let stats = time_stats_ms(|| pagerank(m, &config));
        rows.push(Row {
            bench: format!("pagerank_{mode}/{name}"),
            backend: backend_name(backend),
            direction: "pull".to_string(),
            stats,
            threads: 0,
        });
        let stats = time_stats_ms(|| sssp_with(m, 0, Direction::Auto, fusion));
        rows.push(Row {
            bench: format!("sssp_{mode}/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
        });
    }
}

/// Number of simultaneous sources in the batched multi-source rows.
const BATCH_K: usize = 8;

/// Time the batched multi-source engine against k sequential single-source
/// runs (PR 4): `bfs_multi`/`sssp_multi` with `BATCH_K` spread-out sources
/// vs the same sources one `bfs_dir`/`sssp_dir` at a time, plus one batched
/// betweenness-centrality row.
fn bench_multi(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    let n = m.nrows();
    let sources: Vec<usize> = (0..BATCH_K).map(|i| i * n / BATCH_K).collect();

    let stats = time_stats_ms(|| bfs_multi(m, &sources));
    rows.push(Row {
        bench: format!("bfs_multi_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });
    let stats = time_stats_ms(|| {
        for &s in &sources {
            std::hint::black_box(bfs_dir(m, s, Direction::Auto));
        }
    });
    rows.push(Row {
        bench: format!("bfs_multi_seq/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });

    let stats = time_stats_ms(|| sssp_multi(m, &sources));
    rows.push(Row {
        bench: format!("sssp_multi_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });
    let stats = time_stats_ms(|| {
        for &s in &sources {
            std::hint::black_box(sssp_dir(m, s, Direction::Auto));
        }
    });
    rows.push(Row {
        bench: format!("sssp_multi_seq/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });

    let stats = time_stats_ms(|| betweenness_centrality(m, &sources));
    rows.push(Row {
        bench: format!("bc_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
    });
}

/// Thread budgets of the PR-5 sharded-push scaling rows.
const SHARD_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Time forced-push BFS and SSSP under explicit push-engine thread budgets
/// (PR 5): `threads == 1` builds a single-shard plan — the serial-push
/// baseline — while larger budgets build sharded plans and fan the scatter
/// out, so the row family is the thread-scaling curve of the sharded
/// engine.  Outputs are bit-identical across the whole family (the
/// determinism guarantee); only the wall-clock may differ.
fn bench_sharded_push(rows: &mut Vec<Row>, name: &str, adj: &Csr, backend: Backend) {
    for &threads in &SHARD_THREADS {
        let ctx = Context::with_threads(threads);
        let m = Matrix::from_csr_ctx(adj, backend, &ctx);
        let stats = time_stats_ms(|| bfs_dir(&m, 0, Direction::Push));
        rows.push(Row {
            bench: format!("bfs_push_sharded/{name}"),
            backend: backend_name(backend),
            direction: "push".to_string(),
            stats,
            threads,
        });
        let stats = time_stats_ms(|| sssp_dir(&m, 0, Direction::Push));
        rows.push(Row {
            bench: format!("sssp_push_sharded/{name}"),
            backend: backend_name(backend),
            direction: "push".to_string(),
            stats,
            threads,
        });
    }
}

/// The fixed corpus: a low-eccentricity RMAT-like power-law graph (the
/// acceptance graph — dense hump, sparse fringe), a banded road-like graph
/// and a 2-D grid.
fn corpus(smoke: bool) -> Vec<(&'static str, Csr)> {
    if smoke {
        return vec![("smoke_rmat_s8", generators::rmat(8, 8, 0.57, 0.19, 0.19, 5))];
    }
    vec![
        (
            "rmat_s14",
            generators::rmat(14, 16, 0.57, 0.19, 0.19, 5).symmetrized(),
        ),
        ("banded_4096", generators::banded(4096, 4, 0.7, 11)),
        ("grid_64x64", generators::grid2d(64, 64)),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let mut rows = Vec::new();
    let graphs = corpus(smoke);
    for (name, adj) in &graphs {
        println!(
            "benchmarking {name}: {} vertices, {} edges",
            adj.nrows(),
            adj.nnz()
        );
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(adj, backend);
            bench_bmv(&mut rows, name, &m, backend);
            bench_algorithms(&mut rows, name, &m, backend);
            bench_fusion(&mut rows, name, &m, backend);
            bench_multi(&mut rows, name, &m, backend);
            bench_sharded_push(&mut rows, name, adj, backend);
        }
    }

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {} rows to {out_path}", rows.len());

    // Headline summaries: BFS Auto vs the old always-pull path, and the
    // PR-3 fused vs node-at-a-time expression pipelines.
    for (name, _) in &graphs {
        for backend in ["Bit8", "FloatCsr"] {
            let find = |bench: &str, dir: &str| {
                rows.iter()
                    .find(|r| {
                        r.bench == format!("{bench}/{name}")
                            && r.backend == backend
                            && r.direction == dir
                    })
                    .map(|r| r.stats.mean_ms)
            };
            if let (Some(pull), Some(auto)) = (find("bfs", "pull"), find("bfs", "auto")) {
                println!(
                    "bfs/{name} [{backend}]: pull {pull:.3} ms, auto {auto:.3} ms  ({:.2}x)",
                    pull / auto
                );
            }
            for alg in ["pagerank", "sssp"] {
                let dir = if alg == "pagerank" { "pull" } else { "auto" };
                if let (Some(unfused), Some(fused)) = (
                    find(&format!("{alg}_unfused"), dir),
                    find(&format!("{alg}_fused"), dir),
                ) {
                    println!(
                        "{alg}/{name} [{backend}]: unfused {unfused:.3} ms, fused {fused:.3} ms  \
                         ({:.2}x)",
                        unfused / fused
                    );
                }
            }
            for alg in ["bfs_multi", "sssp_multi"] {
                if let (Some(seq), Some(batched)) = (
                    find(&format!("{alg}_seq"), "auto"),
                    find(&format!("{alg}_batched"), "auto"),
                ) {
                    println!(
                        "{alg}/{name} [{backend}]: {BATCH_K} sequential {seq:.3} ms, \
                         batched {batched:.3} ms  ({:.2}x)",
                        seq / batched
                    );
                }
            }
            // PR-5 thread-scaling curve: serial-push baseline vs sharded.
            for alg in ["bfs_push_sharded", "sssp_push_sharded"] {
                let at = |t: usize| {
                    rows.iter()
                        .find(|r| {
                            r.bench == format!("{alg}/{name}")
                                && r.backend == backend
                                && r.threads == t
                        })
                        .map(|r| r.stats.mean_ms)
                };
                if let (Some(t1), Some(t4)) = (at(1), at(4)) {
                    let curve: Vec<String> = SHARD_THREADS
                        .iter()
                        .filter_map(|&t| at(t).map(|ms| format!("{t}t {ms:.3} ms")))
                        .collect();
                    println!(
                        "{alg}/{name} [{backend}]: {}  (serial/4t: {:.2}x)",
                        curve.join(", "),
                        t1 / t4
                    );
                }
            }
        }
    }
}
