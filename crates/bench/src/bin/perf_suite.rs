//! `perf_suite` — the machine-readable performance harness.
//!
//! Times the BMV kernel in all three traversal directions, the five graph
//! algorithms, the fused vs node-at-a-time execution of the PageRank/SSSP
//! expression pipelines (PR 3), the **batched multi-source traversal
//! engine** against k sequential single-source runs (PR 4), the **sharded
//! parallel push engine** under explicit thread budgets (PR 5), and —
//! since PR 6 — batched **personalized PageRank** (`ppr_multi`) and the
//! **serving layer** (`bitgblas-serve`) under an open-loop Poisson arrival
//! process, and — since PR 7 — the serving layer's **fault containment**
//! (`serve_faults/…`: seeded lane panics, transient batch failures and
//! injected latency against the bisection/retry/breaker machinery) and
//! **overload backpressure** (`serve_overload/…`: saturating loads against
//! a deliberately small bounded queue), and — since PR 8 — the
//! **streaming-mutation subsystem** (`mutate_throughput/…`: raw delta-log
//! appends/s vs depth plus the overlay-vs-compacted read cost;
//! `query_under_mutation/…`: a mixed read/write open-loop stream through
//! the service's writer path with in-band compaction), and — since PR 9 —
//! the **scalar-vs-SWAR kernel comparison** (`bfs_pull_simd/…` and
//! `ppr_simd/…`: the same forced-pull traversal with the vector kernels
//! pinned off and on via [`SimdPolicy`], paired rows distinguished by a
//! `simd: 0/1` extra field), on a fixed synthetic corpus.  Results are
//! written as JSON rows
//! `{bench, backend, direction, threads, host_cores, ms, ms_min,
//! ms_median}` so every future PR has a perf trajectory to compare against
//! (`BENCH_PR9.json` for this PR).  Execution mode is encoded in the bench
//! name (`pagerank_fused/…` vs `pagerank_unfused/…`; `bfs_multi_batched/…`
//! vs `bfs_multi_seq/…` and `ppr_multi_batched/…` vs `ppr_multi_seq/…`,
//! all k = 8 sources); the `bfs_push_sharded/…` / `sssp_push_sharded/…`
//! families carry the push thread budget in the `threads` field (1 = the
//! serial-push baseline, all other rows report 0 = host default).
//!
//! The `serve_openloop/…` family drives a [`GraphService`] with a
//! **seeded** Poisson arrival stream (exponential inter-arrival times from
//! the workspace `rand`, no wall clock anywhere in the arrival model) at
//! three offered loads on a virtual microsecond clock; each row's timing
//! stats are the per-batch execution times and its extra fields report
//! offered vs achieved throughput, batch occupancy (the lanes the
//! coalescing window actually filled) and queue-wait p50/p99.
//!
//! Usage:
//!
//! ```text
//! perf_suite [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` — one tiny graph end-to-end, for CI: proves the harness runs
//!   and emits parseable JSON (including the fused, batched and
//!   sharded-push rows CI asserts on) in a couple of seconds.
//! * `--out PATH` — output path (default `BENCH_PR9.json`).
//!
//! The headline comparisons — BFS `Direction::Auto` vs always-pull, fused
//! vs unfused PageRank, batched vs sequential multi-source BFS/SSSP, and
//! the sharded-push thread-scaling curve — are printed to stdout after the
//! JSON is written.

use std::sync::Arc;
use std::time::Instant;

use bitgblas_bench::{time_stats_ms, TimingStats};
use bitgblas_core::grb::{Context, Direction, Fusion, Op, Vector};
use bitgblas_core::shard::machine_parallelism;
use bitgblas_core::{
    Backend, EdgeDelta, FailSpec, FaultAction, FaultInjector, FaultPlan, InjectedPanic, Matrix,
    Semiring, SimdPolicy, TileSize,
};
use bitgblas_datagen::generators;
use bitgblas_serve::{GraphService, Query, Tick};
use bitgblas_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bitgblas_algorithms::{
    betweenness_centrality, bfs_dir, bfs_multi, connected_components, pagerank, ppr, ppr_multi,
    ppr_multi_dir, sssp_dir, sssp_multi, sssp_with, triangle_count, PageRankConfig, PprConfig,
};

/// One emitted JSON row.
struct Row {
    bench: String,
    backend: &'static str,
    direction: String,
    stats: TimingStats,
    /// Push-engine thread budget of the run (PR 5 thread-scaling rows);
    /// `0` = the host-default budget of an unconfigured context.
    threads: usize,
    /// Extra numeric fields appended to the JSON row (the PR-6 serving
    /// rows report throughput/occupancy/latency metrics this way).
    extras: Vec<(&'static str, f64)>,
}

fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Bit(TileSize::S4) => "Bit4",
        Backend::Bit(TileSize::S8) => "Bit8",
        Backend::Bit(TileSize::S16) => "Bit16",
        Backend::Bit(TileSize::S32) => "Bit32",
        Backend::FloatCsr => "FloatCsr",
        Backend::Auto => "Auto",
    }
}

/// Serialize the rows as a JSON array (no external JSON crate in this
/// offline workspace; every field is a controlled identifier or a number).
/// Every row carries the host's cached [`machine_parallelism`] so runs on
/// different machines stay comparable in one trajectory file.
fn to_json(rows: &[Row]) -> String {
    let host_cores = machine_parallelism();
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"backend\": \"{}\", \"direction\": \"{}\", \
             \"threads\": {}, \"host_cores\": {}, \"ms\": {:.6}, \"ms_min\": {:.6}, \
             \"ms_median\": {:.6}",
            r.bench,
            r.backend,
            r.direction,
            r.threads,
            host_cores,
            r.stats.mean_ms,
            r.stats.min_ms,
            r.stats.median_ms,
        ));
        for (key, value) in &r.extras {
            out.push_str(&format!(", \"{key}\": {value:.6}"));
        }
        out.push_str(&format!(
            "}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Time one raw `vxm` (a single BFS-style hop) in the given direction, with
/// a ~1% frontier.
fn bench_bmv(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    let n = m.nrows();
    let frontier: Vec<usize> = (0..n).step_by(100).collect();
    let x = Vector::indicator(n, &frontier);
    for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
        let stats = time_stats_ms(|| {
            Op::vxm(&x, m)
                .semiring(Semiring::Boolean)
                .direction(dir)
                .run(m.context())
        });
        rows.push(Row {
            bench: format!("bmv/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
            extras: Vec::new(),
        });
    }
}

/// Time the traversal algorithms (BFS and SSSP per direction, PR/CC/TC on
/// their fixed execution shape).
fn bench_algorithms(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
        let stats = time_stats_ms(|| bfs_dir(m, 0, dir));
        rows.push(Row {
            bench: format!("bfs/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
            extras: Vec::new(),
        });
        let stats = time_stats_ms(|| sssp_dir(m, 0, dir));
        rows.push(Row {
            bench: format!("sssp/{name}"),
            backend: backend_name(backend),
            direction: dir.to_string(),
            stats,
            threads: 0,
            extras: Vec::new(),
        });
    }
    let stats = time_stats_ms(|| pagerank(m, &PageRankConfig::default()));
    rows.push(Row {
        bench: format!("pagerank/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
    let stats = time_stats_ms(|| connected_components(m));
    rows.push(Row {
        bench: format!("cc/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
    let stats = time_stats_ms(|| triangle_count(m));
    rows.push(Row {
        bench: format!("tc/{name}"),
        backend: backend_name(backend),
        direction: "none".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
}

/// Time the fused vs node-at-a-time execution of the PR-3 expression
/// pipelines: the whole PageRank run (fixed iteration count so both modes
/// do identical work) and the SSSP relaxation loop.
fn bench_fusion(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    for (mode, fusion) in [("fused", Fusion::Fused), ("unfused", Fusion::NodeAtATime)] {
        let config = PageRankConfig {
            max_iterations: 10,
            tolerance: 0.0,
            fusion,
            ..Default::default()
        };
        let stats = time_stats_ms(|| pagerank(m, &config));
        rows.push(Row {
            bench: format!("pagerank_{mode}/{name}"),
            backend: backend_name(backend),
            direction: "pull".to_string(),
            stats,
            threads: 0,
            extras: Vec::new(),
        });
        let stats = time_stats_ms(|| sssp_with(m, 0, Direction::Auto, fusion));
        rows.push(Row {
            bench: format!("sssp_{mode}/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
            extras: Vec::new(),
        });
    }
}

/// Number of simultaneous sources in the batched multi-source rows.
const BATCH_K: usize = 8;

/// Time the batched multi-source engine against k sequential single-source
/// runs (PR 4): `bfs_multi`/`sssp_multi` with `BATCH_K` spread-out sources
/// vs the same sources one `bfs_dir`/`sssp_dir` at a time, plus one batched
/// betweenness-centrality row.
fn bench_multi(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    let n = m.nrows();
    let sources: Vec<usize> = (0..BATCH_K).map(|i| i * n / BATCH_K).collect();

    let stats = time_stats_ms(|| bfs_multi(m, &sources));
    rows.push(Row {
        bench: format!("bfs_multi_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
    let stats = time_stats_ms(|| {
        for &s in &sources {
            std::hint::black_box(bfs_dir(m, s, Direction::Auto));
        }
    });
    rows.push(Row {
        bench: format!("bfs_multi_seq/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });

    let stats = time_stats_ms(|| sssp_multi(m, &sources));
    rows.push(Row {
        bench: format!("sssp_multi_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
    let stats = time_stats_ms(|| {
        for &s in &sources {
            std::hint::black_box(sssp_dir(m, s, Direction::Auto));
        }
    });
    rows.push(Row {
        bench: format!("sssp_multi_seq/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });

    let stats = time_stats_ms(|| betweenness_centrality(m, &sources));
    rows.push(Row {
        bench: format!("bc_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
}

/// Time batched personalized PageRank against k sequential single-seed
/// runs (PR 6): `ppr_multi` with `BATCH_K` spread-out seeds vs the same
/// seeds one `ppr` at a time.  Fixed iteration count, so both modes do
/// identical numeric work and the gap is pure batching.
fn bench_ppr_multi(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    let n = m.nrows();
    let seeds: Vec<usize> = (0..BATCH_K).map(|i| i * n / BATCH_K).collect();
    let config = PprConfig::default();

    let stats = time_stats_ms(|| ppr_multi(m, &seeds, &config));
    rows.push(Row {
        bench: format!("ppr_multi_batched/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
    let stats = time_stats_ms(|| {
        for &s in &seeds {
            std::hint::black_box(ppr(m, s, &config));
        }
    });
    rows.push(Row {
        bench: format!("ppr_multi_seq/{name}"),
        backend: backend_name(backend),
        direction: "auto".to_string(),
        stats,
        threads: 0,
        extras: Vec::new(),
    });
}

/// Offered loads (queries/second on the virtual clock) of the open-loop
/// serving rows — spanning easy, busy and saturating for the corpus sizes.
const SERVE_LOADS_QPS: [f64; 3] = [500.0, 2_000.0, 8_000.0];

/// Queries per open-loop serving run (smaller in smoke mode).
fn serve_arrivals(smoke: bool) -> usize {
    if smoke {
        60
    } else {
        400
    }
}

/// Drive a [`GraphService`] with an open-loop Poisson arrival stream at
/// each offered load (PR 6).
///
/// The arrival process lives entirely on a **virtual microsecond clock**:
/// inter-arrival gaps are exponential draws from a seeded [`StdRng`]
/// (`-ln(1-u)/λ`), so the stream is reproducible and independent of the
/// wall clock.  The only measured quantity is each batch's execution time
/// ([`BatchReport::exec_us`](bitgblas_serve::BatchReport)), which is fed
/// back as the service-time model: a dispatch cannot start before the
/// previous batch finished, so at high offered load the queue builds and
/// the coalescing window fills more lanes per batch — the row's occupancy
/// and wait extras capture exactly that trade-off.
///
/// The query mix is 60% BFS / 30% SSSP / 10% PPR over uniform sources.
fn bench_serve_openloop(
    rows: &mut Vec<Row>,
    name: &str,
    m: &Matrix,
    backend: Backend,
    smoke: bool,
) {
    let n = m.nrows();
    let n_arrivals = serve_arrivals(smoke);
    for offered_qps in SERVE_LOADS_QPS {
        let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
        let mut svc = GraphService::builder(m)
            .coalescing_window(500) // µs a lone query waits for batch-mates
            .queue_capacity(4096)
            .build();

        // Virtual time of the arrival process and of the (single) server.
        let mut arrival_us = 0u64;
        let mut busy_until_us = 0u64;
        let mut exec_samples_ms: Vec<f64> = Vec::new();
        let mut shed = 0u64;

        for _ in 0..n_arrivals {
            let u: f64 = rng.gen();
            let gap_us = (-(1.0 - u).ln() / offered_qps * 1e6).round() as u64;
            arrival_us = arrival_us.saturating_add(gap_us.max(1));
            drain_events(
                &mut svc,
                Some(arrival_us),
                &mut busy_until_us,
                &mut exec_samples_ms,
            );
            let roll: f64 = rng.gen();
            let source = rng.gen_range(0usize..n);
            let query = if roll < 0.6 {
                Query::bfs(source)
            } else if roll < 0.9 {
                Query::sssp(source)
            } else {
                Query::ppr(source)
            };
            if svc.submit(query, Tick(arrival_us), None).is_err() {
                shed += 1;
            }
        }
        drain_events(&mut svc, None, &mut busy_until_us, &mut exec_samples_ms);

        let s = svc.stats().snapshot();
        let end_us = busy_until_us.max(arrival_us).max(1);
        let stats = timing_from_samples(&exec_samples_ms);
        rows.push(Row {
            bench: format!("serve_openloop/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
            extras: vec![
                ("offered_qps", offered_qps),
                ("throughput_qps", s.completed as f64 / (end_us as f64 / 1e6)),
                ("occupancy_mean", s.mean_batch_occupancy()),
                ("occupancy_max", s.max_batch_lanes as f64),
                ("wait_p50_us", s.wait_p50() as f64),
                ("wait_p99_us", s.wait_p99() as f64),
                ("completed", s.completed as f64),
                ("shed", shed as f64),
            ],
        });
    }
}

/// Dispatch every service event due before `horizon` (virtual µs) on the
/// single-server model: a dispatch cannot start before the previous batch
/// finished (`busy_until_us`), and each batch's measured execution time
/// extends the busy period and is collected as a timing sample.
fn drain_events(
    svc: &mut GraphService,
    horizon: Option<u64>,
    busy_until_us: &mut u64,
    exec_samples_ms: &mut Vec<f64>,
) {
    while let Some(te) = svc.next_event_time() {
        let dispatch_at = te.0.max(*busy_until_us);
        if horizon.is_some_and(|h| dispatch_at >= h) {
            break;
        }
        let reports = svc.pump(Tick(dispatch_at));
        if reports.is_empty() {
            // Pumping at a ready time always dispatches; defensive only.
            break;
        }
        for r in &reports {
            *busy_until_us = (*busy_until_us).max(dispatch_at) + r.exec_us;
            exec_samples_ms.push(r.exec_us as f64 / 1000.0);
        }
    }
}

/// Mean/min/median over already-collected per-batch samples (the serving
/// rows time each dispatched batch once instead of re-running a closure).
fn timing_from_samples(samples_ms: &[f64]) -> TimingStats {
    if samples_ms.is_empty() {
        return TimingStats {
            mean_ms: 0.0,
            min_ms: 0.0,
            median_ms: 0.0,
        };
    }
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    TimingStats {
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        min_ms: sorted[0],
        median_ms: sorted[sorted.len() / 2],
    }
}

/// Drive the service through the same open-loop arrival model as
/// [`bench_serve_openloop`] but with a **seeded fault plan** armed (PR 7):
/// a low-rate lane poison (`serve.lane` panics, contained by bisection), a
/// low-rate transient batch failure (`serve.batch`, retried with backoff)
/// and occasional injected latency.  The retry budget and circuit breaker
/// run on the same virtual clock as the arrivals, so every row is a fully
/// deterministic replay.  Extras report the fault economics: retries,
/// contained panics, bisection overhead, breaker trips, typed failures and
/// sheds — and `conserved` asserts the ticket-conservation identity
/// (`enqueued == completed + failed + deadline_misses + shed`) held at
/// quiescence (1.0 = held).
fn bench_serve_faults(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend, smoke: bool) {
    let n = m.nrows();
    let n_arrivals = serve_arrivals(smoke);
    for offered_qps in SERVE_LOADS_QPS {
        let plan = FaultPlan::new()
            .with(FailSpec::always("serve.lane", FaultAction::Panic).with_probability(0.02))
            .with(FailSpec::always("serve.batch", FaultAction::Transient).with_probability(0.05))
            .with(
                FailSpec::always("serve.batch", FaultAction::Latency(200)).with_probability(0.10),
            );
        let injector = Arc::new(FaultInjector::new(0xFA17_5EED, plan));
        let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
        let mut svc = GraphService::builder(m)
            .coalescing_window(500)
            .queue_capacity(4096)
            .fault_injector(injector)
            .breaker(4, 2_000)
            .retry(2, 250)
            .build();

        let mut arrival_us = 0u64;
        let mut busy_until_us = 0u64;
        let mut exec_samples_ms: Vec<f64> = Vec::new();
        let mut rejected = 0u64;

        for _ in 0..n_arrivals {
            let u: f64 = rng.gen();
            let gap_us = (-(1.0 - u).ln() / offered_qps * 1e6).round() as u64;
            arrival_us = arrival_us.saturating_add(gap_us.max(1));
            drain_events(
                &mut svc,
                Some(arrival_us),
                &mut busy_until_us,
                &mut exec_samples_ms,
            );
            let roll: f64 = rng.gen();
            let source = rng.gen_range(0usize..n);
            let query = if roll < 0.6 {
                Query::bfs(source)
            } else if roll < 0.9 {
                Query::sssp(source)
            } else {
                Query::ppr(source)
            };
            if svc.submit(query, Tick(arrival_us), None).is_err() {
                rejected += 1;
            }
        }
        drain_events(&mut svc, None, &mut busy_until_us, &mut exec_samples_ms);
        // Anything a breaker window left behind resolves typed, not dropped.
        for r in svc.flush(Tick(busy_until_us.max(arrival_us))) {
            exec_samples_ms.push(r.exec_us as f64 / 1000.0);
        }

        let s = svc.stats().snapshot();
        let stats = timing_from_samples(&exec_samples_ms);
        rows.push(Row {
            bench: format!("serve_faults/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
            extras: vec![
                ("offered_qps", offered_qps),
                ("completed", s.completed as f64),
                ("failed", s.failed as f64),
                ("retries", s.retries as f64),
                ("panics_contained", s.panics_contained as f64),
                ("bisection_dispatches", s.bisection_dispatches as f64),
                ("breaker_trips", s.breaker_trips as f64),
                ("shed", s.shed as f64),
                ("rejected", rejected as f64),
                ("conserved", if s.is_conserved() { 1.0 } else { 0.0 }),
            ],
        });
    }
}

/// Offered loads of the `serve_overload` rows — deliberately pushed past
/// saturation so the bounded queue has to shed.
const OVERLOAD_LOADS_QPS: [f64; 3] = [2_000.0, 8_000.0, 32_000.0];

/// Queue capacity of the overload rows: small enough that the saturating
/// loads actually overflow it on the virtual clock.
const OVERLOAD_QUEUE_CAP: usize = 32;

/// Batch width of the overload rows: without a cap the 64-lane coalescer
/// absorbs any offered load by widening batches, and the queue never
/// overflows — capping the width gives the family a real saturation point.
const OVERLOAD_MAX_LANES: usize = 4;

/// Drive the service past saturation against a deliberately small bounded
/// queue (PR 7): every arrival carries a deadline, the queue holds
/// [`OVERLOAD_QUEUE_CAP`] queries, and the extras report how overload
/// surfaces — `QueueFull` rejections at the door (`shed_rate`), typed
/// deadline expiries for queries that waited too long, and the completed
/// remainder.  No fault injection: this family isolates pure backpressure.
fn bench_serve_overload(
    rows: &mut Vec<Row>,
    name: &str,
    m: &Matrix,
    backend: Backend,
    smoke: bool,
) {
    let n = m.nrows();
    let n_arrivals = serve_arrivals(smoke);
    for offered_qps in OVERLOAD_LOADS_QPS {
        let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
        let mut svc = GraphService::builder(m)
            .coalescing_window(500)
            .queue_capacity(OVERLOAD_QUEUE_CAP)
            .max_lanes(OVERLOAD_MAX_LANES)
            .build();

        let mut arrival_us = 0u64;
        let mut busy_until_us = 0u64;
        let mut exec_samples_ms: Vec<f64> = Vec::new();

        for _ in 0..n_arrivals {
            let u: f64 = rng.gen();
            let gap_us = (-(1.0 - u).ln() / offered_qps * 1e6).round() as u64;
            arrival_us = arrival_us.saturating_add(gap_us.max(1));
            drain_events(
                &mut svc,
                Some(arrival_us),
                &mut busy_until_us,
                &mut exec_samples_ms,
            );
            let roll: f64 = rng.gen();
            let source = rng.gen_range(0usize..n);
            let query = if roll < 0.6 {
                Query::bfs(source)
            } else if roll < 0.9 {
                Query::sssp(source)
            } else {
                Query::ppr(source)
            };
            // A 20 ms virtual deadline: queries stuck behind the saturated
            // server expire typed instead of aging in the queue forever.
            let deadline = Tick(arrival_us + 20_000);
            let _ = svc.submit(query, Tick(arrival_us), Some(deadline));
        }
        drain_events(&mut svc, None, &mut busy_until_us, &mut exec_samples_ms);

        let s = svc.stats().snapshot();
        let end_us = busy_until_us.max(arrival_us).max(1);
        let stats = timing_from_samples(&exec_samples_ms);
        rows.push(Row {
            bench: format!("serve_overload/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
            extras: vec![
                ("offered_qps", offered_qps),
                ("throughput_qps", s.completed as f64 / (end_us as f64 / 1e6)),
                ("rejected_queue_full", s.rejected_queue_full as f64),
                (
                    "shed_rate",
                    s.rejected_queue_full as f64 / n_arrivals as f64,
                ),
                ("deadline_misses", s.deadline_misses as f64),
                ("completed", s.completed as f64),
                ("wait_p99_us", s.wait_p99() as f64),
                ("conserved", if s.is_conserved() { 1.0 } else { 0.0 }),
            ],
        });
    }
}

/// Delta-log depths of the `mutate_throughput` rows.
const MUTATE_DEPTHS: [usize; 3] = [64, 1_024, 8_192];

/// Smoke-mode delta-log depths (tiny, schema-proving only).
const MUTATE_DEPTHS_SMOKE: [usize; 2] = [16, 128];

/// Writer-batch size of the append loop — the granularity a coalesced
/// Mutate lane group lands at through the service's writer path.
const MUTATE_CHUNK: usize = 16;

/// Time raw delta-log appends at several target depths (PR 8): a fresh
/// matrix takes `depth` seeded random edge deltas (80% inserts, 20%
/// deletes) in [`MUTATE_CHUNK`]-sized batches, each batch timed as one
/// sample.  The extras then report what the staged log costs a reader —
/// one BFS through the merge-on-read overlay vs the same BFS after an
/// explicit `compact` — plus the compaction time itself, so the
/// compaction trigger rule (`compact_after`) has measured numbers on both
/// sides of the trade.
fn bench_mutate_throughput(
    rows: &mut Vec<Row>,
    name: &str,
    adj: &Csr,
    backend: Backend,
    smoke: bool,
) {
    let n = adj.nrows();
    let depths: &[usize] = if smoke {
        &MUTATE_DEPTHS_SMOKE
    } else {
        &MUTATE_DEPTHS
    };
    for &depth in depths {
        let m = Matrix::from_csr(adj, backend);
        let mut rng = StdRng::seed_from_u64(0xDE17A ^ depth as u64);
        let deltas: Vec<EdgeDelta> = (0..depth)
            .map(|_| {
                let (r, c) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if rng.gen_bool(0.8) {
                    EdgeDelta::insert(r, c)
                } else {
                    EdgeDelta::delete(r, c)
                }
            })
            .collect();

        let mut samples_ms: Vec<f64> = Vec::new();
        let append_start = Instant::now();
        for chunk in deltas.chunks(MUTATE_CHUNK) {
            let t = Instant::now();
            m.apply_deltas(chunk).expect("in-bounds deltas");
            samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
        let append_secs = append_start.elapsed().as_secs_f64().max(1e-9);

        let snap = m.snapshot();
        let overlay_bfs = time_stats_ms(|| bfs_dir(&snap, 0, Direction::Auto));
        let compact_start = Instant::now();
        let report = m.compact(m.context()).expect("compaction succeeds");
        let compact_ms = compact_start.elapsed().as_secs_f64() * 1e3;
        let compacted = m.snapshot();
        let compacted_bfs = time_stats_ms(|| bfs_dir(&compacted, 0, Direction::Auto));

        rows.push(Row {
            bench: format!("mutate_throughput/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats: timing_from_samples(&samples_ms),
            threads: 0,
            extras: vec![
                ("delta_depth", depth as f64),
                ("appends_per_sec", depth as f64 / append_secs),
                ("overlay_bfs_ms", overlay_bfs.mean_ms),
                ("compacted_bfs_ms", compacted_bfs.mean_ms),
                ("compact_ms", compact_ms),
                ("folded", report.folded as f64),
                ("dirty_rows", report.dirty_rows as f64),
            ],
        });
    }
}

/// Fraction of arrivals in the `query_under_mutation` mix that are edge
/// mutations rather than traversals.
const MUTATION_MIX: f64 = 0.25;

/// Delta-log depth at which the `query_under_mutation` service compacts.
const MUTATION_COMPACT_AFTER: usize = 64;

/// Drive the service with the PR-6 open-loop arrival model but a **mixed
/// read/write stream** (PR 8): 50% BFS / 25% SSSP / 25% edge mutations
/// (mostly inserts, some deletes), with `compact_after` armed so the
/// writer path folds the log in-band once it passes
/// [`MUTATION_COMPACT_AFTER`] staged deltas.  Each load gets its own
/// freshly built matrix so the epoch counters in the extras start at
/// zero.  The extras report the read/write economics: achieved
/// throughput, mutations applied, epochs published, compactions run, and
/// the ticket-conservation identity (mutations resolve through the same
/// ticket machinery as traversals, so `conserved` covers both).
fn bench_query_under_mutation(
    rows: &mut Vec<Row>,
    name: &str,
    adj: &Csr,
    backend: Backend,
    smoke: bool,
) {
    let n = adj.nrows();
    let n_arrivals = serve_arrivals(smoke);
    for offered_qps in SERVE_LOADS_QPS {
        let m = Matrix::from_csr(adj, backend);
        let mut rng = StdRng::seed_from_u64(0xC0A1E5CE);
        let mut svc = GraphService::builder(&m)
            .coalescing_window(500)
            .queue_capacity(4096)
            .compact_after(MUTATION_COMPACT_AFTER)
            .build();

        let mut arrival_us = 0u64;
        let mut busy_until_us = 0u64;
        let mut exec_samples_ms: Vec<f64> = Vec::new();
        let mut shed = 0u64;

        for _ in 0..n_arrivals {
            let u: f64 = rng.gen();
            let gap_us = (-(1.0 - u).ln() / offered_qps * 1e6).round() as u64;
            arrival_us = arrival_us.saturating_add(gap_us.max(1));
            drain_events(
                &mut svc,
                Some(arrival_us),
                &mut busy_until_us,
                &mut exec_samples_ms,
            );
            let roll: f64 = rng.gen();
            let source = rng.gen_range(0usize..n);
            let query = if roll < MUTATION_MIX {
                let target = rng.gen_range(0usize..n);
                if rng.gen_bool(0.8) {
                    Query::insert_edge(source, target)
                } else {
                    Query::delete_edge(source, target)
                }
            } else if roll < MUTATION_MIX + 0.5 {
                Query::bfs(source)
            } else {
                Query::sssp(source)
            };
            if svc.submit(query, Tick(arrival_us), None).is_err() {
                shed += 1;
            }
        }
        drain_events(&mut svc, None, &mut busy_until_us, &mut exec_samples_ms);

        let s = svc.stats().snapshot();
        let end_us = busy_until_us.max(arrival_us).max(1);
        let stats = timing_from_samples(&exec_samples_ms);
        rows.push(Row {
            bench: format!("query_under_mutation/{name}"),
            backend: backend_name(backend),
            direction: "auto".to_string(),
            stats,
            threads: 0,
            extras: vec![
                ("offered_qps", offered_qps),
                ("throughput_qps", s.completed as f64 / (end_us as f64 / 1e6)),
                ("completed", s.completed as f64),
                ("mutations_applied", s.mutations_applied as f64),
                ("epochs_published", s.epochs_published as f64),
                ("compactions", s.compactions as f64),
                ("wait_p50_us", s.wait_p50() as f64),
                ("wait_p99_us", s.wait_p99() as f64),
                ("shed", shed as f64),
                ("conserved", if s.is_conserved() { 1.0 } else { 0.0 }),
            ],
        });
    }
}

/// Time the scalar-vs-SWAR pull sweep (PR 9): forced-pull BFS with the
/// vector kernels pinned off (`simd: 0`) and on (`simd: 1`) via the
/// context's [`SimdPolicy`].  Both rows compute bit-identical outputs (the
/// `simd_parity` harness proves it), so the pair isolates the pure kernel
/// cost of the lane-parallel sweep.  Bit backends only — the float-CSR
/// baseline has no packed-tile path to vectorize.
fn bench_bfs_pull_simd(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    if !matches!(backend, Backend::Bit(_)) {
        return;
    }
    for (policy, flag) in [
        (SimdPolicy::ForceScalar, 0.0),
        (SimdPolicy::ForceVector, 1.0),
    ] {
        m.context().set_simd_policy(policy);
        let stats = time_stats_ms(|| bfs_dir(m, 0, Direction::Pull));
        rows.push(Row {
            bench: format!("bfs_pull_simd/{name}"),
            backend: backend_name(backend),
            direction: "pull".to_string(),
            stats,
            threads: 0,
            extras: vec![("simd", flag)],
        });
    }
    m.context().set_simd_policy(SimdPolicy::Auto);
}

/// Time batched personalized PageRank under both kernel policies (PR 9):
/// the dense `n × k` arithmetic sweep is the lane-word batched path
/// (`bmm_bin_full`) where the SWAR engine amortizes one tile load across
/// all `BATCH_K` lanes.  Same `simd: 0/1` row pairing as
/// [`bench_bfs_pull_simd`].
fn bench_ppr_simd(rows: &mut Vec<Row>, name: &str, m: &Matrix, backend: Backend) {
    if !matches!(backend, Backend::Bit(_)) {
        return;
    }
    let n = m.nrows();
    let seeds: Vec<usize> = (0..BATCH_K).map(|i| i * n / BATCH_K).collect();
    let config = PprConfig::default();
    for (policy, flag) in [
        (SimdPolicy::ForceScalar, 0.0),
        (SimdPolicy::ForceVector, 1.0),
    ] {
        m.context().set_simd_policy(policy);
        let stats = time_stats_ms(|| ppr_multi_dir(m, &seeds, &config, Direction::Pull));
        rows.push(Row {
            bench: format!("ppr_simd/{name}"),
            backend: backend_name(backend),
            direction: "pull".to_string(),
            stats,
            threads: 0,
            extras: vec![("simd", flag)],
        });
    }
    m.context().set_simd_policy(SimdPolicy::Auto);
}

/// Thread budgets of the PR-5 sharded-push scaling rows.
const SHARD_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Time forced-push BFS and SSSP under explicit push-engine thread budgets
/// (PR 5): `threads == 1` builds a single-shard plan — the serial-push
/// baseline — while larger budgets build sharded plans and fan the scatter
/// out, so the row family is the thread-scaling curve of the sharded
/// engine.  Outputs are bit-identical across the whole family (the
/// determinism guarantee); only the wall-clock may differ.
fn bench_sharded_push(rows: &mut Vec<Row>, name: &str, adj: &Csr, backend: Backend) {
    for &threads in &SHARD_THREADS {
        let ctx = Context::with_threads(threads);
        let m = Matrix::from_csr_ctx(adj, backend, &ctx);
        let stats = time_stats_ms(|| bfs_dir(&m, 0, Direction::Push));
        rows.push(Row {
            bench: format!("bfs_push_sharded/{name}"),
            backend: backend_name(backend),
            direction: "push".to_string(),
            stats,
            threads,
            extras: Vec::new(),
        });
        let stats = time_stats_ms(|| sssp_dir(&m, 0, Direction::Push));
        rows.push(Row {
            bench: format!("sssp_push_sharded/{name}"),
            backend: backend_name(backend),
            direction: "push".to_string(),
            stats,
            threads,
            extras: Vec::new(),
        });
    }
}

/// The fixed corpus: a low-eccentricity RMAT-like power-law graph (the
/// acceptance graph — dense hump, sparse fringe), a banded road-like graph
/// and a 2-D grid.
fn corpus(smoke: bool) -> Vec<(&'static str, Csr)> {
    if smoke {
        return vec![("smoke_rmat_s8", generators::rmat(8, 8, 0.57, 0.19, 0.19, 5))];
    }
    vec![
        (
            "rmat_s14",
            generators::rmat(14, 16, 0.57, 0.19, 0.19, 5).symmetrized(),
        ),
        ("banded_4096", generators::banded(4096, 4, 0.7, 11)),
        ("grid_64x64", generators::grid2d(64, 64)),
    ]
}

/// Silence the default panic report for *injected* panics only — the
/// `serve_faults` rows deliberately fire hundreds of contained
/// [`InjectedPanic`]s and the containment layer resolves every one; a
/// genuine panic still prints normally.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            default_hook(info);
        }
    }));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    quiet_injected_panics();

    let mut rows = Vec::new();
    let graphs = corpus(smoke);
    for (name, adj) in &graphs {
        println!(
            "benchmarking {name}: {} vertices, {} edges",
            adj.nrows(),
            adj.nnz()
        );
        for backend in [Backend::Bit(TileSize::S8), Backend::FloatCsr] {
            let m = Matrix::from_csr(adj, backend);
            bench_bmv(&mut rows, name, &m, backend);
            bench_algorithms(&mut rows, name, &m, backend);
            bench_fusion(&mut rows, name, &m, backend);
            bench_multi(&mut rows, name, &m, backend);
            bench_ppr_multi(&mut rows, name, &m, backend);
            bench_bfs_pull_simd(&mut rows, name, &m, backend);
            bench_ppr_simd(&mut rows, name, &m, backend);
            bench_sharded_push(&mut rows, name, adj, backend);
            bench_serve_openloop(&mut rows, name, &m, backend, smoke);
            bench_serve_faults(&mut rows, name, &m, backend, smoke);
            bench_serve_overload(&mut rows, name, &m, backend, smoke);
            bench_mutate_throughput(&mut rows, name, adj, backend, smoke);
            bench_query_under_mutation(&mut rows, name, adj, backend, smoke);
        }
    }

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {} rows to {out_path}", rows.len());

    // Headline summaries: BFS Auto vs the old always-pull path, and the
    // PR-3 fused vs node-at-a-time expression pipelines.
    for (name, _) in &graphs {
        for backend in ["Bit8", "FloatCsr"] {
            let find = |bench: &str, dir: &str| {
                rows.iter()
                    .find(|r| {
                        r.bench == format!("{bench}/{name}")
                            && r.backend == backend
                            && r.direction == dir
                    })
                    .map(|r| r.stats.mean_ms)
            };
            if let (Some(pull), Some(auto)) = (find("bfs", "pull"), find("bfs", "auto")) {
                println!(
                    "bfs/{name} [{backend}]: pull {pull:.3} ms, auto {auto:.3} ms  ({:.2}x)",
                    pull / auto
                );
            }
            for alg in ["pagerank", "sssp"] {
                let dir = if alg == "pagerank" { "pull" } else { "auto" };
                if let (Some(unfused), Some(fused)) = (
                    find(&format!("{alg}_unfused"), dir),
                    find(&format!("{alg}_fused"), dir),
                ) {
                    println!(
                        "{alg}/{name} [{backend}]: unfused {unfused:.3} ms, fused {fused:.3} ms  \
                         ({:.2}x)",
                        unfused / fused
                    );
                }
            }
            for alg in ["bfs_multi", "sssp_multi", "ppr_multi"] {
                if let (Some(seq), Some(batched)) = (
                    find(&format!("{alg}_seq"), "auto"),
                    find(&format!("{alg}_batched"), "auto"),
                ) {
                    println!(
                        "{alg}/{name} [{backend}]: {BATCH_K} sequential {seq:.3} ms, \
                         batched {batched:.3} ms  ({:.2}x)",
                        seq / batched
                    );
                }
            }
            // PR-6 serving rows: the occupancy/latency curve over offered
            // load — what the coalescing window buys as traffic grows.
            for r in rows
                .iter()
                .filter(|r| r.bench == format!("serve_openloop/{name}") && r.backend == backend)
            {
                let get = |key: &str| {
                    r.extras
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(0.0, |(_, v)| *v)
                };
                println!(
                    "serve/{name} [{backend}]: offered {:.0} q/s → {:.0} q/s, occupancy \
                     {:.2} (max {:.0}), wait p50 {:.0} µs p99 {:.0} µs",
                    get("offered_qps"),
                    get("throughput_qps"),
                    get("occupancy_mean"),
                    get("occupancy_max"),
                    get("wait_p50_us"),
                    get("wait_p99_us"),
                );
            }
            // PR-7 fault/overload rows: what containment costs and how
            // backpressure sheds as offered load passes saturation.
            for r in rows
                .iter()
                .filter(|r| r.bench == format!("serve_faults/{name}") && r.backend == backend)
            {
                let get = |key: &str| {
                    r.extras
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(0.0, |(_, v)| *v)
                };
                println!(
                    "serve_faults/{name} [{backend}]: offered {:.0} q/s → completed {:.0}, \
                     failed {:.0}, retries {:.0}, panics contained {:.0} \
                     (+{:.0} bisection dispatches), breaker trips {:.0}, conserved {}",
                    get("offered_qps"),
                    get("completed"),
                    get("failed"),
                    get("retries"),
                    get("panics_contained"),
                    get("bisection_dispatches"),
                    get("breaker_trips"),
                    if get("conserved") == 1.0 { "yes" } else { "NO" },
                );
            }
            for r in rows
                .iter()
                .filter(|r| r.bench == format!("serve_overload/{name}") && r.backend == backend)
            {
                let get = |key: &str| {
                    r.extras
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(0.0, |(_, v)| *v)
                };
                println!(
                    "serve_overload/{name} [{backend}]: offered {:.0} q/s → {:.0} q/s, \
                     shed rate {:.2}, deadline misses {:.0}, conserved {}",
                    get("offered_qps"),
                    get("throughput_qps"),
                    get("shed_rate"),
                    get("deadline_misses"),
                    if get("conserved") == 1.0 { "yes" } else { "NO" },
                );
            }
            // PR-8 mutation rows: append throughput vs depth, and what a
            // mixed read/write stream does to the serving layer.
            for r in rows
                .iter()
                .filter(|r| r.bench == format!("mutate_throughput/{name}") && r.backend == backend)
            {
                let get = |key: &str| {
                    r.extras
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(0.0, |(_, v)| *v)
                };
                println!(
                    "mutate/{name} [{backend}]: depth {:.0} → {:.0} appends/s, overlay BFS \
                     {:.3} ms vs compacted {:.3} ms, compact {:.3} ms ({:.0} dirty rows)",
                    get("delta_depth"),
                    get("appends_per_sec"),
                    get("overlay_bfs_ms"),
                    get("compacted_bfs_ms"),
                    get("compact_ms"),
                    get("dirty_rows"),
                );
            }
            for r in rows.iter().filter(|r| {
                r.bench == format!("query_under_mutation/{name}") && r.backend == backend
            }) {
                let get = |key: &str| {
                    r.extras
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map_or(0.0, |(_, v)| *v)
                };
                println!(
                    "query_under_mutation/{name} [{backend}]: offered {:.0} q/s → {:.0} q/s, \
                     {:.0} mutations in {:.0} epochs, {:.0} compactions, wait p99 {:.0} µs, \
                     conserved {}",
                    get("offered_qps"),
                    get("throughput_qps"),
                    get("mutations_applied"),
                    get("epochs_published"),
                    get("compactions"),
                    get("wait_p99_us"),
                    if get("conserved") == 1.0 { "yes" } else { "NO" },
                );
            }
            // PR-9 kernel comparison: the forced-pull sweep with the SWAR
            // engine off vs on (bit backends only).
            for alg in ["bfs_pull_simd", "ppr_simd"] {
                let at = |flag: f64| {
                    rows.iter()
                        .find(|r| {
                            r.bench == format!("{alg}/{name}")
                                && r.backend == backend
                                && r.extras.iter().any(|&(k, v)| k == "simd" && v == flag)
                        })
                        .map(|r| r.stats.mean_ms)
                };
                if let (Some(scalar), Some(vector)) = (at(0.0), at(1.0)) {
                    println!(
                        "{alg}/{name} [{backend}]: scalar {scalar:.3} ms, vector {vector:.3} ms  \
                         ({:.2}x)",
                        scalar / vector
                    );
                }
            }
            // PR-5 thread-scaling curve: serial-push baseline vs sharded.
            for alg in ["bfs_push_sharded", "sssp_push_sharded"] {
                let at = |t: usize| {
                    rows.iter()
                        .find(|r| {
                            r.bench == format!("{alg}/{name}")
                                && r.backend == backend
                                && r.threads == t
                        })
                        .map(|r| r.stats.mean_ms)
                };
                if let (Some(t1), Some(t4)) = (at(1), at(4)) {
                    let curve: Vec<String> = SHARD_THREADS
                        .iter()
                        .filter_map(|&t| at(t).map(|ms| format!("{t}t {ms:.3} ms")))
                        .collect();
                    println!(
                        "{alg}/{name} [{backend}]: {}  (serial/4t: {:.2}x)",
                        curve.join(", "),
                        t1 / t4
                    );
                }
            }
        }
    }
}
