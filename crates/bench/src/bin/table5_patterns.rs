//! Table V — structural pattern categories of the evaluation corpus.
//!
//! Classifies every matrix of the synthetic sweep (plus the named stand-ins)
//! with the Table V classifier and reports the share of each category.
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin table5_patterns`

use std::collections::BTreeMap;

use bitgblas_datagen::{classify, corpus};

fn main() {
    let mut matrices = corpus::corpus_sweep(120, 0x521);
    for name in corpus::named_matrix_list() {
        matrices.push(corpus::CorpusEntry {
            name: name.to_string(),
            category: corpus::named_matrix_category(name).unwrap(),
            matrix: corpus::named_matrix(name).unwrap(),
        });
    }

    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut agreement = 0usize;
    for entry in &matrices {
        let detected = classify::classify(&entry.matrix);
        *counts.entry(detected.to_string()).or_insert(0) += 1;
        if detected == entry.category {
            agreement += 1;
        }
    }

    println!(
        "Table V: pattern categories detected over {} matrices",
        matrices.len()
    );
    println!("{:<12} {:>8} {:>9}", "category", "count", "share");
    for (cat, count) in &counts {
        println!(
            "{:<12} {:>8} {:>8.1}%",
            cat,
            count,
            *count as f64 / matrices.len() as f64 * 100.0
        );
    }
    println!(
        "\nclassifier agrees with the generator's intended category for {:.1}% of the corpus",
        agreement as f64 / matrices.len() as f64 * 100.0
    );
    println!(
        "\nPaper shares (overlapping labels allowed): diagonal 45.9%, dot 36.7%, hybrid 25.7%,\n\
         block 25.0%, stripe 13.1%, road 5.2%."
    );
}
