//! Tables VII and VIII — SpMV-based graph algorithm runtimes (BFS, SSSP, PR,
//! CC): Bit-GraphBLAS (B2SR-8) vs the float-CSR baseline (the GraphBLAST
//! stand-in), per matrix, with algorithm-level and kernel-level timings.
//!
//! `--device pascal` (Table VII) and `--device volta` (Table VIII) select the
//! GPU profile used for the analytic memory-model column; the wall-clock
//! columns are measured on this machine and are identical between the two
//! invocations, exactly as the substitution table in DESIGN.md explains.
//!
//! Run with:
//! `cargo run -p bitgblas-bench --release --bin table7_8_algorithms -- --device pascal`

use std::time::Instant;

use bitgblas_algorithms::{bfs, connected_components, pagerank, sssp, PageRankConfig};
use bitgblas_bench::{device_from_args, fmt_speedup, load, table7_matrices};
use bitgblas_core::grb::{Context, Matrix, Op, Vector};
use bitgblas_core::{Backend, Semiring, TileSize};
use bitgblas_perfmodel::traffic::compare_traffic;

/// Wall-clock milliseconds of one invocation.
fn ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// One matrix-vector kernel invocation time (the "kernel" rows of the table):
/// a single full mxv over the algorithm's semiring.
fn kernel_ms(m: &Matrix, semiring: Semiring) -> f64 {
    let ctx = Context::default();
    let x = Vector::from_vec((0..m.ncols()).map(|i| (i % 3) as f32).collect());
    let _warm = Op::mxv(m, &x).semiring(semiring).run(&ctx);
    let (_, t) = ms(|| Op::mxv(m, &x).semiring(semiring).run(&ctx));
    t
}

fn main() {
    let device = device_from_args();
    let table = if device.architecture == "Pascal" {
        "Table VII"
    } else {
        "Table VIII"
    };
    println!(
        "{table}: SpMV-based graph algorithms, Bit-GraphBLAS (B2SR-8) vs float-CSR baseline\n\
         (wall-clock ms on the CPU substrate; 'model' = analytic load-transaction reduction on {})\n",
        device.name
    );
    println!(
        "{:<16} {:<10} {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} {:>8}",
        "matrix",
        "row",
        "BFS base",
        "BFS ours",
        "speedup",
        "SSSP base",
        "SSSP ours",
        "speedup",
        "model"
    );

    for name in table7_matrices() {
        let csr = load(name);
        let baseline = Matrix::from_csr(&csr, Backend::FloatCsr);
        let ours = Matrix::from_csr(&csr, Backend::Bit(TileSize::S8));
        let cmp = compare_traffic(&csr, &ours.b2sr().unwrap().layout(), &device);

        // Algorithm-level timings.
        let (_, bfs_base) = ms(|| bfs(&baseline, 0));
        let (_, bfs_ours) = ms(|| bfs(&ours, 0));
        let (_, sssp_base) = ms(|| sssp(&baseline, 0));
        let (_, sssp_ours) = ms(|| sssp(&ours, 0));
        let (_, pr_base) = ms(|| pagerank(&baseline, &PageRankConfig::default()));
        let (_, pr_ours) = ms(|| pagerank(&ours, &PageRankConfig::default()));
        let (_, cc_base) = ms(|| connected_components(&baseline));
        let (_, cc_ours) = ms(|| connected_components(&ours));

        println!(
            "{:<16} {:<10} {:>10.2} {:>10.2} {:>9} | {:>10.2} {:>10.2} {:>9} {:>7.1}x",
            name,
            "algorithm",
            bfs_base,
            bfs_ours,
            fmt_speedup(bfs_base, bfs_ours),
            sssp_base,
            sssp_ours,
            fmt_speedup(sssp_base, sssp_ours),
            cmp.transaction_reduction
        );

        // Kernel-level timings (one semiring mxv per algorithm family).
        let kb_bool_base = kernel_ms(&baseline, Semiring::Boolean);
        let kb_bool_ours = kernel_ms(&ours, Semiring::Boolean);
        let kb_trop_base = kernel_ms(&baseline, Semiring::MinPlus(1.0));
        let kb_trop_ours = kernel_ms(&ours, Semiring::MinPlus(1.0));
        println!(
            "{:<16} {:<10} {:>10.3} {:>10.3} {:>9} | {:>10.3} {:>10.3} {:>9} {:>8}",
            "",
            "kernel",
            kb_bool_base,
            kb_bool_ours,
            fmt_speedup(kb_bool_base, kb_bool_ours),
            kb_trop_base,
            kb_trop_ours,
            fmt_speedup(kb_trop_base, kb_trop_ours),
            ""
        );

        println!(
            "{:<16} {:<10} {:>10.2} {:>10.2} {:>9} | {:>10.2} {:>10.2} {:>9}   (PR | CC, algorithm)",
            "",
            "pr/cc",
            pr_base,
            pr_ours,
            fmt_speedup(pr_base, pr_ours),
            cc_base,
            cc_ours,
            fmt_speedup(cc_base, cc_ours)
        );
    }

    println!(
        "\nPaper: BFS accelerates 3-433x (best on diagonal-pattern matrices), SSSP/PR/CC mostly\n\
         1-20x algorithm-level; the per-category ordering (diagonal > block/stripe) and the\n\
         kernel-vs-algorithm gap are the features to compare."
    );
}
