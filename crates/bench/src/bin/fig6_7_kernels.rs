//! Figures 6 and 7 — speedup of the BMV/BMM kernels over the full-precision
//! CSR baseline, as a function of nonzero density, for the four B2SR tile
//! sizes.
//!
//! Two speedup series are reported per kernel scheme:
//!
//! * **measured** — wall-clock speedup of the bit kernel over the float CSR
//!   kernel on this machine's CPU substrate (the shape of the curve — which
//!   tile size wins where, how the gain grows with density — is what carries
//!   over from the paper);
//! * **modelled** — the analytic device-model speedup for the selected GPU
//!   profile (`--device pascal` reproduces Figure 6, `--device volta`
//!   Figure 7), capturing the architecture-dependent differences the CPU
//!   cannot show.
//!
//! Run with:
//! `cargo run -p bitgblas-bench --release --bin fig6_7_kernels -- --device pascal`

use bitgblas_bench::{device_from_args, geomean, load, time_avg_ms};
use bitgblas_core::b2sr::convert::from_csr;
use bitgblas_core::kernels::{
    bmm_bin_bin_sum, bmv_bin_bin_bin, bmv_bin_bin_full, bmv_bin_full_full, pack_vector_tilewise,
};
use bitgblas_core::{Semiring, TileSize};
use bitgblas_datagen::corpus;
use bitgblas_perfmodel::{speedup_estimate, B2srLayout};
use bitgblas_sparse::{ops, Csr, DenseVec};

/// One evaluated matrix: name, the matrix, and its nonzero density.
struct Entry {
    name: String,
    csr: Csr,
    density: f64,
}

fn corpus_entries() -> Vec<Entry> {
    let mut out = Vec::new();
    // A slice of the synthetic sweep plus the named kernel-study matrices.
    for e in corpus::corpus_sweep(36, 0x67) {
        out.push(Entry {
            density: e.matrix.density(),
            name: e.name,
            csr: e.matrix,
        });
    }
    for name in [
        "ins2",
        "mycielskian9",
        "ash292",
        "jagmesh6",
        "Erdos02",
        "delaunay_n14",
    ] {
        let csr = load(name);
        out.push(Entry {
            density: csr.density(),
            name: name.to_string(),
            csr,
        });
    }
    out.sort_by(|a, b| a.density.partial_cmp(&b.density).unwrap());
    out
}

fn bucket_label(density: f64) -> &'static str {
    match density {
        d if d < 1e-6 => "E-07",
        d if d < 1e-5 => "E-06",
        d if d < 1e-4 => "E-05",
        d if d < 1e-3 => "E-04",
        d if d < 1e-2 => "E-03",
        d if d < 1e-1 => "E-02",
        _ => "E-01",
    }
}

/// Measured speedups of the three BMV schemes and BMM, per tile size, for one matrix.
fn kernel_speedups(csr: &Csr) -> [[f64; 4]; 4] {
    let n = csr.ncols();
    let x: Vec<f32> = (0..n).map(|i| ((i * 7 + 3) % 5) as f32).collect();
    let x_dense = DenseVec::from_vec(x.clone());

    // Baselines: cuSPARSE-style float CSR SpMV and SpGEMM.
    let spmv_ms = time_avg_ms(|| ops::spmv_parallel(csr, &x_dense).unwrap());
    let spgemm_ms = time_avg_ms(|| ops::spgemm_parallel(csr, csr).unwrap());

    let mut result = [[0.0f64; 4]; 4];
    for (k, ts) in TileSize::ALL.iter().enumerate() {
        macro_rules! with_variant {
            ($w:ty, $dim:expr) => {{
                let b = from_csr::<$w>(csr, $dim);
                let xp = pack_vector_tilewise::<$w>(&x, $dim);
                let bbb = time_avg_ms(|| bmv_bin_bin_bin(&b, &xp));
                let bbf = time_avg_ms(|| bmv_bin_bin_full(&b, &xp));
                let bff = time_avg_ms(|| bmv_bin_full_full(&b, &x, Semiring::Arithmetic));
                let bmm = time_avg_ms(|| bmm_bin_bin_sum(&b, &b));
                [spmv_ms / bbb, spmv_ms / bbf, spmv_ms / bff, spgemm_ms / bmm]
            }};
        }
        let speeds = match ts {
            TileSize::S4 => with_variant!(u8, 4),
            TileSize::S8 => with_variant!(u8, 8),
            TileSize::S16 => with_variant!(u16, 16),
            TileSize::S32 => with_variant!(u32, 32),
        };
        for (scheme, &s) in speeds.iter().enumerate() {
            result[scheme][k] = s;
        }
    }
    result
}

fn main() {
    let device = device_from_args();
    let entries = corpus_entries();
    let schemes = [
        "bmv_bin_bin_bin",
        "bmv_bin_bin_full",
        "bmv_bin_full_full",
        "bmm_bin_bin_sum",
    ];

    println!(
        "Figures 6/7: kernel speedup over the float CSR baseline ({} matrices, device model = {})",
        entries.len(),
        device.name
    );

    // Collect per-matrix speedups and group by density bucket.
    let mut per_bucket: std::collections::BTreeMap<&'static str, Vec<[[f64; 4]; 4]>> =
        std::collections::BTreeMap::new();
    let mut all: Vec<[[f64; 4]; 4]> = Vec::new();
    let mut modelled: Vec<(String, f64)> = Vec::new();
    for e in &entries {
        let s = kernel_speedups(&e.csr);
        per_bucket
            .entry(bucket_label(e.density))
            .or_default()
            .push(s);
        all.push(s);
        let layout = B2srLayout::from_csr(&e.csr, 8);
        modelled.push((e.name.clone(), speedup_estimate(&e.csr, &layout, &device)));
    }

    for (si, scheme) in schemes.iter().enumerate() {
        println!("\n{scheme}: measured geomean speedup per density bucket");
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "density", "4x4", "8x8", "16x16", "32x32", "n"
        );
        for (bucket, rows) in &per_bucket {
            let mut per_ts = [0.0f64; 4];
            for (k, slot) in per_ts.iter_mut().enumerate() {
                let vals: Vec<f64> = rows.iter().map(|r| r[si][k]).collect();
                *slot = geomean(&vals);
            }
            println!(
                "{:>8} {:>8.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>6}",
                bucket,
                per_ts[0],
                per_ts[1],
                per_ts[2],
                per_ts[3],
                rows.len()
            );
        }
        // Overall averages and maxima (the numbers quoted in §VI-D).
        let mut line = String::new();
        for k in 0..4 {
            let vals: Vec<f64> = all.iter().map(|r| r[si][k]).collect();
            let max = vals.iter().cloned().fold(0.0, f64::max);
            line.push_str(&format!(
                "  {}: avg {:.2}x max {:.1}x",
                TileSize::ALL[k],
                geomean(&vals),
                max
            ));
        }
        println!("  overall:{line}");
    }

    println!(
        "\nanalytic {}-model BMV speedup (B2SR-8), top 8 matrices:",
        device.architecture
    );
    let mut modelled_sorted = modelled;
    modelled_sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, s) in modelled_sorted.iter().take(8) {
        println!("  {:<24} {:>6.1}x", name, s);
    }

    println!(
        "\nPaper (Figures 6/7): BMV averages 2-3x with maxima of 25-40x; BMM averages 3.6-34x with\n\
         maxima in the thousands at high density (ins2); gains grow with nonzero density and the\n\
         BMM gap is the largest — the same ordering should be visible above."
    );
}
