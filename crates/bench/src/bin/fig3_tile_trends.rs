//! Figure 3 — effect of the tile dimension on (a) the non-empty tile ratio
//! and (b) the nonzero occupancy inside non-empty tiles, for the five study
//! matrices (G47, sphere3, cage, will199, email-Eu-core stand-ins).
//!
//! Run with: `cargo run -p bitgblas-bench --release --bin fig3_tile_trends`

use bitgblas_bench::{fig3_matrices, load};
use bitgblas_core::b2sr::stats::stats_all_sizes;

fn main() {
    println!("Figure 3a: non-empty tile ratio (%) per tile dimension");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "matrix", "4x4", "8x8", "16x16", "32x32"
    );
    let mut all_stats = Vec::new();
    for name in fig3_matrices() {
        let csr = load(name);
        let stats = stats_all_sizes(&csr);
        println!(
            "{:<16} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            name,
            stats[0].nonempty_tile_ratio * 100.0,
            stats[1].nonempty_tile_ratio * 100.0,
            stats[2].nonempty_tile_ratio * 100.0,
            stats[3].nonempty_tile_ratio * 100.0
        );
        all_stats.push((name, stats));
    }

    println!("\nFigure 3b: nonzero occupancy in non-empty tiles (%) per tile dimension");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "matrix", "4x4", "8x8", "16x16", "32x32"
    );
    for (name, stats) in &all_stats {
        println!(
            "{:<16} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            name,
            stats[0].nonzero_occupancy * 100.0,
            stats[1].nonzero_occupancy * 100.0,
            stats[2].nonzero_occupancy * 100.0,
            stats[3].nonzero_occupancy * 100.0
        );
    }

    println!(
        "\nPaper trends: the non-empty tile ratio rises with the tile dimension (under 30% at 4x4,\n\
         above 80% for some matrices at 32x32) while the occupancy falls (from ~20% to under 5%)."
    );
}
